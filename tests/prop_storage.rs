//! Property-based tests over the storage layer: PAX round trips, sort
//! permutations, packet framing, checksum detection, and the clustered
//! index against a linear-scan oracle.

use hail::index::{ClusteredIndex, KeyBounds};
use hail::pax::{
    blocks_from_text, chunk_checksums, packetize, reassemble, sort_block, verify_chunks,
};
use hail::prelude::*;
use proptest::prelude::*;
use std::ops::Bound;

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("key", DataType::Int),
        Field::new("tag", DataType::VarChar),
        Field::new("weight", DataType::Float),
    ])
    .unwrap()
}

/// Strategy: a vector of (key, tag, weight) rows with printable tags.
fn rows_strategy() -> impl Strategy<Value = Vec<(i32, String, f64)>> {
    prop::collection::vec(
        (
            -5000..5000i32,
            "[a-z]{0,12}",
            prop::num::f64::NORMAL.prop_map(|f| (f % 1e6).abs()),
        ),
        1..200,
    )
}

fn to_text(rows: &[(i32, String, f64)]) -> String {
    rows.iter()
        .map(|(k, t, w)| format!("{k}|{t}|{w}\n"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rows → PAX block → rows is the identity.
    #[test]
    fn pax_round_trip(rows in rows_strategy(), partition in 1usize..64) {
        let mut storage = StorageConfig::test_scale(1 << 30);
        storage.index_partition_size = partition;
        let blocks = blocks_from_text(&to_text(&rows), &schema(), &storage).unwrap();
        prop_assert_eq!(blocks.len(), 1);
        let b = &blocks[0];
        prop_assert_eq!(b.row_count(), rows.len());
        for (i, (k, t, w)) in rows.iter().enumerate() {
            let row = b.reconstruct_full(i).unwrap();
            prop_assert_eq!(row.get(0).unwrap().as_i32(), Some(*k));
            prop_assert_eq!(row.get(1).unwrap().as_str(), Some(t.as_str()));
            let got = row.get(2).unwrap().as_f64().unwrap();
            // Values go through text formatting; compare via re-parse.
            let expected: f64 = format!("{w}").parse().unwrap();
            prop_assert_eq!(got, expected);
        }
    }

    /// Sorting a block on any column yields sorted keys and preserves
    /// the multiset of rows.
    #[test]
    fn sort_preserves_rows(rows in rows_strategy(), col in 0usize..3) {
        let storage = StorageConfig::test_scale(1 << 30);
        let blocks = blocks_from_text(&to_text(&rows), &schema(), &storage).unwrap();
        let (sorted, perm) = sort_block(&blocks[0], col).unwrap();
        // perm is a permutation.
        let mut seen = vec![false; rows.len()];
        for &p in &perm {
            prop_assert!(!seen[p]);
            seen[p] = true;
        }
        // Keys ascend.
        for i in 1..sorted.row_count() {
            let a = sorted.value(col, i - 1).unwrap();
            let b = sorted.value(col, i).unwrap();
            prop_assert!(a <= b);
        }
        // Row multiset unchanged.
        let mut before: Vec<String> =
            (0..rows.len()).map(|i| blocks[0].reconstruct_full(i).unwrap().to_string()).collect();
        let mut after: Vec<String> =
            (0..rows.len()).map(|i| sorted.reconstruct_full(i).unwrap().to_string()).collect();
        before.sort();
        after.sort();
        prop_assert_eq!(before, after);
    }

    /// Index lookup over sorted keys finds exactly the rows a linear
    /// scan finds (the index may over-approximate partitions, never
    /// under-approximate rows).
    #[test]
    fn clustered_index_complete(
        mut keys in prop::collection::vec(-1000..1000i32, 1..500),
        partition in 1usize..64,
        lo in -1100..1100i32,
        len in 0..300i32,
    ) {
        keys.sort_unstable();
        let values: Vec<Value> = keys.iter().map(|&k| Value::Int(k)).collect();
        let idx = ClusteredIndex::build(0, DataType::Int, partition, &values).unwrap();
        let hi = lo.saturating_add(len);
        let bounds = KeyBounds::between(Value::Int(lo), Value::Int(hi));
        let expected: Vec<usize> = keys
            .iter()
            .enumerate()
            .filter(|(_, &k)| k >= lo && k <= hi)
            .map(|(i, _)| i)
            .collect();
        match idx.lookup(&bounds) {
            None => prop_assert!(expected.is_empty(), "lookup missed {} rows", expected.len()),
            Some((first, last)) => {
                let range = idx.partition_rows(first, last);
                for &row in &expected {
                    prop_assert!(range.contains(&row), "row {row} outside {range:?}");
                }
            }
        }
    }

    /// Exclusive bounds behave identically to a linear scan.
    #[test]
    fn clustered_index_exclusive_bounds(
        mut keys in prop::collection::vec(0..200i32, 1..300),
        partition in 1usize..32,
        pivot in 0..200i32,
    ) {
        keys.sort_unstable();
        let values: Vec<Value> = keys.iter().map(|&k| Value::Int(k)).collect();
        let idx = ClusteredIndex::build(0, DataType::Int, partition, &values).unwrap();
        let bounds = KeyBounds {
            lo: Bound::Excluded(Value::Int(pivot)),
            hi: Bound::Unbounded,
        };
        let expected = keys.iter().filter(|&&k| k > pivot).count();
        let covered = match idx.lookup(&bounds) {
            None => 0,
            Some((f, l)) => idx
                .partition_rows(f, l)
                .filter(|&r| keys[r] > pivot)
                .count(),
        };
        prop_assert_eq!(covered, expected);
    }

    /// Intersecting two random bound pairs never admits a value both
    /// original bounds reject.
    #[test]
    fn bounds_intersection_sound(a in -100..100i32, b in -100..100i32, c in -100..100i32, d in -100..100i32, probe in -150..150i32) {
        let (a, b) = (a.min(b), a.max(b));
        let (c, d) = (c.min(d), c.max(d));
        let x = KeyBounds::between(Value::Int(a), Value::Int(b));
        let y = KeyBounds::between(Value::Int(c), Value::Int(d));
        let both = x.intersect(&y);
        let v = Value::Int(probe);
        prop_assert_eq!(both.contains(&v), x.contains(&v) && y.contains(&v));
    }

    /// Packetize → reassemble is the identity for arbitrary payloads.
    #[test]
    fn packets_round_trip(data in prop::collection::vec(any::<u8>(), 0..200_000)) {
        let packets = packetize(&data);
        for p in &packets {
            p.verify().unwrap();
        }
        prop_assert_eq!(reassemble(&packets).unwrap(), data);
    }

    /// Any single-byte corruption is caught by the chunk checksums.
    #[test]
    fn checksums_detect_any_flip(
        mut data in prop::collection::vec(any::<u8>(), 1..8192),
        at in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let sums = chunk_checksums(&data);
        let i = at.index(data.len());
        data[i] ^= 1 << bit;
        prop_assert!(verify_chunks(&data, &sums).is_err());
    }

    /// Dates round-trip through the text format for the whole supported
    /// range.
    #[test]
    fn dates_round_trip(days in -700_000..2_900_000i32) {
        let s = Value::Date(days).to_string();
        let back = hail::types::value::parse_date(&s).unwrap();
        prop_assert_eq!(back, days);
    }
}
