//! Randomized property tests over the storage layer: PAX round trips,
//! sort permutations, packet framing, checksum detection, and the
//! clustered index against a linear-scan oracle.
//!
//! (Formerly proptest-based; the offline build vendors no proptest, so
//! the cases are driven by the workspace's deterministic `rand` stub.)

use hail::index::{ClusteredIndex, KeyBounds};
use hail::pax::{
    blocks_from_text, chunk_checksums, packetize, reassemble, sort_block, verify_chunks,
};
use hail::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::ops::Bound;

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("key", DataType::Int),
        Field::new("tag", DataType::VarChar),
        Field::new("weight", DataType::Float),
    ])
    .unwrap()
}

/// A vector of (key, tag, weight) rows with printable tags.
fn random_rows(rng: &mut StdRng) -> Vec<(i32, String, f64)> {
    let n = rng.random_range(1..200usize);
    (0..n)
        .map(|_| {
            let len = rng.random_range(0..13usize);
            let tag: String = (0..len)
                .map(|_| (b'a' + rng.random_range(0..26u8)) as char)
                .collect();
            (
                rng.random_range(-5000..5000i32),
                tag,
                rng.random_range(0.0..1e6),
            )
        })
        .collect()
}

fn to_text(rows: &[(i32, String, f64)]) -> String {
    rows.iter()
        .map(|(k, t, w)| format!("{k}|{t}|{w}\n"))
        .collect()
}

/// Rows → PAX block → rows is the identity.
#[test]
fn pax_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x9A_0CAF);
    for case in 0..64 {
        let rows = random_rows(&mut rng);
        let partition = rng.random_range(1..64usize);
        let mut storage = StorageConfig::test_scale(1 << 30);
        storage.index_partition_size = partition;
        let blocks = blocks_from_text(&to_text(&rows), &schema(), &storage).unwrap();
        assert_eq!(blocks.len(), 1, "case {case}");
        let b = &blocks[0];
        assert_eq!(b.row_count(), rows.len(), "case {case}");
        for (i, (k, t, w)) in rows.iter().enumerate() {
            let row = b.reconstruct_full(i).unwrap();
            assert_eq!(row.get(0).unwrap().as_i32(), Some(*k));
            assert_eq!(row.get(1).unwrap().as_str(), Some(t.as_str()));
            let got = row.get(2).unwrap().as_f64().unwrap();
            // Values go through text formatting; compare via re-parse.
            let expected: f64 = format!("{w}").parse().unwrap();
            assert_eq!(got, expected);
        }
    }
}

/// Sorting a block on any column yields sorted keys and preserves the
/// multiset of rows.
#[test]
fn sort_preserves_rows() {
    let mut rng = StdRng::seed_from_u64(0x50_127);
    for case in 0..48 {
        let rows = random_rows(&mut rng);
        let col = rng.random_range(0..3usize);
        let storage = StorageConfig::test_scale(1 << 30);
        let blocks = blocks_from_text(&to_text(&rows), &schema(), &storage).unwrap();
        let (sorted, perm) = sort_block(&blocks[0], col).unwrap();
        // perm is a permutation.
        let mut seen = vec![false; rows.len()];
        for &p in &perm {
            assert!(!seen[p], "case {case}");
            seen[p] = true;
        }
        // Keys ascend.
        for i in 1..sorted.row_count() {
            let a = sorted.value(col, i - 1).unwrap();
            let b = sorted.value(col, i).unwrap();
            assert!(a <= b, "case {case}");
        }
        // Row multiset unchanged.
        let mut before: Vec<String> = (0..rows.len())
            .map(|i| blocks[0].reconstruct_full(i).unwrap().to_string())
            .collect();
        let mut after: Vec<String> = (0..rows.len())
            .map(|i| sorted.reconstruct_full(i).unwrap().to_string())
            .collect();
        before.sort();
        after.sort();
        assert_eq!(before, after, "case {case}");
    }
}

/// Index lookup over sorted keys finds exactly the rows a linear scan
/// finds (the index may over-approximate partitions, never
/// under-approximate rows).
#[test]
fn clustered_index_complete() {
    let mut rng = StdRng::seed_from_u64(0x1DE_CAFE);
    for case in 0..64 {
        let n = rng.random_range(1..500usize);
        let mut keys: Vec<i32> = (0..n).map(|_| rng.random_range(-1000..1000i32)).collect();
        keys.sort_unstable();
        let partition = rng.random_range(1..64usize);
        let lo = rng.random_range(-1100..1100i32);
        let hi = lo.saturating_add(rng.random_range(0..300i32));
        let values: Vec<Value> = keys.iter().map(|&k| Value::Int(k)).collect();
        let idx = ClusteredIndex::build(0, DataType::Int, partition, &values).unwrap();
        let bounds = KeyBounds::between(Value::Int(lo), Value::Int(hi));
        let expected: Vec<usize> = keys
            .iter()
            .enumerate()
            .filter(|(_, &k)| k >= lo && k <= hi)
            .map(|(i, _)| i)
            .collect();
        match idx.lookup(&bounds) {
            None => assert!(
                expected.is_empty(),
                "case {case}: lookup missed {} rows",
                expected.len()
            ),
            Some((first, last)) => {
                let range = idx.partition_rows(first, last);
                for &row in &expected {
                    assert!(
                        range.contains(&row),
                        "case {case}: row {row} outside {range:?}"
                    );
                }
            }
        }
    }
}

/// Exclusive bounds behave identically to a linear scan.
#[test]
fn clustered_index_exclusive_bounds() {
    let mut rng = StdRng::seed_from_u64(0xEC5);
    for case in 0..48 {
        let n = rng.random_range(1..300usize);
        let mut keys: Vec<i32> = (0..n).map(|_| rng.random_range(0..200i32)).collect();
        keys.sort_unstable();
        let partition = rng.random_range(1..32usize);
        let pivot = rng.random_range(0..200i32);
        let values: Vec<Value> = keys.iter().map(|&k| Value::Int(k)).collect();
        let idx = ClusteredIndex::build(0, DataType::Int, partition, &values).unwrap();
        let bounds = KeyBounds {
            lo: Bound::Excluded(Value::Int(pivot)),
            hi: Bound::Unbounded,
        };
        let expected = keys.iter().filter(|&&k| k > pivot).count();
        let covered = match idx.lookup(&bounds) {
            None => 0,
            Some((f, l)) => idx
                .partition_rows(f, l)
                .filter(|&r| keys[r] > pivot)
                .count(),
        };
        assert_eq!(covered, expected, "case {case}");
    }
}

/// Intersecting two random bound pairs never admits a value both
/// original bounds reject.
#[test]
fn bounds_intersection_sound() {
    let mut rng = StdRng::seed_from_u64(0xB0B);
    for _ in 0..256 {
        let (mut a, mut b) = (
            rng.random_range(-100..100i32),
            rng.random_range(-100..100i32),
        );
        let (mut c, mut d) = (
            rng.random_range(-100..100i32),
            rng.random_range(-100..100i32),
        );
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        if c > d {
            std::mem::swap(&mut c, &mut d);
        }
        let probe = rng.random_range(-150..150i32);
        let x = KeyBounds::between(Value::Int(a), Value::Int(b));
        let y = KeyBounds::between(Value::Int(c), Value::Int(d));
        let both = x.intersect(&y);
        let v = Value::Int(probe);
        assert_eq!(both.contains(&v), x.contains(&v) && y.contains(&v));
    }
}

/// Packetize → reassemble is the identity for arbitrary payloads.
#[test]
fn packets_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x9AC_4E7);
    for case in 0..16 {
        let n = rng.random_range(0..200_000usize);
        let data: Vec<u8> = (0..n).map(|_| rng.random_range(0..256u32) as u8).collect();
        let packets = packetize(&data);
        for p in &packets {
            p.verify().unwrap();
        }
        assert_eq!(reassemble(&packets).unwrap(), data, "case {case}");
    }
}

/// Any single-byte corruption is caught by the chunk checksums.
#[test]
fn checksums_detect_any_flip() {
    let mut rng = StdRng::seed_from_u64(0xC4EC);
    for case in 0..64 {
        let n = rng.random_range(1..8192usize);
        let mut data: Vec<u8> = (0..n).map(|_| rng.random_range(0..256u32) as u8).collect();
        let sums = chunk_checksums(&data);
        let i = rng.random_range(0..data.len());
        let bit = rng.random_range(0..8u8);
        data[i] ^= 1 << bit;
        assert!(verify_chunks(&data, &sums).is_err(), "case {case}");
    }
}

/// Dates round-trip through the text format for the whole supported
/// range.
#[test]
fn dates_round_trip() {
    let mut rng = StdRng::seed_from_u64(0xDA7E5);
    for _ in 0..512 {
        let days = rng.random_range(-700_000..2_900_000i32);
        let s = Value::Date(days).to_string();
        let back = hail::types::value::parse_date(&s).unwrap();
        assert_eq!(back, days);
    }
}
