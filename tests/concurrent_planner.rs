//! Concurrency stress tests for the cross-query planner state: many
//! threads hammer `plan_block` (and full `read_split`s) through one
//! shared `PlanCache` + `SelectivityFeedback` while death-log evictions
//! and feedback absorption run against them.
//!
//! The properties under test (satellite of the parallel-executor
//! change):
//!
//! - **No lost evictions.** Every death in the log evicts every entry
//!   whose fingerprint involved the dead datanode, exactly once, no
//!   matter how many sync calls race or how many lookups interleave.
//! - **Counter consistency.** Each cache lookup counts as exactly one
//!   hit or one miss, so `hits + misses` equals the number of lookups
//!   issued across all threads.
//! - **Atomic absorption.** Feedback batches land whole; the final
//!   observation count equals exactly what was fed in.
//! - **Correctness under contention.** Plans served during the storm
//!   equal what a stateless planner computes.

use hail::exec::{BlockFingerprint, BlockPlan, FilterShape, FullScan, PlannerConfig, ScanLayout};
use hail::mr::TaskStats;
use hail::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::VarChar),
    ])
    .unwrap()
}

fn setup(rows: usize) -> (DfsCluster, Dataset) {
    let mut storage = StorageConfig::test_scale(4 * 1024);
    storage.index_partition_size = 16;
    let mut cluster = DfsCluster::new(4, storage);
    let text: String = (0..rows)
        .map(|i| format!("{}|w{i}\n", (i * 7) % 500))
        .collect();
    let dataset = upload_hail(
        &mut cluster,
        &schema(),
        "t",
        &[(0, text)],
        &ReplicaIndexConfig::first_indexed(3, &[0]),
    )
    .unwrap();
    (cluster, dataset)
}

/// A minimal block plan for seeding doomed cache entries; its contents
/// never execute.
fn dummy_plan(block: u64) -> BlockPlan {
    BlockPlan {
        block,
        replica: 0,
        path: Arc::new(FullScan::new(ScanLayout::HailPax)),
        kind: AccessPathKind::FullScan,
        est_seconds: 0.0,
        locations: vec![0],
        candidates: Vec::new(),
        fallback: false,
        sidecar_bytes: None,
        cached: false,
        selectivity: Vec::new(),
        pruned: None,
    }
}

/// The stress test: planner threads hammer `plan_block` while two
/// racing death threads drain a 20-death log and a feedback thread
/// absorbs observation batches — all against one shared cache/store.
#[test]
fn plan_block_vs_death_evictions_and_feedback_absorption() {
    let (cluster, dataset) = setup(2000);
    let cache = Arc::new(PlanCache::with_capacity(1 << 16));
    let feedback = Arc::new(SelectivityFeedback::default());
    let query = HailQuery::parse("@1 between(40, 90)", "{@2}", &schema()).unwrap();

    // Seed doomed entries: synthetic blocks (ids far above the real
    // dataset's) whose fingerprints involve datanodes 10..30 — the ones
    // the death log will declare dead. Disjoint keys from anything the
    // planner threads touch, so evictions and inserts interleave freely.
    let doomed_nodes: Vec<usize> = (10..30).collect();
    let shape = FilterShape::of(
        DatasetFormat::HailPax,
        &query,
        None,
        &[(0, 0.05)],
        0xdead_beef,
    );
    let mut doomed_entries = 0u64;
    for (i, &dn) in doomed_nodes.iter().enumerate() {
        for j in 0..3u64 {
            let block = 1_000_000 + (i as u64) * 8 + j;
            let fingerprint = BlockFingerprint {
                digest: 0x1234_5678 ^ block,
                datanodes: vec![dn],
            };
            cache.insert(&shape, block, fingerprint, dummy_plan(block));
            doomed_entries += 1;
        }
    }
    assert_eq!(cache.len() as u64, doomed_entries);

    const PLANNERS: usize = 4;
    const ROUNDS: usize = 30;
    const FEEDBACK_BATCHES: u64 = 50;
    const OBS_PER_BATCH: u64 = 4;
    let lookups_issued = AtomicU64::new(0);
    let death_log: Vec<usize> = doomed_nodes.clone();

    std::thread::scope(|scope| {
        // Planner threads: repeated full-dataset planning through the
        // shared cache (one lookup per block per plan).
        for _ in 0..PLANNERS {
            scope.spawn(|| {
                let config = PlannerConfig {
                    plan_cache: Some(Arc::clone(&cache)),
                    feedback: Some(Arc::clone(&feedback)),
                    ..Default::default()
                };
                let planner = QueryPlanner::with_config(&cluster, config);
                for _ in 0..ROUNDS {
                    let plan = planner.plan_dataset(&dataset, &query).unwrap();
                    assert_eq!(plan.blocks.len(), dataset.blocks.len());
                    lookups_issued.fetch_add(plan.blocks.len() as u64, Ordering::Relaxed);
                }
            });
        }
        // Two racing death threads feed growing prefixes of the same
        // log; the seen-cursor must process each death exactly once.
        for _ in 0..2 {
            scope.spawn(|| {
                for k in 1..=death_log.len() {
                    cache.sync_deaths(&death_log[..k]);
                    std::thread::yield_now();
                }
            });
        }
        // Feedback absorption in batches.
        scope.spawn(|| {
            for _ in 0..FEEDBACK_BATCHES {
                let stats = TaskStats {
                    selectivity: (0..OBS_PER_BATCH)
                        .map(|_| SelectivityObservation {
                            column: 0,
                            eq: false,
                            matched: 100,
                            total: 1000,
                        })
                        .collect(),
                    ..Default::default()
                };
                feedback.absorb(&stats);
                std::thread::yield_now();
            }
        });
    });

    // No lost evictions: every doomed entry is gone, exactly once.
    for &dn in &doomed_nodes {
        assert_eq!(
            cache.entries_involving(dn),
            0,
            "entries referencing dead DN{dn} survived the sync"
        );
    }
    let stats = cache.stats();
    assert_eq!(
        stats.evictions, doomed_entries,
        "each doomed entry evicted exactly once (no capacity pressure)"
    );

    // Counter consistency: planner lookups all counted exactly once.
    // (The doomed entries were never looked up, so planner threads are
    // the only lookup source.)
    assert_eq!(
        stats.hits + stats.misses,
        lookups_issued.load(Ordering::Relaxed),
        "every lookup is exactly one hit or one miss"
    );
    assert!(stats.hits > 0, "warm rounds must hit");

    // Atomic absorption: exactly the fed batches landed.
    assert_eq!(
        feedback.observation_count(0, false),
        FEEDBACK_BATCHES * OBS_PER_BATCH
    );

    // Correctness under contention: what the cache now serves equals a
    // stateless pricing pass under the same (post-feedback) estimates.
    let adapted = PlannerConfig {
        plan_cache: Some(Arc::clone(&cache)),
        feedback: Some(Arc::clone(&feedback)),
        ..Default::default()
    };
    let cached_plan = QueryPlanner::with_config(&cluster, adapted)
        .plan_dataset(&dataset, &query)
        .unwrap();
    let stateless = PlannerConfig {
        feedback: Some(Arc::clone(&feedback)),
        ..Default::default()
    };
    let fresh_plan = QueryPlanner::with_config(&cluster, stateless)
        .plan_dataset(&dataset, &query)
        .unwrap();
    for (a, b) in cached_plan.blocks.iter().zip(&fresh_plan.blocks) {
        assert_eq!(a.block, b.block);
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.replica, b.replica);
        assert_eq!(a.est_seconds, b.est_seconds);
    }
}

/// Whole `read_split`s racing through one shared adaptive state: the
/// total records across threads equal the serial total, and the
/// per-split cache attribution (hits + misses per task) covers every
/// block exactly once.
#[test]
fn concurrent_read_splits_share_adaptive_state() {
    let (cluster, dataset) = setup(4000);
    let query = HailQuery::parse("@1 between(40, 90)", "{@2}", &schema()).unwrap();
    let cache = Arc::new(PlanCache::default());
    let feedback = Arc::new(SelectivityFeedback::default());
    let format = HailInputFormat::new(dataset.clone(), query.clone()).with_planner(PlannerConfig {
        plan_cache: Some(Arc::clone(&cache)),
        feedback: Some(Arc::clone(&feedback)),
        ..Default::default()
    });
    let plan = format.splits(&cluster, &dataset.blocks).unwrap();
    assert!(plan.splits.len() >= 2);

    // Serial oracle.
    let mut serial_records = 0u64;
    for split in &plan.splits {
        let stats = format
            .read_split(&cluster, split, split.locations[0], &mut |_| {})
            .unwrap();
        serial_records += stats.records;
    }
    cache.clear();
    feedback.clear();
    // `clear` keeps the effectiveness counters: snapshot them so the
    // parallel phase is measured as a delta.
    let before = cache.stats();

    // All splits at once, each read on its own thread.
    let totals: Vec<TaskStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = plan
            .splits
            .iter()
            .map(|split| {
                let format = &format;
                let cluster = &cluster;
                scope.spawn(move || {
                    format
                        .read_split(cluster, split, split.locations[0], &mut |_| {})
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let parallel_records: u64 = totals.iter().map(|t| t.records).sum();
    assert_eq!(parallel_records, serial_records);
    // Per-task attribution sums to one lookup per block, regardless of
    // which thread's read warmed the cache for another.
    let attributed: u64 = totals
        .iter()
        .map(|t| t.plan_cache_hits + t.plan_cache_misses)
        .sum();
    assert_eq!(attributed, dataset.blocks.len() as u64);
    let stats = cache.stats();
    assert_eq!(
        (stats.hits + stats.misses) - (before.hits + before.misses),
        dataset.blocks.len() as u64
    );
}
