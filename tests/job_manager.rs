//! Multi-job serving end to end: the `JobManager` admitting ~200
//! queued Bob/Synthetic queries at concurrency 1/2/4 over one shared
//! `PlanCache`/`JobPool`, with per-job results bit-for-bit identical
//! to solo runs at every interleaving.
//!
//! Covers the acceptance criteria of the multi-job change:
//!
//! - per-job **output** identical to a solo run at concurrency 1/2/4
//!   (cross-job cache sharing may only change counters, never rows);
//! - for jobs with pairwise-distinct filter shapes, the whole
//!   **report** (modulo measured wall clock and queue wait) is
//!   identical to a solo run;
//! - peak memory stays O(chunk) per in-flight job: no
//!   `read_split_batch` call ever exceeds `SPLIT_BATCH_CHUNK` splits,
//!   managed or not;
//! - one shared plan cache serves strictly more hits than per-job
//!   private caches;
//! - failover under concurrency: a mid-job node death, then ≥4
//!   concurrent jobs over the degraded cluster, still bit-for-bit
//!   against solo runs on that cluster.

use hail::prelude::*;
use hail_bench::{
    make_shared_format, run_queries_managed, setup_hail, uv_testbed, ExperimentScale,
    SharedJobInfra, SystemSetup,
};
use hail_mr::{InputSplit, JobReport, JobRun, SplitContext, SplitPlan, SplitRead, SplitTask};
use std::sync::atomic::{AtomicUsize, Ordering};

const CONCURRENCIES: [usize; 3] = [1, 2, 4];

fn uv_setup(rows_per_node: usize, blocks_per_node: usize) -> (hail_bench::Testbed, SystemSetup) {
    let scale = ExperimentScale::query(4, rows_per_node)
        .with_blocks_per_node(blocks_per_node)
        .with_partition_size(64);
    let tb = uv_testbed(scale, HardwareProfile::physical());
    let setup = setup_hail(&tb, &[2, 0, 3]).unwrap(); // visitDate, sourceIP, adRevenue
    (tb, setup)
}

fn syn_setup(rows_per_node: usize, blocks_per_node: usize) -> (hail_bench::Testbed, SystemSetup) {
    let scale = ExperimentScale::query(4, rows_per_node)
        .with_blocks_per_node(blocks_per_node)
        .with_partition_size(64);
    let tb = hail_bench::syn_testbed(scale, HardwareProfile::physical());
    let setup = setup_hail(&tb, &[0, 1, 2]).unwrap();
    (tb, setup)
}

/// A solo run with private infrastructure — its own cache and pool —
/// the baseline every managed job must reproduce bit-for-bit.
fn solo(setup: &SystemSetup, spec: &ClusterSpec, query: &HailQuery, splitting: bool) -> JobRun {
    let infra = SharedJobInfra::for_jobs(1);
    let format = make_shared_format(setup, spec, query, splitting, &infra);
    let job = MapJob::collecting("solo", setup.dataset.blocks.clone(), format.as_ref());
    run_map_job(&setup.cluster, spec, &job).unwrap()
}

/// Bob-style UserVisits query variants: the five paper queries' filter
/// families with varying literals. Cycles with period 25, so a batch
/// of 100 holds 25 unique queries, each queued four times.
fn uv_queries(n: usize, schema: &Schema) -> Vec<HailQuery> {
    (0..n)
        .map(|i| {
            let k = i % 25;
            match k % 5 {
                0 => HailQuery::parse(
                    &format!("@4 >= {} and @4 <= {}", k, k + 40),
                    "{@8, @9, @4}",
                    schema,
                ),
                1 => HailQuery::parse(
                    &format!("@3 between(19{:02}-01-01, 2000-01-01)", 90 + (k % 10)),
                    "{@1}",
                    schema,
                ),
                2 => HailQuery::parse(
                    &format!("@1 = '172.101.11.{}'", 40 + k),
                    "{@8, @9, @4}",
                    schema,
                ),
                3 => HailQuery::parse(&format!("@9 <= {}", 50 + 10 * k), "{@1, @9}", schema),
                _ => HailQuery::parse(&format!("@8 = 'searchword{}'", k % 7), "{@1, @8}", schema),
            }
            .unwrap()
        })
        .collect()
}

/// Synthetic query variants in the Table-1 style: selectivity and
/// projectivity sweeps on @1. Cycles with period 25.
fn syn_queries(n: usize, schema: &Schema) -> Vec<HailQuery> {
    let projections = ["", "{@1}", "{@1, @2, @3}", "{@1, @5, @9, @13}"];
    (0..n)
        .map(|i| {
            let k = i % 25;
            HailQuery::parse(
                &format!("@1 <= {}", 9 + 37 * k),
                projections[k % projections.len()],
                schema,
            )
            .unwrap()
        })
        .collect()
}

/// ~200 queued Bob/Synthetic queries through the manager at
/// concurrency 1/2/4: every job's output is bit-for-bit its solo
/// run's, and queue-wait telemetry surfaces for queued jobs.
#[test]
fn two_hundred_queries_match_solo_at_every_concurrency() {
    let (uv_tb, uv) = uv_setup(400, 4);
    let (syn_tb, syn) = syn_setup(300, 4);
    let uv_qs = uv_queries(100, &bob_schema());
    let syn_qs = syn_queries(100, &synthetic_schema());

    // Solo baselines, one per unique query.
    let uv_expected: Vec<JobRun> = uv_qs[..25]
        .iter()
        .map(|q| solo(&uv, &uv_tb.spec, q, true))
        .collect();
    let syn_expected: Vec<JobRun> = syn_qs[..25]
        .iter()
        .map(|q| solo(&syn, &syn_tb.spec, q, true))
        .collect();

    for conc in CONCURRENCIES {
        let manager = JobManager::new(conc);
        for (setup, spec, queries, expected) in [
            (&uv, &uv_tb.spec, &uv_qs, &uv_expected),
            (&syn, &syn_tb.spec, &syn_qs, &syn_expected),
        ] {
            let infra = SharedJobInfra::for_jobs(conc);
            let batch = run_queries_managed(setup, spec, queries, true, &manager, &infra).unwrap();
            assert_eq!(batch.summary.jobs, queries.len());
            let runs = batch.runs;
            assert_eq!(runs.len(), queries.len());
            for (i, run) in runs.iter().enumerate() {
                assert_eq!(
                    run.output,
                    expected[i % 25].output,
                    "concurrency {conc}, job {i}: managed output diverged from solo"
                );
                assert!(run.report.queue_wait_seconds >= 0.0);
            }
            // With one in-flight slot and 100 queued jobs, the tail of
            // the queue measurably waited.
            if conc == 1 {
                assert!(
                    runs.last().unwrap().report.queue_wait_seconds > 0.0,
                    "the last of 100 serially admitted jobs waited"
                );
            }
        }
    }
}

/// `JobReport` rendered with the measured-wall-clock fields and the
/// scan-sharing telemetry (the only fields allowed to vary between a
/// managed and a solo run — which reads attach to another job's decode
/// depends on real thread timing) zeroed.
fn report_modulo_wall(report: &JobReport) -> String {
    let mut r = report.clone();
    r.job_name = String::new(); // submitter-chosen label, not engine state
    r.queue_wait_seconds = 0.0;
    for t in &mut r.tasks {
        t.reader_wall_seconds = 0.0;
        t.stats.blocks_read_shared = 0;
        t.stats.shared_bytes_saved = 0;
    }
    format!("{r:?}")
}

/// Queries whose filter shapes are pairwise distinct (different column
/// sets or predicate classes), so no cross-job cache entry is ever
/// shared and the full determinism contract applies: output AND report
/// identical to solo, at any interleaving.
fn distinct_shape_queries(schema: &Schema) -> Vec<HailQuery> {
    [
        ("@3 between(1999-01-01, 2000-01-01)", "{@1}"),
        ("@1 = '172.101.11.46'", "{@8, @9, @4}"),
        ("@1 = '172.101.11.46' and @3 = 1992-12-22", "{@8, @9, @4}"),
        ("@4 >= 1 and @4 <= 10", "{@8, @9, @4}"),
        ("@8 = 'searchword3'", "{@1, @8}"),
        ("@9 <= 120", "{@1, @9}"),
        ("@4 >= 1 and @4 <= 10 and @9 <= 200", "{@4, @9}"),
        ("@1 = '172.101.11.46' and @4 <= 50", "{@1, @4}"),
    ]
    .iter()
    .map(|(f, p)| HailQuery::parse(f, p, schema).unwrap())
    .collect()
}

/// For distinct-shape jobs, managed runs reproduce the solo run's
/// whole report — every simulated figure, schedule entry, and cache
/// counter — not just the output, at every concurrency.
#[test]
fn distinct_shapes_reproduce_full_reports() {
    let (tb, setup) = uv_setup(500, 4);
    let queries = distinct_shape_queries(&bob_schema());
    let expected: Vec<JobRun> = queries
        .iter()
        .map(|q| solo(&setup, &tb.spec, q, true))
        .collect();
    for conc in CONCURRENCIES {
        let infra = SharedJobInfra::for_jobs(conc);
        let runs = run_queries_managed(
            &setup,
            &tb.spec,
            &queries,
            true,
            &JobManager::new(conc),
            &infra,
        )
        .unwrap()
        .runs;
        for (run, exp) in runs.iter().zip(&expected) {
            assert_eq!(run.output, exp.output, "concurrency {conc}: output");
            assert_eq!(
                report_modulo_wall(&run.report),
                report_modulo_wall(&exp.report),
                "concurrency {conc}: report must be bit-for-bit modulo wall clock"
            );
        }
    }
}

/// One shared plan cache across the batch serves strictly more hits
/// than the same jobs each warming a private cache: later same-shape
/// jobs reuse plans the first job priced.
#[test]
fn shared_cache_beats_private_caches() {
    let (tb, setup) = uv_setup(400, 4);
    let query =
        HailQuery::parse("@3 between(1999-01-01, 2000-01-01)", "{@1}", &bob_schema()).unwrap();
    let queries: Vec<HailQuery> = (0..40).map(|_| query.clone()).collect();

    // Baseline: each job with its own private cache.
    let mut private_hits = 0u64;
    let mut solo_output = None;
    for q in &queries {
        let infra = SharedJobInfra::for_jobs(1);
        let format = make_shared_format(&setup, &tb.spec, q, true, &infra);
        let job = MapJob::collecting("solo", setup.dataset.blocks.clone(), format.as_ref());
        let run = run_map_job(&setup.cluster, &tb.spec, &job).unwrap();
        private_hits += infra.plan_cache.stats().hits;
        solo_output.get_or_insert(run.output);
    }

    // Shared: one cache across all 40 jobs, four in flight. The first
    // job runs alone to warm the cache — on a cold cache, concurrent
    // identical jobs race to price the same shape before any insert
    // lands (a counter-only stampede; plans and outputs never differ),
    // which would make the evaluation count below timing-dependent.
    // No shared feedback either: absorbing the warm batch's evidence
    // would legitimately re-price every block once more, and this test
    // is pinning cache behavior, not feedback-driven re-pricing.
    let infra = SharedJobInfra::for_jobs(4).without_shared_feedback();
    let manager = JobManager::new(4);
    let mut runs = run_queries_managed(&setup, &tb.spec, &queries[..1], true, &manager, &infra)
        .unwrap()
        .runs;
    runs.extend(
        run_queries_managed(&setup, &tb.spec, &queries[1..], true, &manager, &infra)
            .unwrap()
            .runs,
    );
    let shared_hits = infra.plan_cache.stats().hits;
    assert!(
        shared_hits > private_hits,
        "shared cache must serve strictly more hits: shared {shared_hits} vs private {private_hits}"
    );
    // Sharing may only change counters — never rows.
    let solo_output = solo_output.unwrap();
    for run in &runs {
        assert_eq!(run.output, solo_output);
    }
    // And the repeat jobs priced nothing: total evaluations match what
    // one warm-up pass costs.
    let first_private = {
        let infra = SharedJobInfra::for_jobs(1);
        let format = make_shared_format(&setup, &tb.spec, &query, true, &infra);
        let job = MapJob::collecting("warm", setup.dataset.blocks.clone(), format.as_ref());
        run_map_job(&setup.cluster, &tb.spec, &job).unwrap();
        infra.plan_cache.stats().cost_evaluations
    };
    assert_eq!(infra.plan_cache.stats().cost_evaluations, first_private);
}

/// Failover under concurrency: a job survives a mid-run node death
/// (through the shared drive loop's re-evaluation and rerun passes),
/// then four concurrent jobs serve from the degraded cluster with
/// output and reports still bit-for-bit against solo runs on it.
#[test]
fn concurrent_jobs_on_a_degraded_cluster_match_solo() {
    let (tb, mut setup) = uv_setup(500, 4);
    let queries = distinct_shape_queries(&bob_schema());

    // Mid-job death: node 1 dies halfway through the first query.
    let failover = {
        let infra = SharedJobInfra::for_jobs(1);
        let format = make_shared_format(&setup, &tb.spec, &queries[0], true, &infra);
        let job = MapJob::collecting(
            "under-failure",
            setup.dataset.blocks.clone(),
            format.as_ref(),
        );
        run_map_job_with_failure(
            &mut setup.cluster,
            &tb.spec,
            &job,
            FailureScenario::at_half(1),
        )
        .unwrap()
    };
    assert!(setup.cluster.live_nodes().len() < 4, "the node stayed dead");
    let oracle = canonical(&oracle_eval(&tb.texts, &tb.schema, &queries[0]));
    assert_eq!(
        canonical(&failover.output),
        oracle,
        "failover must not lose or invent rows"
    );

    // Concurrent serving over the degraded cluster.
    let expected: Vec<JobRun> = queries
        .iter()
        .map(|q| solo(&setup, &tb.spec, q, true))
        .collect();
    let infra = SharedJobInfra::for_jobs(4);
    let runs = run_queries_managed(
        &setup,
        &tb.spec,
        &queries,
        true,
        &JobManager::new(4),
        &infra,
    )
    .unwrap()
    .runs;
    for (run, exp) in runs.iter().zip(&expected) {
        assert_eq!(run.output, exp.output, "degraded-cluster output diverged");
        assert_eq!(
            report_modulo_wall(&run.report),
            report_modulo_wall(&exp.report),
            "degraded-cluster report diverged"
        );
        // Every scheduled task avoided the dead node.
        for t in &run.report.tasks {
            assert_ne!(t.node, 1, "no task may be scheduled on a dead node");
        }
    }
}

/// Wraps a format and records the largest `read_split_batch` it is
/// ever handed — the O(chunk) memory-bound probe.
struct BatchRecordingFormat {
    inner: Box<dyn InputFormat>,
    max_batch: AtomicUsize,
    calls: AtomicUsize,
}

impl BatchRecordingFormat {
    fn new(inner: Box<dyn InputFormat>) -> Self {
        BatchRecordingFormat {
            inner,
            max_batch: AtomicUsize::new(0),
            calls: AtomicUsize::new(0),
        }
    }
}

impl InputFormat for BatchRecordingFormat {
    fn splits(&self, cluster: &DfsCluster, input: &[hail::types::BlockId]) -> Result<SplitPlan> {
        self.inner.splits(cluster, input)
    }

    fn read_split(
        &self,
        cluster: &DfsCluster,
        split: &InputSplit,
        task_node: hail::types::DatanodeId,
        emit: &mut dyn FnMut(MapRecord),
    ) -> Result<TaskStats> {
        self.inner.read_split(cluster, split, task_node, emit)
    }

    fn read_split_with(
        &self,
        cluster: &DfsCluster,
        split: &InputSplit,
        ctx: &SplitContext,
        emit: &mut dyn FnMut(MapRecord),
    ) -> Result<TaskStats> {
        self.inner.read_split_with(cluster, split, ctx, emit)
    }

    fn read_split_batch(
        &self,
        cluster: &DfsCluster,
        batch: &[SplitTask<'_>],
        job_parallelism: Option<usize>,
    ) -> Result<Vec<SplitRead>> {
        self.max_batch.fetch_max(batch.len(), Ordering::SeqCst);
        self.calls.fetch_add(1, Ordering::SeqCst);
        self.inner.read_split_batch(cluster, batch, job_parallelism)
    }

    fn estimate_split(&self, cluster: &DfsCluster, split: &InputSplit) -> Option<f64> {
        self.inner.estimate_split(cluster, split)
    }

    fn estimate_splits(&self, cluster: &DfsCluster, splits: &[InputSplit]) -> Option<Vec<f64>> {
        self.inner.estimate_splits(cluster, splits)
    }

    fn name(&self) -> &str {
        "batch-recording"
    }
}

/// Peak memory stays O(chunk) per in-flight job under the manager: a
/// job over >64 per-block splits never sees a `read_split_batch`
/// larger than `SPLIT_BATCH_CHUNK`, at concurrency 4 either.
#[test]
fn managed_jobs_keep_chunked_reads_bounded() {
    // Per-block splits (no HailSplitting) over 4 × 20 = 80 blocks, so
    // every job's drive loop must chunk: 80 > SPLIT_BATCH_CHUNK.
    let (tb, setup) = uv_setup(240, 20);
    assert!(setup.dataset.blocks.len() > SPLIT_BATCH_CHUNK);
    let query = HailQuery::parse("@9 <= 150", "{@1, @9}", &bob_schema()).unwrap();

    let infra = SharedJobInfra::for_jobs(4);
    let formats: Vec<BatchRecordingFormat> = (0..4)
        .map(|_| {
            BatchRecordingFormat::new(make_shared_format(&setup, &tb.spec, &query, false, &infra))
        })
        .collect();
    let jobs: Vec<MapJob<'_>> = formats
        .iter()
        .map(|f| {
            MapJob::collecting(
                "bounded",
                setup.dataset.blocks.clone(),
                f as &dyn InputFormat,
            )
        })
        .collect();
    let runs = JobManager::new(4).run_batch(&setup.cluster, &tb.spec, &jobs);
    let expected = solo(&setup, &tb.spec, &query, false);
    for run in runs {
        assert_eq!(run.unwrap().output, expected.output);
    }
    for f in &formats {
        let max = f.max_batch.load(Ordering::SeqCst);
        assert!(
            max > 0 && max <= SPLIT_BATCH_CHUNK,
            "chunk bound violated: {max}"
        );
        assert!(
            f.calls.load(Ordering::SeqCst) >= setup.dataset.blocks.len() / SPLIT_BATCH_CHUNK,
            "the drive loop actually chunked"
        );
    }
}
