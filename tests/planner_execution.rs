//! The planner layer end to end: all five Bob query families and all
//! six Synthetic queries, on all three systems (Hadoop, Hadoop++,
//! HAIL), execute through `QueryPlanner::plan` → `AccessPath::execute`,
//! and the per-block access-path choices reproduce the oracle
//! evaluator's row output exactly.

use hail::exec::{PlannerConfig, QueryPlanner, SelectivityEstimate};
use hail::prelude::*;
use hail::workloads::QuerySpec;

fn storage() -> StorageConfig {
    let mut s = StorageConfig::test_scale(4 * 1024);
    s.index_partition_size = 8;
    s
}

struct System {
    name: &'static str,
    cluster: DfsCluster,
    dataset: Dataset,
}

fn systems(schema: &Schema, texts: &[(usize, String)], hail_cols: &[usize]) -> Vec<System> {
    let spec = ClusterSpec::new(3, HardwareProfile::physical());

    let mut hadoop_cluster = DfsCluster::new(3, storage());
    let hadoop = upload_hadoop(&mut hadoop_cluster, schema, "d", texts).unwrap();

    let mut hail_cluster = DfsCluster::new(3, storage());
    let hail = upload_hail(
        &mut hail_cluster,
        schema,
        "d",
        texts,
        &ReplicaIndexConfig::first_indexed(3, hail_cols),
    )
    .unwrap();

    let mut hpp_cluster = DfsCluster::new(3, storage());
    let (hpp, _) = upload_hadoop_plus_plus(
        &mut hpp_cluster,
        &spec,
        schema,
        "d",
        texts,
        Some(hail_cols[0]),
    )
    .unwrap();

    vec![
        System {
            name: "Hadoop",
            cluster: hadoop_cluster,
            dataset: hadoop,
        },
        System {
            name: "HAIL",
            cluster: hail_cluster,
            dataset: hail,
        },
        System {
            name: "Hadoop++",
            cluster: hpp_cluster,
            dataset: hpp,
        },
    ]
}

/// Plans a query, executes every block through its chosen access path,
/// and returns (rows, plan histogram, fallback flag).
fn run_through_planner(
    system: &System,
    schema: &Schema,
    spec: &QuerySpec,
) -> (
    Vec<Row>,
    std::collections::BTreeMap<AccessPathKind, usize>,
    bool,
) {
    let query = spec.to_query(schema).unwrap();
    let mut est = SelectivityEstimate::uniform(0.05);
    for c in query.filter_columns() {
        est = est.with_column(c, spec.paper_selectivity);
    }
    let planner = QueryPlanner::with_config(
        &system.cluster,
        PlannerConfig {
            estimate: est,
            ..Default::default()
        },
    );
    let plan = planner.plan_dataset(&system.dataset, &query).unwrap();
    assert_eq!(plan.blocks.len(), system.dataset.blocks.len());

    let mut rows = Vec::new();
    let mut fell_back = false;
    for &b in &system.dataset.blocks {
        let stats = planner
            .execute_block(&plan, b, 0, schema, &query, &mut |r| {
                if !r.bad {
                    rows.push(r.row);
                }
            })
            .unwrap();
        fell_back |= stats.fell_back_to_scan;
        // Exactly one access path served this block, and it is the one
        // the plan chose.
        assert_eq!(stats.paths.total(), 1, "{}: block {b}", system.name);
        assert_eq!(
            stats.paths.get(plan.block_plan(b).unwrap().kind),
            1,
            "{}: block {b} executed a different path than planned",
            system.name
        );
    }
    (rows, plan.path_histogram(), fell_back)
}

#[test]
fn bob_queries_execute_through_planner_on_all_systems() {
    let schema = bob_schema();
    let texts = UserVisitsGenerator::default().generate(3, 1200);
    // visitDate, sourceIP, adRevenue — Bob's §6.4.1 configuration.
    // Hadoop++'s single trojan index goes to the first column.
    let hpp_key = 2usize;
    let systems = systems(&schema, &texts, &[hpp_key, 0, 3]);

    for spec in bob_queries() {
        let query = spec.to_query(&schema).unwrap();
        let expected = canonical(&oracle_eval(&texts, &schema, &query));
        for system in &systems {
            let (rows, histogram, fell_back) = run_through_planner(system, &schema, &spec);
            assert_eq!(
                canonical(&rows),
                expected,
                "{}: {} output must match the oracle exactly",
                system.name,
                spec.id
            );
            match system.name {
                // Text blocks can only be scanned.
                "Hadoop" => {
                    assert_eq!(
                        histogram.keys().collect::<Vec<_>>(),
                        vec![&AccessPathKind::FullScan]
                    )
                }
                // Every Bob filter column is indexed on some replica.
                "HAIL" => {
                    assert_eq!(
                        histogram.keys().collect::<Vec<_>>(),
                        vec![&AccessPathKind::ClusteredIndexScan],
                        "{}: {histogram:?}",
                        spec.id
                    );
                    assert!(!fell_back, "{}", spec.id);
                }
                // Hadoop++ has one trojan key; queries filtering any
                // other column full-scan.
                _ => {
                    let q = spec.to_query(&schema).unwrap();
                    if q.filter_columns().contains(&hpp_key) {
                        assert_eq!(
                            histogram.keys().collect::<Vec<_>>(),
                            vec![&AccessPathKind::TrojanIndexScan],
                            "{}",
                            spec.id
                        );
                    } else {
                        assert_eq!(
                            histogram.keys().collect::<Vec<_>>(),
                            vec![&AccessPathKind::FullScan],
                            "{}",
                            spec.id
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn synthetic_queries_execute_through_planner_on_all_systems() {
    let schema = synthetic_schema();
    let texts = SyntheticGenerator::default().generate(3, 900);
    let systems = systems(&schema, &texts, &[0, 1, 2]);

    for spec in synthetic_queries() {
        let query = spec.to_query(&schema).unwrap();
        let expected = canonical(&oracle_eval(&texts, &schema, &query));
        assert!(!expected.is_empty(), "{}", spec.id);
        for system in &systems {
            let (rows, histogram, _) = run_through_planner(system, &schema, &spec);
            assert_eq!(
                canonical(&rows),
                expected,
                "{}: {} output must match the oracle exactly",
                system.name,
                spec.id
            );
            // All Syn queries filter @1, which HAIL and Hadoop++ index.
            let expected_kind = match system.name {
                "Hadoop" => AccessPathKind::FullScan,
                "HAIL" => AccessPathKind::ClusteredIndexScan,
                _ => AccessPathKind::TrojanIndexScan,
            };
            assert_eq!(
                histogram.keys().collect::<Vec<_>>(),
                vec![&expected_kind],
                "{}: {}",
                system.name,
                spec.id
            );
        }
    }
}

/// The scheduler path: running the same queries through the input
/// formats reports per-path counts consistent with the plan, and the
/// job output still matches the oracle.
#[test]
fn job_reports_expose_planner_choices() {
    let schema = bob_schema();
    let texts = UserVisitsGenerator::default().generate(3, 800);
    let spec = ClusterSpec::new(3, HardwareProfile::physical());

    let mut cluster = DfsCluster::new(3, storage());
    let dataset = upload_hail(
        &mut cluster,
        &schema,
        "uv",
        &texts,
        &ReplicaIndexConfig::first_indexed(3, &[2, 0, 3]),
    )
    .unwrap();

    let query = bob_queries()[0].to_query(&schema).unwrap();
    let format = HailInputFormat::new(dataset.clone(), query.clone());
    let job = MapJob::collecting("q1", dataset.blocks.clone(), &format);
    let run = run_map_job(&cluster, &spec, &job).unwrap();

    let expected = canonical(&oracle_eval(&texts, &schema, &query));
    assert_eq!(canonical(&run.output), expected);

    let counts = run.report.path_counts();
    assert_eq!(
        counts.get(AccessPathKind::ClusteredIndexScan),
        dataset.blocks.len() as u64,
        "every block index-served: {counts}"
    );
    assert_eq!(counts.get(AccessPathKind::FullScan), 0);
    assert_eq!(run.report.fallback_count(), 0);
}
