//! Property tests over the whole query pipeline: for arbitrary data and
//! arbitrary range predicates, the HAIL index path, the HAIL scan path,
//! the Hadoop text path, and the oracle all agree; splitting policies
//! partition the input exactly.

use hail::core::{default_splits, hail_splits};
use hail::prelude::*;
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("name", DataType::VarChar),
        Field::new("v", DataType::Int),
    ])
    .unwrap()
}

fn storage() -> StorageConfig {
    let mut s = StorageConfig::test_scale(256);
    s.index_partition_size = 4;
    s
}

fn rows_strategy() -> impl Strategy<Value = Vec<(i32, String, i32)>> {
    prop::collection::vec((0..500i32, "[a-z]{1,6}", -100..100i32), 10..250)
}

fn to_text(rows: &[(i32, String, i32)]) -> String {
    rows.iter().map(|(k, n, v)| format!("{k}|{n}|{v}\n")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Index path ≡ scan path ≡ Hadoop ≡ oracle for random range queries.
    #[test]
    fn all_paths_agree(rows in rows_strategy(), lo in 0..500i32, len in 0..200i32) {
        let schema = schema();
        let texts = vec![(0usize, to_text(&rows))];
        let spec = ClusterSpec::new(3, HardwareProfile::physical());
        let hi = lo.saturating_add(len);
        let query = HailQuery::parse(
            &format!("@1 between({lo}, {hi})"),
            "{@2, @1}",
            &schema,
        ).unwrap();
        let expected = canonical(&oracle_eval(&texts, &schema, &query));

        // HAIL with an index on @1.
        let mut hail_cluster = DfsCluster::new(3, storage());
        let hail = upload_hail(
            &mut hail_cluster, &schema, "d", &texts,
            &ReplicaIndexConfig::first_indexed(3, &[0]),
        ).unwrap();
        let format = HailInputFormat::new(hail.clone(), query.clone());
        let job = MapJob::collecting("q", hail.blocks.clone(), &format);
        let via_index = run_map_job(&hail_cluster, &spec, &job).unwrap();
        prop_assert_eq!(canonical(&via_index.output), expected.clone());

        // HAIL with no index at all → scan path.
        let mut scan_cluster = DfsCluster::new(3, storage());
        let unindexed = upload_hail(
            &mut scan_cluster, &schema, "d", &texts,
            &ReplicaIndexConfig::unindexed(3),
        ).unwrap();
        let format = HailInputFormat::new(unindexed.clone(), query.clone());
        let job = MapJob::collecting("q", unindexed.blocks.clone(), &format);
        let via_scan = run_map_job(&scan_cluster, &spec, &job).unwrap();
        prop_assert_eq!(canonical(&via_scan.output), expected.clone());

        // Hadoop text.
        let mut text_cluster = DfsCluster::new(3, storage());
        let text_ds = upload_hadoop(&mut text_cluster, &schema, "d", &texts).unwrap();
        let format = HadoopInputFormat::new(text_ds.clone(), query.clone());
        let job = MapJob::collecting("q", text_ds.blocks.clone(), &format);
        let via_text = run_map_job(&text_cluster, &spec, &job).unwrap();
        prop_assert_eq!(canonical(&via_text.output), expected);
    }

    /// Both splitting policies cover every block exactly once.
    #[test]
    fn splitting_partitions_input(rows in rows_strategy(), slots in 1usize..4) {
        let schema = schema();
        let texts = vec![(0usize, to_text(&rows)), (1, to_text(&rows))];
        let mut cluster = DfsCluster::new(3, storage());
        let ds = upload_hail(
            &mut cluster, &schema, "d", &texts,
            &ReplicaIndexConfig::first_indexed(3, &[0]),
        ).unwrap();
        let query = HailQuery::parse("@1 <= 250", "", &schema).unwrap();

        for plan in [
            default_splits(&cluster, &ds.blocks).unwrap(),
            hail_splits(&cluster, &ds.blocks, &query, slots).unwrap(),
        ] {
            let mut covered: Vec<_> = plan.splits.iter().flat_map(|s| s.blocks.clone()).collect();
            covered.sort_unstable();
            let mut expected = ds.blocks.clone();
            expected.sort_unstable();
            prop_assert_eq!(covered, expected);
            for split in &plan.splits {
                prop_assert!(!split.locations.is_empty());
            }
        }
    }

    /// Conjunctive predicates: intersected index bounds never lose rows.
    #[test]
    fn conjunction_correct(rows in rows_strategy(), a in 0..500i32, b in 0..500i32) {
        let schema = schema();
        let (lo, hi) = (a.min(b), a.max(b));
        let texts = vec![(0usize, to_text(&rows))];
        let query = HailQuery::parse(
            &format!("@1 >= {lo} and @1 <= {hi} and @3 >= 0"),
            "{@1, @3}",
            &schema,
        ).unwrap();
        let expected = canonical(&oracle_eval(&texts, &schema, &query));

        let mut cluster = DfsCluster::new(3, storage());
        let ds = upload_hail(
            &mut cluster, &schema, "d", &texts,
            &ReplicaIndexConfig::first_indexed(3, &[0]),
        ).unwrap();
        let spec = ClusterSpec::new(3, HardwareProfile::physical());
        let format = HailInputFormat::new(ds.clone(), query);
        let job = MapJob::collecting("q", ds.blocks.clone(), &format);
        let run = run_map_job(&cluster, &spec, &job).unwrap();
        prop_assert_eq!(canonical(&run.output), expected);
    }
}
