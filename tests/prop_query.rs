//! Randomized property tests over the whole query pipeline: for
//! arbitrary data and arbitrary range predicates, the HAIL index path,
//! the HAIL scan path, the Hadoop text path, and the oracle all agree;
//! splitting policies partition the input exactly.
//!
//! (Formerly proptest-based; the offline build vendors no proptest, so
//! the cases are driven by the workspace's deterministic `rand` stub.)

use hail::exec::{default_splits, hail_splits};
use hail::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("name", DataType::VarChar),
        Field::new("v", DataType::Int),
    ])
    .unwrap()
}

fn storage() -> StorageConfig {
    let mut s = StorageConfig::test_scale(256);
    s.index_partition_size = 4;
    s
}

fn random_rows(rng: &mut StdRng) -> Vec<(i32, String, i32)> {
    let n = rng.random_range(10..250usize);
    (0..n)
        .map(|_| {
            let len = rng.random_range(1..7usize);
            let name: String = (0..len)
                .map(|_| (b'a' + rng.random_range(0..26u8)) as char)
                .collect();
            (
                rng.random_range(0..500i32),
                name,
                rng.random_range(-100..100i32),
            )
        })
        .collect()
}

fn to_text(rows: &[(i32, String, i32)]) -> String {
    rows.iter()
        .map(|(k, n, v)| format!("{k}|{n}|{v}\n"))
        .collect()
}

/// Index path ≡ scan path ≡ Hadoop ≡ oracle for random range queries.
#[test]
fn all_paths_agree() {
    let mut rng = StdRng::seed_from_u64(0xA11_A6EE);
    for case in 0..32 {
        let rows = random_rows(&mut rng);
        let lo = rng.random_range(0..500i32);
        let hi = lo.saturating_add(rng.random_range(0..200i32));
        let schema = schema();
        let texts = vec![(0usize, to_text(&rows))];
        let spec = ClusterSpec::new(3, HardwareProfile::physical());
        let query =
            HailQuery::parse(&format!("@1 between({lo}, {hi})"), "{@2, @1}", &schema).unwrap();
        let expected = canonical(&oracle_eval(&texts, &schema, &query));

        // HAIL with an index on @1.
        let mut hail_cluster = DfsCluster::new(3, storage());
        let hail = upload_hail(
            &mut hail_cluster,
            &schema,
            "d",
            &texts,
            &ReplicaIndexConfig::first_indexed(3, &[0]),
        )
        .unwrap();
        let format = HailInputFormat::new(hail.clone(), query.clone());
        let job = MapJob::collecting("q", hail.blocks.clone(), &format);
        let via_index = run_map_job(&hail_cluster, &spec, &job).unwrap();
        assert_eq!(
            canonical(&via_index.output),
            expected,
            "case {case}: index path"
        );

        // HAIL with no index at all → scan path.
        let mut scan_cluster = DfsCluster::new(3, storage());
        let unindexed = upload_hail(
            &mut scan_cluster,
            &schema,
            "d",
            &texts,
            &ReplicaIndexConfig::unindexed(3),
        )
        .unwrap();
        let format = HailInputFormat::new(unindexed.clone(), query.clone());
        let job = MapJob::collecting("q", unindexed.blocks.clone(), &format);
        let via_scan = run_map_job(&scan_cluster, &spec, &job).unwrap();
        assert_eq!(
            canonical(&via_scan.output),
            expected,
            "case {case}: scan path"
        );

        // Hadoop text.
        let mut text_cluster = DfsCluster::new(3, storage());
        let text_ds = upload_hadoop(&mut text_cluster, &schema, "d", &texts).unwrap();
        let format = HadoopInputFormat::new(text_ds.clone(), query.clone());
        let job = MapJob::collecting("q", text_ds.blocks.clone(), &format);
        let via_text = run_map_job(&text_cluster, &spec, &job).unwrap();
        assert_eq!(
            canonical(&via_text.output),
            expected,
            "case {case}: text path"
        );
    }
}

/// Both splitting policies cover every block exactly once.
#[test]
fn splitting_partitions_input() {
    let mut rng = StdRng::seed_from_u64(0x5F117);
    for case in 0..16 {
        let rows = random_rows(&mut rng);
        let slots = rng.random_range(1..4usize);
        let schema = schema();
        let texts = vec![(0usize, to_text(&rows)), (1, to_text(&rows))];
        let mut cluster = DfsCluster::new(3, storage());
        let ds = upload_hail(
            &mut cluster,
            &schema,
            "d",
            &texts,
            &ReplicaIndexConfig::first_indexed(3, &[0]),
        )
        .unwrap();
        let query = HailQuery::parse("@1 <= 250", "", &schema).unwrap();

        for plan in [
            default_splits(&cluster, &ds.blocks).unwrap(),
            hail_splits(&cluster, &ds.blocks, &query, slots).unwrap(),
        ] {
            let mut covered: Vec<_> = plan.splits.iter().flat_map(|s| s.blocks.clone()).collect();
            covered.sort_unstable();
            let mut expected = ds.blocks.clone();
            expected.sort_unstable();
            assert_eq!(covered, expected, "case {case}");
            for split in &plan.splits {
                assert!(!split.locations.is_empty(), "case {case}");
            }
        }
    }
}

/// Conjunctive predicates: intersected index bounds never lose rows.
#[test]
fn conjunction_correct() {
    let mut rng = StdRng::seed_from_u64(0xC0_17C7);
    for case in 0..32 {
        let rows = random_rows(&mut rng);
        let a = rng.random_range(0..500i32);
        let b = rng.random_range(0..500i32);
        let schema = schema();
        let (lo, hi) = (a.min(b), a.max(b));
        let texts = vec![(0usize, to_text(&rows))];
        let query = HailQuery::parse(
            &format!("@1 >= {lo} and @1 <= {hi} and @3 >= 0"),
            "{@1, @3}",
            &schema,
        )
        .unwrap();
        let expected = canonical(&oracle_eval(&texts, &schema, &query));

        let mut cluster = DfsCluster::new(3, storage());
        let ds = upload_hail(
            &mut cluster,
            &schema,
            "d",
            &texts,
            &ReplicaIndexConfig::first_indexed(3, &[0]),
        )
        .unwrap();
        let spec = ClusterSpec::new(3, HardwareProfile::physical());
        let format = HailInputFormat::new(ds.clone(), query);
        let job = MapJob::collecting("q", ds.blocks.clone(), &format);
        let run = run_map_job(&cluster, &spec, &job).unwrap();
        assert_eq!(canonical(&run.output), expected, "case {case}");
    }
}
