//! Failover integrity across the full stack: node deaths must never
//! change query results, and the replica-equivalence invariant must hold
//! under every index configuration.

use hail::prelude::*;

fn storage() -> StorageConfig {
    let mut s = StorageConfig::test_scale(2 * 1024);
    s.index_partition_size = 8;
    s
}

fn setup(nodes: usize, config: &ReplicaIndexConfig) -> (DfsCluster, Dataset, Vec<(usize, String)>) {
    let schema = bob_schema();
    let texts = UserVisitsGenerator::default().generate(nodes, 600);
    let mut cluster = DfsCluster::new(nodes, storage());
    let dataset = upload_hail(&mut cluster, &schema, "uv", &texts, config).unwrap();
    (cluster, dataset, texts)
}

#[test]
fn results_identical_after_any_single_node_death() {
    let config = ReplicaIndexConfig::first_indexed(3, &[2, 0, 3]);
    let schema = bob_schema();
    let spec = ClusterSpec::new(5, HardwareProfile::physical());
    let query = bob_queries()[0].to_query(&schema).unwrap();

    for victim in 0..5usize {
        let (mut cluster, dataset, texts) = setup(5, &config);
        let expected = canonical(&oracle_eval(&texts, &schema, &query));

        cluster.kill_node(victim).unwrap();
        let format = HailInputFormat::new(dataset.clone(), query.clone());
        let job = MapJob::collecting("q", dataset.blocks.clone(), &format);
        let run = run_map_job(&cluster, &spec, &job).unwrap();
        assert_eq!(
            canonical(&run.output),
            expected,
            "node {victim} death changed results"
        );
    }
}

#[test]
fn results_identical_after_two_node_deaths() {
    // Replication 3 tolerates two failures.
    let config = ReplicaIndexConfig::first_indexed(3, &[2, 0, 3]);
    let schema = bob_schema();
    let spec = ClusterSpec::new(6, HardwareProfile::physical());
    let query = bob_queries()[3].to_query(&schema).unwrap();

    let (mut cluster, dataset, texts) = setup(6, &config);
    let expected = canonical(&oracle_eval(&texts, &schema, &query));
    cluster.kill_node(1).unwrap();
    cluster.kill_node(4).unwrap();
    let format = HailInputFormat::new(dataset.clone(), query.clone());
    let job = MapJob::collecting("q", dataset.blocks.clone(), &format);
    let run = run_map_job(&cluster, &spec, &job).unwrap();
    assert_eq!(canonical(&run.output), expected);
}

#[test]
fn mid_job_failure_preserves_output() {
    let config = ReplicaIndexConfig::first_indexed(3, &[2, 0, 3]);
    let schema = bob_schema();
    let spec = ClusterSpec::new(5, HardwareProfile::physical());
    let query = bob_queries()[0].to_query(&schema).unwrap();
    let (mut cluster, dataset, texts) = setup(5, &config);
    let expected = canonical(&oracle_eval(&texts, &schema, &query));

    let format = HailInputFormat::new(dataset.clone(), query).without_splitting();
    let job = MapJob::collecting("q", dataset.blocks.clone(), &format);
    let run =
        run_map_job_with_failure(&mut cluster, &spec, &job, FailureScenario::at_half(2)).unwrap();
    assert_eq!(canonical(&run.output), expected);
    assert!(run.with_failure.end_to_end_seconds >= run.baseline.end_to_end_seconds);
    // The dead node is really dead.
    assert!(!cluster.datanode(2).unwrap().is_alive());
}

#[test]
fn replica_equivalence_for_every_index_configuration() {
    for config in [
        ReplicaIndexConfig::unindexed(3),
        ReplicaIndexConfig::first_indexed(3, &[2]),
        ReplicaIndexConfig::first_indexed(3, &[2, 0, 3]),
        ReplicaIndexConfig::uniform(3, 0),
    ] {
        let (cluster, _, _) = setup(4, &config);
        verify_replica_equivalence(&cluster).unwrap_or_else(|e| panic!("config {config:?}: {e}"));
    }
}

#[test]
fn recovery_reads_any_surviving_replica() {
    let config = ReplicaIndexConfig::first_indexed(3, &[2, 0, 3]);
    let (mut cluster, dataset, _) = setup(4, &config);
    let block = dataset.blocks[0];
    let before = recover_logical_rows(&cluster, block).unwrap();
    // Kill two of the three replica holders.
    let hosts = cluster.namenode().get_hosts(block).unwrap();
    cluster.kill_node(hosts[0]).unwrap();
    cluster.kill_node(hosts[1]).unwrap();
    let after = recover_logical_rows(&cluster, block).unwrap();
    assert_eq!(before, after);
}

#[test]
fn higher_replication_survives_more_failures() {
    let schema = bob_schema();
    let texts = UserVisitsGenerator::default().generate(6, 300);
    let mut s = storage();
    s.replication = 5;
    let mut cluster = DfsCluster::new(6, s);
    let config = ReplicaIndexConfig::first_indexed(5, &[2, 0, 3, 8, 1]);
    let dataset = upload_hail(&mut cluster, &schema, "uv", &texts, &config).unwrap();
    for victim in [0, 2, 4, 5] {
        cluster.kill_node(victim).unwrap();
    }
    // Four dead nodes, five replicas: every block still recoverable.
    for &b in &dataset.blocks {
        recover_logical_rows(&cluster, b).unwrap();
    }
}
