//! Randomized property tests pinning the reorganization path the
//! adaptive re-indexing loop leans on: `pax::reorg::sort_block` (the
//! in-place rewrite's workhorse) and the `IndexedBlock` serialization
//! it re-runs.
//!
//! Properties:
//!
//! - `sort_block` preserves the row multiset exactly (data moves,
//!   never changes) and carries bad records over verbatim;
//! - `is_sorted_on` holds on every output of `sort_block` and rejects
//!   any block with an injected inversion;
//! - `sort_permutation` is stable: ties keep upload order, so
//!   re-sorting an already-sorted block is the identity permutation;
//! - `IndexedBlock` build → bytes → parse is lossless for random
//!   blocks, sort orders, and sidecar specs — metadata, sort order,
//!   payload rows, and byte length all round-trip.
//!
//! Driven by the workspace's deterministic `rand` stub (no vendored
//! proptest), same as `prop_storage`.

use hail::pax::{blocks_from_text, is_sorted_on, sort_block, PaxBlock};
use hail::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("key", DataType::Int),
        Field::new("tag", DataType::VarChar),
        Field::new("weight", DataType::Float),
    ])
    .unwrap()
}

/// Random (key, tag, weight) rows; keys drawn from a small domain so
/// duplicates (sort ties) are common, tags from a tiny alphabet so
/// bitmap sidecars stay under the cardinality limit.
fn random_rows(rng: &mut StdRng) -> Vec<(i32, String, f64)> {
    let n = rng.random_range(2..160usize);
    (0..n)
        .map(|_| {
            let tag = format!("t{}", rng.random_range(0..9u8));
            (
                rng.random_range(-40..40i32),
                tag,
                rng.random_range(0.0..1e4),
            )
        })
        .collect()
}

fn to_text(rows: &[(i32, String, f64)]) -> String {
    rows.iter()
        .map(|(k, t, w)| format!("{k}|{t}|{w}\n"))
        .collect()
}

/// One random single-block PAX encoding of `rows`.
fn block_of(rows: &[(i32, String, f64)], rng: &mut StdRng) -> PaxBlock {
    let mut storage = StorageConfig::test_scale(1 << 30);
    storage.index_partition_size = rng.random_range(1..48usize);
    let blocks = blocks_from_text(&to_text(rows), &schema(), &storage).unwrap();
    assert_eq!(blocks.len(), 1);
    blocks.into_iter().next().unwrap()
}

/// The block's rows as reconstructed strings (multiset fingerprint
/// when sorted).
fn row_strings(block: &PaxBlock) -> Vec<String> {
    (0..block.row_count())
        .map(|i| block.reconstruct_full(i).unwrap().to_string())
        .collect()
}

/// `sort_block` on any column keeps the row multiset and the
/// bad-record section bit-for-bit; `is_sorted_on` holds afterwards on
/// the sort column.
#[test]
fn sort_block_preserves_multiset_and_is_sorted() {
    let mut rng = StdRng::seed_from_u64(0xAD_0B1);
    for case in 0..64 {
        let rows = random_rows(&mut rng);
        let block = block_of(&rows, &mut rng);
        let col = rng.random_range(0..3usize);
        let (sorted, perm) = sort_block(&block, col).unwrap();

        assert!(
            is_sorted_on(&sorted, col).unwrap(),
            "case {case}: sorted on column {col}"
        );
        assert_eq!(sorted.row_count(), block.row_count(), "case {case}");
        assert_eq!(perm.len(), block.row_count(), "case {case}");

        let mut before = row_strings(&block);
        let mut after = row_strings(&sorted);
        before.sort();
        after.sort();
        assert_eq!(before, after, "case {case}: row multiset unchanged");

        assert_eq!(
            sorted.bad_records().unwrap(),
            block.bad_records().unwrap(),
            "case {case}: bad records carried over verbatim"
        );
    }
}

/// The sort is stable: `perm` applied to an already-sorted block is
/// the identity, and equal keys keep their relative upload order —
/// the property that makes adaptive rewrites deterministic across
/// re-uploads.
#[test]
fn sort_is_stable_and_idempotent() {
    let mut rng = StdRng::seed_from_u64(0x0057_AB1E);
    for case in 0..48 {
        let rows = random_rows(&mut rng);
        let block = block_of(&rows, &mut rng);
        let col = rng.random_range(0..3usize);

        let (sorted_once, perm) = sort_block(&block, col).unwrap();
        // Stability: among equal keys, permutation indices ascend.
        let keys: Vec<Value> = (0..block.row_count())
            .map(|i| block.value(col, i).unwrap())
            .collect();
        for w in perm.windows(2) {
            let (a, b) = (w[0], w[1]);
            if keys[a] == keys[b] {
                assert!(a < b, "case {case}: ties keep upload order");
            }
        }

        // Idempotence: re-sorting the sorted block is the identity.
        let (sorted_twice, perm2) = sort_block(&sorted_once, col).unwrap();
        assert_eq!(
            perm2,
            (0..block.row_count()).collect::<Vec<usize>>(),
            "case {case}: re-sort of a sorted block is the identity"
        );
        assert_eq!(
            row_strings(&sorted_twice),
            row_strings(&sorted_once),
            "case {case}"
        );
    }
}

/// `is_sorted_on` agrees with a direct value-by-value check on raw
/// (usually unsorted) random blocks — it must flag exactly the real
/// inversions, through the decode path rather than the reconstruct
/// path.
#[test]
fn is_sorted_on_detects_inversions() {
    let mut rng = StdRng::seed_from_u64(0x001B_AD50);
    let mut saw_unsorted = false;
    for case in 0..48 {
        let rows = random_rows(&mut rng);
        let block = block_of(&rows, &mut rng);
        let col = rng.random_range(0..3usize);
        let ascends = (1..block.row_count())
            .all(|i| block.value(col, i - 1).unwrap() <= block.value(col, i).unwrap());
        assert_eq!(
            is_sorted_on(&block, col).unwrap(),
            ascends,
            "case {case}: verifier flags exactly the real inversions"
        );
        saw_unsorted |= !ascends;
    }
    assert!(saw_unsorted, "the negative case was actually exercised");
}

/// `IndexedBlock` build → serialize → parse is lossless for random
/// payloads, sort orders, and sidecar specs — exactly the path
/// `rewrite_replica` trusts when it re-encodes a replica in place.
#[test]
fn indexed_block_round_trip_lossless() {
    let mut rng = StdRng::seed_from_u64(0xCAFE_D1CE);
    for case in 0..48 {
        let rows = random_rows(&mut rng);
        let block = block_of(&rows, &mut rng);
        let order = match rng.random_range(0..4u8) {
            0 => SortOrder::Unsorted,
            n => SortOrder::Clustered {
                column: (n as usize - 1) % 3,
            },
        };
        let spec = SidecarSpec {
            // tag has ≤9 distinct values — always bitmap-able.
            bitmap_columns: if rng.random_range(0..2u8) == 0 {
                vec![1]
            } else {
                vec![]
            },
            inverted_list: rng.random_range(0..2u8) == 0,
            zone_map_columns: if rng.random_range(0..2u8) == 0 {
                vec![0]
            } else {
                vec![]
            },
            bloom_columns: if rng.random_range(0..2u8) == 0 {
                vec![1]
            } else {
                vec![]
            },
        };

        let built = IndexedBlock::build_with(&block, order, &spec).unwrap();
        let parsed = IndexedBlock::parse(built.bytes().clone()).unwrap();

        assert_eq!(parsed.sort_order(), order, "case {case}: sort order");
        assert_eq!(
            parsed.metadata(),
            built.metadata(),
            "case {case}: metadata round-trips"
        );
        assert_eq!(parsed.byte_len(), built.byte_len(), "case {case}");

        // Payload rows survive — sorted when clustered, verbatim
        // otherwise — and the multiset is always the input's.
        if let SortOrder::Clustered { column } = order {
            assert!(
                is_sorted_on(parsed.pax(), column).unwrap(),
                "case {case}: clustered payload is sorted"
            );
        }
        let mut input = row_strings(&block);
        let mut output = row_strings(parsed.pax());
        input.sort();
        output.sort();
        assert_eq!(input, output, "case {case}: payload multiset");

        // Requested bitmap materialized (tag is under the cardinality
        // limit, so it is never silently skipped).
        assert_eq!(
            parsed.metadata().bitmap_on(1).is_some(),
            !spec.bitmap_columns.is_empty(),
            "case {case}: bitmap sidecar presence"
        );
    }
}
