//! End-to-end tests for block skipping via persisted zone-map/Bloom
//! synopses: pruning never changes query results (the property), the
//! namenode's `Dir_rep` mirrors the stored synopses, corrupt synopsis
//! tags fail the replica parse, losing the only synopsis-holding
//! replica degrades to unpruned planning, and cached zero-cost plans
//! are evicted by physical-design changes like any priced plan.

use hail::exec::{PlanCache, PlannerConfig, QueryPlanner};
use hail::prelude::*;
use std::sync::Arc;

fn storage() -> StorageConfig {
    let mut s = StorageConfig::test_scale(4 * 1024);
    s.index_partition_size = 8;
    s
}

/// UserVisits rows split across several blocks, with zone-map + Bloom
/// synopses persisted on every Bob filter column of every replica.
fn synopsis_cluster(rows: usize) -> (DfsCluster, Dataset, Schema, Vec<(usize, String)>) {
    let schema = bob_schema();
    let texts = vec![(0, UserVisitsGenerator::default().node_text(0, rows))];
    let mut cluster = DfsCluster::new(3, storage());
    // Bob filters touch @1 (sourceIP), @3 (visitDate), @4 (adRevenue).
    let config = ReplicaIndexConfig::first_indexed(3, &[2])
        .with_synopses(0)
        .with_synopses(2)
        .with_synopses(3);
    let dataset = upload_hail(&mut cluster, &schema, "uv", &texts, &config).unwrap();
    (cluster, dataset, schema, texts)
}

fn planner_with(cluster: &DfsCluster, synopsis_pruning: bool) -> QueryPlanner<'_> {
    QueryPlanner::with_config(
        cluster,
        PlannerConfig {
            synopsis_pruning,
            ..Default::default()
        },
    )
}

/// Executes every block of a fresh plan, returning (good rows, merged
/// stats).
fn run_plan(
    planner: &QueryPlanner<'_>,
    dataset: &Dataset,
    schema: &Schema,
    query: &HailQuery,
) -> (Vec<Row>, TaskStats) {
    let plan = planner.plan_dataset(dataset, query).unwrap();
    let mut rows = Vec::new();
    let mut merged = TaskStats::default();
    for &b in &dataset.blocks {
        let stats = planner
            .execute_block(&plan, b, 0, schema, query, &mut |r| {
                if !r.bad {
                    rows.push(r.row);
                }
            })
            .unwrap();
        merged.merge(&stats);
    }
    (rows, merged)
}

/// The property: for every Bob and Synthetic query family, planning
/// with synopsis pruning on and off produces bit-for-bit identical row
/// sets — and both match the oracle evaluator. Pruning may only skip
/// reads, never rows.
#[test]
fn pruning_never_drops_rows_across_workloads() {
    let (cluster, dataset, schema, texts) = synopsis_cluster(600);
    for spec in bob_queries() {
        let query = spec.to_query(&schema).unwrap();
        let (pruned_rows, _) = run_plan(&planner_with(&cluster, true), &dataset, &schema, &query);
        let (full_rows, full_stats) =
            run_plan(&planner_with(&cluster, false), &dataset, &schema, &query);
        assert_eq!(
            canonical(&pruned_rows),
            canonical(&full_rows),
            "{}: pruning changed the result",
            spec.id
        );
        assert_eq!(
            canonical(&full_rows),
            canonical(&oracle_eval(&texts, &schema, &query)),
            "{}: baseline diverged from oracle",
            spec.id
        );
        assert_eq!(full_stats.blocks_pruned, 0, "pruning disabled means zero");
    }

    // The Synthetic workload, on its own schema and dataset.
    let schema = synthetic_schema();
    let texts = vec![(0, SyntheticGenerator::default().node_text(0, 600))];
    let mut cluster = DfsCluster::new(3, storage());
    let config = ReplicaIndexConfig::first_indexed(3, &[0]).with_synopses(0);
    let dataset = upload_hail(&mut cluster, &schema, "syn", &texts, &config).unwrap();
    for spec in synthetic_queries() {
        let query = spec.to_query(&schema).unwrap();
        let (pruned_rows, _) = run_plan(&planner_with(&cluster, true), &dataset, &schema, &query);
        let (full_rows, _) = run_plan(&planner_with(&cluster, false), &dataset, &schema, &query);
        assert_eq!(
            canonical(&pruned_rows),
            canonical(&full_rows),
            "{}: pruning changed the result",
            spec.id
        );
        assert_eq!(
            canonical(&full_rows),
            canonical(&oracle_eval(&texts, &schema, &query))
        );
    }
}

/// A needle that exists nowhere is pruned everywhere: the Bloom filter
/// proves every block empty, no block is read, and the synthesized
/// statistics report the skips.
#[test]
fn absent_needle_prunes_every_block() {
    let (cluster, dataset, schema, _) = synopsis_cluster(400);
    // Octets never exceed 255, so this IP exists nowhere — yet it sorts
    // inside every block's sourceIP min/max, so only the Bloom filter
    // (not the zone map) can prove it absent.
    let query = HailQuery::parse("@1 = '172.101.11.460'", "{@1}", &schema).unwrap();
    let planner = planner_with(&cluster, true);
    let plan = planner.plan_dataset(&dataset, &query).unwrap();
    assert!(dataset.blocks.len() > 1, "need several blocks to skip");
    for bp in &plan.blocks {
        let info = bp.pruned.as_ref().expect("needle absent from every block");
        assert_eq!(info.reason, hail::exec::PruneReason::Bloom);
        assert_eq!(bp.est_seconds, 0.0, "pruned plans are free");
        assert!(bp.candidates.is_empty(), "no candidate was enumerated");
    }
    assert!(
        plan.explain().contains("[pruned: bloom]"),
        "{}",
        plan.explain()
    );

    let (rows, stats) = run_plan(&planner, &dataset, &schema, &query);
    assert!(rows.is_empty());
    assert_eq!(stats.blocks_pruned, dataset.blocks.len() as u64);
    assert!(stats.synopsis_bytes_read > 0, "the probes are accounted");
    assert_eq!(stats.paths.total(), 0, "no access path ever ran");
    assert_eq!(stats.ledger.disk_read, 0, "no replica bytes were read");

    // A range wholly outside the stored domain prunes via zone maps.
    let query = HailQuery::parse("@3 between(2050-01-01, 2051-01-01)", "{@1}", &schema).unwrap();
    let plan = planner.plan_dataset(&dataset, &query).unwrap();
    for bp in &plan.blocks {
        let info = bp.pruned.as_ref().expect("range outside every zone");
        assert_eq!(info.reason, hail::exec::PruneReason::Zone);
    }
    assert!(plan.explain().contains("[pruned: zone]"));
}

/// Upload with synopses: every replica parses back with them, and the
/// namenode's `Dir_rep` entry mirrors the stored sidecars exactly.
#[test]
fn dir_rep_mirrors_synopsis_sidecars() {
    let (cluster, dataset, _, _) = synopsis_cluster(300);
    for &block in &dataset.blocks {
        for dn in cluster.namenode().get_hosts(block).unwrap() {
            let mut ledger = CostLedger::new();
            let raw = cluster
                .datanode(dn)
                .unwrap()
                .read_replica(block, &mut ledger)
                .unwrap();
            let parsed = IndexedBlock::parse(raw).unwrap();
            for column in [0usize, 2, 3] {
                let (meta, zone) = parsed.zone_map_sidecar(column).unwrap().expect("zone map");
                assert_eq!(zone.column(), column);
                let (bmeta, bloom) = parsed.bloom_sidecar(column).unwrap().expect("bloom");
                assert_eq!(bloom.column(), column);
                // Dir_rep records exactly what the replica stores.
                let info = cluster.namenode().replica_info(block, dn).unwrap();
                assert_eq!(&info.index, parsed.metadata());
                assert_eq!(info.index.zone_map_on(column), Some(&meta));
                assert_eq!(info.index.bloom_on(column), Some(&bmeta));
            }
        }
        for column in [0usize, 2, 3] {
            let nn = cluster.namenode();
            assert_eq!(nn.get_hosts_with_zone_map(block, column).unwrap().len(), 3);
            assert_eq!(nn.get_hosts_with_bloom(block, column).unwrap().len(), 3);
        }
    }
}

/// A corrupt synopsis descriptor — an unknown tag, or a primary-index
/// tag smuggled into a sidecar slot — fails the replica parse instead
/// of yielding a half-readable block.
#[test]
fn corrupt_synopsis_tag_fails_replica_parse() {
    let schema = bob_schema();
    let texts = vec![(0, UserVisitsGenerator::default().node_text(0, 200))];
    let mut storage = StorageConfig::test_scale(1 << 20); // one big block
    storage.index_partition_size = 32;
    let mut cluster = DfsCluster::new(3, storage);
    // Exactly one sidecar (the zone map), so its descriptor is the
    // metadata record's first sidecar entry.
    let config = ReplicaIndexConfig::unindexed(3).with_zone_map(2);
    let dataset = upload_hail(&mut cluster, &schema, "uv", &texts, &config).unwrap();

    let block = dataset.blocks[0];
    let dn = cluster.namenode().get_hosts(block).unwrap()[0];
    let mut ledger = CostLedger::new();
    let raw = cluster
        .datanode(dn)
        .unwrap()
        .read_replica(block, &mut ledger)
        .unwrap();
    let good = IndexedBlock::parse(raw.clone()).unwrap();
    assert!(good.zone_map(2).unwrap().is_some());

    // The sidecar descriptor's kind tag sits 20 bytes into the metadata
    // record, which sits right before the fixed 20-byte footer.
    let meta_len = good.metadata().to_bytes().len();
    let tag_pos = raw.len() - 20 - meta_len + 20;

    let mut unknown = raw.to_vec();
    unknown[tag_pos] = 250;
    let err = IndexedBlock::parse(bytes::Bytes::from(unknown)).unwrap_err();
    assert!(err.to_string().contains("unknown index kind"), "{err}");

    // Tag 1 (Clustered) is a valid kind but not a sidecar kind.
    let mut smuggled = raw.to_vec();
    smuggled[tag_pos] = 1;
    let err = IndexedBlock::parse(bytes::Bytes::from(smuggled)).unwrap_err();
    assert!(err.to_string().contains("not a sidecar"), "{err}");
}

/// Synopses on one chain position only: pruning works while the holder
/// lives, already-planned prunes still execute after it dies (block
/// content is immutable), and fresh plans degrade to unpruned planning
/// instead of erroring.
#[test]
fn death_of_synopsis_replica_degrades_to_unpruned_planning() {
    let schema = bob_schema();
    let texts = vec![(0, UserVisitsGenerator::default().node_text(0, 400))];
    let mut cluster = DfsCluster::new(3, storage());
    let config = ReplicaIndexConfig::unindexed(3)
        .with_zone_map_on(0, 0)
        .with_bloom_on(0, 0);
    let dataset = upload_hail(&mut cluster, &schema, "uv", &texts, &config).unwrap();
    let block = dataset.blocks[0];
    let holders = cluster.namenode().get_hosts_with_bloom(block, 0).unwrap();
    assert_eq!(holders.len(), 1, "synopses on one chain position only");

    let query = HailQuery::parse("@1 = '999.999.999.999'", "{@1}", &schema).unwrap();
    let planner = planner_with(&cluster, true);
    let before = planner.plan_dataset(&dataset, &query).unwrap();
    assert!(before.blocks.iter().all(|bp| bp.pruned.is_some()));

    cluster.kill_node(holders[0]).unwrap();

    // The pre-death plan still executes: a pruned block is never read,
    // so the dead replica is never needed.
    let planner = planner_with(&cluster, true);
    let mut rows = 0usize;
    let stats = planner
        .execute_block(&before, block, 0, &schema, &query, &mut |_| rows += 1)
        .unwrap();
    assert_eq!(stats.blocks_pruned, 1);
    assert_eq!(rows, 0);

    // A fresh plan finds no synopsis on the survivors: no prune, no
    // error, and the scan still answers (with nothing, correctly).
    let after = planner.plan_dataset(&dataset, &query).unwrap();
    for bp in &after.blocks {
        assert!(bp.pruned.is_none(), "no synopsis left to prune with");
        assert!(!bp.candidates.is_empty(), "priced normally instead");
    }
    let (rows, stats) = run_plan(&planner, &dataset, &schema, &query);
    assert!(rows.is_empty());
    assert_eq!(stats.blocks_pruned, 0);
    assert!(stats.ledger.disk_read > 0, "the blocks really were read");
}

/// Zero-cost pruned plans live under the same fingerprint/epoch
/// machinery as priced plans: cached on first plan, served as hits
/// while the design holds, and evicted when a death bumps the design
/// epoch — after which re-planning re-proves the prune from the
/// survivors.
#[test]
fn design_epoch_bump_evicts_cached_zero_cost_plans() {
    let (mut cluster, dataset, schema, _) = synopsis_cluster(400);
    let cache = Arc::new(PlanCache::default());
    let config = PlannerConfig {
        plan_cache: Some(Arc::clone(&cache)),
        synopsis_pruning: true,
        ..Default::default()
    };
    let query = HailQuery::parse("@1 = '999.999.999.999'", "{@1}", &schema).unwrap();
    let n = dataset.blocks.len() as u64;

    let planner = QueryPlanner::with_config(&cluster, config.clone());
    let cold = planner.plan_dataset(&dataset, &query).unwrap();
    assert!(cold.blocks.iter().all(|bp| bp.pruned.is_some()));
    let s = cache.stats();
    assert_eq!((s.hits, s.misses), (0, n));
    assert_eq!(s.cost_evaluations, 0, "pruned plans price nothing");

    // Warm: every pruned plan is a cache hit, still carrying the proof.
    let warm = planner.plan_dataset(&dataset, &query).unwrap();
    assert!(warm.blocks.iter().all(|bp| bp.pruned.is_some()));
    assert_eq!(cache.stats().hits, n);

    // A death bumps the design epoch and changes every fingerprint the
    // dead node participated in: the zero-cost entries are invalidated
    // exactly like priced ones, and re-planning re-prunes from the
    // remaining replicas' synopses.
    let victim = *warm.blocks[0].locations.first().unwrap();
    cluster.kill_node(victim).unwrap();
    let planner = QueryPlanner::with_config(&cluster, config);
    let after = planner.plan_dataset(&dataset, &query).unwrap();
    assert!(after.blocks.iter().all(|bp| bp.pruned.is_some()));
    assert!(after
        .blocks
        .iter()
        .all(|bp| !bp.locations.contains(&victim)));
    let s = cache.stats();
    assert_eq!(s.hits, n, "no stale hit after the epoch bump");
    assert_eq!(s.misses, 2 * n, "every block re-planned");
    assert_eq!(s.cost_evaluations, 0, "re-pruned, still never priced");
}

/// The whole job pipeline reports pruning: a needle job over
/// `run_map_job` skips every block, the `JobReport` aggregates the new
/// counters, and a synopsis-off run returns the identical (empty)
/// output.
#[test]
fn job_reports_aggregate_pruning_counters() {
    let (cluster, dataset, schema, _) = synopsis_cluster(400);
    let spec = ClusterSpec::new(3, HardwareProfile::physical());
    let query = HailQuery::parse("@1 = '999.999.999.999'", "{@1}", &schema).unwrap();

    // Explicit `synopsis_pruning: true` so the test holds under the
    // CI leg that force-disables synopses via `HAIL_DISABLE_SYNOPSES`.
    let format = HailInputFormat::new(dataset.clone(), query.clone()).with_planner(PlannerConfig {
        synopsis_pruning: true,
        ..Default::default()
    });
    let job = MapJob::collecting("needle", dataset.blocks.clone(), &format);
    let run = run_map_job(&cluster, &spec, &job).unwrap();
    assert!(run.output.is_empty());
    assert_eq!(run.report.blocks_pruned(), dataset.blocks.len() as u64);
    assert!(run.report.synopsis_bytes_read() > 0);

    let off = HailInputFormat::new(dataset.clone(), query.clone()).with_planner(PlannerConfig {
        synopsis_pruning: false,
        ..Default::default()
    });
    let job = MapJob::collecting("needle-off", dataset.blocks.clone(), &off);
    let run_off = run_map_job(&cluster, &spec, &job).unwrap();
    assert_eq!(run_off.output, run.output);
    assert_eq!(run_off.report.blocks_pruned(), 0);
    assert_eq!(run_off.report.synopsis_bytes_read(), 0);
}
