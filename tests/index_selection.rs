//! §3.4 end to end: the workload-driven index advisor picks the right
//! per-replica indexes for Bob's workload, and uploading with its
//! recommendation makes every query index-served.

use hail::index::{select_for_workload, WorkloadFilter};
use hail::prelude::*;

#[test]
fn advisor_picks_bobs_three_columns() {
    let schema = bob_schema();
    // Bob's workload as (filter column, paper selectivity, frequency):
    // Q1 filters visitDate (@3), Q2/Q3 sourceIP (@1), Q4/Q5 adRevenue (@4).
    let workload: Vec<WorkloadFilter> = bob_queries()
        .iter()
        .flat_map(|q| {
            let query = q.to_query(&schema).unwrap();
            query
                .filter_columns()
                .into_iter()
                .map(move |c| WorkloadFilter::new(c, q.paper_selectivity, 1.0))
        })
        .collect();

    let config = select_for_workload(&schema, 3, &workload).unwrap();
    let mut chosen: Vec<usize> = config.orders().iter().filter_map(|o| o.column()).collect();
    chosen.sort_unstable();
    // visitDate = 2, sourceIP = 0, adRevenue = 3 (0-based).
    assert_eq!(chosen, vec![0, 2, 3]);
}

#[test]
fn advisor_recommendation_serves_every_bob_query_with_an_index() {
    let schema = bob_schema();
    let workload: Vec<WorkloadFilter> = bob_queries()
        .iter()
        .flat_map(|q| {
            let query = q.to_query(&schema).unwrap();
            query
                .filter_columns()
                .into_iter()
                .map(move |c| WorkloadFilter::new(c, q.paper_selectivity, 1.0))
        })
        .collect();
    let config = select_for_workload(&schema, 3, &workload).unwrap();

    let texts = UserVisitsGenerator::default().generate(3, 800);
    let mut storage = StorageConfig::test_scale(4 * 1024);
    storage.index_partition_size = 8;
    let mut cluster = DfsCluster::new(3, storage);
    let dataset = upload_hail(&mut cluster, &schema, "uv", &texts, &config).unwrap();
    let spec = ClusterSpec::new(3, HardwareProfile::physical());

    for q in bob_queries() {
        let query = q.to_query(&schema).unwrap();
        let format = HailInputFormat::new(dataset.clone(), query.clone());
        let job = MapJob::collecting(q.id, dataset.blocks.clone(), &format);
        let run = run_map_job(&cluster, &spec, &job).unwrap();
        // No task needed to fall back to a scan: the advisor covered
        // every filter column.
        assert_eq!(
            run.report.fallback_count(),
            0,
            "{} had scan fallbacks under the advisor's config",
            q.id
        );
        // And results are right.
        let expected = canonical(&oracle_eval(&texts, &schema, &query));
        assert_eq!(canonical(&run.output), expected, "{}", q.id);
    }
}

#[test]
fn uncovered_column_falls_back_and_still_answers() {
    // Index only sourceIP; a visitDate query must scan — same answer.
    let schema = bob_schema();
    let texts = UserVisitsGenerator::default().generate(3, 500);
    let mut storage = StorageConfig::test_scale(4 * 1024);
    storage.index_partition_size = 8;
    let mut cluster = DfsCluster::new(3, storage);
    let dataset = upload_hail(
        &mut cluster,
        &schema,
        "uv",
        &texts,
        &ReplicaIndexConfig::uniform(3, 0),
    )
    .unwrap();
    let spec = ClusterSpec::new(3, HardwareProfile::physical());
    let query = bob_queries()[0].to_query(&schema).unwrap(); // visitDate
    let format = HailInputFormat::new(dataset.clone(), query.clone());
    let job = MapJob::collecting("q1", dataset.blocks.clone(), &format);
    let run = run_map_job(&cluster, &spec, &job).unwrap();
    assert!(run.report.fallback_count() > 0, "must fall back to scans");
    let expected = canonical(&oracle_eval(&texts, &schema, &query));
    assert_eq!(canonical(&run.output), expected);
}
