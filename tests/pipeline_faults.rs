//! Fault injection across the upload pipeline and storage layer:
//! corrupted packets, reordered ACKs, nodes dying mid-stream, corrupted
//! replicas at rest, and under-replicated clusters.

use hail::dfs::FaultPlan;
use hail::pax::blocks_from_text;
use hail::prelude::*;

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::VarChar),
    ])
    .unwrap()
}

fn pax_block(rows: usize) -> hail::pax::PaxBlock {
    let text: String = (0..rows)
        .map(|i| format!("{}|val{}\n", (i * 17) % 97, i))
        .collect();
    blocks_from_text(&text, &schema(), &StorageConfig::test_scale(1 << 30))
        .unwrap()
        .pop()
        .unwrap()
}

#[test]
fn corrupted_packet_at_every_hop_is_caught() {
    // Whichever hop corrupts the data, the chain tail's verification
    // must fail the upload (DN2 believes DN3, DN1 believes DN2...).
    let pax = pax_block(50);
    for hop in 0..3 {
        let mut cluster = DfsCluster::new(4, StorageConfig::test_scale(1 << 20));
        let fault = FaultPlan {
            corrupt_after_hop: Some((hop, 0)),
            ..Default::default()
        };
        let err = hail_upload_block(
            &mut cluster,
            0,
            &pax,
            &ReplicaIndexConfig::unindexed(3),
            &fault,
        )
        .unwrap_err();
        assert!(
            matches!(err, HailError::ChecksumMismatch { .. }),
            "hop {hop}: expected checksum failure, got {err}"
        );
    }
}

#[test]
fn ack_reorder_fails_multi_packet_upload() {
    // Needs a block spanning several packets (> 64 KB).
    let pax = pax_block(20_000);
    assert!(pax.byte_len() > 64 * 1024);
    let mut cluster = DfsCluster::new(4, StorageConfig::test_scale(1 << 20));
    let fault = FaultPlan {
        reorder_acks: true,
        ..Default::default()
    };
    let err = hail_upload_block(
        &mut cluster,
        0,
        &pax,
        &ReplicaIndexConfig::unindexed(3),
        &fault,
    )
    .unwrap_err();
    assert!(matches!(err, HailError::Pipeline(_)));
}

#[test]
fn node_death_mid_stream_aborts_cleanly() {
    let pax = pax_block(50);
    let mut cluster = DfsCluster::new(4, StorageConfig::test_scale(1 << 20));
    let fault = FaultPlan {
        kill_datanode_at: Some((2, 0)),
        ..Default::default()
    };
    // Node 2 may or may not be in the chain for writer 0; find a chain
    // including it by writing from node 2 itself.
    let err = hail_upload_block(
        &mut cluster,
        2,
        &pax,
        &ReplicaIndexConfig::unindexed(3),
        &fault,
    )
    .unwrap_err();
    assert!(matches!(err, HailError::DeadDatanode(2)));
    // Subsequent uploads from other writers still work.
    let ok = hail_upload_block(
        &mut cluster,
        0,
        &pax,
        &ReplicaIndexConfig::unindexed(3),
        &FaultPlan::none(),
    );
    assert!(ok.is_ok());
}

#[test]
fn at_rest_corruption_detected_and_other_replicas_serve() {
    let schema = schema();
    let text: String = (0..200).map(|i| format!("{}|v{}\n", i % 40, i)).collect();
    let mut storage = StorageConfig::test_scale(512);
    storage.index_partition_size = 4;
    let mut cluster = DfsCluster::new(4, storage);
    let ds = upload_hail(
        &mut cluster,
        &schema,
        "d",
        &[(0, text)],
        &ReplicaIndexConfig::first_indexed(3, &[0]),
    )
    .unwrap();

    let block = ds.blocks[0];
    let victim = cluster.namenode().get_hosts(block).unwrap()[1];
    cluster
        .datanode_mut(victim)
        .unwrap()
        .corrupt_replica(block, 100)
        .unwrap();

    // A direct full read of the corrupt replica fails its checksums…
    let mut ledger = CostLedger::new();
    assert!(matches!(
        cluster
            .datanode(victim)
            .unwrap()
            .read_replica(block, &mut ledger),
        Err(HailError::ChecksumMismatch { .. })
    ));
    // …but recovery (and hence failover) can still serve the block.
    let rows = recover_logical_rows(&cluster, block).unwrap();
    assert!(!rows.is_empty());
}

#[test]
fn insufficient_live_nodes_rejects_upload() {
    let mut cluster = DfsCluster::new(3, StorageConfig::test_scale(1 << 20));
    cluster.kill_node(1).unwrap();
    let pax = pax_block(10);
    let err = hail_upload_block(
        &mut cluster,
        0,
        &pax,
        &ReplicaIndexConfig::unindexed(3),
        &FaultPlan::none(),
    )
    .unwrap_err();
    assert!(matches!(
        err,
        HailError::InsufficientReplication {
            wanted: 3,
            alive: 2
        }
    ));
}

#[test]
fn replication_ten_needs_ten_nodes() {
    let mut storage = StorageConfig::test_scale(1 << 20);
    storage.replication = 10;
    let pax = pax_block(20);

    let mut small = DfsCluster::new(9, storage.clone());
    assert!(hail_upload_block(
        &mut small,
        0,
        &pax,
        &ReplicaIndexConfig::unindexed(10),
        &FaultPlan::none()
    )
    .is_err());

    let mut big = DfsCluster::new(10, storage);
    let block = hail_upload_block(
        &mut big,
        0,
        &pax,
        &ReplicaIndexConfig::unindexed(10),
        &FaultPlan::none(),
    )
    .unwrap();
    assert_eq!(big.namenode().get_hosts(block).unwrap().len(), 10);
}

#[test]
fn hdfs_baseline_upload_also_detects_corruption() {
    let mut cluster = DfsCluster::new(4, StorageConfig::test_scale(1 << 20));
    let raw = bytes_of(8192);
    let fault = FaultPlan {
        corrupt_after_hop: Some((0, 0)),
        ..Default::default()
    };
    let err = hail::dfs::hdfs_upload_block(&mut cluster, 0, raw, &fault).unwrap_err();
    assert!(matches!(err, HailError::ChecksumMismatch { .. }));
}

fn bytes_of(n: usize) -> bytes::Bytes {
    bytes::Bytes::from((0..n).map(|i| (i % 251) as u8).collect::<Vec<u8>>())
}
