//! The §3.5 extension indexes working against real uploaded data:
//! bitmap indexes over low-cardinality columns of a PAX block, and the
//! inverted list over a block's bad-record section.

use hail::index::{BitmapIndex, InvertedList};
use hail::prelude::*;
use hail::workloads::badness::inject_bad_records;

fn upload_weblog(bad_fraction: f64) -> (DfsCluster, Dataset, Schema, usize) {
    let schema = bob_schema();
    let clean = UserVisitsGenerator::default().node_text(0, 1200);
    let (text, n_bad) = inject_bad_records(&clean, &schema, bad_fraction, 5);
    let mut storage = StorageConfig::test_scale(1 << 20); // one big block
    storage.index_partition_size = 32;
    let mut cluster = DfsCluster::new(3, storage);
    let dataset = upload_hail(
        &mut cluster,
        &schema,
        "uv",
        &[(0, text)],
        &ReplicaIndexConfig::first_indexed(3, &[2]),
    )
    .unwrap();
    (cluster, dataset, schema, n_bad)
}

fn first_replica(cluster: &DfsCluster, dataset: &Dataset) -> IndexedBlock {
    let block = dataset.blocks[0];
    let dn = cluster.namenode().get_hosts(block).unwrap()[0];
    let mut ledger = CostLedger::new();
    let bytes = cluster
        .datanode(dn)
        .unwrap()
        .read_replica(block, &mut ledger)
        .unwrap();
    IndexedBlock::parse(bytes).unwrap()
}

#[test]
fn bitmap_over_country_code_matches_scan() {
    let (cluster, dataset, schema, _) = upload_weblog(0.0);
    let replica = first_replica(&cluster, &dataset);
    let pax = replica.pax();

    // Build a bitmap index over countryCode (@6, column index 5).
    let col = schema.index_of("countryCode").unwrap();
    let column = pax.decode_column(col).unwrap();
    let values: Vec<Value> = (0..column.len()).map(|i| column.value(i)).collect();
    let bitmap = BitmapIndex::build(col, &values, 64).unwrap();
    assert!(bitmap.cardinality() <= 8);

    // Equality via bitmap ≡ equality via scan, for every country.
    for country in ["USA", "DEU", "FRA", "BRA", "IND", "CHN", "JPN", "GBR"] {
        let v = Value::Str(country.into());
        let via_bitmap = bitmap.rows_equal(&v);
        let via_scan: Vec<usize> = (0..pax.row_count())
            .filter(|&r| pax.value(col, r).unwrap() == v)
            .collect();
        assert_eq!(via_bitmap, via_scan, "{country}");
    }

    // Bitmap AND across two columns ≡ conjunctive scan.
    let lang_col = schema.index_of("languageCode").unwrap();
    let lang_column = pax.decode_column(lang_col).unwrap();
    let lang_values: Vec<Value> = (0..lang_column.len())
        .map(|i| lang_column.value(i))
        .collect();
    let lang_bitmap = BitmapIndex::build(lang_col, &lang_values, 64).unwrap();
    let usa = Value::Str("USA".into());
    let en = Value::Str("en-US".into());
    let via_bitmaps = bitmap.rows_and(&usa, &lang_bitmap, &en).unwrap();
    let via_scan: Vec<usize> = (0..pax.row_count())
        .filter(|&r| pax.value(col, r).unwrap() == usa && pax.value(lang_col, r).unwrap() == en)
        .collect();
    assert_eq!(via_bitmaps, via_scan);

    // The bitmap is far smaller than a dense rowid list per value.
    assert!(bitmap.byte_len() < pax.row_count() * 4);
}

#[test]
fn inverted_list_searches_bad_records_after_upload() {
    let (cluster, dataset, _, n_bad) = upload_weblog(0.08);
    assert!(n_bad > 20);
    let replica = first_replica(&cluster, &dataset);
    let bad = replica.pax().bad_records().unwrap();
    assert_eq!(bad.len(), n_bad);

    let inverted = InvertedList::build(&bad);
    assert_eq!(inverted.record_count(), n_bad);

    // Every record the mangler garbled with the signature token is
    // findable; the postings point at real bad records.
    let garbled: Vec<usize> = bad
        .iter()
        .enumerate()
        .filter(|(_, l)| l.contains("###GARBAGE###"))
        .map(|(i, _)| i)
        .collect();
    let found: Vec<usize> = inverted
        .search("garbage")
        .iter()
        .map(|&i| i as usize)
        .collect();
    assert_eq!(found, garbled);

    // Conjunctive search narrows further.
    if let Some(&first) = garbled.first() {
        let another_token = hail::index::tokenize(&bad[first])
            .find(|t| t != "garbage")
            .unwrap();
        let both = inverted.search_all(&["garbage", &another_token]);
        assert!(both.contains(&(first as u32)));
    }

    // Round trip through serialization (how a replica would embed it).
    let back = InvertedList::from_bytes(&inverted.to_bytes()).unwrap();
    assert_eq!(back, inverted);
}

#[test]
fn bitmap_refuses_high_cardinality_ip_column() {
    let (cluster, dataset, schema, _) = upload_weblog(0.0);
    let replica = first_replica(&cluster, &dataset);
    let col = schema.index_of("sourceIP").unwrap();
    let column = replica.pax().decode_column(col).unwrap();
    let values: Vec<Value> = (0..column.len()).map(|i| column.value(i)).collect();
    // sourceIP is nearly unique per row — exactly what bitmaps are not
    // for (§3.5 restricts them to low-cardinality domains).
    assert!(BitmapIndex::build(col, &values, 64).is_err());
}
