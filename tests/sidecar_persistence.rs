//! End-to-end tests for persisted §3.5 sidecar extension indexes:
//! build → upload → `Dir_rep` registration → parse → sidecar-served
//! scans that match a full-scan oracle, plus the failure modes — a
//! corrupt sidecar directory, a failover onto a sidecar-less replica,
//! and planning against a dataset that never stored sidecars.

use hail::index::DEFAULT_CARDINALITY_LIMIT;
use hail::prelude::*;
use hail::workloads::badness::inject_bad_records;

fn weblog_cluster(
    bad_fraction: f64,
    index_config: &ReplicaIndexConfig,
) -> (DfsCluster, Dataset, Schema, usize) {
    let schema = bob_schema();
    let clean = UserVisitsGenerator::default().node_text(0, 900);
    let (text, n_bad) = inject_bad_records(&clean, &schema, bad_fraction, 5);
    let mut storage = StorageConfig::test_scale(1 << 20); // one big block
    storage.index_partition_size = 32;
    let mut cluster = DfsCluster::new(3, storage);
    let dataset = upload_hail(&mut cluster, &schema, "uv", &[(0, text)], index_config).unwrap();
    (cluster, dataset, schema, n_bad)
}

fn replica_bytes(
    cluster: &DfsCluster,
    block: hail::types::BlockId,
    dn: hail::types::DatanodeId,
) -> bytes::Bytes {
    let mut ledger = CostLedger::new();
    cluster
        .datanode(dn)
        .unwrap()
        .read_replica(block, &mut ledger)
        .unwrap()
}

/// Upload with sidecars on every replica: each stored replica parses
/// back with the sidecars present, and the namenode's `Dir_rep` entry
/// mirrors exactly what the replica physically stores.
#[test]
fn uploaded_sidecars_round_trip_and_mirror_dir_rep() {
    let schema = bob_schema();
    let country = schema.index_of("countryCode").unwrap();
    let config = ReplicaIndexConfig::first_indexed(3, &[2])
        .with_bitmap(country)
        .with_inverted_list();
    let (cluster, dataset, _, n_bad) = weblog_cluster(0.05, &config);
    assert!(n_bad > 10);

    for &block in &dataset.blocks {
        for dn in cluster.namenode().get_hosts(block).unwrap() {
            let parsed = IndexedBlock::parse(replica_bytes(&cluster, block, dn)).unwrap();
            // The sidecars were persisted with the replica...
            let bitmap = parsed
                .bitmap(country)
                .unwrap()
                .expect("bitmap sidecar stored");
            assert!(bitmap.cardinality() <= DEFAULT_CARDINALITY_LIMIT);
            let inverted = parsed
                .inverted_list()
                .unwrap()
                .expect("inverted list stored");
            assert_eq!(inverted.record_count(), n_bad);
            // ...and Dir_rep mirrors the replica's trailer exactly.
            let info = cluster.namenode().replica_info(block, dn).unwrap();
            assert_eq!(&info.index, parsed.metadata());
            assert_eq!(info.replica_bytes, parsed.byte_len());
            let side = info.index.bitmap_on(country).unwrap();
            assert_eq!(side.sidecar_bytes, bitmap.byte_len());
            assert!(info.index.inverted_list().is_some());
        }
        assert_eq!(
            cluster
                .namenode()
                .get_hosts_with_bitmap(block, country)
                .unwrap()
                .len(),
            3
        );
        assert_eq!(
            cluster
                .namenode()
                .get_hosts_with_inverted_list(block)
                .unwrap()
                .len(),
            3
        );
    }
}

/// The planner routes equality on the bitmapped column through the
/// persisted sidecar, and the results equal a full-scan oracle.
#[test]
fn bitmap_scan_over_persisted_sidecar_matches_oracle() {
    let schema = bob_schema();
    let country = schema.index_of("countryCode").unwrap();
    let config = ReplicaIndexConfig::first_indexed(3, &[2]).with_bitmap(country);
    let (cluster, dataset, schema, _) = weblog_cluster(0.0, &config);

    let filter = format!("@{} = 'USA'", country + 1);
    let query = HailQuery::parse(&filter, "{@1}", &schema).unwrap();
    let planner = QueryPlanner::new(&cluster);
    let plan = planner.plan_dataset(&dataset, &query).unwrap();

    let mut via_bitmap: Vec<String> = Vec::new();
    for bp in &plan.blocks {
        assert_eq!(bp.kind, AccessPathKind::BitmapScan);
        assert!(bp.sidecar_bytes.is_some(), "priced from the stored size");
        let mut stats_records = Vec::new();
        let stats = planner
            .execute_block(&plan, bp.block, bp.replica, &schema, &query, &mut |r| {
                stats_records.push(r)
            })
            .unwrap();
        assert!(stats.sidecar_bytes_read > 0, "the sidecar was read");
        via_bitmap.extend(
            stats_records
                .iter()
                .filter(|r| !r.bad)
                .map(|r| r.row.to_string()),
        );
    }

    // Oracle: full scan of every block, filtered by hand.
    let scan_query = HailQuery::full_scan();
    let scan_plan = planner.plan_dataset(&dataset, &scan_query).unwrap();
    let mut via_scan: Vec<String> = Vec::new();
    for bp in &scan_plan.blocks {
        planner
            .execute_block(
                &scan_plan,
                bp.block,
                bp.replica,
                &schema,
                &scan_query,
                &mut |r| {
                    if !r.bad && r.row.get(country).unwrap().as_str() == Some("USA") {
                        via_scan.push(r.row.project(&[0]).to_string());
                    }
                },
            )
            .unwrap();
    }
    via_bitmap.sort();
    via_scan.sort();
    assert_eq!(via_bitmap, via_scan);
    assert!(!via_bitmap.is_empty());
}

/// Token searches run off the persisted inverted list and return
/// exactly the bad records a manual scan of the bad-record section
/// finds.
#[test]
fn inverted_list_scan_over_persisted_sidecar_matches_oracle() {
    let config = ReplicaIndexConfig::first_indexed(3, &[2]).with_inverted_list();
    let (cluster, dataset, schema, n_bad) = weblog_cluster(0.08, &config);
    assert!(n_bad > 20);

    // The ExtraFields mangle appends `|unexpected|trailing` to a row;
    // "trailing" is a token only bad records contain.
    let planner_config = PlannerConfig {
        bad_record_tokens: vec!["trailing".into()],
        ..Default::default()
    };
    let planner = QueryPlanner::with_config(&cluster, planner_config);
    let query = HailQuery::full_scan();
    let plan = planner.plan_dataset(&dataset, &query).unwrap();

    let mut found: Vec<String> = Vec::new();
    for bp in &plan.blocks {
        assert_eq!(bp.kind, AccessPathKind::InvertedListScan);
        let stats = planner
            .execute_block(&plan, bp.block, bp.replica, &schema, &query, &mut |r| {
                assert!(r.bad);
                found.push(r.row.get(0).unwrap().as_str().unwrap().to_string());
            })
            .unwrap();
        assert!(stats.sidecar_bytes_read > 0);
    }

    // Oracle: every stored bad record containing the token, by hand.
    let mut expected: Vec<String> = Vec::new();
    for &block in &dataset.blocks {
        let dn = cluster.namenode().get_hosts(block).unwrap()[0];
        let parsed = IndexedBlock::parse(replica_bytes(&cluster, block, dn)).unwrap();
        expected.extend(
            parsed
                .pax()
                .bad_records()
                .unwrap()
                .into_iter()
                .filter(|l| l.to_lowercase().contains("trailing")),
        );
    }
    found.sort();
    expected.sort();
    assert_eq!(found, expected);
    assert!(!found.is_empty());
}

/// Acceptance: on a dataset whose replicas never stored sidecars, the
/// planner does not merely avoid *choosing* the sidecar paths — it
/// never even enumerates them as candidates.
#[test]
fn sidecar_less_replicas_never_offer_sidecar_paths() {
    let schema = bob_schema();
    let country = schema.index_of("countryCode").unwrap();
    let config = ReplicaIndexConfig::first_indexed(3, &[2]); // no sidecars
    let (cluster, dataset, schema, _) = weblog_cluster(0.05, &config);

    let filter = format!("@{} = 'USA'", country + 1);
    let query = HailQuery::parse(&filter, "", &schema).unwrap();
    let plan = QueryPlanner::new(&cluster)
        .plan_dataset(&dataset, &query)
        .unwrap();
    for bp in &plan.blocks {
        assert_ne!(bp.kind, AccessPathKind::BitmapScan);
        assert!(
            bp.candidates
                .iter()
                .all(|c| c.kind != AccessPathKind::BitmapScan),
            "no bitmap candidate may exist without a stored sidecar"
        );
    }

    // A token search has no fallback path at all: it errors loudly.
    let planner_config = PlannerConfig {
        bad_record_tokens: vec!["garbage".into()],
        ..Default::default()
    };
    let err = QueryPlanner::with_config(&cluster, planner_config)
        .plan_dataset(&dataset, &HailQuery::full_scan())
        .unwrap_err();
    assert!(err.to_string().contains("inverted-list sidecar"), "{err}");
}

/// Failover: when the only replica storing the bitmap sidecar dies, the
/// planner falls back to a full scan — and flags it — instead of
/// routing a bitmap scan to a replica that cannot serve it.
#[test]
fn failover_to_full_scan_when_sidecar_replica_dies() {
    let schema = bob_schema();
    let country = schema.index_of("countryCode").unwrap();
    // Only chain position 0 stores the bitmap; no clustered indexes, so
    // losing the sidecar leaves nothing but scanning.
    let config = ReplicaIndexConfig::unindexed(3).with_bitmap_on(0, country);
    let (mut cluster, dataset, schema, _) = weblog_cluster(0.0, &config);

    let filter = format!("@{} = 'USA'", country + 1);
    let query = HailQuery::parse(&filter, "", &schema).unwrap();
    let block = dataset.blocks[0];

    let holders = cluster
        .namenode()
        .get_hosts_with_bitmap(block, country)
        .unwrap();
    assert_eq!(holders.len(), 1, "sidecar on one chain position only");
    let planner = QueryPlanner::new(&cluster);
    let before = planner.plan_dataset(&dataset, &query).unwrap();
    let bp = before.block_plan(block).unwrap();
    assert_eq!(bp.kind, AccessPathKind::BitmapScan);
    assert_eq!(bp.replica, holders[0], "only the holder can serve it");
    assert_eq!(
        bp.locations,
        vec![holders[0]],
        "scheduling locations exclude sidecar-less replicas for a sidecar path"
    );

    cluster.kill_node(holders[0]).unwrap();
    let planner = QueryPlanner::new(&cluster);
    let after = planner.plan_dataset(&dataset, &query).unwrap();
    let bp = after.block_plan(block).unwrap();
    assert_eq!(bp.kind, AccessPathKind::FullScan);
    assert!(bp.fallback, "index wanted, sidecar lost → fallback");
    assert!(
        bp.candidates
            .iter()
            .all(|c| c.kind != AccessPathKind::BitmapScan),
        "survivors carry no bitmap, so no bitmap candidate"
    );

    // The surviving replicas still answer the query correctly.
    let mut rows = Vec::new();
    planner
        .execute_block(&after, block, bp.replica, &schema, &query, &mut |r| {
            if !r.bad {
                rows.push(r.row.clone());
            }
        })
        .unwrap();
    assert!(!rows.is_empty());
    assert!(rows
        .iter()
        .all(|r| r.get(country).unwrap().as_str() == Some("USA")));
}

/// A configured bitmap column that turns out to be high-cardinality is
/// skipped at build time: the upload succeeds, `Dir_rep` records no
/// sidecar, and the planner never offers the path.
#[test]
fn high_cardinality_bitmap_falls_back_to_no_sidecar() {
    let schema = bob_schema();
    let ip = schema.index_of("sourceIP").unwrap(); // ~unique per row
    let country = schema.index_of("countryCode").unwrap();
    let config = ReplicaIndexConfig::unindexed(3)
        .with_bitmap(ip)
        .with_bitmap(country);
    let (cluster, dataset, schema, _) = weblog_cluster(0.0, &config);

    let block = dataset.blocks[0];
    assert!(
        cluster
            .namenode()
            .get_hosts_with_bitmap(block, ip)
            .unwrap()
            .is_empty(),
        "high-cardinality column stores no bitmap"
    );
    assert_eq!(
        cluster
            .namenode()
            .get_hosts_with_bitmap(block, country)
            .unwrap()
            .len(),
        3,
        "the low-cardinality column still does"
    );

    let filter = format!("@{} = '158.112.27.3'", ip + 1);
    let query = HailQuery::parse(&filter, "", &schema).unwrap();
    let plan = QueryPlanner::new(&cluster)
        .plan_dataset(&dataset, &query)
        .unwrap();
    for bp in &plan.blocks {
        assert!(bp
            .candidates
            .iter()
            .all(|c| c.kind != AccessPathKind::BitmapScan));
    }
}

/// A corrupt sidecar directory entry (bad kind tag) fails the replica
/// parse instead of yielding a half-readable block.
#[test]
fn corrupt_sidecar_tag_fails_replica_parse() {
    let schema = bob_schema();
    let country = schema.index_of("countryCode").unwrap();
    let config = ReplicaIndexConfig::unindexed(3).with_bitmap(country);
    let (cluster, dataset, _, _) = weblog_cluster(0.0, &config);

    let block = dataset.blocks[0];
    let dn = cluster.namenode().get_hosts(block).unwrap()[0];
    let raw = replica_bytes(&cluster, block, dn);
    let good = IndexedBlock::parse(raw.clone()).unwrap();
    assert!(good.bitmap(country).unwrap().is_some());

    // The sidecar descriptor's kind tag sits 20 bytes into the metadata
    // record, which sits right before the fixed 20-byte footer.
    let meta_len = good.metadata().to_bytes().len();
    let mut corrupt = raw.to_vec();
    let tag_pos = corrupt.len() - 20 - meta_len + 20;
    corrupt[tag_pos] = 250;
    let err = IndexedBlock::parse(bytes::Bytes::from(corrupt)).unwrap_err();
    assert!(err.to_string().contains("unknown index kind"), "{err}");
}
