//! End-to-end equivalence: every paper query returns *identical* results
//! on the Hadoop text path, the Hadoop++ trojan path, the HAIL index
//! path, and the HAIL scan path — all checked against a direct oracle
//! evaluation over the original text.

use hail::prelude::*;

fn run(
    cluster: &DfsCluster,
    spec: &ClusterSpec,
    dataset: &Dataset,
    query: &HailQuery,
    splitting: bool,
) -> Vec<Row> {
    let run = match dataset.format {
        DatasetFormat::HadoopText => {
            let format = HadoopInputFormat::new(dataset.clone(), query.clone());
            let job = MapJob::collecting("q", dataset.blocks.clone(), &format);
            run_map_job(cluster, spec, &job).unwrap()
        }
        DatasetFormat::HadoopPlusPlus => {
            let format = HadoopPlusPlusInputFormat::new(dataset.clone(), query.clone());
            let job = MapJob::collecting("q", dataset.blocks.clone(), &format);
            run_map_job(cluster, spec, &job).unwrap()
        }
        DatasetFormat::HailPax => {
            let mut format = HailInputFormat::new(dataset.clone(), query.clone());
            format.splitting = splitting;
            let job = MapJob::collecting("q", dataset.blocks.clone(), &format);
            run_map_job(cluster, spec, &job).unwrap()
        }
    };
    run.output
}

fn storage() -> StorageConfig {
    let mut s = StorageConfig::test_scale(4 * 1024);
    s.index_partition_size = 8;
    s
}

#[test]
fn bob_queries_agree_across_all_paths() {
    let schema = bob_schema();
    let texts = UserVisitsGenerator::default().generate(3, 1500);
    let spec = ClusterSpec::new(3, HardwareProfile::physical());

    let mut hadoop_cluster = DfsCluster::new(3, storage());
    let hadoop = upload_hadoop(&mut hadoop_cluster, &schema, "uv", &texts).unwrap();
    let mut hail_cluster = DfsCluster::new(3, storage());
    let hail = upload_hail(
        &mut hail_cluster,
        &schema,
        "uv",
        &texts,
        &ReplicaIndexConfig::first_indexed(3, &[2, 0, 3]),
    )
    .unwrap();
    let mut hpp_cluster = DfsCluster::new(3, storage());
    let (hpp, _) =
        upload_hadoop_plus_plus(&mut hpp_cluster, &spec, &schema, "uv", &texts, Some(0)).unwrap();

    for q in bob_queries() {
        let query = q.to_query(&schema).unwrap();
        let expected = canonical(&oracle_eval(&texts, &schema, &query));
        assert!(
            !expected.is_empty() || q.id == "Bob-Q3",
            "{} should match something",
            q.id
        );
        let h = canonical(&run(&hadoop_cluster, &spec, &hadoop, &query, false));
        let a1 = canonical(&run(&hail_cluster, &spec, &hail, &query, false));
        let a2 = canonical(&run(&hail_cluster, &spec, &hail, &query, true));
        let p = canonical(&run(&hpp_cluster, &spec, &hpp, &query, false));
        assert_eq!(h, expected, "{}: Hadoop vs oracle", q.id);
        assert_eq!(a1, expected, "{}: HAIL (default splits) vs oracle", q.id);
        assert_eq!(a2, expected, "{}: HAIL (HailSplitting) vs oracle", q.id);
        assert_eq!(p, expected, "{}: Hadoop++ vs oracle", q.id);
    }
}

#[test]
fn synthetic_queries_agree_across_all_paths() {
    let schema = synthetic_schema();
    let texts = SyntheticGenerator::default().generate(3, 1200);
    let spec = ClusterSpec::new(3, HardwareProfile::physical());

    let mut hadoop_cluster = DfsCluster::new(3, storage());
    let hadoop = upload_hadoop(&mut hadoop_cluster, &schema, "syn", &texts).unwrap();
    let mut hail_cluster = DfsCluster::new(3, storage());
    let hail = upload_hail(
        &mut hail_cluster,
        &schema,
        "syn",
        &texts,
        &ReplicaIndexConfig::first_indexed(3, &[0, 1, 2]),
    )
    .unwrap();
    let mut hpp_cluster = DfsCluster::new(3, storage());
    let (hpp, _) =
        upload_hadoop_plus_plus(&mut hpp_cluster, &spec, &schema, "syn", &texts, Some(0)).unwrap();

    for q in synthetic_queries() {
        let query = q.to_query(&schema).unwrap();
        let expected = canonical(&oracle_eval(&texts, &schema, &query));
        assert!(!expected.is_empty(), "{} should match something", q.id);
        assert_eq!(
            canonical(&run(&hadoop_cluster, &spec, &hadoop, &query, false)),
            expected,
            "{}: Hadoop",
            q.id
        );
        assert_eq!(
            canonical(&run(&hail_cluster, &spec, &hail, &query, true)),
            expected,
            "{}: HAIL",
            q.id
        );
        assert_eq!(
            canonical(&run(&hpp_cluster, &spec, &hpp, &query, false)),
            expected,
            "{}: Hadoop++",
            q.id
        );
    }
}

#[test]
fn bad_records_survive_upload_and_reach_the_map_function() {
    use hail::workloads::badness::inject_bad_records;
    let schema = bob_schema();
    let clean = UserVisitsGenerator::default().node_text(0, 800);
    let (dirty, n_bad) = inject_bad_records(&clean, &schema, 0.05, 11);
    assert!(n_bad > 10);

    let mut cluster = DfsCluster::new(3, storage());
    let dataset = upload_hail(
        &mut cluster,
        &schema,
        "uv",
        &[(0, dirty.clone())],
        &ReplicaIndexConfig::first_indexed(3, &[2]),
    )
    .unwrap();

    // Run a full scan and count bad records handed to the map function.
    let query = HailQuery::full_scan();
    let format = HailInputFormat::new(dataset.clone(), query);
    let bad_seen = std::sync::atomic::AtomicUsize::new(0);
    let job = MapJob {
        name: "badscan".into(),
        input: dataset.blocks.clone(),
        format: &format,
        parallelism: None,
        job_parallelism: None,
        map: Box::new(|rec, out| {
            if rec.bad {
                bad_seen.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            } else {
                out.push(rec.row.clone());
            }
        }),
    };
    let spec = ClusterSpec::new(3, HardwareProfile::physical());
    let run = run_map_job(&cluster, &spec, &job).unwrap();
    assert_eq!(
        bad_seen.load(std::sync::atomic::Ordering::Relaxed),
        n_bad,
        "every bad record must reach map()"
    );
    assert_eq!(run.output.len(), 800 - n_bad);
}

#[test]
fn projections_and_row_order_content() {
    // Projection must reorder columns exactly as requested.
    let schema = bob_schema();
    let texts = UserVisitsGenerator::default().generate(1, 300);
    let mut cluster = DfsCluster::new(3, storage());
    let dataset = upload_hail(
        &mut cluster,
        &schema,
        "uv",
        &texts,
        &ReplicaIndexConfig::first_indexed(3, &[3]),
    )
    .unwrap();
    let spec = ClusterSpec::new(3, HardwareProfile::physical());
    // Project duration then sourceIP (reversed order).
    let query = HailQuery::parse("@4 >= 1 and @4 <= 50", "{@9, @1}", &schema).unwrap();
    let format = HailInputFormat::new(dataset.clone(), query.clone());
    let job = MapJob::collecting("proj", dataset.blocks.clone(), &format);
    let run = run_map_job(&cluster, &spec, &job).unwrap();
    assert!(!run.output.is_empty());
    for row in &run.output {
        assert_eq!(row.len(), 2);
        assert!(
            row.get(0).unwrap().as_i32().is_some(),
            "first col = duration"
        );
        assert!(
            row.get(1).unwrap().as_str().is_some(),
            "second col = sourceIP"
        );
    }
    let expected = canonical(&oracle_eval(&texts, &schema, &query));
    assert_eq!(canonical(&run.output), expected);
}
