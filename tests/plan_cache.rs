//! Adaptive planning end to end: the fingerprinted plan cache and the
//! selectivity-feedback loop.
//!
//! Covers the acceptance criteria of the adaptive-planning change: a
//! repeated `read_split` with an identical filter shape performs zero
//! cost-model evaluations (asserted via the cache's pricing counter);
//! replica death evicts exactly the affected block entries and failover
//! re-plans; a changed `ReplicaIndexConfig` fingerprint misses the
//! cache; and observed selectivity feedback flips a plan the static
//! prior had mispriced.

use hail::exec::{
    PlanCache, PlannerConfig, QueryPlanner, SelectivityEstimate, SelectivityFeedback,
};
use hail::prelude::*;
use std::sync::Arc;

fn storage() -> StorageConfig {
    let mut s = StorageConfig::test_scale(4 * 1024);
    s.index_partition_size = 16;
    s
}

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::VarChar),
    ])
    .unwrap()
}

/// A 4-node cluster with one clustered index on @1 (replica 0 of 3).
fn setup(rows: usize) -> (DfsCluster, Dataset) {
    let mut cluster = DfsCluster::new(4, storage());
    let text: String = (0..rows)
        .map(|i| format!("{}|w{i}\n", (i * 7) % 500))
        .collect();
    let dataset = upload_hail(
        &mut cluster,
        &schema(),
        "t",
        &[(0, text)],
        &ReplicaIndexConfig::first_indexed(3, &[0]),
    )
    .unwrap();
    (cluster, dataset)
}

fn cached_config(cache: &Arc<PlanCache>) -> PlannerConfig {
    PlannerConfig {
        plan_cache: Some(Arc::clone(cache)),
        ..Default::default()
    }
}

/// Acceptance: a repeated `read_split` with an identical filter shape
/// performs **zero** cost-model evaluations — every block plan comes
/// out of the cache, and the per-task counters say so.
#[test]
fn repeated_read_split_prices_nothing() {
    let (cluster, dataset) = setup(800);
    let cache = Arc::new(PlanCache::default());
    let query = HailQuery::parse("@1 between(100, 140)", "{@2}", &schema()).unwrap();
    let format = HailInputFormat::new(dataset.clone(), query).with_planner(cached_config(&cache));

    let split_plan = format.splits(&cluster, &dataset.blocks).unwrap();
    let read_all = |label: &str| {
        let mut total = TaskStats::default();
        for split in &split_plan.splits {
            let stats = format
                .read_split(&cluster, split, split.locations[0], &mut |_| {})
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            total.merge(&stats);
        }
        total
    };

    // First pass: split planning already warmed the cache, so the reads
    // hit; whatever was priced happened exactly once.
    let first = read_all("first");
    let warm = cache.stats();
    assert!(warm.misses > 0, "cold planning priced something");
    assert_eq!(warm.misses, dataset.blocks.len() as u64);
    assert!(first.plan_cache_hits > 0);

    // Second pass, identical filter shape: all hits, and — the core
    // claim — not a single additional cost-model evaluation.
    let second = read_all("second");
    let after = cache.stats();
    assert_eq!(
        after.cost_evaluations, warm.cost_evaluations,
        "a repeated read_split must not price any candidate"
    );
    assert_eq!(
        second.plan_cache_hits,
        dataset.blocks.len() as u64,
        "every block plan served from the cache"
    );
    assert_eq!(second.plan_cache_misses, 0);
    assert_eq!(after.hits - warm.hits, dataset.blocks.len() as u64);

    // A *different* filter shape (equality instead of range) is its own
    // cache entry and must be priced.
    let eq_query = HailQuery::parse("@1 = 107", "", &schema()).unwrap();
    let eq_format =
        HailInputFormat::new(dataset.clone(), eq_query).with_planner(cached_config(&cache));
    eq_format.splits(&cluster, &dataset.blocks).unwrap();
    assert!(
        cache.stats().cost_evaluations > after.cost_evaluations,
        "a new filter shape is freshly priced"
    );
}

/// The cache-aware planner and the stateless planner agree on every
/// plan — memoization must never change a decision.
#[test]
fn cached_plans_match_fresh_plans() {
    let (cluster, dataset) = setup(600);
    let cache = Arc::new(PlanCache::default());
    let query = HailQuery::parse("@1 between(50, 90)", "", &schema()).unwrap();
    let fresh = QueryPlanner::new(&cluster)
        .plan_dataset(&dataset, &query)
        .unwrap();
    let cached_planner = QueryPlanner::with_config(&cluster, cached_config(&cache));
    cached_planner.plan_dataset(&dataset, &query).unwrap(); // warm
    let warm = cached_planner.plan_dataset(&dataset, &query).unwrap();
    for (a, b) in fresh.blocks.iter().zip(&warm.blocks) {
        assert_eq!(a.block, b.block);
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.replica, b.replica);
        assert_eq!(a.locations, b.locations);
        assert!((a.est_seconds - b.est_seconds).abs() < 1e-12);
        assert!(b.cached, "second pass served from cache");
        assert!(!a.cached);
    }
    let text = warm.explain();
    assert!(
        text.contains("[cached]"),
        "explain annotates cache hits:\n{text}"
    );
    assert!(fresh.explain().contains("[priced]"));
}

/// Acceptance: replica death evicts only the affected block entries —
/// blocks with no replica on the dead node keep hitting the cache.
#[test]
fn replica_death_evicts_only_affected_blocks() {
    // Two writers far apart on a 6-node cluster with replication 2, so
    // the two halves of the dataset live on disjoint node sets.
    let mut cluster = DfsCluster::new(6, storage().with_replication(2));
    let text_for = |base: usize| -> String {
        (0..400)
            .map(|i| format!("{}|w{i}\n", (base + i * 3) % 300))
            .collect()
    };
    let dataset = upload_hail(
        &mut cluster,
        &schema(),
        "t",
        &[(0, text_for(0)), (3, text_for(7))],
        &ReplicaIndexConfig::first_indexed(2, &[0]),
    )
    .unwrap();

    let hosts: Vec<Vec<usize>> = dataset
        .blocks
        .iter()
        .map(|&b| cluster.namenode().get_hosts(b).unwrap())
        .collect();
    // A node hosting some blocks but not all of them.
    let victim = (0..6)
        .find(|dn| hosts.iter().any(|h| h.contains(dn)) && !hosts.iter().all(|h| h.contains(dn)))
        .expect("writers far apart must produce disjoint replica sets");
    let affected: Vec<bool> = hosts.iter().map(|h| h.contains(&victim)).collect();
    let n_affected = affected.iter().filter(|&&a| a).count();
    assert!(n_affected > 0 && n_affected < dataset.blocks.len());

    let cache = Arc::new(PlanCache::default());
    let planner = QueryPlanner::with_config(&cluster, cached_config(&cache));
    let query = HailQuery::parse("@1 between(10, 25)", "", &schema()).unwrap();
    planner.plan_dataset(&dataset, &query).unwrap(); // warm
    let warm = cache.stats();
    assert_eq!(cache.len(), dataset.blocks.len());

    cluster.kill_node(victim).unwrap();
    let replanned = QueryPlanner::with_config(&cluster, cached_config(&cache))
        .plan_dataset(&dataset, &query)
        .unwrap();
    let after = cache.stats();
    assert_eq!(
        after.evictions - warm.evictions,
        n_affected as u64,
        "exactly the entries whose fingerprint involved the dead node"
    );
    assert_eq!(
        after.hits - warm.hits,
        (dataset.blocks.len() - n_affected) as u64,
        "unaffected blocks keep hitting"
    );
    assert_eq!(after.misses - warm.misses, n_affected as u64);
    // The re-planned blocks avoid the dead node.
    for (bp, &was_affected) in replanned.blocks.iter().zip(&affected) {
        assert_ne!(bp.replica, victim);
        assert_eq!(bp.cached, !was_affected);
    }
}

/// Failover re-plans through the cache: killing the planned index
/// replica invalidates its entries and the read degrades to a scan on a
/// surviving replica, with the same rows coming back.
#[test]
fn failover_replans_and_degrades_to_scan() {
    let (mut cluster, dataset) = setup(500);
    let cache = Arc::new(PlanCache::default());
    let query = HailQuery::parse("@1 between(30, 60)", "", &schema()).unwrap();
    let planner_config = cached_config(&cache);

    let planner = QueryPlanner::with_config(&cluster, planner_config.clone());
    let plan = planner.plan_dataset(&dataset, &query).unwrap();
    let block = dataset.blocks[0];
    let bp = plan.block_plan(block).unwrap();
    assert_eq!(bp.kind, AccessPathKind::ClusteredIndexScan);
    let indexed_replica = bp.replica;

    // Expected rows via a fresh full scan before the failure.
    let mut expected = 0u64;
    QueryPlanner::new(&cluster)
        .execute_block(&plan, block, 0, &schema(), &query, &mut |r| {
            if !r.bad {
                expected += 1;
            }
        })
        .unwrap();

    cluster.kill_node(indexed_replica).unwrap();
    let planner = QueryPlanner::with_config(&cluster, planner_config);
    let mut got = 0u64;
    let stats = planner
        .execute_block(&plan, block, 0, &schema(), &query, &mut |r| {
            if !r.bad {
                got += 1;
            }
        })
        .unwrap();
    assert_eq!(got, expected, "failover must not lose or invent rows");
    assert!(
        stats.fell_back_to_scan,
        "only the dead replica had an index: execution degrades to scan"
    );
    assert!(
        cache.stats().evictions > 0,
        "the death invalidated the memoized plans"
    );
    // The cache now holds (and serves) the degraded plan.
    let replan = planner.plan_dataset(&dataset, &query).unwrap();
    assert_eq!(
        replan.block_plan(block).unwrap().kind,
        AccessPathKind::FullScan
    );
    let again = planner.plan_dataset(&dataset, &query).unwrap();
    assert!(again.block_plan(block).unwrap().cached);
}

/// Acceptance: a changed `ReplicaIndexConfig` changes the replica-index
/// fingerprint — same blocks, same filter shape, but the cache must not
/// serve plans built for the old physical design. The sidecar directory
/// alone is enough to change the fingerprint.
#[test]
fn changed_index_config_fingerprint_misses() {
    let schema = Schema::new(vec![
        Field::new("country", DataType::VarChar),
        Field::new("v", DataType::Int),
    ])
    .unwrap();
    let mut storage_cfg = storage();
    storage_cfg.index_partition_size = 32;
    let text: String = (0..400)
        .map(|i| format!("{}|{}\n", ["USA", "DEU", "FRA", "BRA"][i % 4], i))
        .collect();
    let upload = |config: &ReplicaIndexConfig| -> (DfsCluster, Dataset) {
        let mut c = DfsCluster::new(3, storage_cfg.clone());
        let ds = upload_hail(&mut c, &schema, "t", &[(0, text.clone())], config).unwrap();
        (c, ds)
    };
    // Identical primary indexes; the second design only adds a bitmap
    // sidecar over @1.
    let (cluster_a, ds_a) = upload(&ReplicaIndexConfig::first_indexed(3, &[1]));
    let (cluster_b, ds_b) = upload(&ReplicaIndexConfig::first_indexed(3, &[1]).with_bitmap(0));
    assert_eq!(ds_a.blocks, ds_b.blocks, "same data, same block ids");

    let cache = Arc::new(PlanCache::default());
    let query = HailQuery::parse("@1 = 'DEU'", "{@2}", &schema).unwrap();
    QueryPlanner::with_config(&cluster_a, cached_config(&cache))
        .plan_dataset(&ds_a, &query)
        .unwrap();
    let warm = cache.stats();

    let plan_b = QueryPlanner::with_config(&cluster_b, cached_config(&cache))
        .plan_dataset(&ds_b, &query)
        .unwrap();
    let after = cache.stats();
    assert_eq!(after.hits, warm.hits, "stale-design plans never served");
    assert_eq!(
        after.fingerprint_invalidations - warm.fingerprint_invalidations,
        ds_b.blocks.len() as u64,
        "every stale entry was detected and replaced"
    );
    // And the re-priced plans actually use the new physical design.
    for bp in &plan_b.blocks {
        assert_eq!(bp.kind, AccessPathKind::BitmapScan);
        assert!(!bp.cached);
    }
}

/// Acceptance: observed selectivity feedback flips a plan the static
/// prior had mispriced. The prior claims the filter is highly selective
/// (index territory); the data disagrees (nearly every row matches);
/// sustained execution feedback pushes the effective estimate across
/// the cost model's break-even and the planner switches to the scan —
/// with `explain()` reporting the estimate's provenance throughout.
#[test]
fn feedback_flips_mispriced_plan() {
    let mut cluster = DfsCluster::new(4, storage());
    let schema = schema();
    // Every key lies in [0, 9]: the query below matches ~100% of rows.
    let text: String = (0..700).map(|i| format!("{}|w{i}\n", i % 10)).collect();
    let dataset = upload_hail(
        &mut cluster,
        &schema,
        "t",
        &[(0, text)],
        &ReplicaIndexConfig::first_indexed(3, &[0]),
    )
    .unwrap();
    let query = HailQuery::parse("@1 between(0, 50)", "{@2}", &schema).unwrap();

    let feedback = Arc::new(SelectivityFeedback::default());
    let config = PlannerConfig {
        estimate: SelectivityEstimate::uniform(0.01), // confidently wrong
        feedback: Some(Arc::clone(&feedback)),
        ..Default::default()
    };
    let planner = QueryPlanner::with_config(&cluster, config.clone());

    // The static prior misprices the query: 1% selectivity makes the
    // clustered index look far cheaper than the scan.
    let mispriced = planner.plan_dataset(&dataset, &query).unwrap();
    for bp in &mispriced.blocks {
        assert_eq!(bp.kind, AccessPathKind::ClusteredIndexScan);
    }
    assert!(
        mispriced.explain().contains("(prior)"),
        "{}",
        mispriced.explain()
    );

    // Execute the mispriced plan repeatedly; every block read records
    // its observed key-column selectivity, and the format-level
    // plumbing feeds it into the store split by split.
    let format = HailInputFormat::new(dataset.clone(), query.clone()).with_planner(config);
    let splits = format.splits(&cluster, &dataset.blocks).unwrap();
    for _ in 0..12 {
        for split in &splits.splits {
            format
                .read_split(&cluster, split, split.locations[0], &mut |_| {})
                .unwrap();
        }
    }
    let (observed_mean, weight) = feedback.observed(0, false).expect("observations recorded");
    assert!(
        observed_mean > 0.95,
        "observed ≈ everything matches: {observed_mean}"
    );
    assert!(weight > 10.0, "sustained evidence accumulated: {weight}");

    // Same query, same static prior — but the blended estimate now sits
    // past the break-even and the planner corrects itself.
    let corrected = planner.plan_dataset(&dataset, &query).unwrap();
    for bp in &corrected.blocks {
        assert_eq!(
            bp.kind,
            AccessPathKind::FullScan,
            "feedback flips the mispriced index plan to a scan"
        );
        assert!(bp.est_seconds > mispriced.blocks[0].est_seconds);
    }
    assert!(
        corrected.explain().contains("(observed)"),
        "{}",
        corrected.explain()
    );

    // A planner without the store still trusts the wrong prior — the
    // flip is the feedback's doing, not drift elsewhere.
    let static_plan = QueryPlanner::with_config(
        &cluster,
        PlannerConfig {
            estimate: SelectivityEstimate::uniform(0.01),
            ..Default::default()
        },
    )
    .plan_dataset(&dataset, &query)
    .unwrap();
    assert_eq!(
        static_plan.blocks[0].kind,
        AccessPathKind::ClusteredIndexScan
    );
}

/// The cache counters surface in the job report: a second identical job
/// reads every block plan from the cache.
#[test]
fn job_report_exposes_cache_counters() {
    let (cluster, dataset) = setup(600);
    let cache = Arc::new(PlanCache::default());
    let query = HailQuery::parse("@1 between(5, 45)", "{@2}", &schema()).unwrap();
    let format = HailInputFormat::new(dataset.clone(), query).with_planner(cached_config(&cache));
    let spec = ClusterSpec::new(4, HardwareProfile::physical());

    let job = MapJob::collecting("q", dataset.blocks.clone(), &format);
    let first = run_map_job(&cluster, &spec, &job).unwrap();
    let evals_after_first = cache.stats().cost_evaluations;
    assert_eq!(
        first.report.plan_cache_hits() + first.report.plan_cache_misses(),
        dataset.blocks.len() as u64
    );

    let job = MapJob::collecting("q-again", dataset.blocks.clone(), &format);
    let second = run_map_job(&cluster, &spec, &job).unwrap();
    assert_eq!(second.report.plan_cache_hits(), dataset.blocks.len() as u64);
    assert_eq!(second.report.plan_cache_misses(), 0);
    assert_eq!(
        cache.stats().cost_evaluations,
        evals_after_first,
        "the repeat job priced nothing"
    );
    assert_eq!(first.output.len(), second.output.len());
}
