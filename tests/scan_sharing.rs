//! Cooperative scan sharing end to end: concurrent jobs over
//! overlapping block sets attach to each other's in-flight decodes
//! through the pool's `ScanShareRegistry`, and the sharing is
//! *invisible* everywhere except the telemetry counters.
//!
//! Pins the PR's acceptance criteria:
//!
//! - per-job outputs AND reports (modulo measured wall clocks and the
//!   sharing counters) are bit-for-bit identical to solo runs at
//!   concurrency 1/2/4 for overlapping-block workloads;
//! - at concurrency 1 the managed path provably never attaches — one
//!   job in flight, interest drained (and retained decodes evicted)
//!   before the next admission;
//! - a registry-less pool (the `HAIL_DISABLE_SCAN_SHARING=1`
//!   degradation) produces the same outputs and reports, with zero
//!   sharing counters;
//! - node death interacts safely with retained decodes: a failover
//!   run with the registry in play loses no rows, and a concurrent
//!   batch on the degraded cluster — same registry, potentially
//!   holding decodes from before the death — still matches solo runs
//!   on that cluster (the mid-produce death protocol itself, producer
//!   removal + waiter fallback, is unit-tested in `hail_exec::sharing`);
//! - shared-feedback determinism: identical post-batch
//!   `SelectivityFeedback` state at every concurrency, including
//!   across an adaptive reindex flip whose boundary must not move.

use hail::prelude::*;
use hail_bench::{
    make_shared_format, run_adaptive_workload, run_queries_managed, setup_hail, uv_testbed,
    ExperimentScale, SharedJobInfra, SystemSetup,
};
use hail_exec::{
    env_job_parallelism, env_scan_sharing_enabled, ExecutorConfig, JobPool, JobPoolConfig,
    PlanCache,
};
use hail_mr::{JobReport, JobRun};
use std::sync::Arc;

const CONCURRENCIES: [usize; 3] = [1, 2, 4];

fn uv_setup(rows_per_node: usize, blocks_per_node: usize) -> (hail_bench::Testbed, SystemSetup) {
    let scale = ExperimentScale::query(4, rows_per_node)
        .with_blocks_per_node(blocks_per_node)
        .with_partition_size(64);
    let tb = uv_testbed(scale, HardwareProfile::physical());
    let setup = setup_hail(&tb, &[2, 0, 3]).unwrap(); // visitDate, sourceIP, adRevenue
    (tb, setup)
}

/// A solo run with private infrastructure — the baseline every managed
/// job must reproduce bit-for-bit. The solo pool carries a registry
/// too, but with one job there is never a concurrent decode to attach
/// to: every acquire produces.
fn solo(setup: &SystemSetup, spec: &ClusterSpec, query: &HailQuery, splitting: bool) -> JobRun {
    let infra = SharedJobInfra::for_jobs(1);
    let format = make_shared_format(setup, spec, query, splitting, &infra);
    let job = MapJob::collecting("solo", setup.dataset.blocks.clone(), format.as_ref());
    run_map_job(&setup.cluster, spec, &job).unwrap()
}

/// `JobReport` rendered with the measured-wall-clock fields and the
/// scan-sharing telemetry zeroed — the only fields allowed to vary
/// between a managed and a solo run (which reads attach to another
/// job's decode depends on real thread timing).
fn report_modulo_wall(report: &JobReport) -> String {
    let mut r = report.clone();
    r.job_name = String::new();
    r.queue_wait_seconds = 0.0;
    for t in &mut r.tasks {
        t.reader_wall_seconds = 0.0;
        t.stats.blocks_read_shared = 0;
        t.stats.shared_bytes_saved = 0;
    }
    format!("{r:?}")
}

/// Eight pairwise-distinct filter shapes, repeated `repeats` times:
/// every job scans the whole block set, so any two concurrent jobs
/// overlap on every block, and repeated shapes land on identical
/// (replica, path) choices — the scan-share registry's best case.
fn overlapping_queries(schema: &Schema, repeats: usize) -> Vec<HailQuery> {
    let shapes: Vec<HailQuery> = [
        ("@3 between(1999-01-01, 2000-01-01)", "{@1}"),
        ("@1 = '172.101.11.46'", "{@8, @9, @4}"),
        ("@4 >= 1 and @4 <= 10", "{@8, @9, @4}"),
        ("@8 = 'searchword3'", "{@1, @8}"),
        ("@9 <= 120", "{@1, @9}"),
        ("@4 >= 1 and @4 <= 10 and @9 <= 200", "{@4, @9}"),
        ("@1 = '172.101.11.46' and @4 <= 50", "{@1, @4}"),
        ("@9 <= 4000", "{@1, @9}"),
    ]
    .iter()
    .map(|(f, p)| HailQuery::parse(f, p, schema).unwrap())
    .collect();
    (0..repeats).flat_map(|_| shapes.iter().cloned()).collect()
}

/// The deterministic part of a shared feedback store's state: every
/// observed (column, equality) class with its blended estimate and
/// observation weight, in `BTreeMap` order.
fn feedback_state(infra: &SharedJobInfra) -> String {
    format!("{:?}", infra.feedback.as_ref().expect("shared feedback"))
}

/// `SharedJobInfra` whose pool carries **no** scan-share registry —
/// exactly what `shared_job_pool` builds under
/// `HAIL_DISABLE_SCAN_SHARING=1`, with the same sizing.
fn infra_without_sharing(max_jobs: usize) -> SharedJobInfra {
    let executor = ExecutorConfig::default();
    let job_workers = env_job_parallelism().max(1);
    SharedJobInfra {
        plan_cache: Arc::new(PlanCache::default()),
        feedback: Some(Arc::new(SelectivityFeedback::default())),
        pool: Arc::new(JobPool::new(JobPoolConfig {
            workers: job_workers * max_jobs,
            budget: job_workers.max(executor.parallelism.max(1)) * max_jobs,
            per_node_slots: executor.per_node_slots,
        })),
    }
}

/// Overlapping-block jobs at concurrency 1/2/4: outputs and reports
/// (modulo wall clocks and sharing counters) bit-for-bit against solo
/// runs, the post-batch shared feedback state identical at every
/// concurrency, and the concurrency-1 managed path never attaching.
#[test]
fn overlapping_jobs_match_solo_at_every_concurrency() {
    let (tb, setup) = uv_setup(500, 4);
    let queries = overlapping_queries(&bob_schema(), 3);
    let unique = 8;
    let expected: Vec<JobRun> = queries[..unique]
        .iter()
        .map(|q| solo(&setup, &tb.spec, q, true))
        .collect();

    let mut feedback_baseline: Option<String> = None;
    for conc in CONCURRENCIES {
        let infra = SharedJobInfra::for_jobs(conc);
        // Unless the CI disable leg (`HAIL_DISABLE_SCAN_SHARING=1`)
        // stripped it, the default infra carries a registry.
        assert_eq!(
            infra.pool.scan_share().is_some(),
            env_scan_sharing_enabled()
        );
        let batch = run_queries_managed(
            &setup,
            &tb.spec,
            &queries,
            true,
            &JobManager::new(conc),
            &infra,
        )
        .unwrap();
        assert_eq!(batch.summary.jobs, queries.len());
        assert_eq!(
            batch.summary.logical_blocks,
            (queries.len() * setup.dataset.blocks.len()) as u64
        );
        for (i, run) in batch.runs.iter().enumerate() {
            let exp = &expected[i % unique];
            assert_eq!(
                run.output, exp.output,
                "concurrency {conc}, job {i}: output diverged from solo"
            );
            assert_eq!(
                report_modulo_wall(&run.report),
                report_modulo_wall(&exp.report),
                "concurrency {conc}, job {i}: report must be bit-for-bit modulo wall and sharing"
            );
        }
        // One slot: each job's interest drains (evicting its retained
        // decodes) before the next admission, so nothing to attach to.
        if conc == 1 {
            assert_eq!(
                batch.summary.blocks_read_shared, 0,
                "a single in-flight job can never attach"
            );
            assert_eq!(batch.summary.shared_bytes_saved, 0);
        }
        // Absorption runs in submission order after the batch, so the
        // store's state is a function of the (identical) reports alone.
        let state = feedback_state(&infra);
        match &feedback_baseline {
            None => feedback_baseline = Some(state),
            Some(base) => assert_eq!(
                base, &state,
                "concurrency {conc}: post-batch shared feedback state diverged"
            ),
        }
    }
}

/// With identical concurrent jobs over the same blocks, decodes
/// actually get shared: repeats of one query at concurrency 4 attach
/// (same plan → same (block, replica, shape) keys), saving simulated
/// disk bytes — while outputs still match the solo run.
#[test]
fn identical_concurrent_jobs_share_decodes() {
    let (tb, setup) = uv_setup(400, 4);
    let query = HailQuery::parse("@9 <= 150", "{@1, @9}", &bob_schema()).unwrap();
    let queries: Vec<HailQuery> = (0..16).map(|_| query.clone()).collect();
    let expected = solo(&setup, &tb.spec, &query, true);

    let infra = SharedJobInfra::for_jobs(4);
    let batch = run_queries_managed(
        &setup,
        &tb.spec,
        &queries,
        true,
        &JobManager::new(4),
        &infra,
    )
    .unwrap();
    for run in &batch.runs {
        assert_eq!(run.output, expected.output);
    }
    // Only meaningful with a registry attached (the CI disable leg
    // degrades this test to another output-parity check).
    if let Some(registry) = infra.pool.scan_share() {
        assert!(
            batch.summary.blocks_read_shared > 0,
            "16 identical jobs, 4 in flight over the same blocks: some read must attach"
        );
        assert!(
            batch.summary.shared_bytes_saved > 0,
            "attached reads save the producer's simulated disk bytes"
        );
        assert_eq!(
            registry.retained(),
            0,
            "batch drained: the in-flight tracker evicted every retained decode"
        );
    }
}

/// A registry-less pool — the `HAIL_DISABLE_SCAN_SHARING=1` shape —
/// serves the same batch with identical outputs and reports and zero
/// sharing counters: degradation to independent reads is lossless.
#[test]
fn disabled_sharing_is_bit_for_bit_identical_modulo_counters() {
    let (tb, setup) = uv_setup(400, 4);
    let queries = overlapping_queries(&bob_schema(), 2);

    let disabled = infra_without_sharing(4);
    assert!(disabled.pool.scan_share().is_none());
    let without = run_queries_managed(
        &setup,
        &tb.spec,
        &queries,
        true,
        &JobManager::new(4),
        &disabled,
    )
    .unwrap();
    assert_eq!(without.summary.blocks_read_shared, 0);
    assert_eq!(without.summary.shared_bytes_saved, 0);

    let enabled = SharedJobInfra::for_jobs(4);
    let with = run_queries_managed(
        &setup,
        &tb.spec,
        &queries,
        true,
        &JobManager::new(4),
        &enabled,
    )
    .unwrap();

    assert_eq!(with.runs.len(), without.runs.len());
    for (i, (w, wo)) in with.runs.iter().zip(&without.runs).enumerate() {
        assert_eq!(w.output, wo.output, "job {i}: sharing changed rows");
        assert_eq!(
            report_modulo_wall(&w.report),
            report_modulo_wall(&wo.report),
            "job {i}: sharing may only change the telemetry counters"
        );
    }
    assert_eq!(
        feedback_state(&enabled),
        feedback_state(&disabled),
        "sharing must not perturb the absorbed feedback state"
    );
}

/// Node death with the registry in play: a mid-job failover run built
/// from sharing infra loses no rows, and a subsequent concurrency-4
/// batch on the degraded cluster — same registry, which may still
/// retain decodes produced before the death — matches solo runs on
/// that cluster. Retained decodes are keyed by (block, replica), so
/// dead-replica entries simply become unreachable once the planner
/// stops choosing that replica.
#[test]
fn retained_decodes_survive_node_death_without_poisoning_results() {
    let (tb, mut setup) = uv_setup(500, 4);
    let queries = overlapping_queries(&bob_schema(), 1);
    let infra = SharedJobInfra::for_jobs(4);

    // Mid-job death under the sharing infra: node 1 dies halfway.
    let failover = {
        let format = make_shared_format(&setup, &tb.spec, &queries[0], true, &infra);
        let job = MapJob::collecting(
            "under-failure",
            setup.dataset.blocks.clone(),
            format.as_ref(),
        );
        run_map_job_with_failure(
            &mut setup.cluster,
            &tb.spec,
            &job,
            FailureScenario::at_half(1),
        )
        .unwrap()
    };
    assert!(setup.cluster.live_nodes().len() < 4, "the node stayed dead");
    let oracle = canonical(&oracle_eval(&tb.texts, &tb.schema, &queries[0]));
    assert_eq!(
        canonical(&failover.output),
        oracle,
        "failover with a scan-share registry must not lose or invent rows"
    );

    // Concurrent serving over the degraded cluster, same infra: any
    // decode retained from before the death must not poison results.
    let expected: Vec<JobRun> = queries
        .iter()
        .map(|q| solo(&setup, &tb.spec, q, true))
        .collect();
    let batch = run_queries_managed(
        &setup,
        &tb.spec,
        &queries,
        true,
        &JobManager::new(4),
        &infra,
    )
    .unwrap();
    for (i, (run, exp)) in batch.runs.iter().zip(&expected).enumerate() {
        assert_eq!(
            run.output, exp.output,
            "job {i}: degraded-cluster output diverged"
        );
        for t in &run.report.tasks {
            assert_ne!(t.node, 1, "no task may be scheduled on a dead node");
        }
    }
}

/// The adaptive loop with the infra's own shared store driving the
/// advisor: the FullScan→index flip lands at the same job boundary and
/// the post-workload feedback state is identical at concurrency 1/2/4.
/// Exercises the double-absorption guard in `run_adaptive_workload`
/// (the batch already absorbed — pointer-equal stores must not absorb
/// twice) and the registry clear after each rewrite.
#[test]
fn reindex_flip_boundary_and_feedback_state_hold_at_every_concurrency() {
    let tb = {
        let scale = ExperimentScale::query(4, 400)
            .with_blocks_per_node(4)
            .with_partition_size(64);
        uv_testbed(scale, HardwareProfile::physical())
    };
    // Two replicas (visitDate, sourceIP): duration (@9) is unindexed,
    // and replica 1 is the safe rewrite target.
    let drive = |conc: usize| {
        let mut setup = setup_hail(&tb, &[2, 0]).unwrap();
        let queries: Vec<HailQuery> = {
            let round = [
                ("@9 <= 500", "{@1, @9}"),
                ("@3 between(1999-01-01, 2000-01-01)", "{@1}"),
                ("@1 = '172.101.11.46'", "{@8, @9, @4}"),
                ("@4 >= 1 and @4 <= 10 and @9 <= 5000", "{@4, @9}"),
            ];
            (0..4)
                .flat_map(|_| round.iter())
                .map(|(f, p)| HailQuery::parse(f, p, &tb.schema).unwrap())
                .collect()
        };
        let infra = SharedJobInfra::for_jobs(conc);
        let advisor = ReindexAdvisor::new(ReindexPolicy {
            enabled: true,
            ..ReindexPolicy::default()
        });
        let feedback = infra.feedback.clone().unwrap();
        let run = run_adaptive_workload(
            &mut setup,
            &tb.spec,
            &queries,
            true,
            &JobManager::new(conc),
            &infra,
            &advisor,
            &feedback,
            4,
        )
        .unwrap();
        (run, feedback_state(&infra))
    };

    let (baseline, base_state) = drive(1);
    assert_eq!(baseline.events.len(), 1, "solo run flips exactly once");
    for conc in [2usize, 4] {
        let (run, state) = drive(conc);
        assert_eq!(run.events.len(), 1, "concurrency {conc}: one rebuild");
        assert_eq!(
            run.events[0].after_job, baseline.events[0].after_job,
            "concurrency {conc}: the flip boundary moved"
        );
        assert_eq!(run.events[0].outcome, baseline.events[0].outcome);
        for (i, (r, b)) in run.runs.iter().zip(&baseline.runs).enumerate() {
            assert_eq!(r.output, b.output, "concurrency {conc}, job {i}: output");
            assert_eq!(
                report_modulo_wall(&r.report),
                report_modulo_wall(&b.report),
                "concurrency {conc}, job {i}: report"
            );
        }
        assert_eq!(
            state, base_state,
            "concurrency {conc}: post-workload shared feedback state diverged"
        );
    }
}
