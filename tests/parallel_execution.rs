//! Parallel split execution end to end: the executor must change wall
//! clock only.
//!
//! Acceptance criteria of the parallel-executor change: with
//! parallelism 1 the engine behaves exactly as before; with any higher
//! parallelism the same jobs produce identical output rows **in the
//! same order**, identical simulated-clock reports, identical
//! path/selectivity/cache statistics, and a non-negative framework
//! overhead (wall clock is reported separately and never leaks into
//! the simulated accounting).

use hail::exec::{ExecutorConfig, PlannerConfig};
use hail::mr::{JobReport, SplitContext};
use hail::prelude::*;
use std::sync::Arc;

fn storage() -> StorageConfig {
    let mut s = StorageConfig::test_scale(4 * 1024);
    s.index_partition_size = 16;
    s
}

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::VarChar),
    ])
    .unwrap()
}

/// A 4-node cluster with enough blocks that `HailSplitting` builds
/// multi-block splits (the executor's fan-out unit).
fn setup() -> (DfsCluster, Dataset) {
    let mut cluster = DfsCluster::new(4, storage());
    let texts: Vec<(usize, String)> = (0..4)
        .map(|n| {
            (
                n,
                (0..3000)
                    .map(|i| format!("{}|w{}\n", (i * 7 + n) % 500, i))
                    .collect(),
            )
        })
        .collect();
    let dataset = upload_hail(
        &mut cluster,
        &schema(),
        "t",
        &texts,
        &ReplicaIndexConfig::first_indexed(3, &[0]),
    )
    .unwrap();
    (cluster, dataset)
}

fn run_at(
    cluster: &DfsCluster,
    dataset: &Dataset,
    parallelism: usize,
    planner: PlannerConfig,
) -> (Vec<Row>, JobReport) {
    run_at_levels(cluster, dataset, parallelism, 1, planner)
}

fn run_at_levels(
    cluster: &DfsCluster,
    dataset: &Dataset,
    split_parallelism: usize,
    job_parallelism: usize,
    planner: PlannerConfig,
) -> (Vec<Row>, JobReport) {
    let query = HailQuery::parse("@1 between(40, 90)", "{@2}", &schema()).unwrap();
    let format = HailInputFormat::new(dataset.clone(), query).with_planner(planner);
    let job = MapJob::collecting("par", dataset.blocks.clone(), &format)
        .with_parallelism(split_parallelism)
        .with_job_parallelism(job_parallelism);
    let spec = ClusterSpec::new(4, HardwareProfile::physical());
    let run = run_map_job(cluster, &spec, &job).unwrap();
    (run.output, run.report)
}

/// Every simulated-domain figure of two reports must be bit-for-bit
/// equal; only the measured wall clock may differ.
fn assert_reports_identical(serial: &JobReport, parallel: &JobReport) {
    assert_eq!(serial.task_count(), parallel.task_count());
    assert_eq!(serial.split_count, parallel.split_count);
    assert_eq!(serial.end_to_end_seconds, parallel.end_to_end_seconds);
    assert_eq!(serial.ideal_seconds(), parallel.ideal_seconds());
    assert_eq!(serial.overhead_seconds(), parallel.overhead_seconds());
    assert_eq!(serial.path_counts(), parallel.path_counts());
    assert_eq!(serial.plan_cache_hits(), parallel.plan_cache_hits());
    assert_eq!(serial.plan_cache_misses(), parallel.plan_cache_misses());
    for (a, b) in serial.tasks.iter().zip(&parallel.tasks) {
        assert_eq!(a.split, b.split);
        assert_eq!(a.node, b.node);
        assert_eq!(a.start, b.start);
        assert_eq!(a.end, b.end);
        assert_eq!(a.reader_seconds, b.reader_seconds);
        assert_eq!(a.stats.records, b.stats.records);
        assert_eq!(a.stats.paths, b.stats.paths);
        assert_eq!(a.stats.serial_pricing, b.stats.serial_pricing);
        assert_eq!(a.stats.sidecar_bytes_read, b.stats.sidecar_bytes_read);
        // Selectivity observations in the same (split) order — the
        // order the feedback store's decay depends on.
        assert_eq!(a.stats.selectivity, b.stats.selectivity);
    }
}

/// Acceptance: parallelism 1 is the old behavior, and parallelism
/// 2/4/8 reproduce it bit for bit — output rows in the same order and
/// identical simulated reports.
#[test]
fn any_parallelism_reproduces_the_serial_run() {
    let (cluster, dataset) = setup();
    let multi_block = {
        let query = HailQuery::parse("@1 between(40, 90)", "{@2}", &schema()).unwrap();
        let format = HailInputFormat::new(dataset.clone(), query);
        let plan = format.splits(&cluster, &dataset.blocks).unwrap();
        plan.splits.iter().map(|s| s.blocks.len()).max().unwrap()
    };
    assert!(
        multi_block >= 3,
        "setup must produce multi-block splits, got max {multi_block}"
    );

    let (serial_out, serial_report) = run_at(&cluster, &dataset, 1, PlannerConfig::default());
    assert!(!serial_out.is_empty());
    for parallelism in [2, 4, 8] {
        let (out, report) = run_at(&cluster, &dataset, parallelism, PlannerConfig::default());
        assert_eq!(serial_out, out, "parallelism {parallelism} changed rows");
        assert_reports_identical(&serial_report, &report);
    }
}

/// Acceptance: the adaptive state (shared plan cache + selectivity
/// feedback) converges to the same values under parallel execution —
/// absorption order is split order, not completion order.
#[test]
fn adaptive_state_is_parallelism_invariant() {
    let (cluster, dataset) = setup();
    let run_with_state = |parallelism: usize| {
        let cache = Arc::new(PlanCache::default());
        let feedback = Arc::new(SelectivityFeedback::default());
        let planner = PlannerConfig {
            plan_cache: Some(Arc::clone(&cache)),
            feedback: Some(Arc::clone(&feedback)),
            ..Default::default()
        };
        // Two passes: the second hits the warm cache and plans from
        // absorbed feedback.
        run_at(&cluster, &dataset, parallelism, planner.clone());
        let (out, report) = run_at(&cluster, &dataset, parallelism, planner);
        (out, report, cache, feedback)
    };
    let (serial_out, serial_report, serial_cache, serial_fb) = run_with_state(1);
    let (par_out, par_report, par_cache, par_fb) = run_with_state(4);

    assert_eq!(serial_out, par_out);
    assert_reports_identical(&serial_report, &par_report);
    assert!(serial_report.plan_cache_hits() > 0, "second pass was warm");
    let (s, p) = (serial_cache.stats(), par_cache.stats());
    assert_eq!(s.hits, p.hits);
    assert_eq!(s.misses, p.misses);
    assert_eq!(s.cost_evaluations, p.cost_evaluations);
    // The feedback store's decayed estimate is bit-identical: the
    // executor merged observations in split order both times.
    assert_eq!(serial_fb.observed(0, false), par_fb.observed(0, false));
    assert_eq!(
        serial_fb.observation_count(0, false),
        par_fb.observation_count(0, false)
    );
}

/// Acceptance (satellite): wall clock and simulated reader work are
/// separate domains — a parallel run reports a measured wall clock but
/// its simulated overhead is the serial run's, never negative.
#[test]
fn overhead_accounting_survives_parallel_readers() {
    let (cluster, dataset) = setup();
    let (_, report) = run_at(&cluster, &dataset, 4, PlannerConfig::default());
    assert!(report.overhead_seconds() >= 0.0);
    assert!(report.ideal_seconds() > 0.0);
    // Wall clock is recorded per task and summed, and is a real
    // measurement: non-negative and finite.
    let wall = report.reader_wall_seconds();
    assert!(wall.is_finite() && wall >= 0.0);
    // The simulated reader *work* is unaffected by the fan-out.
    let (_, serial_report) = run_at(&cluster, &dataset, 1, PlannerConfig::default());
    assert_eq!(
        report.total_reader_seconds(),
        serial_report.total_reader_seconds()
    );
}

/// Acceptance: mid-job failure handling (lost-task re-execution and
/// degraded re-reads) is parallelism-invariant too.
#[test]
fn failover_is_parallelism_invariant() {
    let run_failure = |parallelism: usize| {
        let (mut cluster, dataset) = setup();
        let query = HailQuery::parse("@1 between(40, 90)", "{@2}", &schema()).unwrap();
        let format = HailInputFormat::new(dataset.clone(), query);
        let job =
            MapJob::collecting("fo", dataset.blocks.clone(), &format).with_parallelism(parallelism);
        let spec = ClusterSpec::new(4, HardwareProfile::physical());
        run_map_job_with_failure(&mut cluster, &spec, &job, FailureScenario::at_half(1)).unwrap()
    };
    let serial = run_failure(1);
    let parallel = run_failure(4);
    let mut serial_rows: Vec<String> = serial.output.iter().map(Row::to_string).collect();
    let mut parallel_rows: Vec<String> = parallel.output.iter().map(Row::to_string).collect();
    serial_rows.sort();
    parallel_rows.sort();
    assert_eq!(serial_rows, parallel_rows);
    assert_eq!(serial.rerun_count, parallel.rerun_count);
    assert_eq!(serial.slowdown_percent(), parallel.slowdown_percent());
    assert_eq!(
        serial.with_failure.end_to_end_seconds,
        parallel.with_failure.end_to_end_seconds
    );
}

/// Acceptance (job overlap): the full matrix of job-level parallelism
/// 1/2/4 × intra-split parallelism 1/2 reproduces the strictly
/// sequential run bit for bit — output rows in order, every simulated
/// report figure, and the post-job adaptive cache/feedback state.
#[test]
fn job_level_overlap_is_bit_for_bit_invariant() {
    let (cluster, dataset) = setup();
    let run_with_state = |split_p: usize, job_p: usize| {
        let cache = Arc::new(PlanCache::default());
        let feedback = Arc::new(SelectivityFeedback::default());
        let planner = PlannerConfig {
            plan_cache: Some(Arc::clone(&cache)),
            feedback: Some(Arc::clone(&feedback)),
            ..Default::default()
        };
        // Two passes: the second plans from a warm cache and absorbed
        // feedback, so any overlap-order leak into the adaptive state
        // would surface as diverging plans or counters.
        run_at_levels(&cluster, &dataset, split_p, job_p, planner.clone());
        let (out, report) = run_at_levels(&cluster, &dataset, split_p, job_p, planner);
        (out, report, cache, feedback)
    };

    let (base_out, base_report, base_cache, base_fb) = run_with_state(1, 1);
    assert!(!base_out.is_empty());
    for job_p in [1, 2, 4] {
        for split_p in [1, 2] {
            if (job_p, split_p) == (1, 1) {
                continue;
            }
            let (out, report, cache, fb) = run_with_state(split_p, job_p);
            assert_eq!(base_out, out, "job={job_p} split={split_p} changed rows");
            assert_reports_identical(&base_report, &report);
            let (b, p) = (base_cache.stats(), cache.stats());
            assert_eq!(b.hits, p.hits, "job={job_p} split={split_p} cache hits");
            assert_eq!(b.misses, p.misses);
            assert_eq!(b.cost_evaluations, p.cost_evaluations);
            assert_eq!(
                base_fb.observed(0, false),
                fb.observed(0, false),
                "job={job_p} split={split_p} feedback state"
            );
            assert_eq!(
                base_fb.observation_count(0, false),
                fb.observation_count(0, false)
            );
        }
    }
}

/// Acceptance (job overlap): a mid-job failure replayed through the
/// shared job-level pool is bit-for-bit equivalent to the sequential
/// replay — same output, same rerun set, same `T_f`.
#[test]
fn failover_through_the_shared_pool_is_invariant() {
    let run_failure = |split_p: usize, job_p: usize| {
        let (mut cluster, dataset) = setup();
        let query = HailQuery::parse("@1 between(40, 90)", "{@2}", &schema()).unwrap();
        let format = HailInputFormat::new(dataset.clone(), query);
        let job = MapJob::collecting("fo", dataset.blocks.clone(), &format)
            .with_parallelism(split_p)
            .with_job_parallelism(job_p);
        let spec = ClusterSpec::new(4, HardwareProfile::physical());
        run_map_job_with_failure(&mut cluster, &spec, &job, FailureScenario::at_half(1)).unwrap()
    };
    let serial = run_failure(1, 1);
    for (split_p, job_p) in [(1, 4), (2, 2), (2, 4)] {
        let pooled = run_failure(split_p, job_p);
        assert_eq!(serial.output.len(), pooled.output.len());
        for (a, b) in serial.output.iter().zip(&pooled.output) {
            assert_eq!(a, b, "job={job_p} split={split_p} changed output order");
        }
        assert_eq!(serial.rerun_count, pooled.rerun_count);
        assert_eq!(serial.failure_time, pooled.failure_time);
        assert_eq!(serial.slowdown_percent(), pooled.slowdown_percent());
        assert_reports_identical(&serial.with_failure, &pooled.with_failure);
    }
}

/// The scheduler-level override beats the format's own executor config
/// (including the `HAIL_PARALLELISM` default), and a `SplitContext`
/// read honors whichever applies — results identical either way.
#[test]
fn split_context_parallelism_overrides_format_config() {
    let (cluster, dataset) = setup();
    let query = HailQuery::parse("@1 between(40, 90)", "{@2}", &schema()).unwrap();
    let format = HailInputFormat::new(dataset.clone(), query.clone())
        .with_executor(ExecutorConfig::with_parallelism(2).with_per_node_slots(1));
    let plan = format.splits(&cluster, &dataset.blocks).unwrap();
    let split = plan.splits.iter().max_by_key(|s| s.blocks.len()).unwrap();

    let mut via_format = Vec::new();
    format
        .read_split(&cluster, split, split.locations[0], &mut |r| {
            via_format.push(r)
        })
        .unwrap();
    let mut via_override = Vec::new();
    format
        .read_split_with(
            &cluster,
            split,
            &SplitContext::on(split.locations[0]).with_parallelism(8),
            &mut |r| via_override.push(r),
        )
        .unwrap();
    assert_eq!(via_format, via_override);
    assert!(!via_format.is_empty());
}
