//! The aggressive-elephant loop, closed end to end: sustained
//! `SelectivityFeedback` evidence on an unindexed column triggers an
//! in-place replica rewrite between job batches, the design epoch
//! bumps, and the very next job re-plans FullScan → index — with no
//! operator action.
//!
//! Pins the PR's acceptance criteria:
//!
//! - a repeated selective workload flips from FullScan to
//!   ClusteredIndexScan at a deterministic job boundary;
//! - equality evidence on a low-cardinality column builds a bitmap
//!   sidecar instead, and the planner picks BitmapScan;
//! - the flip boundary, per-job outputs, and reports (modulo measured
//!   wall clocks) are bit-for-bit identical at
//!   `HAIL_MAX_CONCURRENT_JOBS` 1/2/4 — re-indexing does not perturb
//!   the multi-job determinism contract;
//! - killing the replica that holds a freshly built adaptive index
//!   mid-workload loses no rows, and subsequent planning degrades
//!   gracefully to the surviving replicas' paths;
//! - a default-policy advisor honours `HAIL_DISABLE_REINDEX=1` (the
//!   CI disable leg): evidence accumulates but the design never moves.

use hail::prelude::*;
use hail_bench::{
    run_adaptive_workload, run_query, run_query_with_failure, setup_hail, uv_testbed, AdaptiveRun,
    ExperimentScale, SharedJobInfra, SystemSetup, Testbed,
};
use hail_exec::env_reindex_enabled;
use hail_mr::JobReport;
use hail_types::BlockId;

/// duration (@9, 0-based column 8): uniform 1..10_000, so `@9 <= 500`
/// is ~5% selective — well under the advisor's 0.15 ceiling.
const DURATION_COL: usize = 8;
/// searchWord (@8, 0-based column 7): 12 distinct values, bitmap-able.
const SEARCHWORD_COL: usize = 7;

/// A testbed whose replicas serve visitDate (@3) and sourceIP (@1)
/// only — duration and searchWord are unindexed everywhere, and
/// replica 2 is unsorted (the safe rewrite target).
fn adaptive_setup(rows_per_node: usize, blocks_per_node: usize) -> (Testbed, SystemSetup) {
    let scale = ExperimentScale::query(4, rows_per_node)
        .with_blocks_per_node(blocks_per_node)
        .with_partition_size(64);
    let tb = uv_testbed(scale, HardwareProfile::physical());
    let setup = setup_hail(&tb, &[2, 0]).unwrap();
    (tb, setup)
}

/// An always-on advisor with the default evidence thresholds, so the
/// tests hold even under the `HAIL_DISABLE_REINDEX=1` CI leg.
fn enabled_advisor() -> ReindexAdvisor {
    ReindexAdvisor::new(ReindexPolicy {
        enabled: true,
        ..ReindexPolicy::default()
    })
}

/// One round of pairwise-distinct filter shapes (no intra-round cache
/// racing, so the full report-determinism contract applies). The first
/// query is the evidence driver: a ~5% range predicate on the
/// unindexed duration column.
fn round_queries(schema: &Schema) -> Vec<HailQuery> {
    [
        ("@9 <= 500", "{@1, @9}"),
        ("@3 between(1999-01-01, 2000-01-01)", "{@1}"),
        ("@1 = '172.101.11.46'", "{@8, @9, @4}"),
        ("@4 >= 1 and @4 <= 10 and @9 <= 5000", "{@4, @9}"),
    ]
    .iter()
    .map(|(f, p)| HailQuery::parse(f, p, schema).unwrap())
    .collect()
}

/// `rounds` repetitions of [`round_queries`], flattened in submission
/// order.
fn workload(schema: &Schema, rounds: usize) -> Vec<HailQuery> {
    let one = round_queries(schema);
    (0..rounds).flat_map(|_| one.iter().cloned()).collect()
}

/// Drives [`workload`] through the adaptive loop at the given
/// concurrency on a fresh, identical cluster.
fn drive(tb: &Testbed, conc: usize, rounds: usize) -> (SystemSetup, AdaptiveRun) {
    let mut setup = setup_hail(tb, &[2, 0]).unwrap();
    let queries = workload(&tb.schema, rounds);
    let round_size = round_queries(&tb.schema).len();
    let manager = JobManager::new(conc);
    let infra = SharedJobInfra::for_jobs(conc);
    let advisor = enabled_advisor();
    let feedback = SelectivityFeedback::default();
    let run = run_adaptive_workload(
        &mut setup, &tb.spec, &queries, true, &manager, &infra, &advisor, &feedback, round_size,
    )
    .unwrap();
    (setup, run)
}

/// `JobReport` rendered with the measured-wall-clock fields and the
/// scan-sharing telemetry (the only fields allowed to vary between
/// runs — which reads attach to a concurrent decode depends on real
/// thread timing) zeroed.
fn report_modulo_wall(report: &JobReport) -> String {
    let mut r = report.clone();
    r.job_name = String::new();
    r.queue_wait_seconds = 0.0;
    for t in &mut r.tasks {
        t.reader_wall_seconds = 0.0;
        t.stats.blocks_read_shared = 0;
        t.stats.shared_bytes_saved = 0;
    }
    format!("{r:?}")
}

/// The tentpole acceptance test: a repeated selective workload on the
/// unindexed duration column flips FullScan → ClusteredIndexScan at a
/// deterministic job boundary, with identical (and correct) outputs on
/// both sides of the flip.
#[test]
fn repeated_selective_workload_flips_fullscan_to_index() {
    let (tb, _) = adaptive_setup(400, 4);
    let (setup, run) = drive(&tb, 2, 4);
    let round_size = round_queries(&tb.schema).len();

    // Exactly one rebuild fired: a clustered index on duration, after
    // round 2 (hysteresis_rounds = 2), covering every block.
    assert_eq!(run.events.len(), 1, "exactly one adaptive rebuild fires");
    let event = &run.events[0];
    assert_eq!(event.outcome.action.column, DURATION_COL);
    assert_eq!(event.outcome.action.kind, ReindexKind::Clustered);
    assert_eq!(event.after_job, 2 * round_size, "flip lands after round 2");
    assert_eq!(
        event.outcome.replicas_rewritten,
        setup.dataset.blocks.len(),
        "one replica rewritten per block"
    );
    assert_eq!(event.outcome.blocks_skipped, 0);

    // Every block now advertises a live host serving the new index.
    for &block in &setup.dataset.blocks {
        let hosts = setup
            .cluster
            .namenode()
            .get_hosts_with_index(block, DURATION_COL)
            .unwrap();
        assert_eq!(hosts.len(), 1, "block {block}: exactly one indexed replica");
    }

    // The driver query full-scanned before the boundary and uses the
    // clustered index — never a FullScan — after it.
    for (i, job) in run.runs.iter().enumerate() {
        if i % round_size != 0 {
            continue; // only the duration-predicate jobs
        }
        let counts = job.report.path_counts();
        if i < event.after_job {
            assert!(
                counts.get(AccessPathKind::FullScan) > 0,
                "job {i}: pre-flip jobs pay the full scan"
            );
            assert_eq!(
                counts.get(AccessPathKind::ClusteredIndexScan),
                0,
                "job {i}: no duration index exists yet"
            );
        } else {
            assert!(
                counts.get(AccessPathKind::ClusteredIndexScan) > 0,
                "job {i}: post-flip jobs plan onto the new index"
            );
            assert_eq!(
                counts.get(AccessPathKind::FullScan),
                0,
                "job {i}: the flip retires the full scan entirely"
            );
        }
    }

    // Outputs are identical on both sides of the flip and match the
    // oracle: the rewrite changed layout, never data.
    let queries = round_queries(&tb.schema);
    for (qi, query) in queries.iter().enumerate() {
        let expected = canonical(&oracle_eval(&tb.texts, &tb.schema, query));
        for round in 0..4 {
            let run = &run.runs[round * round_size + qi];
            assert_eq!(
                canonical(&run.output),
                expected,
                "query {qi} round {round}: output must match the oracle"
            );
        }
    }
}

/// Equality evidence on a low-cardinality column builds a bitmap
/// sidecar (not a clustered index), and the planner flips the query
/// onto BitmapScan.
#[test]
fn equality_evidence_builds_a_bitmap_sidecar() {
    let scale = ExperimentScale::query(4, 400)
        .with_blocks_per_node(4)
        .with_partition_size(64);
    let tb = uv_testbed(scale, HardwareProfile::physical());
    let mut setup = setup_hail(&tb, &[2, 0]).unwrap();

    // searchWord equality: 12 distinct values → ~8% selective, under
    // both the advisor ceiling and the bitmap cardinality limit.
    let query = HailQuery::parse("@8 = 'searchword3'", "{@1, @8}", &tb.schema).unwrap();
    let queries: Vec<HailQuery> = (0..6).map(|_| query.clone()).collect();

    let manager = JobManager::new(1);
    let infra = SharedJobInfra::for_jobs(1);
    let advisor = enabled_advisor();
    let feedback = SelectivityFeedback::default();
    let run = run_adaptive_workload(
        &mut setup, &tb.spec, &queries, true, &manager, &infra, &advisor, &feedback, 1,
    )
    .unwrap();

    assert_eq!(run.events.len(), 1);
    let event = &run.events[0];
    assert_eq!(event.outcome.action.column, SEARCHWORD_COL);
    assert_eq!(event.outcome.action.kind, ReindexKind::BitmapSidecar);
    assert!(event.outcome.replicas_rewritten > 0);

    for &block in &setup.dataset.blocks {
        let hosts = setup
            .cluster
            .namenode()
            .get_hosts_with_bitmap(block, SEARCHWORD_COL)
            .unwrap();
        assert_eq!(hosts.len(), 1, "block {block}: one bitmap-bearing replica");
    }

    let expected = canonical(&oracle_eval(&tb.texts, &tb.schema, &query));
    for (i, job) in run.runs.iter().enumerate() {
        assert_eq!(canonical(&job.output), expected, "job {i}: output");
        let counts = job.report.path_counts();
        if i >= event.after_job {
            assert!(
                counts.get(AccessPathKind::BitmapScan) > 0,
                "job {i}: post-flip jobs use the bitmap sidecar"
            );
            assert_eq!(counts.get(AccessPathKind::FullScan), 0, "job {i}");
        } else {
            assert_eq!(counts.get(AccessPathKind::BitmapScan), 0, "job {i}");
        }
    }
}

/// The determinism regression: the same adaptive workload at
/// concurrency 1, 2, and 4 produces bit-for-bit identical per-job
/// outputs and reports (modulo measured wall clocks), identical
/// rebuild outcomes, and the FullScan→index flip at the same job
/// boundary. Concurrency 1 *is* the solo baseline — one job in flight,
/// admitted in submission order.
#[test]
fn flip_boundary_and_reports_identical_at_every_concurrency() {
    let (tb, _) = adaptive_setup(400, 4);
    let (_, baseline) = drive(&tb, 1, 4);
    assert_eq!(baseline.events.len(), 1, "solo run flips exactly once");

    for conc in [2usize, 4] {
        let (_, run) = drive(&tb, conc, 4);
        assert_eq!(
            run.events.len(),
            baseline.events.len(),
            "concurrency {conc}: same number of rebuilds as solo"
        );
        for (e, be) in run.events.iter().zip(&baseline.events) {
            assert_eq!(
                e.after_job, be.after_job,
                "concurrency {conc}: flip at the same job boundary as solo"
            );
            assert_eq!(
                e.outcome, be.outcome,
                "concurrency {conc}: identical rebuild outcome"
            );
        }
        assert_eq!(run.runs.len(), baseline.runs.len());
        for (i, (r, b)) in run.runs.iter().zip(&baseline.runs).enumerate() {
            assert_eq!(
                r.output, b.output,
                "concurrency {conc}, job {i}: output identical to solo"
            );
            assert_eq!(
                report_modulo_wall(&r.report),
                report_modulo_wall(&b.report),
                "concurrency {conc}, job {i}: report bit-for-bit modulo wall clock"
            );
        }
    }
}

/// Fault injection on the adaptive index itself: kill the replica that
/// holds a freshly built index mid-workload. The in-flight job loses
/// no rows (failover re-executes the lost tasks), and subsequent
/// planning degrades gracefully to the surviving replicas' paths —
/// still correct, just back to scanning where the dead node held the
/// only index.
#[test]
fn killing_freshly_indexed_replica_degrades_gracefully() {
    let (tb, _) = adaptive_setup(400, 4);
    let (mut setup, run) = drive(&tb, 2, 3);
    assert_eq!(run.events.len(), 1, "the rebuild fired before the failure");

    // The node holding the new duration index on the first block.
    let block0 = setup.dataset.blocks[0];
    let victim = setup
        .cluster
        .namenode()
        .get_hosts_with_index(block0, DURATION_COL)
        .unwrap()[0];
    let affected_before: Vec<BlockId> = setup
        .dataset
        .blocks
        .iter()
        .copied()
        .filter(|&b| {
            setup
                .cluster
                .namenode()
                .get_hosts_with_index(b, DURATION_COL)
                .unwrap()
                .contains(&victim)
        })
        .collect();
    assert!(
        !affected_before.is_empty(),
        "the victim held at least one adaptive index"
    );

    // Kill it at 50% job progress: the failover run must still produce
    // the oracle's rows.
    let query = &round_queries(&tb.schema)[0];
    let expected = canonical(&oracle_eval(&tb.texts, &tb.schema, query));
    let failover = run_query_with_failure(
        &mut setup,
        &tb.spec,
        query,
        true,
        FailureScenario::at_half(victim),
    )
    .unwrap();
    assert_eq!(
        canonical(&failover.output),
        expected,
        "mid-job death of the indexed replica loses no rows"
    );
    assert!(failover.rerun_count > 0, "lost tasks were re-executed");

    // The namenode no longer advertises the dead node's indexes; the
    // affected blocks fall back to their surviving (unindexed, for
    // duration) replicas.
    for &b in &affected_before {
        let hosts = setup
            .cluster
            .namenode()
            .get_hosts_with_index(b, DURATION_COL)
            .unwrap();
        assert!(
            !hosts.contains(&victim),
            "block {b}: dead node dropped from Dir_rep candidates"
        );
    }

    // Planning on the degraded cluster stays correct: some blocks lost
    // their only duration index and full-scan again, the rest keep
    // their index — and the rows are still the oracle's.
    let degraded = run_query(&setup, &tb.spec, query, true).unwrap();
    assert_eq!(canonical(&degraded.output), expected, "degraded planning");
    let counts = degraded.report.path_counts();
    assert!(
        counts.get(AccessPathKind::FullScan) > 0,
        "blocks whose only index died degrade to FullScan"
    );
    assert!(
        counts.get(AccessPathKind::ClusteredIndexScan) > 0,
        "blocks with a surviving indexed replica keep using it"
    );
}

/// A default-policy advisor pins the `HAIL_DISABLE_REINDEX` knob: with
/// the variable unset the loop closes exactly as with an explicitly
/// enabled policy; under the `=1` CI leg evidence accumulates but the
/// design never moves, and every job still matches the oracle.
#[test]
fn default_policy_honours_disable_env() {
    let (tb, mut setup) = adaptive_setup(300, 2);
    let queries = workload(&tb.schema, 3);
    let round_size = round_queries(&tb.schema).len();
    let manager = JobManager::new(2);
    let infra = SharedJobInfra::for_jobs(2);
    let advisor = ReindexAdvisor::default();
    let feedback = SelectivityFeedback::default();
    let run = run_adaptive_workload(
        &mut setup, &tb.spec, &queries, true, &manager, &infra, &advisor, &feedback, round_size,
    )
    .unwrap();

    if env_reindex_enabled() {
        assert_eq!(run.events.len(), 1, "default policy closes the loop");
        assert_eq!(run.events[0].outcome.action.column, DURATION_COL);
    } else {
        assert!(
            run.events.is_empty(),
            "HAIL_DISABLE_REINDEX=1: the design never moves"
        );
        assert!(
            feedback.observation_count(DURATION_COL, false) > 0,
            "evidence still accumulates while disabled"
        );
        for &block in &setup.dataset.blocks {
            assert!(
                setup
                    .cluster
                    .namenode()
                    .get_hosts_with_index(block, DURATION_COL)
                    .unwrap()
                    .is_empty(),
                "block {block}: duration stays unindexed"
            );
        }
    }

    // Enabled or not, every job's rows match the oracle.
    for (qi, query) in round_queries(&tb.schema).iter().enumerate() {
        let expected = canonical(&oracle_eval(&tb.texts, &tb.schema, query));
        for round in 0..3 {
            assert_eq!(
                canonical(&run.runs[round * round_size + qi].output),
                expected,
                "query {qi} round {round}"
            );
        }
    }
}
