//! # HAIL — Hadoop Aggressive Indexing Library (Rust reproduction)
//!
//! A from-scratch reproduction of *"Only Aggressive Elephants are Fast
//! Elephants"* (Dittrich et al., VLDB 2012): an HDFS-like replicated
//! block store whose upload pipeline creates a **different clustered
//! index on every block replica**, plus the MapReduce-side machinery
//! (`HailInputFormat`, `HailSplitting`, `@HailQuery` annotations) that
//! exploits those indexes at query time.
//!
//! All query execution is unified behind `hail-exec`'s cost-based
//! `QueryPlanner`: per block, it consults the namenode's per-replica
//! index metadata, prices each `(replica, access path)` candidate with
//! the `hail-sim` cost model, and emits an explainable `QueryPlan` that
//! the scheduler and the record readers both consume. Planning is
//! adaptive: a fingerprinted `PlanCache` memoizes per-block plans
//! across queries with the same filter shape (invalidated on replica
//! death and any `Dir_rep` change), and a `SelectivityFeedback` store
//! blends observed per-block selectivities back into the estimates.
//! See `ARCHITECTURE.md` for the full plan lifecycle.
//!
//! This crate is a facade re-exporting the workspace's layers:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `hail-types` | schemas, values, rows, errors, access-path kinds |
//! | [`pax`] | `hail-pax` | PAX block layout, packets, checksums |
//! | [`index`] | `hail-index` | clustered/trojan/bitmap/inverted indexes |
//! | [`sim`] | `hail-sim` | hardware profiles and the cost model |
//! | [`sync`] | `hail-sync` | ranked lock wrappers (`LockRank`, debug hierarchy checking) |
//! | [`dfs`] | `hail-dfs` | namenode (`Dir_rep`), datanodes, upload pipelines |
//! | [`mr`] | `hail-mr` | MapReduce engine, scheduler, failover |
//! | [`core`] | `hail-core` | upload clients, `@HailQuery`, Hadoop++ storage |
//! | [`exec`] | `hail-exec` | `AccessPath` trait, cost-based `QueryPlanner`, input formats |
//! | [`workloads`] | `hail-workloads` | UserVisits/Synthetic generators, Bob/Syn queries |
//!
//! ## Quickstart
//!
//! ```
//! use hail::prelude::*;
//!
//! // A 4-node cluster with small blocks (tests / demos).
//! let mut config = StorageConfig::test_scale(4096);
//! config.index_partition_size = 16;
//! let mut cluster = DfsCluster::new(4, config);
//!
//! // Upload a web log through the HAIL client with per-replica indexes
//! // on visitDate (@2) and ip (@1).
//! let schema = Schema::new(vec![
//!     Field::new("ip", DataType::VarChar),
//!     Field::new("visitDate", DataType::Date),
//! ]).unwrap();
//! let text = "1.2.3.4|1999-05-01\n5.6.7.8|2001-01-01\n";
//! let index_config = ReplicaIndexConfig::first_indexed(3, &[1, 0]);
//! let dataset = upload_hail(&mut cluster, &schema, "weblog",
//!     &[(0, text.to_string())], &index_config).unwrap();
//!
//! // An annotated query: filter on @2, project @1.
//! let query = HailQuery::parse("@2 between(1999-01-01, 2000-01-01)", "{@1}", &schema).unwrap();
//!
//! // The planner decides, per block, which replica and access path
//! // serve the query — inspectable before running anything.
//! let plan = QueryPlanner::new(&cluster).plan_dataset(&dataset, &query).unwrap();
//! assert!(plan.explain().contains("clustered-index-scan(@2)"));
//!
//! // The input format consumes the same planner layer end to end.
//! let spec = ClusterSpec::new(4, HardwareProfile::physical());
//! let format = HailInputFormat::new(dataset.clone(), query);
//! let job = MapJob::collecting("q1", dataset.blocks.clone(), &format);
//! let run = run_map_job(&cluster, &spec, &job).unwrap();
//! assert_eq!(run.output.len(), 1);
//! assert_eq!(run.output[0].to_string(), "1.2.3.4");
//! ```

#![forbid(unsafe_code)]

pub use hail_core as core;
pub use hail_dfs as dfs;
pub use hail_exec as exec;
pub use hail_index as index;
pub use hail_mr as mr;
pub use hail_pax as pax;
pub use hail_sim as sim;
pub use hail_sync as sync;
pub use hail_types as types;
pub use hail_workloads as workloads;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use hail_core::{
        upload_hadoop, upload_hadoop_plus_plus, upload_hail, upload_seconds, Dataset,
        DatasetFormat, HailQuery, Predicate,
    };
    pub use hail_dfs::{
        hail_upload_block, hdfs_upload_block, recover_logical_rows, rewrite_replica,
        verify_replica_equivalence, DfsCluster, FaultPlan,
    };
    pub use hail_exec::{
        apply_reindex, default_splits, hail_splits, read_hail_block, AccessPath, CacheStats,
        ExecutorConfig, ExecutorContext, HadoopInputFormat, HadoopPlusPlusInputFormat,
        HailInputFormat, JobPool, JobPoolConfig, PlanCache, PlannerConfig, QueryPlan, QueryPlanner,
        ReindexAction, ReindexAdvisor, ReindexKind, ReindexOutcome, ReindexPolicy,
        SelectivityEstimate, SelectivityFeedback,
    };
    pub use hail_index::{
        ClusteredIndex, IndexKind, IndexedBlock, KeyBounds, ReplicaIndexConfig, SidecarMetadata,
        SidecarSpec, SortOrder,
    };
    pub use hail_mr::{
        run_map_job, run_map_job_with_failure, run_map_reduce_job, FailureScenario, InputFormat,
        JobManager, JobReport, JobRun, MapJob, MapRecord, MapReduceJob, PathCounts,
        SelectivityObservation, TaskStats, SPLIT_BATCH_CHUNK,
    };
    pub use hail_pax::{blocks_from_text, PaxBlock, PaxBlockBuilder};
    pub use hail_sim::{ClusterSpec, CostLedger, HardwareProfile, ScaleFactor};
    pub use hail_types::{
        AccessPathKind, DataType, Field, HailError, Result, Row, Schema, StorageConfig, Value,
    };
    pub use hail_workloads::{
        bob_queries, bob_schema, canonical, oracle_eval, synthetic_queries, synthetic_schema,
        SyntheticGenerator, UserVisitsGenerator,
    };
}
