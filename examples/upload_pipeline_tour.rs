//! A guided tour of the HAIL upload pipeline (Fig. 1 of the paper):
//! watch one block travel from the client through the replication chain
//! and come out as three physically different, individually indexed
//! replicas.
//!
//! ```sh
//! cargo run --release --example upload_pipeline_tour
//! ```

use hail::pax::{chunk_checksums, packetize};
use hail::prelude::*;

fn main() -> Result<()> {
    let schema = Schema::new(vec![
        Field::new("sourceIP", DataType::VarChar),
        Field::new("visitDate", DataType::Date),
        Field::new("adRevenue", DataType::Float),
    ])?;

    // A small log with one malformed line.
    let text = "\
202.44.1.7|1999-03-14|12.50
9.12.83.4|1997-11-02|3.25
THIS LINE IS NOT A RECORD
121.7.66.2|2001-06-30|88.00
44.5.19.88|1995-01-20|0.75
202.44.1.7|1998-08-09|41.10
";

    println!("== step 1-2: content-aware parsing to binary PAX ==");
    let storage = StorageConfig::test_scale(1 << 20);
    let blocks = blocks_from_text(text, &schema, &storage)?;
    let pax = &blocks[0];
    println!(
        "1 block: {} rows + {} bad record(s), {} bytes of PAX (vs {} bytes of text)",
        pax.row_count(),
        pax.bad_count(),
        pax.byte_len(),
        text.len()
    );
    println!("bad records kept verbatim: {:?}", pax.bad_records()?);

    println!("\n== step 4: packetize (chunks of 512 B + CRC32 each) ==");
    let packets = packetize(pax.bytes());
    for p in &packets {
        println!(
            "  packet {}: {} payload bytes, {} chunk checksums, last={}",
            p.seqno,
            p.data.len(),
            p.checksums.len(),
            p.last
        );
    }

    println!("\n== steps 5-14: stream through the chain, sort + index per replica ==");
    let mut cluster = DfsCluster::new(3, storage);
    let orders = ReplicaIndexConfig::first_indexed(3, &[1, 0, 2]); // visitDate, sourceIP, adRevenue
    let block_id = hail_upload_block(&mut cluster, 0, pax, &orders, &FaultPlan::none())?;

    let hosts = cluster.namenode().get_hosts(block_id)?;
    println!("namenode Dir_block[{block_id}] = {hosts:?}");
    let mut ledger = CostLedger::new();
    let mut first_checksums = Vec::new();
    for (i, &dn) in hosts.iter().enumerate() {
        let info = cluster.namenode().replica_info(block_id, dn)?;
        let bytes = cluster.datanode(dn)?.read_replica(block_id, &mut ledger)?;
        let replica = IndexedBlock::parse(bytes.clone())?;
        let sums = chunk_checksums(&bytes);
        println!(
            "DN{}: {:>5} B file, sort order {}, index {} ({} B), first row: {}",
            dn + 1,
            info.replica_bytes,
            replica.sort_order(),
            info.index.kind,
            info.index.index_bytes,
            replica.pax().reconstruct_full(0)?,
        );
        if i == 0 {
            first_checksums = sums;
        } else {
            println!(
                "      checksums differ from DN{}'s: {} (each replica re-checksums its own bytes)",
                hosts[0] + 1,
                sums != first_checksums
            );
        }
    }

    println!("\n== the namenode's HAIL extension: Dir_rep answers getHostsWithIndex ==");
    for col in 0..3 {
        let with_index = cluster.namenode().get_hosts_with_index(block_id, col)?;
        println!(
            "  index on @{} ({}): datanodes {:?}",
            col + 1,
            schema.field(col)?.name,
            with_index
        );
    }

    println!("\n== fault injection: a corrupted packet fails the upload ==");
    let fault = FaultPlan {
        corrupt_after_hop: Some((1, 0)),
        ..Default::default()
    };
    let err = hail_upload_block(&mut cluster, 0, pax, &orders, &fault).unwrap_err();
    println!("  chain tail detected it: {err}");

    println!("\n== every replica recovers the same logical block ==");
    verify_replica_equivalence(&cluster)?;
    println!("  verified ✓");
    Ok(())
}
