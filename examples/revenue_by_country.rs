//! A full map-reduce analytics job on top of HAIL: total ad revenue by
//! country for visits in 1999 — the OLAP-style workload the paper's
//! introduction says also benefits from aggressive indexing.
//!
//! The HAIL record reader does the filtering (index scan on visitDate)
//! and projection; the map function emits `(countryCode, adRevenue)`;
//! the reduce sums per country.
//!
//! ```sh
//! cargo run --release --example revenue_by_country
//! ```

use hail::prelude::*;

fn main() -> Result<()> {
    let schema = bob_schema();
    let texts = UserVisitsGenerator::default().generate(4, 5_000);
    let mut storage = StorageConfig::test_scale(8 * 1024);
    storage.index_partition_size = 16;
    let spec = ClusterSpec::new(4, HardwareProfile::physical())
        .with_scale(ScaleFactor::from_block_sizes(storage.block_size, 64 << 20));

    let mut cluster = DfsCluster::new(4, storage);
    let dataset = upload_hail(
        &mut cluster,
        &schema,
        "weblog",
        &texts,
        &ReplicaIndexConfig::first_indexed(3, &[2, 0, 3]),
    )?;

    // Filter on visitDate (index scan), project countryCode + adRevenue.
    let query = HailQuery::parse("@3 between(1999-01-01, 2000-01-01)", "{@6, @4}", &schema)?;
    let format = HailInputFormat::new(dataset.clone(), query.clone());

    let job = MapReduceJob {
        name: "revenue-by-country".into(),
        input: dataset.blocks.clone(),
        format: &format,
        map: Box::new(|rec, out| {
            if rec.bad {
                return;
            }
            // Reader already projected to (countryCode, adRevenue).
            let country = rec.row.get(0).unwrap().clone();
            out.push((country, rec.row.clone()));
        }),
        reduce: Box::new(|country, rows, out| {
            let total: f64 = rows
                .iter()
                .filter_map(|r| r.get(1).and_then(Value::as_f64))
                .sum();
            out.push(Row::new(vec![
                country.clone(),
                Value::Float((total * 100.0).round() / 100.0),
                Value::Long(rows.len() as i64),
            ]));
        }),
        reducers: 2,
        parallelism: None,
        job_parallelism: None,
    };

    let run = run_map_reduce_job(&cluster, &spec, &job)?;
    println!("ad revenue by country, visits in 1999:\n");
    println!("{:<8} {:>12} {:>8}", "country", "revenue", "visits");
    for row in &run.output {
        println!(
            "{:<8} {:>12} {:>8}",
            row.get(0).unwrap(),
            row.get(1).unwrap(),
            row.get(2).unwrap()
        );
    }
    println!(
        "\nmap {:.1}s + shuffle {:.1}s + reduce {:.1}s = {:.1} simulated s \
         ({} map tasks over {} blocks)",
        run.map_run.report.end_to_end_seconds,
        run.shuffle_seconds,
        run.reduce_seconds,
        run.end_to_end_seconds,
        run.map_run.report.task_count(),
        dataset.block_count(),
    );

    // Sanity: totals agree with a direct oracle pass.
    let oracle_rows = oracle_eval(&texts, &schema, &query);
    let oracle_total: f64 = oracle_rows
        .iter()
        .filter_map(|r| r.get(1).and_then(Value::as_f64))
        .sum();
    let job_total: f64 = run
        .output
        .iter()
        .filter_map(|r| r.get(1).and_then(Value::as_f64))
        .sum();
    assert!(
        (oracle_total - job_total).abs() < 0.5,
        "{oracle_total} vs {job_total}"
    );
    println!("grand total {job_total:.2} verified against the oracle ✓");
    Ok(())
}
