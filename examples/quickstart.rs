//! Quickstart: generate a small web log, upload it through HAIL with
//! three different per-replica clustered indexes, and run one annotated
//! filter query.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hail::prelude::*;

fn main() -> Result<()> {
    // 1. A 4-node cluster. Blocks are tiny so the demo builds many of
    //    them; the cost model scales them to 64 MB logical blocks.
    let mut storage = StorageConfig::test_scale(8 * 1024);
    storage.index_partition_size = 16;
    let mut cluster = DfsCluster::new(4, storage.clone());
    // Map each 8 KB real block onto the paper's 64 MB logical block, so
    // reported times are paper-scale seconds.
    let spec = ClusterSpec::new(4, HardwareProfile::physical())
        .with_scale(ScaleFactor::from_block_sizes(storage.block_size, 64 << 20));

    // 2. Generate a UserVisits-style web log, one portion per node.
    let generator = UserVisitsGenerator::default();
    let texts = generator.generate(4, 2_000);
    let schema = bob_schema();
    println!(
        "generated {} rows ({} KB of text)",
        4 * 2_000,
        texts.iter().map(|(_, t)| t.len()).sum::<usize>() / 1024
    );

    // 3. Upload through the HAIL client. Replica 1 is clustered on
    //    visitDate (@3), replica 2 on sourceIP (@1), replica 3 on
    //    adRevenue (@4) — Bob's configuration from the paper.
    let index_config = ReplicaIndexConfig::first_indexed(3, &[2, 0, 3]);
    let dataset = upload_hail(&mut cluster, &schema, "weblog", &texts, &index_config)?;
    println!(
        "uploaded {} blocks x 3 replicas; simulated upload time {:.0} s at paper scale",
        dataset.block_count(),
        upload_seconds(&cluster, &spec)
    );

    // 4. Every replica of every block recovers the same logical rows —
    //    HAIL does not change HDFS's failover story.
    verify_replica_equivalence(&cluster)?;
    println!("replica equivalence verified (failover property holds)");

    // 5. Bob's Q1, exactly as annotated in the paper:
    //    @HailQuery(filter="@3 between(1999-01-01,2000-01-01)", projection={@1})
    let query = HailQuery::parse("@3 between(1999-01-01, 2000-01-01)", "{@1}", &schema)?;
    let format = HailInputFormat::new(dataset.clone(), query.clone());
    let job = MapJob::collecting("Bob-Q1", dataset.blocks.clone(), &format);
    let run = run_map_job(&cluster, &spec, &job)?;

    println!(
        "Bob-Q1: {} qualifying sourceIPs in {} map tasks, {:.1} simulated s end-to-end",
        run.output.len(),
        run.report.task_count(),
        run.report.end_to_end_seconds
    );
    for row in run.output.iter().take(5) {
        println!("  {row}");
    }

    // 6. Cross-check against a direct evaluation over the original text.
    let expected = oracle_eval(&texts, &schema, &query);
    assert_eq!(canonical(&run.output), canonical(&expected));
    println!("result verified against the text-level oracle ✓");
    Ok(())
}
