//! Bob's exploratory session from the paper's introduction: a sequence
//! of ad-hoc filters over a web log, run on standard Hadoop and on HAIL.
//!
//! Bob first looks for all sourceIPs with a 1999 visitDate, spots a
//! strange address, drills into all of its requests, then pivots to an
//! adRevenue range — three different filter columns, which is exactly
//! the workload per-replica divergent indexing is built for.
//!
//! ```sh
//! cargo run --release --example weblog_exploration
//! ```

use hail::prelude::*;

fn run_on(
    name: &str,
    cluster: &DfsCluster,
    spec: &ClusterSpec,
    dataset: &Dataset,
    query: &HailQuery,
) -> Result<(usize, f64)> {
    let output_len;
    let seconds;
    match dataset.format {
        DatasetFormat::HadoopText => {
            let format = HadoopInputFormat::new(dataset.clone(), query.clone());
            let job = MapJob::collecting(name, dataset.blocks.clone(), &format);
            let run = run_map_job(cluster, spec, &job)?;
            output_len = run.output.len();
            seconds = run.report.end_to_end_seconds;
        }
        _ => {
            let format = HailInputFormat::new(dataset.clone(), query.clone());
            let job = MapJob::collecting(name, dataset.blocks.clone(), &format);
            let run = run_map_job(cluster, spec, &job)?;
            output_len = run.output.len();
            seconds = run.report.end_to_end_seconds;
        }
    }
    Ok((output_len, seconds))
}

fn main() -> Result<()> {
    let schema = bob_schema();
    let generator = UserVisitsGenerator::default();
    let texts = generator.generate(4, 4_000);
    let mut storage = StorageConfig::test_scale(4 * 1024);
    storage.index_partition_size = 8;
    let spec = ClusterSpec::new(4, HardwareProfile::physical())
        .with_scale(ScaleFactor::from_block_sizes(storage.block_size, 64 << 20));

    // Hadoop keeps the log as text; HAIL indexes visitDate, sourceIP and
    // adRevenue — one per replica.
    let mut hadoop_cluster = DfsCluster::new(4, storage.clone());
    let hadoop = upload_hadoop(&mut hadoop_cluster, &schema, "weblog", &texts)?;
    let mut hail_cluster = DfsCluster::new(4, storage);
    let hail = upload_hail(
        &mut hail_cluster,
        &schema,
        "weblog",
        &texts,
        &ReplicaIndexConfig::first_indexed(3, &[2, 0, 3]),
    )?;

    // Bob's session: each step filters on a different attribute.
    let steps = [
        (
            "all sourceIPs with a 1999 visit",
            "@3 between(1999-01-01, 2000-01-01)",
            "{@1}",
        ),
        (
            "every request from the strange address",
            "@1 = '172.101.11.46'",
            "{@2, @3, @8}",
        ),
        (
            "low-revenue requests",
            "@4 >= 1 and @4 <= 10",
            "{@8, @9, @4}",
        ),
    ];

    println!(
        "Bob's exploratory session ({} rows of web log):\n",
        4 * 4_000
    );
    let mut hadoop_total = 0.0;
    let mut hail_total = 0.0;
    for (i, (what, filter, projection)) in steps.iter().enumerate() {
        let query = HailQuery::parse(filter, projection, &schema)?;
        let (n_hadoop, t_hadoop) = run_on("hadoop", &hadoop_cluster, &spec, &hadoop, &query)?;
        let (n_hail, t_hail) = run_on("hail", &hail_cluster, &spec, &hail, &query)?;
        assert_eq!(n_hadoop, n_hail, "systems disagree on step {i}");
        hadoop_total += t_hadoop;
        hail_total += t_hail;
        println!("step {}: {what}", i + 1);
        println!("  filter: {filter}");
        println!(
            "  {n_hail} results — Hadoop {t_hadoop:>7.1}s | HAIL {t_hail:>6.1}s ({:.0}x)",
            t_hadoop / t_hail
        );
    }
    println!(
        "\nsession total: Hadoop {hadoop_total:.0}s vs HAIL {hail_total:.0}s — {:.0}x less coffee",
        hadoop_total / hail_total
    );
    Ok(())
}
