//! Failover drill (§6.4.3): kill a datanode while a query is running
//! and watch HAIL reschedule — comparing three-different-indexes HAIL
//! (re-executed tasks may lose their matching index and fall back to
//! scans) against HAIL-1Idx (same index everywhere, re-runs keep their
//! index scans).
//!
//! ```sh
//! cargo run --release --example failover_drill
//! ```

use hail::prelude::*;

fn drill(
    label: &str,
    texts: &[(usize, String)],
    schema: &Schema,
    storage: &StorageConfig,
    spec: &ClusterSpec,
    index_config: &ReplicaIndexConfig,
) -> Result<()> {
    let mut cluster = DfsCluster::new(spec.nodes, storage.clone());
    let dataset = upload_hail(&mut cluster, schema, "weblog", texts, index_config)?;
    let query = HailQuery::parse("@3 between(1999-01-01, 2000-01-01)", "{@1}", schema)?;

    let format = HailInputFormat::new(dataset.clone(), query).without_splitting();
    let job = MapJob::collecting("Bob-Q1", dataset.blocks.clone(), &format);
    let run = run_map_job_with_failure(&mut cluster, spec, &job, FailureScenario::at_half(4))?;

    let fallbacks = run
        .with_failure
        .tasks
        .iter()
        .filter(|t| t.stats.fell_back_to_scan)
        .count();
    println!("{label}:");
    println!(
        "  T_b = {:.1}s without failure, T_f = {:.1}s with DN5 killed at {:.0}s",
        run.baseline.end_to_end_seconds, run.with_failure.end_to_end_seconds, run.failure_time
    );
    println!(
        "  {} tasks re-executed after the 30s expiry; {} task(s) fell back to full scans",
        run.rerun_count, fallbacks
    );
    println!("  slowdown: {:.1}%", run.slowdown_percent());
    println!("  output complete: {} rows\n", run.output.len());
    Ok(())
}

fn main() -> Result<()> {
    let schema = bob_schema();
    let generator = UserVisitsGenerator::default();
    let texts = generator.generate(6, 3_000);
    let mut storage = StorageConfig::test_scale(2 * 1024);
    storage.index_partition_size = 8;
    let spec = ClusterSpec::new(6, HardwareProfile::physical())
        .with_scale(ScaleFactor::from_block_sizes(storage.block_size, 64 << 20));

    println!(
        "failover drill: Bob-Q1 over {} rows on 6 nodes\n",
        6 * 3_000
    );

    // HAIL: three different indexes. Tasks whose visitDate replica was
    // on the dead node must fall back to scanning another replica.
    drill(
        "HAIL (indexes on visitDate / sourceIP / adRevenue)",
        &texts,
        &schema,
        &storage,
        &spec,
        &ReplicaIndexConfig::first_indexed(3, &[2, 0, 3]),
    )?;

    // HAIL-1Idx: visitDate index on all three replicas. Re-runs keep
    // index scans; the slowdown is lower (Fig. 8's 5.5% vs 10.5%).
    drill(
        "HAIL-1Idx (visitDate index on every replica)",
        &texts,
        &schema,
        &storage,
        &spec,
        &ReplicaIndexConfig::uniform(3, 2),
    )?;

    println!("paper: HAIL 10.5% vs HAIL-1Idx 5.5% slowdown — same index everywhere\nkeeps index scans alive through failures, at the cost of one sort order.");
    Ok(())
}
