//! Replica placement: choosing datanodes for a new block.
//!
//! Mirrors HDFS's default policy at the granularity this simulation
//! needs: the first replica lands on the writer's local node, the
//! remaining replicas spread across other nodes, with a rotating start so
//! storage load balances across the cluster.

use hail_types::{DatanodeId, HailError, Result};

/// Round-robin placement with writer locality.
#[derive(Debug, Clone)]
pub struct PlacementPolicy {
    nodes: usize,
    /// Rotates per allocation to spread non-local replicas.
    cursor: usize,
}

impl PlacementPolicy {
    pub fn new(nodes: usize) -> Self {
        PlacementPolicy { nodes, cursor: 0 }
    }

    /// Picks `replication` distinct datanodes for a block written by
    /// `writer`, excluding dead nodes. The writer (if alive) always gets
    /// the first replica — HDFS's write-locality rule.
    pub fn place(
        &mut self,
        writer: DatanodeId,
        replication: usize,
        is_alive: impl Fn(DatanodeId) -> bool,
    ) -> Result<Vec<DatanodeId>> {
        let alive: Vec<DatanodeId> = (0..self.nodes).filter(|&d| is_alive(d)).collect();
        if alive.len() < replication {
            return Err(HailError::InsufficientReplication {
                wanted: replication,
                alive: alive.len(),
            });
        }
        let mut chosen = Vec::with_capacity(replication);
        if is_alive(writer) {
            chosen.push(writer);
        }
        // Walk the alive list starting at a rotating cursor; advance the
        // cursor past everything consumed so consecutive allocations use
        // different non-local targets.
        let start = self.cursor % alive.len();
        let mut i = 0;
        while chosen.len() < replication {
            let candidate = alive[(start + i) % alive.len()];
            i += 1;
            if !chosen.contains(&candidate) {
                chosen.push(candidate);
            }
            if i > 2 * alive.len() {
                return Err(HailError::Internal("placement loop".into()));
            }
        }
        self.cursor = self.cursor.wrapping_add(i.max(1));
        Ok(chosen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_gets_first_replica() {
        let mut p = PlacementPolicy::new(5);
        let placed = p.place(3, 3, |_| true).unwrap();
        assert_eq!(placed[0], 3);
        assert_eq!(placed.len(), 3);
        // All distinct.
        let mut sorted = placed.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }

    #[test]
    fn rotation_spreads_replicas() {
        let mut p = PlacementPolicy::new(6);
        let a = p.place(0, 3, |_| true).unwrap();
        let b = p.place(0, 3, |_| true).unwrap();
        // The non-local replicas differ between consecutive allocations.
        assert_ne!(a[1..], b[1..]);
    }

    #[test]
    fn dead_nodes_skipped() {
        let mut p = PlacementPolicy::new(4);
        let placed = p.place(0, 3, |d| d != 2).unwrap();
        assert!(!placed.contains(&2));
    }

    #[test]
    fn dead_writer_still_places() {
        let mut p = PlacementPolicy::new(4);
        let placed = p.place(1, 3, |d| d != 1).unwrap();
        assert!(!placed.contains(&1));
        assert_eq!(placed.len(), 3);
    }

    #[test]
    fn insufficient_nodes_error() {
        let mut p = PlacementPolicy::new(3);
        let err = p.place(0, 3, |d| d == 0).unwrap_err();
        assert!(matches!(
            err,
            HailError::InsufficientReplication {
                wanted: 3,
                alive: 1
            }
        ));
    }

    #[test]
    fn replication_equal_to_cluster() {
        let mut p = PlacementPolicy::new(3);
        let placed = p.place(2, 3, |_| true).unwrap();
        let mut sorted = placed;
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }
}
