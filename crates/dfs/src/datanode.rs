//! Datanodes: in-memory "disks" holding replica files plus checksum
//! files, with cost-accounted read/write paths.
//!
//! Every replica is two files, exactly as in HDFS (§3.2): a data file and
//! a checksum file holding one CRC-32 per 512-byte chunk. The datanode
//! charges all I/O to cost ledgers; reads charge the *caller's* ledger
//! (the record reader pays), writes charge the node's own upload ledger.

use bytes::Bytes;
use hail_pax::checksum::{checksums_to_bytes, verify_chunks};
use hail_sim::CostLedger;
use hail_types::{BlockId, DatanodeId, HailError, Result};
use std::collections::BTreeMap;

/// One stored replica: data + per-chunk checksums.
#[derive(Debug, Clone)]
struct ReplicaFile {
    data: Bytes,
    checksums: Vec<u32>,
}

/// A datanode with an in-memory disk.
#[derive(Debug)]
pub struct Datanode {
    id: DatanodeId,
    replicas: BTreeMap<BlockId, ReplicaFile>,
    /// Physical activity of this node during upload.
    upload_ledger: CostLedger,
    alive: bool,
}

impl Datanode {
    pub fn new(id: DatanodeId) -> Self {
        Datanode {
            id,
            replicas: BTreeMap::new(),
            upload_ledger: CostLedger::new(),
            alive: true,
        }
    }

    /// This node's id.
    pub fn id(&self) -> DatanodeId {
        self.id
    }

    /// True until the node is killed.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Kills the node: data becomes unreachable, pending work is lost.
    pub fn kill(&mut self) {
        self.alive = false;
    }

    /// Revives the node (used by failover tests to model a restart; its
    /// stored replicas become readable again).
    pub fn revive(&mut self) {
        self.alive = true;
    }

    /// The node's accumulated upload activity.
    pub fn upload_ledger(&self) -> &CostLedger {
        &self.upload_ledger
    }

    /// Clears the upload ledger (between experiments).
    pub fn reset_ledger(&mut self) {
        self.upload_ledger = CostLedger::new();
    }

    /// Charges forwarded network bytes to this node's upload ledger
    /// (pipeline hops DN1 → DN2 → DN3).
    pub fn add_net_sent(&mut self, bytes: u64) {
        self.upload_ledger.net_sent += bytes;
    }

    /// Charges in-memory sort + index-build CPU work (HAIL upload step 7).
    pub fn add_sort_cpu(&mut self, bytes: u64) {
        self.upload_ledger.sort_cpu += bytes;
    }

    /// Merges an externally accumulated ledger into this node's upload
    /// ledger (used by post-upload indexing jobs like Hadoop++'s).
    pub fn add_extra(&mut self, ledger: &CostLedger) {
        self.upload_ledger.add(ledger);
    }

    /// Returns a replica's bytes *without* charging any cost or checking
    /// checksums. Simulation-internal accessor: record readers use it to
    /// get at content they price separately via [`Datanode::charge_range_read`],
    /// so an index scan is charged only for the index + qualifying
    /// partitions it actually touches.
    pub fn peek_replica(&self, block: BlockId) -> Result<Bytes> {
        Ok(self.replica(block)?.data.clone())
    }

    fn check_alive(&self) -> Result<()> {
        if self.alive {
            Ok(())
        } else {
            Err(HailError::DeadDatanode(self.id))
        }
    }

    /// Flushes a replica: writes the data file and its checksum file,
    /// charging this node's upload ledger (data + checksum bytes, one
    /// seek per file).
    pub fn write_replica(
        &mut self,
        block: BlockId,
        data: Bytes,
        checksums: Vec<u32>,
    ) -> Result<()> {
        self.check_alive()?;
        let checksum_bytes = checksums_to_bytes(&checksums).len() as u64;
        self.upload_ledger.disk_write += data.len() as u64 + checksum_bytes;
        self.upload_ledger.seeks += 2;
        self.replicas.insert(block, ReplicaFile { data, checksums });
        Ok(())
    }

    /// True if this node stores a replica of the block.
    pub fn has_replica(&self, block: BlockId) -> bool {
        self.replicas.contains_key(&block)
    }

    /// Stored size of a replica's data file.
    pub fn replica_len(&self, block: BlockId) -> Result<usize> {
        Ok(self.replica(block)?.data.len())
    }

    fn replica(&self, block: BlockId) -> Result<&ReplicaFile> {
        self.check_alive()?;
        self.replicas
            .get(&block)
            .ok_or(HailError::UnknownBlock(block))
    }

    /// Reads a whole replica sequentially, charging the caller's ledger
    /// (one seek + all bytes) and verifying checksums.
    pub fn read_replica(&self, block: BlockId, ledger: &mut CostLedger) -> Result<Bytes> {
        let file = self.replica(block)?;
        ledger.seeks += 1;
        ledger.disk_read += file.data.len() as u64;
        verify_chunks(&file.data, &file.checksums)?;
        Ok(file.data.clone())
    }

    /// Reads a byte range of a replica, charging one seek + the range.
    ///
    /// Range reads skip checksum verification of untouched chunks — as
    /// HDFS does for positioned reads — but the caller still gets
    /// corruption detection on full-replica reads.
    pub fn read_range(
        &self,
        block: BlockId,
        offset: usize,
        len: usize,
        ledger: &mut CostLedger,
    ) -> Result<Bytes> {
        let file = self.replica(block)?;
        if offset + len > file.data.len() {
            return Err(HailError::Corrupt(format!(
                "range read [{offset}, {}) beyond replica of {} bytes",
                offset + len,
                file.data.len()
            )));
        }
        ledger.seeks += 1;
        ledger.disk_read += len as u64;
        Ok(file.data.slice(offset..offset + len))
    }

    /// Charges a range read *without* materializing bytes — used when the
    /// caller already holds the block content (via `Bytes` sharing) and
    /// only the cost matters.
    pub fn charge_range_read(&self, len: usize, ledger: &mut CostLedger) -> Result<()> {
        self.check_alive()?;
        ledger.seeks += 1;
        ledger.disk_read += len as u64;
        Ok(())
    }

    /// Charges exactly what [`Datanode::read_replica`] would charge (one
    /// seek + the whole data file) *without* touching the bytes. Scan
    /// sharing uses this to synthesize a consumer's ledger when it
    /// attaches to another job's read: the stored length is a property
    /// of the replica, so the charge is bit-for-bit what a solo read
    /// would have recorded. Fails like a real read if the node is dead
    /// or the replica unknown.
    pub fn charge_replica_read(&self, block: BlockId, ledger: &mut CostLedger) -> Result<()> {
        let file = self.replica(block)?;
        ledger.seeks += 1;
        ledger.disk_read += file.data.len() as u64;
        Ok(())
    }

    /// Corrupts one byte of a stored replica (failure-injection tests).
    pub fn corrupt_replica(&mut self, block: BlockId, byte: usize) -> Result<()> {
        let file = self
            .replicas
            .get_mut(&block)
            .ok_or(HailError::UnknownBlock(block))?;
        let mut data = file.data.to_vec();
        if byte >= data.len() {
            return Err(HailError::Corrupt("corruption offset out of range".into()));
        }
        data[byte] ^= 0xFF;
        file.data = Bytes::from(data);
        Ok(())
    }

    /// Blocks stored on this node.
    pub fn stored_blocks(&self) -> Vec<BlockId> {
        self.replicas.keys().copied().collect()
    }

    /// Total data bytes stored (excluding checksum files).
    pub fn stored_bytes(&self) -> u64 {
        self.replicas.values().map(|f| f.data.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hail_pax::checksum::chunk_checksums;

    fn replica_bytes(n: usize) -> (Bytes, Vec<u32>) {
        let data: Vec<u8> = (0..n).map(|i| (i % 256) as u8).collect();
        let sums = chunk_checksums(&data);
        (Bytes::from(data), sums)
    }

    #[test]
    fn write_then_read() {
        let mut dn = Datanode::new(0);
        let (data, sums) = replica_bytes(2000);
        dn.write_replica(7, data.clone(), sums).unwrap();
        assert!(dn.has_replica(7));
        assert_eq!(dn.replica_len(7).unwrap(), 2000);

        let mut ledger = CostLedger::new();
        let read = dn.read_replica(7, &mut ledger).unwrap();
        assert_eq!(read, data);
        assert_eq!(ledger.disk_read, 2000);
        assert_eq!(ledger.seeks, 1);
    }

    #[test]
    fn write_charges_upload_ledger() {
        let mut dn = Datanode::new(0);
        let (data, sums) = replica_bytes(1024);
        let checksum_file = (sums.len() * 4) as u64;
        dn.write_replica(1, data, sums).unwrap();
        assert_eq!(dn.upload_ledger().disk_write, 1024 + checksum_file);
        assert_eq!(dn.upload_ledger().seeks, 2);
    }

    #[test]
    fn range_read() {
        let mut dn = Datanode::new(0);
        let (data, sums) = replica_bytes(1000);
        dn.write_replica(3, data.clone(), sums).unwrap();
        let mut ledger = CostLedger::new();
        let r = dn.read_range(3, 100, 50, &mut ledger).unwrap();
        assert_eq!(&r[..], &data[100..150]);
        assert_eq!(ledger.disk_read, 50);
        assert!(dn.read_range(3, 990, 20, &mut ledger).is_err());
    }

    #[test]
    fn corruption_detected_on_full_read() {
        let mut dn = Datanode::new(0);
        let (data, sums) = replica_bytes(4096);
        dn.write_replica(9, data, sums).unwrap();
        dn.corrupt_replica(9, 1000).unwrap();
        let mut ledger = CostLedger::new();
        let err = dn.read_replica(9, &mut ledger).unwrap_err();
        assert!(matches!(
            err,
            HailError::ChecksumMismatch { chunk_index: 1, .. }
        ));
    }

    #[test]
    fn dead_node_refuses_io() {
        let mut dn = Datanode::new(4);
        let (data, sums) = replica_bytes(100);
        dn.write_replica(1, data.clone(), sums.clone()).unwrap();
        dn.kill();
        assert!(!dn.is_alive());
        let mut ledger = CostLedger::new();
        assert!(matches!(
            dn.read_replica(1, &mut ledger),
            Err(HailError::DeadDatanode(4))
        ));
        assert!(dn.write_replica(2, data, sums).is_err());
        dn.revive();
        assert!(dn.read_replica(1, &mut ledger).is_ok());
    }

    #[test]
    fn missing_block() {
        let dn = Datanode::new(0);
        let mut ledger = CostLedger::new();
        assert!(matches!(
            dn.read_replica(42, &mut ledger),
            Err(HailError::UnknownBlock(42))
        ));
    }

    #[test]
    fn stored_accounting() {
        let mut dn = Datanode::new(0);
        for b in 0..3u64 {
            let (data, sums) = replica_bytes(100 * (b as usize + 1));
            dn.write_replica(b, data, sums).unwrap();
        }
        assert_eq!(dn.stored_blocks(), vec![0, 1, 2]);
        assert_eq!(dn.stored_bytes(), 100 + 200 + 300);
    }
}
