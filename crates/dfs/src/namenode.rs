//! The HDFS namenode, extended with HAIL's per-replica directory (§3.3).
//!
//! Standard HDFS keeps `Dir_block: blockID → {datanodes}` and treats all
//! replicas of a block as byte-equivalent. HAIL adds
//! `Dir_rep: (blockID, datanode) → HailBlockReplicaInfo` so map tasks
//! can be routed to the replica carrying a suitable clustered index —
//! the per-replica metadata `hail-exec`'s `QueryPlanner` prices its
//! `(replica, access path)` candidates from, and the material its plan
//! cache fingerprints. The [`Namenode::death_log`] is the matching
//! notification feed: plans derived from `Dir_rep` state are invalidated
//! when a replica holder dies.

use hail_index::{HailBlockReplicaInfo, IndexMetadata};
use hail_types::{BlockId, DatanodeId, HailError, Result};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide namenode instance ids, so consumers caching
/// epoch-validated state (the `hail-exec` plan cache) can tell two
/// namenodes' design epochs apart. Starts at 1; 0 is reserved as the
/// "no namenode" sentinel.
static NAMENODE_IDS: AtomicU64 = AtomicU64::new(1);

/// The central namenode directory.
///
/// Uses `BTreeMap` so iteration order — and therefore split order and
/// scheduling — is deterministic across runs.
#[derive(Debug)]
pub struct Namenode {
    /// `Dir_block`: logical block → datanodes holding a replica.
    dir_block: BTreeMap<BlockId, Vec<DatanodeId>>,
    /// `Dir_rep`: (block, datanode) → replica details (HAIL extension).
    dir_rep: BTreeMap<(BlockId, DatanodeId), HailBlockReplicaInfo>,
    /// Datanodes declared dead (expired heartbeats).
    dead: BTreeSet<DatanodeId>,
    /// Deaths in declaration order — the pull-based death notification
    /// feed. Consumers that cache planning state derived from `Dir_rep`
    /// (the `hail-exec` plan cache) remember how much of this log they
    /// have processed and invalidate the affected entries on growth.
    death_log: Vec<DatanodeId>,
    /// Physical-design epoch: bumped on every mutation that can change
    /// what `Dir_rep` reports for some block — replica registration
    /// (upload), datanode death (failover), block abandonment. An
    /// unchanged epoch therefore proves an unchanged `Dir_rep`, which
    /// lets warm plan-cache lookups skip recomputing per-replica
    /// fingerprints entirely.
    design_epoch: u64,
    /// Process-unique instance id (≥ 1), qualifying `design_epoch`:
    /// epochs are only comparable between calls against the **same**
    /// namenode, and two in-process clusters can legitimately share a
    /// plan cache.
    instance_id: u64,
    next_block: BlockId,
}

impl Default for Namenode {
    fn default() -> Self {
        Namenode {
            dir_block: BTreeMap::new(),
            dir_rep: BTreeMap::new(),
            dead: BTreeSet::new(),
            death_log: Vec::new(),
            design_epoch: 0,
            instance_id: NAMENODE_IDS.fetch_add(1, Ordering::Relaxed),
            next_block: 0,
        }
    }
}

impl Namenode {
    pub fn new() -> Self {
        Namenode::default()
    }

    /// Allocates a fresh block id and records the planned replica
    /// locations (what the client obtains before streaming, Fig. 1 step 3).
    pub fn allocate_block(&mut self, datanodes: Vec<DatanodeId>) -> Result<BlockId> {
        if datanodes.is_empty() {
            return Err(HailError::InsufficientReplication {
                wanted: 1,
                alive: 0,
            });
        }
        let id = self.next_block;
        self.next_block += 1;
        self.dir_block.insert(id, datanodes);
        Ok(id)
    }

    /// Registers a completed replica — each datanode reports its own
    /// replica including its HAIL block size, index and sort order
    /// (Fig. 1 steps 11/14).
    pub fn register_replica(&mut self, info: HailBlockReplicaInfo) -> Result<()> {
        let hosts = self
            .dir_block
            .get(&info.block)
            .ok_or(HailError::UnknownBlock(info.block))?;
        if !hosts.contains(&info.datanode) {
            return Err(HailError::Pipeline(format!(
                "datanode DN{} registered a replica of block {} it was never assigned",
                info.datanode + 1,
                info.block
            )));
        }
        self.dir_rep.insert((info.block, info.datanode), info);
        self.design_epoch += 1;
        Ok(())
    }

    /// Abandons a block whose upload failed: removes it (and any
    /// partially registered replicas) from both directories, as the
    /// HDFS client does when the pipeline errors out.
    pub fn abandon_block(&mut self, block: BlockId) {
        if self.dir_block.remove(&block).is_some() {
            self.design_epoch += 1;
        }
        self.dir_rep.retain(|(b, _), _| *b != block);
    }

    /// All block ids, in allocation order.
    pub fn blocks(&self) -> Vec<BlockId> {
        self.dir_block.keys().copied().collect()
    }

    /// Number of known blocks.
    pub fn block_count(&self) -> usize {
        self.dir_block.len()
    }

    /// `getHosts`: live datanodes holding a replica of the block.
    pub fn get_hosts(&self, block: BlockId) -> Result<Vec<DatanodeId>> {
        let hosts = self
            .dir_block
            .get(&block)
            .ok_or(HailError::UnknownBlock(block))?;
        Ok(hosts
            .iter()
            .copied()
            .filter(|d| !self.dead.contains(d))
            .collect())
    }

    /// `getHostsWithIndex`: live datanodes whose replica of the block
    /// carries an index on the given 0-based column (the HAIL extension
    /// to `BlockLocation`, §4.3).
    pub fn get_hosts_with_index(&self, block: BlockId, column: usize) -> Result<Vec<DatanodeId>> {
        let hosts = self.get_hosts(block)?;
        Ok(hosts
            .into_iter()
            .filter(|&d| {
                self.dir_rep
                    .get(&(block, d))
                    .is_some_and(|info| info.index.serves_column(column))
            })
            .collect())
    }

    /// Live datanodes whose replica of the block stores a sidecar bitmap
    /// over the given 0-based column (§3.5 extension, mirrored into
    /// `Dir_rep` at upload time).
    pub fn get_hosts_with_bitmap(&self, block: BlockId, column: usize) -> Result<Vec<DatanodeId>> {
        let hosts = self.get_hosts(block)?;
        Ok(hosts
            .into_iter()
            .filter(|&d| {
                self.dir_rep
                    .get(&(block, d))
                    .is_some_and(|info| info.index.bitmap_on(column).is_some())
            })
            .collect())
    }

    /// Live datanodes whose replica of the block stores a sidecar
    /// zone-map synopsis over the given 0-based column.
    pub fn get_hosts_with_zone_map(
        &self,
        block: BlockId,
        column: usize,
    ) -> Result<Vec<DatanodeId>> {
        let hosts = self.get_hosts(block)?;
        Ok(hosts
            .into_iter()
            .filter(|&d| {
                self.dir_rep
                    .get(&(block, d))
                    .is_some_and(|info| info.index.zone_map_on(column).is_some())
            })
            .collect())
    }

    /// Live datanodes whose replica of the block stores a sidecar
    /// Bloom-filter synopsis over the given 0-based column.
    pub fn get_hosts_with_bloom(&self, block: BlockId, column: usize) -> Result<Vec<DatanodeId>> {
        let hosts = self.get_hosts(block)?;
        Ok(hosts
            .into_iter()
            .filter(|&d| {
                self.dir_rep
                    .get(&(block, d))
                    .is_some_and(|info| info.index.bloom_on(column).is_some())
            })
            .collect())
    }

    /// Live datanodes whose replica of the block stores a sidecar
    /// inverted list over its bad-record section.
    pub fn get_hosts_with_inverted_list(&self, block: BlockId) -> Result<Vec<DatanodeId>> {
        let hosts = self.get_hosts(block)?;
        Ok(hosts
            .into_iter()
            .filter(|&d| {
                self.dir_rep
                    .get(&(block, d))
                    .is_some_and(|info| info.index.inverted_list().is_some())
            })
            .collect())
    }

    /// Detailed replica info (one main-memory lookup per replica, §3.3).
    pub fn replica_info(
        &self,
        block: BlockId,
        datanode: DatanodeId,
    ) -> Result<&HailBlockReplicaInfo> {
        self.dir_rep
            .get(&(block, datanode))
            .ok_or(HailError::UnknownBlock(block))
    }

    /// Index metadata of a replica, if registered.
    pub fn replica_index(&self, block: BlockId, datanode: DatanodeId) -> Option<&IndexMetadata> {
        self.dir_rep.get(&(block, datanode)).map(|i| &i.index)
    }

    /// Marks a datanode dead (heartbeat expiry). Its replicas stop being
    /// returned by `get_hosts*`, and the death is appended to the
    /// [`Namenode::death_log`] notification feed (once per datanode).
    pub fn mark_dead(&mut self, datanode: DatanodeId) {
        if self.dead.insert(datanode) {
            self.death_log.push(datanode);
            self.design_epoch += 1;
        }
    }

    /// The current physical-design epoch. Monotonically increasing;
    /// bumped by every replica registration, first-time datanode death,
    /// and block abandonment. Two equal epochs from the **same**
    /// namenode guarantee identical `Dir_rep` state, so cached plan
    /// validations can compare this one counter instead of
    /// re-serializing every replica's index metadata per lookup.
    pub fn design_epoch(&self) -> u64 {
        self.design_epoch
    }

    /// This namenode's process-unique instance id (≥ 1). Consumers
    /// keying cached state on [`Namenode::design_epoch`] must store the
    /// pair `(instance_id, design_epoch)` — equal epochs from different
    /// namenodes prove nothing.
    pub fn instance_id(&self) -> u64 {
        self.instance_id
    }

    /// Every death declared so far, in order. Monotonically growing;
    /// cache layers compare its length against what they last processed
    /// to learn which datanodes died since (replica-death invalidation).
    pub fn death_log(&self) -> &[DatanodeId] {
        &self.death_log
    }

    /// True if the datanode has been marked dead.
    pub fn is_dead(&self, datanode: DatanodeId) -> bool {
        self.dead.contains(&datanode)
    }

    /// Replicas registered for a block (live datanodes only).
    pub fn live_replicas(&self, block: BlockId) -> Vec<&HailBlockReplicaInfo> {
        self.dir_rep
            .range((block, 0)..(block + 1, 0))
            .filter(|((_, d), _)| !self.dead.contains(d))
            .map(|(_, info)| info)
            .collect()
    }

    /// Total physical bytes stored across all live replicas — the disk
    /// footprint the replication experiment (Fig. 4c) reports.
    pub fn total_replica_bytes(&self) -> u64 {
        self.dir_rep
            .iter()
            .filter(|((_, d), _)| !self.dead.contains(d))
            .map(|(_, info)| info.replica_bytes as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hail_index::{IndexKind, IndexMetadata};

    fn meta_on(col: usize) -> IndexMetadata {
        IndexMetadata {
            kind: IndexKind::Clustered,
            key_column: Some(col),
            index_bytes: 128,
            index_offset: 1000,
            sidecars: Vec::new(),
        }
    }

    fn setup() -> (Namenode, BlockId) {
        let mut nn = Namenode::new();
        let b = nn.allocate_block(vec![0, 1, 2]).unwrap();
        for (dn, col) in [(0usize, 0usize), (1, 1), (2, 2)] {
            nn.register_replica(HailBlockReplicaInfo::new(b, dn, meta_on(col), 5000 + dn))
                .unwrap();
        }
        (nn, b)
    }

    #[test]
    fn allocate_and_get_hosts() {
        let (nn, b) = setup();
        assert_eq!(nn.get_hosts(b).unwrap(), vec![0, 1, 2]);
        assert!(nn.get_hosts(b + 1).is_err());
        assert_eq!(nn.block_count(), 1);
    }

    #[test]
    fn hosts_with_index_filters_by_column() {
        let (nn, b) = setup();
        assert_eq!(nn.get_hosts_with_index(b, 1).unwrap(), vec![1]);
        assert_eq!(nn.get_hosts_with_index(b, 9).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn dead_nodes_filtered_everywhere() {
        let (mut nn, b) = setup();
        nn.mark_dead(1);
        assert_eq!(nn.get_hosts(b).unwrap(), vec![0, 2]);
        assert!(nn.get_hosts_with_index(b, 1).unwrap().is_empty());
        assert_eq!(nn.live_replicas(b).len(), 2);
        assert!(nn.is_dead(1));
    }

    #[test]
    fn sidecar_lookups_filter_by_dir_rep() {
        use hail_index::SidecarMetadata;
        let mut nn = Namenode::new();
        let b = nn.allocate_block(vec![0, 1, 2]).unwrap();
        // DN0: bitmap on column 5 + inverted list; DN1: bitmap only;
        // DN2: no sidecars.
        let with_both = IndexMetadata {
            sidecars: vec![
                SidecarMetadata {
                    kind: IndexKind::Bitmap { column: 5 },
                    sidecar_bytes: 100,
                    sidecar_offset: 0,
                },
                SidecarMetadata {
                    kind: IndexKind::InvertedList,
                    sidecar_bytes: 50,
                    sidecar_offset: 100,
                },
            ],
            ..IndexMetadata::none()
        };
        let with_bitmap = IndexMetadata {
            sidecars: vec![SidecarMetadata {
                kind: IndexKind::Bitmap { column: 5 },
                sidecar_bytes: 90,
                sidecar_offset: 0,
            }],
            ..IndexMetadata::none()
        };
        nn.register_replica(HailBlockReplicaInfo::new(b, 0, with_both, 1000))
            .unwrap();
        nn.register_replica(HailBlockReplicaInfo::new(b, 1, with_bitmap, 1000))
            .unwrap();
        nn.register_replica(HailBlockReplicaInfo::new(b, 2, IndexMetadata::none(), 1000))
            .unwrap();
        assert_eq!(nn.get_hosts_with_bitmap(b, 5).unwrap(), vec![0, 1]);
        assert_eq!(nn.get_hosts_with_bitmap(b, 4).unwrap(), Vec::<usize>::new());
        assert_eq!(nn.get_hosts_with_inverted_list(b).unwrap(), vec![0]);
        // Dead nodes drop out of sidecar lookups too.
        nn.mark_dead(0);
        assert_eq!(nn.get_hosts_with_bitmap(b, 5).unwrap(), vec![1]);
        assert!(nn.get_hosts_with_inverted_list(b).unwrap().is_empty());
    }

    #[test]
    fn death_log_grows_once_per_datanode() {
        let (mut nn, _b) = setup();
        assert!(nn.death_log().is_empty());
        nn.mark_dead(1);
        nn.mark_dead(2);
        nn.mark_dead(1); // duplicate declaration: no new notification
        assert_eq!(nn.death_log(), &[1, 2]);
    }

    #[test]
    fn design_epoch_tracks_dir_rep_mutations() {
        let mut nn = Namenode::new();
        assert_eq!(nn.design_epoch(), 0);
        let b = nn.allocate_block(vec![0, 1]).unwrap();
        // Allocation alone registers no replica metadata.
        assert_eq!(nn.design_epoch(), 0);
        nn.register_replica(HailBlockReplicaInfo::new(b, 0, meta_on(0), 100))
            .unwrap();
        assert_eq!(nn.design_epoch(), 1);
        nn.register_replica(HailBlockReplicaInfo::new(b, 1, meta_on(1), 100))
            .unwrap();
        assert_eq!(nn.design_epoch(), 2);
        // Death bumps once per datanode, like the death log.
        nn.mark_dead(1);
        nn.mark_dead(1);
        assert_eq!(nn.design_epoch(), 3);
        // Abandoning a known block bumps; a second abandon is a no-op.
        nn.abandon_block(b);
        assert_eq!(nn.design_epoch(), 4);
        nn.abandon_block(b);
        assert_eq!(nn.design_epoch(), 4);
    }

    #[test]
    fn register_requires_assignment() {
        let (mut nn, b) = setup();
        let err = nn.register_replica(HailBlockReplicaInfo::new(b, 7, meta_on(0), 100));
        assert!(err.is_err());
    }

    #[test]
    fn replica_info_lookup() {
        let (nn, b) = setup();
        let info = nn.replica_info(b, 2).unwrap();
        assert_eq!(info.index.key_column, Some(2));
        assert_eq!(info.replica_bytes, 5002);
        assert!(nn.replica_index(b, 9).is_none());
    }

    #[test]
    fn footprint_sums_live_replicas() {
        let (mut nn, b) = setup();
        assert_eq!(nn.total_replica_bytes(), 5000 + 5001 + 5002);
        nn.mark_dead(0);
        assert_eq!(nn.total_replica_bytes(), 5001 + 5002);
        let _ = b;
    }

    #[test]
    fn abandon_removes_block_and_replicas() {
        let (mut nn, b) = setup();
        nn.abandon_block(b);
        assert!(nn.get_hosts(b).is_err());
        assert_eq!(nn.block_count(), 0);
        assert!(nn.replica_info(b, 0).is_err());
    }

    #[test]
    fn block_ids_monotonic() {
        let mut nn = Namenode::new();
        let a = nn.allocate_block(vec![0]).unwrap();
        let b = nn.allocate_block(vec![1]).unwrap();
        assert!(b > a);
        assert_eq!(nn.blocks(), vec![a, b]);
    }

    #[test]
    fn empty_placement_rejected() {
        let mut nn = Namenode::new();
        assert!(nn.allocate_block(vec![]).is_err());
    }
}
