//! Failure injection and recovery invariants.
//!
//! HAIL's key fault-tolerance property (§2.3): all data reorganization is
//! *within* a block, so any single replica — whatever its sort order —
//! recovers the full logical block. This module provides the recovery
//! check used by tests and the failover experiment, plus helpers to
//! stage node failures at a work-progress fraction (§6.4.3's methodology:
//! "kill all Java processes on a random node after 50 % of work
//! progress").

use crate::cluster::DfsCluster;
use hail_index::IndexedBlock;
use hail_sim::CostLedger;
use hail_types::{BlockId, DatanodeId, HailError, Result};
use std::collections::BTreeSet;

/// The paper's expiry interval: how long until a dead TaskTracker /
/// datanode is noticed (§6.4.3 sets it to 30 s).
pub const EXPIRY_INTERVAL_S: f64 = 30.0;

/// Recovers the logical rows of a block from any live replica,
/// returning them in a canonical (sorted-by-string) order so replicas
/// with different physical sort orders compare equal.
pub fn recover_logical_rows(cluster: &DfsCluster, block: BlockId) -> Result<Vec<String>> {
    let hosts = cluster.namenode().get_hosts(block)?;
    let mut ledger = CostLedger::new();
    for dn in hosts {
        let Ok(bytes) = cluster.datanode(dn)?.read_replica(block, &mut ledger) else {
            continue;
        };
        let indexed = IndexedBlock::parse(bytes)?;
        let pax = indexed.pax();
        let mut rows = Vec::with_capacity(pax.row_count() + pax.bad_count());
        for r in 0..pax.row_count() {
            rows.push(pax.reconstruct_full(r)?.to_string());
        }
        for bad in pax.bad_records()? {
            rows.push(format!("<bad>{bad}"));
        }
        rows.sort();
        return Ok(rows);
    }
    Err(HailError::UnknownBlock(block))
}

/// Verifies that every live replica of every block recovers identical
/// logical content — the failover invariant.
pub fn verify_replica_equivalence(cluster: &DfsCluster) -> Result<()> {
    let mut ledger = CostLedger::new();
    for block in cluster.namenode().blocks() {
        let hosts = cluster.namenode().get_hosts(block)?;
        let mut canonical: Option<Vec<String>> = None;
        for dn in hosts {
            let bytes = cluster.datanode(dn)?.read_replica(block, &mut ledger)?;
            let indexed = IndexedBlock::parse(bytes)?;
            let pax = indexed.pax();
            let mut rows = Vec::with_capacity(pax.row_count());
            for r in 0..pax.row_count() {
                rows.push(pax.reconstruct_full(r)?.to_string());
            }
            rows.sort();
            match &canonical {
                None => canonical = Some(rows),
                Some(c) => {
                    if c != &rows {
                        return Err(HailError::Internal(format!(
                            "replicas of block {block} diverge logically"
                        )));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Blocks that lost a replica when `node` died (they remain readable
/// from surviving replicas).
pub fn blocks_affected_by(cluster: &DfsCluster, node: DatanodeId) -> Vec<BlockId> {
    let mut out = BTreeSet::new();
    for block in cluster.namenode().blocks() {
        if let Ok(info) = cluster.namenode().replica_info(block, node) {
            out.insert(info.block);
        }
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{hail_upload_block, FaultPlan};
    use hail_index::ReplicaIndexConfig;
    use hail_pax::blocks_from_text;
    use hail_types::{DataType, Field, Schema, StorageConfig};

    fn uploaded_cluster() -> (DfsCluster, Vec<BlockId>) {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::VarChar),
        ])
        .unwrap();
        let mut cluster = DfsCluster::new(4, StorageConfig::test_scale(64));
        let text: String = (0..30)
            .map(|i| format!("{}|val{}\n", (i * 7) % 30, i))
            .collect();
        let blocks = blocks_from_text(&text, &schema, &StorageConfig::test_scale(64)).unwrap();
        let orders = ReplicaIndexConfig::first_indexed(3, &[0, 1]);
        let ids: Vec<BlockId> = blocks
            .iter()
            .enumerate()
            .map(|(i, b)| {
                hail_upload_block(&mut cluster, i % 4, b, &orders, &FaultPlan::none()).unwrap()
            })
            .collect();
        (cluster, ids)
    }

    #[test]
    fn replicas_are_logically_equivalent() {
        let (cluster, _) = uploaded_cluster();
        verify_replica_equivalence(&cluster).unwrap();
    }

    #[test]
    fn recovery_survives_node_death() {
        let (mut cluster, ids) = uploaded_cluster();
        let before: Vec<Vec<String>> = ids
            .iter()
            .map(|&b| recover_logical_rows(&cluster, b).unwrap())
            .collect();
        cluster.kill_node(1).unwrap();
        for (i, &b) in ids.iter().enumerate() {
            let after = recover_logical_rows(&cluster, b).unwrap();
            assert_eq!(after, before[i], "block {b} changed after failure");
        }
    }

    #[test]
    fn two_node_deaths_still_recoverable() {
        let (mut cluster, ids) = uploaded_cluster();
        cluster.kill_node(0).unwrap();
        cluster.kill_node(2).unwrap();
        // With replication 3 on 4 nodes, at least one replica survives
        // any 2 failures... unless both dead nodes plus chain layout
        // conspire; verify each block individually and require at least
        // partial coverage.
        let mut recovered = 0;
        for &b in &ids {
            if recover_logical_rows(&cluster, b).is_ok() {
                recovered += 1;
            }
        }
        assert!(recovered > 0);
    }

    #[test]
    fn affected_blocks_listed() {
        let (cluster, ids) = uploaded_cluster();
        let affected = blocks_affected_by(&cluster, 0);
        assert!(!affected.is_empty());
        assert!(affected.iter().all(|b| ids.contains(b)));
    }

    #[test]
    fn corrupt_replica_detected_but_others_survive() {
        let (mut cluster, ids) = uploaded_cluster();
        let block = ids[0];
        let dn = cluster.namenode().get_hosts(block).unwrap()[0];
        cluster
            .datanode_mut(dn)
            .unwrap()
            .corrupt_replica(block, 40)
            .unwrap();
        // Recovery skips the corrupt replica (full-read checksum fails)
        // and serves from another one.
        let rows = recover_logical_rows(&cluster, block).unwrap();
        assert!(!rows.is_empty());
    }
}
