//! The distributed file system as a whole: namenode + datanodes +
//! placement + per-node client ledgers.

use crate::datanode::Datanode;
use crate::namenode::Namenode;
use crate::placement::PlacementPolicy;
use hail_sim::CostLedger;
use hail_types::{BlockId, DatanodeId, HailError, Result, StorageConfig};

/// An in-process DFS cluster.
///
/// Deterministic and single-threaded: upload "parallelism" is captured by
/// the cost model (per-node ledgers priced independently, cluster time =
/// slowest node), not by OS threads, so every experiment is reproducible.
#[derive(Debug)]
pub struct DfsCluster {
    namenode: Namenode,
    datanodes: Vec<Datanode>,
    placement: PlacementPolicy,
    config: StorageConfig,
    /// Per-node HDFS/HAIL *client* activity (file read, parse CPU,
    /// first-hop network) — each node uploads its local portion of the
    /// dataset, as in the paper's per-node data generation.
    client_ledgers: Vec<CostLedger>,
}

impl DfsCluster {
    /// Creates a cluster of `nodes` datanodes.
    pub fn new(nodes: usize, config: StorageConfig) -> Self {
        DfsCluster {
            namenode: Namenode::new(),
            datanodes: (0..nodes).map(Datanode::new).collect(),
            placement: PlacementPolicy::new(nodes),
            config,
            client_ledgers: vec![CostLedger::new(); nodes],
        }
    }

    /// Number of datanodes (dead ones included).
    pub fn node_count(&self) -> usize {
        self.datanodes.len()
    }

    /// The storage configuration.
    pub fn config(&self) -> &StorageConfig {
        &self.config
    }

    /// The namenode.
    pub fn namenode(&self) -> &Namenode {
        &self.namenode
    }

    /// Mutable namenode access (used by the upload pipelines).
    pub(crate) fn namenode_mut(&mut self) -> &mut Namenode {
        &mut self.namenode
    }

    /// A datanode by id.
    pub fn datanode(&self, id: DatanodeId) -> Result<&Datanode> {
        self.datanodes.get(id).ok_or(HailError::DeadDatanode(id))
    }

    /// Mutable datanode access.
    pub fn datanode_mut(&mut self, id: DatanodeId) -> Result<&mut Datanode> {
        self.datanodes
            .get_mut(id)
            .ok_or(HailError::DeadDatanode(id))
    }

    /// The client-side ledger of a node.
    pub fn client_ledger(&self, node: DatanodeId) -> &CostLedger {
        &self.client_ledgers[node]
    }

    /// Mutable client ledger (the upload client charges its parse/read
    /// work here).
    pub fn client_ledger_mut(&mut self, node: DatanodeId) -> &mut CostLedger {
        &mut self.client_ledgers[node]
    }

    /// Allocates a block: placement + namenode registration. Returns the
    /// block id and its replica chain (first entry = writer if alive).
    pub(crate) fn allocate(
        &mut self,
        writer: DatanodeId,
        replication: usize,
    ) -> Result<(BlockId, Vec<DatanodeId>)> {
        let datanodes = {
            let alive: Vec<bool> = self.datanodes.iter().map(Datanode::is_alive).collect();
            self.placement.place(writer, replication, |d| {
                alive.get(d).copied().unwrap_or(false)
            })?
        };
        let id = self.namenode.allocate_block(datanodes.clone())?;
        Ok((id, datanodes))
    }

    /// Kills a node: the datanode stops serving and the namenode marks it
    /// dead.
    pub fn kill_node(&mut self, node: DatanodeId) -> Result<()> {
        self.datanode_mut(node)?.kill();
        self.namenode.mark_dead(node);
        Ok(())
    }

    /// Ids of live datanodes.
    pub fn live_nodes(&self) -> Vec<DatanodeId> {
        self.datanodes
            .iter()
            .filter(|d| d.is_alive())
            .map(Datanode::id)
            .collect()
    }

    /// Combined per-node upload activity: client work + datanode work on
    /// the same physical machine. Entry `i` is node `i`'s total ledger.
    pub fn upload_ledgers(&self) -> Vec<CostLedger> {
        self.datanodes
            .iter()
            .zip(&self.client_ledgers)
            .map(|(dn, client)| {
                let mut l = *client;
                l.add(dn.upload_ledger());
                l
            })
            .collect()
    }

    /// Resets all ledgers (between experiment phases).
    pub fn reset_ledgers(&mut self) {
        for dn in &mut self.datanodes {
            dn.reset_ledger();
        }
        for l in &mut self.client_ledgers {
            *l = CostLedger::new();
        }
    }

    /// Total physical bytes stored on live nodes (data files only).
    pub fn stored_bytes(&self) -> u64 {
        self.datanodes
            .iter()
            .filter(|d| d.is_alive())
            .map(Datanode::stored_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let c = DfsCluster::new(5, StorageConfig::default());
        assert_eq!(c.node_count(), 5);
        assert_eq!(c.live_nodes().len(), 5);
        assert_eq!(c.stored_bytes(), 0);
    }

    #[test]
    fn kill_node_updates_both_views() {
        let mut c = DfsCluster::new(3, StorageConfig::default());
        c.kill_node(1).unwrap();
        assert_eq!(c.live_nodes(), vec![0, 2]);
        assert!(c.namenode().is_dead(1));
        assert!(!c.datanode(1).unwrap().is_alive());
    }

    #[test]
    fn allocate_prefers_writer() {
        let mut c = DfsCluster::new(4, StorageConfig::default());
        let (id, chain) = c.allocate(2, 3).unwrap();
        assert_eq!(chain[0], 2);
        assert_eq!(c.namenode().get_hosts(id).unwrap(), chain);
    }

    #[test]
    fn allocate_fails_without_enough_nodes() {
        let mut c = DfsCluster::new(2, StorageConfig::default());
        assert!(c.allocate(0, 3).is_err());
    }

    #[test]
    fn ledger_merge() {
        let mut c = DfsCluster::new(2, StorageConfig::default());
        c.client_ledger_mut(0).parse_cpu = 100;
        let ledgers = c.upload_ledgers();
        assert_eq!(ledgers[0].parse_cpu, 100);
        assert_eq!(ledgers[1].parse_cpu, 0);
        c.reset_ledgers();
        assert_eq!(c.upload_ledgers()[0].parse_cpu, 0);
    }
}
