//! The upload pipelines (Fig. 1).
//!
//! [`hdfs_upload_block`] is the standard HDFS path: the client streams a
//! block's raw bytes as packets through the chain DN1 → DN2 → DN3; every
//! datanode flushes chunk data and checksums *as packets arrive*; only
//! the chain tail verifies checksums; ACKs flow back through the chain
//! and must arrive in order.
//!
//! [`hail_upload_block`] is the HAIL path: the client ships an (already
//! binary PAX) block through the same chain, but datanodes buffer packets
//! in main memory instead of flushing, reassemble the block, sort it in
//! their replica-specific order, build the clustered index, recompute
//! *their own* checksums (each replica's bytes differ!), and only then
//! flush both files. The ACK semantics change from "received, validated,
//! and flushed" to "received and validated" — except the block's last
//! packet, which is only acknowledged after the flush completes.

use crate::cluster::DfsCluster;
use bytes::Bytes;
use hail_index::{
    HailBlockReplicaInfo, IndexMetadata, IndexedBlock, ReplicaIndexConfig, SidecarSpec, SortOrder,
};
use hail_pax::checksum::{chunk_checksums, packetize, reassemble, Packet};
use hail_pax::PaxBlock;
use hail_sim::CostLedger;
use hail_types::{BlockId, DatanodeId, HailError, Result};

/// Fault-injection plan for upload tests.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Flip a byte of packet `seqno`'s payload after it leaves hop
    /// `hop` (0 = client → DN1). The chain tail must catch it.
    pub corrupt_after_hop: Option<(usize, u32)>,
    /// Deliver ACKs out of order — the client must fail the upload.
    pub reorder_acks: bool,
    /// Kill this datanode mid-stream, after it has received the given
    /// packet.
    pub kill_datanode_at: Option<(DatanodeId, u32)>,
}

impl FaultPlan {
    /// No injected faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }
}

/// Streams packets through the replica chain, applying faults, charging
/// network hops, and verifying checksums at the tail. Returns each
/// datanode's received packet list.
fn stream_chain(
    cluster: &mut DfsCluster,
    writer: DatanodeId,
    chain: &[DatanodeId],
    packets: Vec<Packet>,
    fault: &FaultPlan,
) -> Result<Vec<Vec<Packet>>> {
    let mut received: Vec<Vec<Packet>> = vec![Vec::with_capacity(packets.len()); chain.len()];
    for packet in packets {
        let mut current = packet;
        for (hop, &dn) in chain.iter().enumerate() {
            // Charge the sender of this hop.
            let from_node = if hop == 0 { writer } else { chain[hop - 1] };
            if from_node != dn {
                let wire = current.wire_bytes() as u64;
                if hop == 0 {
                    cluster.client_ledger_mut(from_node).net_sent += wire;
                } else {
                    cluster.datanode_net(from_node, wire)?;
                }
            }
            // Fault: corrupt the payload after it leaves `hop`.
            if let Some((at_hop, seqno)) = fault.corrupt_after_hop {
                if at_hop == hop && current.seqno == seqno && !current.data.is_empty() {
                    current.data[0] ^= 0xFF;
                }
            }
            // Fault: the datanode dies mid-stream.
            if let Some((dead_dn, at_seqno)) = fault.kill_datanode_at {
                if dead_dn == dn && current.seqno == at_seqno {
                    cluster.kill_node(dn)?;
                }
            }
            if !cluster.datanode(dn)?.is_alive() {
                return Err(HailError::DeadDatanode(dn));
            }
            // The chain tail verifies every chunk checksum (§3.2): DN2
            // believes DN3, DN1 believes DN2, CL believes DN1.
            if hop + 1 == chain.len() {
                current.verify()?;
            }
            received[hop].push(current.clone());
        }
    }
    // ACK chain: the client checks that ACKs arrive in order. We model
    // the ACK stream as the sequence of packet seqnos echoed back.
    let mut acks: Vec<u32> = received
        .last()
        .map(|p| p.iter().map(|p| p.seqno).collect())
        .unwrap_or_default();
    if fault.reorder_acks && acks.len() >= 2 {
        acks.swap(0, 1);
    }
    for (i, &seq) in acks.iter().enumerate() {
        if seq as usize != i {
            return Err(HailError::Pipeline(format!(
                "ACK {seq} arrived out of order (expected {i}); upload failed"
            )));
        }
    }
    Ok(received)
}

impl DfsCluster {
    /// Charges network bytes to a datanode's upload ledger.
    fn datanode_net(&mut self, node: DatanodeId, bytes: u64) -> Result<()> {
        // Datanode stores its ledger privately; route through a small
        // internal API.
        self.datanode_mut(node)?.add_net_sent(bytes);
        Ok(())
    }
}

/// Uploads one block the standard HDFS way: identical replicas, flushed
/// as received, no transformation. `raw` is whatever the file contains
/// (text lines for the Hadoop baseline).
pub fn hdfs_upload_block(
    cluster: &mut DfsCluster,
    writer: DatanodeId,
    raw: Bytes,
    fault: &FaultPlan,
) -> Result<BlockId> {
    let replication = cluster.config().replication;
    let (block, chain) = cluster.allocate(writer, replication)?;

    // The client reads the source file from local disk.
    cluster.client_ledger_mut(writer).disk_read += raw.len() as u64;
    cluster.client_ledger_mut(writer).seeks += 1;

    let packets = packetize(&raw);
    let received = match stream_chain(cluster, writer, &chain, packets, fault) {
        Ok(r) => r,
        Err(e) => {
            // Failed uploads abandon the block, as the HDFS client does.
            cluster.namenode_mut().abandon_block(block);
            return Err(e);
        }
    };

    for (dn, packets) in chain.iter().zip(received) {
        // HDFS datanodes flush chunk data and checksums as packets
        // arrive; the net effect is one data file + one checksum file.
        let data = reassemble(&packets)?;
        let checksums: Vec<u32> = packets.iter().flat_map(|p| p.checksums.clone()).collect();
        cluster
            .datanode_mut(*dn)?
            .write_replica(block, Bytes::from(data), checksums)?;
        let replica_bytes = cluster.datanode(*dn)?.replica_len(block)?;
        cluster
            .namenode_mut()
            .register_replica(HailBlockReplicaInfo::new(
                block,
                *dn,
                IndexMetadata::none(),
                replica_bytes,
            ))?;
    }
    Ok(block)
}

/// Uploads one block the HAIL way (Fig. 1): the client ships the binary
/// PAX block; each datanode buffers, sorts in its own order, indexes,
/// builds the configured §3.5 sidecar extension indexes, re-checksums,
/// flushes, and registers its replica — sidecar directory included —
/// with the namenode.
///
/// `config.orders()[i]` is the sort order and `config.sidecar(i)` the
/// sidecar spec for the replica at chain position `i`; the config's
/// replication must equal the cluster's.
pub fn hail_upload_block(
    cluster: &mut DfsCluster,
    writer: DatanodeId,
    pax: &PaxBlock,
    config: &ReplicaIndexConfig,
    fault: &FaultPlan,
) -> Result<BlockId> {
    let replication = cluster.config().replication;
    if config.replication() != replication {
        return Err(HailError::Job(format!(
            "{} sort orders for replication factor {replication}",
            config.replication()
        )));
    }
    let (block, chain) = cluster.allocate(writer, replication)?;

    // Client: cut the PAX block into packets (checksums computed here are
    // reused on the wire, §3.2 step 4).
    let packets = packetize(pax.bytes());
    let received = match stream_chain(cluster, writer, &chain, packets, fault) {
        Ok(r) => r,
        Err(e) => {
            cluster.namenode_mut().abandon_block(block);
            return Err(e);
        }
    };

    for ((pos, dn), packets) in chain.iter().enumerate().zip(received) {
        let order = config.orders()[pos];
        let spec = config.sidecar(pos);
        // Step 6: reassemble the block in main memory — nothing flushed
        // yet.
        let data = reassemble(&packets)?;
        let pax_block = PaxBlock::parse(Bytes::from(data))?;

        // Step 7: sort + index in memory, forming the HAIL block. This is
        // pure CPU; charge the binary block size (sort + permute +
        // index build all stream over it).
        let indexed = IndexedBlock::build_with(&pax_block, order, spec)?;
        if order.column().is_some() {
            cluster
                .datanode_mut(*dn)?
                .add_sort_cpu(pax_block.byte_len() as u64);
        }
        // Building sidecars streams once over the indexed columns / bad
        // records; charge their serialized size as CPU.
        let sidecar_total = indexed.metadata().sidecar_bytes_total();
        if sidecar_total > 0 {
            cluster
                .datanode_mut(*dn)?
                .add_sort_cpu(sidecar_total as u64);
        }

        // Recompute checksums over this replica's (unique) bytes and
        // flush data + checksum files.
        let checksums = chunk_checksums(indexed.bytes());
        let meta = indexed.metadata().clone();
        let replica_bytes = indexed.byte_len();
        cluster
            .datanode_mut(*dn)?
            .write_replica(block, indexed.bytes().clone(), checksums)?;

        // Steps 11/14: each datanode informs the namenode about its new
        // replica — size, index, sort order.
        cluster
            .namenode_mut()
            .register_replica(HailBlockReplicaInfo::new(block, *dn, meta, replica_bytes))?;
    }
    Ok(block)
}

/// Rewrites one stored replica in place with a new sort order and
/// sidecar spec — the adaptive re-indexing path (the LIAH-style
/// follow-up to the paper's static upload-time design).
///
/// The datanode re-runs upload step 7 locally — no network hop, the
/// data is already on its disk: read the replica, take its logical PAX
/// payload, re-sort/re-index in main memory, re-checksum, and flush.
/// It then re-registers with the namenode, which overwrites this
/// `(block, datanode)`'s `Dir_rep` entry *atomically under `&mut`* and
/// bumps the design epoch — so every `PlanCache` entry whose
/// fingerprint embedded the old metadata revalidates and re-plans,
/// while entries for untouched blocks keep verifying.
///
/// Because the whole rewrite holds `&mut DfsCluster`, no query can be
/// planning or reading while the design mutates: readers observe either
/// the old replica (before this call) or the new one (after), never a
/// half-registered hybrid.
///
/// Costs are charged like the upload's: the re-read, sort/index CPU and
/// flush all land on the datanode's upload ledger (it is background
/// maintenance work, not part of any query's read path).
pub fn rewrite_replica(
    cluster: &mut DfsCluster,
    block: BlockId,
    datanode: DatanodeId,
    order: SortOrder,
    spec: &SidecarSpec,
) -> Result<()> {
    // Read the stored replica back (background I/O: charged to the
    // node's own upload ledger, with checksum verification like any
    // full-replica read).
    let mut ledger = CostLedger::new();
    let bytes = cluster
        .datanode(datanode)?
        .read_replica(block, &mut ledger)?;
    let old = IndexedBlock::parse(bytes)?;

    // Step 7, locally: sort + index + sidecars over the logical rows.
    let rebuilt = IndexedBlock::build_with(old.pax(), order, spec)?;
    let node = cluster.datanode_mut(datanode)?;
    node.add_extra(&ledger);
    if order.column().is_some() {
        node.add_sort_cpu(old.pax().byte_len() as u64);
    }
    let sidecar_total = rebuilt.metadata().sidecar_bytes_total();
    if sidecar_total > 0 {
        node.add_sort_cpu(sidecar_total as u64);
    }

    // Flush the replacement files, then re-register: `Dir_rep` flips to
    // the new metadata and the design epoch bumps in the same exclusive
    // section.
    let checksums = chunk_checksums(rebuilt.bytes());
    let meta = rebuilt.metadata().clone();
    let replica_bytes = rebuilt.byte_len();
    node.write_replica(block, rebuilt.bytes().clone(), checksums)?;
    cluster
        .namenode_mut()
        .register_replica(HailBlockReplicaInfo::new(
            block,
            datanode,
            meta,
            replica_bytes,
        ))
}

/// Stores a block whose per-replica payloads were produced elsewhere
/// (the Hadoop++ post-upload indexing jobs use this to rewrite data as
/// binary-with-trojan-index; all replicas are identical).
pub fn store_transformed_block(
    cluster: &mut DfsCluster,
    writer: DatanodeId,
    payload: Bytes,
    meta: IndexMetadata,
) -> Result<BlockId> {
    let replication = cluster.config().replication;
    let (block, chain) = cluster.allocate(writer, replication)?;
    let packets = packetize(&payload);
    let received = match stream_chain(cluster, writer, &chain, packets, &FaultPlan::none()) {
        Ok(r) => r,
        Err(e) => {
            cluster.namenode_mut().abandon_block(block);
            return Err(e);
        }
    };
    for (dn, packets) in chain.iter().zip(received) {
        let data = reassemble(&packets)?;
        let checksums: Vec<u32> = packets.iter().flat_map(|p| p.checksums.clone()).collect();
        let len = data.len();
        cluster
            .datanode_mut(*dn)?
            .write_replica(block, Bytes::from(data), checksums)?;
        cluster
            .namenode_mut()
            .register_replica(HailBlockReplicaInfo::new(block, *dn, meta.clone(), len))?;
    }
    Ok(block)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hail_index::{ReplicaIndexConfig, SidecarSpec, SortOrder};
    use hail_pax::blocks_from_text;
    use hail_types::{DataType, Field, Schema, StorageConfig, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("name", DataType::VarChar),
        ])
        .unwrap()
    }

    fn pax_block() -> PaxBlock {
        let text: String = [5, 3, 9, 1, 7, 2, 8]
            .iter()
            .map(|i| format!("{i}|name{i}\n"))
            .collect();
        blocks_from_text(&text, &schema(), &StorageConfig::test_scale(1 << 20))
            .unwrap()
            .pop()
            .unwrap()
    }

    fn cluster() -> DfsCluster {
        DfsCluster::new(4, StorageConfig::test_scale(1 << 20))
    }

    #[test]
    fn hdfs_upload_stores_identical_replicas() {
        let mut c = cluster();
        let raw = Bytes::from_static(b"1|a\n2|b\n3|c\n");
        let block = hdfs_upload_block(&mut c, 0, raw.clone(), &FaultPlan::none()).unwrap();
        let hosts = c.namenode().get_hosts(block).unwrap();
        assert_eq!(hosts.len(), 3);
        let mut ledger = hail_sim::CostLedger::new();
        for &dn in &hosts {
            let data = c
                .datanode(dn)
                .unwrap()
                .read_replica(block, &mut ledger)
                .unwrap();
            assert_eq!(data, raw);
        }
        // Client read the file once from local disk.
        assert_eq!(c.client_ledger(0).disk_read, raw.len() as u64);
    }

    #[test]
    fn hail_upload_creates_divergent_sorted_replicas() {
        let mut c = cluster();
        let pax = pax_block();
        let orders = ReplicaIndexConfig::first_indexed(3, &[0, 1]);
        let block = hail_upload_block(&mut c, 1, &pax, &orders, &FaultPlan::none()).unwrap();

        let hosts = c.namenode().get_hosts(block).unwrap();
        assert_eq!(hosts[0], 1, "writer holds the first replica");

        // Replica 0: clustered on column 0.
        let mut ledger = hail_sim::CostLedger::new();
        let r0 = c
            .datanode(hosts[0])
            .unwrap()
            .read_replica(block, &mut ledger)
            .unwrap();
        let b0 = IndexedBlock::parse(r0).unwrap();
        assert_eq!(b0.sort_order(), SortOrder::Clustered { column: 0 });
        assert_eq!(b0.pax().value(0, 0).unwrap(), Value::Int(1));
        assert!(b0.index().is_some());

        // Replica 1: clustered on column 1 (names).
        let r1 = c
            .datanode(hosts[1])
            .unwrap()
            .read_replica(block, &mut ledger)
            .unwrap();
        let b1 = IndexedBlock::parse(r1).unwrap();
        assert_eq!(b1.sort_order(), SortOrder::Clustered { column: 1 });

        // Replica 2: unsorted.
        let r2 = c
            .datanode(hosts[2])
            .unwrap()
            .read_replica(block, &mut ledger)
            .unwrap();
        let b2 = IndexedBlock::parse(r2).unwrap();
        assert_eq!(b2.sort_order(), SortOrder::Unsorted);
        assert_eq!(b2.pax().value(0, 0).unwrap(), Value::Int(5));

        // Namenode knows who has which index.
        assert_eq!(
            c.namenode().get_hosts_with_index(block, 0).unwrap(),
            vec![hosts[0]]
        );
        assert_eq!(
            c.namenode().get_hosts_with_index(block, 1).unwrap(),
            vec![hosts[1]]
        );
    }

    #[test]
    fn rewrite_replica_reindexes_in_place() {
        let mut c = cluster();
        let pax = pax_block();
        let orders = ReplicaIndexConfig::first_indexed(3, &[0]);
        let block = hail_upload_block(&mut c, 0, &pax, &orders, &FaultPlan::none()).unwrap();
        let hosts = c.namenode().get_hosts(block).unwrap();
        let target = hosts[2]; // the unsorted replica
        let epoch = c.namenode().design_epoch();

        rewrite_replica(
            &mut c,
            block,
            target,
            SortOrder::Clustered { column: 1 },
            &SidecarSpec::default(),
        )
        .unwrap();

        // Dir_rep flipped and the epoch bumped.
        assert!(c.namenode().design_epoch() > epoch);
        assert_eq!(
            c.namenode().get_hosts_with_index(block, 1).unwrap(),
            vec![target]
        );
        // The stored bytes really are the re-sorted, re-indexed block,
        // and checksums match the new content.
        let mut ledger = hail_sim::CostLedger::new();
        let bytes = c
            .datanode(target)
            .unwrap()
            .read_replica(block, &mut ledger)
            .unwrap();
        let rebuilt = IndexedBlock::parse(bytes).unwrap();
        assert_eq!(rebuilt.sort_order(), SortOrder::Clustered { column: 1 });
        assert!(rebuilt.index().is_some());
        // Logical content is untouched (same rows, new physical order).
        assert_eq!(rebuilt.pax().row_count(), pax.row_count());

        // Rewriting on a dead node refuses cleanly.
        c.kill_node(hosts[1]).unwrap();
        let err = rewrite_replica(
            &mut c,
            block,
            hosts[1],
            SortOrder::Clustered { column: 1 },
            &SidecarSpec::default(),
        )
        .unwrap_err();
        assert!(matches!(err, HailError::DeadDatanode(_)));
    }

    #[test]
    fn hail_checksums_differ_across_replicas() {
        let mut c = cluster();
        let pax = pax_block();
        let orders = ReplicaIndexConfig::first_indexed(3, &[0, 1]);
        let block = hail_upload_block(&mut c, 0, &pax, &orders, &FaultPlan::none()).unwrap();
        let hosts = c.namenode().get_hosts(block).unwrap();
        let mut ledger = hail_sim::CostLedger::new();
        let bytes: Vec<Bytes> = hosts
            .iter()
            .map(|&d| {
                c.datanode(d)
                    .unwrap()
                    .read_replica(block, &mut ledger)
                    .unwrap()
            })
            .collect();
        assert_ne!(bytes[0], bytes[1]);
        assert_ne!(bytes[1], bytes[2]);
    }

    #[test]
    fn corruption_in_chain_fails_upload() {
        let mut c = cluster();
        let pax = pax_block();
        let orders = ReplicaIndexConfig::unindexed(3);
        let fault = FaultPlan {
            corrupt_after_hop: Some((1, 0)),
            ..Default::default()
        };
        let err = hail_upload_block(&mut c, 0, &pax, &orders, &fault).unwrap_err();
        assert!(matches!(err, HailError::ChecksumMismatch { .. }));
        // The failed block was abandoned: the namenode has no trace of
        // it, and a subsequent clean upload succeeds.
        assert_eq!(c.namenode().block_count(), 0);
        let ok = hail_upload_block(&mut c, 0, &pax, &orders, &FaultPlan::none());
        assert!(ok.is_ok());
    }

    #[test]
    fn reordered_acks_fail_upload() {
        let mut c = DfsCluster::new(4, StorageConfig::test_scale(256));
        // Enough data for ≥2 packets would need 64 KB; instead rely on a
        // larger block.
        let text: String = (0..20_000).map(|i| format!("{i}|n{i}\n")).collect();
        let pax = blocks_from_text(&text, &schema(), &StorageConfig::test_scale(1 << 30))
            .unwrap()
            .pop()
            .unwrap();
        let fault = FaultPlan {
            reorder_acks: true,
            ..Default::default()
        };
        let err = hail_upload_block(&mut c, 0, &pax, &ReplicaIndexConfig::unindexed(3), &fault)
            .unwrap_err();
        assert!(matches!(err, HailError::Pipeline(_)));
    }

    #[test]
    fn datanode_death_mid_stream_fails_upload() {
        let mut c = cluster();
        let pax = pax_block();
        let fault = FaultPlan {
            kill_datanode_at: Some((1, 0)),
            ..Default::default()
        };
        // Writer 1 is the first replica target; killing it mid-stream
        // aborts.
        let err = hail_upload_block(&mut c, 1, &pax, &ReplicaIndexConfig::unindexed(3), &fault)
            .unwrap_err();
        assert!(matches!(err, HailError::DeadDatanode(1)));
    }

    #[test]
    fn network_charged_for_remote_hops_only() {
        let mut c = cluster();
        let pax = pax_block();
        hail_upload_block(
            &mut c,
            0,
            &pax,
            &ReplicaIndexConfig::unindexed(3),
            &FaultPlan::none(),
        )
        .unwrap();
        // Writer-local first hop is free; the client sent nothing.
        assert_eq!(c.client_ledger(0).net_sent, 0);
        // DN chain hops were charged to the forwarding datanodes.
        let ledgers = c.upload_ledgers();
        let total_net: u64 = ledgers.iter().map(|l| l.net_sent).sum();
        assert!(total_net > 0);
    }

    #[test]
    fn sort_cpu_charged_per_indexed_replica() {
        let mut c = cluster();
        let pax = pax_block();
        hail_upload_block(
            &mut c,
            0,
            &pax,
            &ReplicaIndexConfig::first_indexed(3, &[0, 1, 0]),
            &FaultPlan::none(),
        )
        .unwrap();
        let total_sort: u64 = c.upload_ledgers().iter().map(|l| l.sort_cpu).sum();
        assert_eq!(total_sort, 3 * pax.byte_len() as u64);

        let mut c2 = cluster();
        hail_upload_block(
            &mut c2,
            0,
            &pax,
            &ReplicaIndexConfig::unindexed(3),
            &FaultPlan::none(),
        )
        .unwrap();
        let no_sort: u64 = c2.upload_ledgers().iter().map(|l| l.sort_cpu).sum();
        assert_eq!(no_sort, 0);
    }

    #[test]
    fn wrong_order_count_rejected() {
        let mut c = cluster();
        let pax = pax_block();
        let err = hail_upload_block(
            &mut c,
            0,
            &pax,
            &ReplicaIndexConfig::unindexed(2),
            &FaultPlan::none(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn transformed_block_round_trip() {
        let mut c = cluster();
        let payload = Bytes::from(vec![7u8; 5000]);
        let meta = IndexMetadata::none();
        let block = store_transformed_block(&mut c, 2, payload.clone(), meta).unwrap();
        let hosts = c.namenode().get_hosts(block).unwrap();
        let mut ledger = hail_sim::CostLedger::new();
        for &d in &hosts {
            assert_eq!(
                c.datanode(d)
                    .unwrap()
                    .read_replica(block, &mut ledger)
                    .unwrap(),
                payload
            );
        }
    }
}
