//! # hail-dfs
//!
//! An HDFS-like replicated block store rebuilt from scratch, with HAIL's
//! modifications:
//!
//! - [`namenode`] — `Dir_block` plus HAIL's per-replica `Dir_rep` (§3.3)
//! - [`datanode`] — data + checksum files on cost-accounted in-memory disks
//! - [`placement`] — writer-local, round-robin replica placement
//! - [`pipeline`] — the HDFS and HAIL upload pipelines (Fig. 1)
//! - [`cluster`] — the assembled DFS with per-node cost ledgers
//! - [`failure`] — node death, recovery, and replica-equivalence checks

#![forbid(unsafe_code)]

pub mod cluster;
pub mod datanode;
pub mod failure;
pub mod namenode;
pub mod pipeline;
pub mod placement;

pub use cluster::DfsCluster;
pub use datanode::Datanode;
pub use failure::{
    blocks_affected_by, recover_logical_rows, verify_replica_equivalence, EXPIRY_INTERVAL_S,
};
pub use namenode::Namenode;
pub use pipeline::{
    hail_upload_block, hdfs_upload_block, rewrite_replica, store_transformed_block, FaultPlan,
};
pub use placement::PlacementPolicy;
