//! The block-skipping pass: evaluate a query against persisted
//! zone-map/Bloom synopses **before** candidate enumeration.
//!
//! The (crate-private) `try_prune` entry point runs in front of
//! [`crate::QueryPlanner`]'s pricing
//! pass: when a block's synopsis proves no row can match the query,
//! the planner emits a zero-cost [`crate::BlockPlan`] instead of
//! pricing candidates, and execution never reads the block. The
//! decision is **strictly conservative** — every exit short of a
//! proof is "no prune":
//!
//! - no synopsis on any live replica (per `Dir_rep`) ⇒ no prune;
//! - the synopsis-holding replica is dead or its read/parse fails ⇒
//!   try the next holder, then give up (HAIL's failover story:
//!   planning degrades to the unpruned path, never errors);
//! - the block has *any* bad records ⇒ no prune, because every access
//!   path emits bad records unconditionally and skipping the block
//!   would drop them;
//! - bad-record token searches and non-PAX formats are never pruned.
//!
//! Synopsis probes are priced like the namenode's `Dir_rep` lookups —
//! free main-memory operations — but their stored bytes are surfaced
//! through `TaskStats::synopsis_bytes_read` so benchmarks can weigh
//! probe footprint against the reads skipped.

use crate::planner::PlannerConfig;
use hail_core::{CmpOp, DatasetFormat, HailQuery, Predicate};
use hail_dfs::DfsCluster;
use hail_index::{HailBlockReplicaInfo, IndexedBlock};
use hail_types::{BlockId, Value};
use std::fmt;

/// Environment variable force-disabling synopsis pruning (set to any
/// value other than `0` or the empty string). CI uses it to keep the
/// unpruned planning path exercised by the whole suite. Registered in
/// [`hail_core::knobs`].
pub const DISABLE_SYNOPSES_ENV: &str = hail_core::knobs::DISABLE_SYNOPSES.name;

/// The default for [`PlannerConfig::synopsis_pruning`]: on, unless
/// [`DISABLE_SYNOPSES_ENV`] turns it off. Delegates to the central
/// knob registry.
pub fn env_synopsis_pruning() -> bool {
    hail_core::knobs::synopsis_pruning_enabled()
}

/// Which synopsis kind proved a block empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneReason {
    /// The query's bounds on a column are disjoint from the block's
    /// zone-map min/max.
    Zone,
    /// An equality literal is provably absent from the block's Bloom
    /// filter.
    Bloom,
}

impl fmt::Display for PruneReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PruneReason::Zone => f.write_str("zone"),
            PruneReason::Bloom => f.write_str("bloom"),
        }
    }
}

/// The proof that a block can be skipped, carried on the zero-cost
/// [`crate::BlockPlan`] so execution can synthesize the statistics the
/// skipped read would have produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PruneInfo {
    pub reason: PruneReason,
    /// 0-based filter column the proof is about.
    pub column: usize,
    /// Predicate class of the query on that column (equality vs range)
    /// — must match what an executed path would have observed, so the
    /// synthesized selectivity observation lands in the same feedback
    /// class.
    pub eq: bool,
    /// Rows in the skipped block, per its synopsis.
    pub row_count: usize,
    /// Stored bytes of every synopsis consulted for this decision.
    pub synopsis_bytes: u64,
}

/// Evaluates `query` against the block's persisted synopses, returning
/// the proof that it can be skipped — or `None`, conservatively, on
/// any doubt. See the module docs for the exact back-off rules.
pub(crate) fn try_prune(
    cluster: &DfsCluster,
    config: &PlannerConfig,
    format: DatasetFormat,
    block: BlockId,
    query: &HailQuery,
) -> Option<PruneInfo> {
    if !config.synopsis_pruning
        || format != DatasetFormat::HailPax
        || !config.bad_record_tokens.is_empty()
    {
        return None;
    }
    let mut columns = query.filter_columns();
    columns.sort_unstable();
    columns.dedup();
    if columns.is_empty() {
        return None;
    }

    let replicas = cluster.namenode().live_replicas(block);
    let mut synopsis_bytes: u64 = 0;
    for column in columns {
        let eq = crate::cache::has_eq_on(query, column);

        // Zone map first: it serves every predicate shape the bounds
        // capture (ranges and points alike).
        if let Some(bounds) = query.bounds_on(column) {
            if let Some(zm) = read_synopsis(cluster, &replicas, block, |b| {
                b.zone_map_sidecar(column)
                    .map(|s| s.map(|(meta, z)| (meta.sidecar_bytes as u64, z)))
            }) {
                synopsis_bytes += zm.0;
                let z = zm.1;
                if z.bad_records() == 0 && !z.overlaps(&bounds) {
                    return Some(PruneInfo {
                        reason: PruneReason::Zone,
                        column,
                        eq,
                        row_count: z.row_count(),
                        synopsis_bytes,
                    });
                }
            }
        }

        // Bloom filter: equality literals only. A conjunction with any
        // provably-absent literal selects nothing.
        let eq_values: Vec<&Value> = query
            .predicates
            .iter()
            .filter_map(|p| match p {
                Predicate::Cmp {
                    column: c,
                    op: CmpOp::Eq,
                    value,
                } if *c == column => Some(value),
                _ => None,
            })
            .collect();
        if !eq_values.is_empty() {
            if let Some(bl) = read_synopsis(cluster, &replicas, block, |b| {
                b.bloom_sidecar(column)
                    .map(|s| s.map(|(meta, f)| (meta.sidecar_bytes as u64, f)))
            }) {
                synopsis_bytes += bl.0;
                let f = bl.1;
                if f.bad_records() == 0 && eq_values.iter().any(|v| !f.might_contain(v)) {
                    return Some(PruneInfo {
                        reason: PruneReason::Bloom,
                        column,
                        eq,
                        row_count: f.row_count(),
                        synopsis_bytes,
                    });
                }
            }
        }
    }
    None
}

/// Reads one synopsis from the first live replica that stores it and
/// parses cleanly. Replicas of a block hold the same logical rows, so
/// every copy of a synopsis is identical — the first readable one
/// decides. Any failure (dead node mid-probe, corrupt container) falls
/// through to the next holder; exhausting them means "no synopsis".
fn read_synopsis<T>(
    cluster: &DfsCluster,
    replicas: &[&HailBlockReplicaInfo],
    block: BlockId,
    extract: impl Fn(&IndexedBlock) -> hail_types::Result<Option<(u64, T)>>,
) -> Option<(u64, T)> {
    for info in replicas {
        let Ok(dn) = cluster.datanode(info.datanode) else {
            continue;
        };
        let Ok(raw) = dn.peek_replica(block) else {
            continue;
        };
        let Ok(parsed) = IndexedBlock::parse(raw) else {
            continue;
        };
        match extract(&parsed) {
            Ok(Some(found)) => return Some(found),
            _ => continue,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_knob_semantics() {
        // The default (unset in the test environment unless CI set it)
        // must parse without panicking either way.
        let _ = env_synopsis_pruning();
        assert_eq!(PruneReason::Zone.to_string(), "zone");
        assert_eq!(PruneReason::Bloom.to_string(), "bloom");
    }
}
