//! Single-block reader entry points, planner-backed.
//!
//! These are the former `hail-core::record_reader` functions, kept as
//! thin wrappers over [`QueryPlanner::execute_block`] so examples,
//! tests, and ad-hoc tools can read one block without constructing an
//! input format. All replica and access-path choices go through the
//! planner — there is no second code path.

use crate::planner::QueryPlanner;
use hail_core::{DatasetFormat, HailQuery};
use hail_dfs::DfsCluster;
use hail_mr::{MapRecord, TaskStats};
use hail_types::{BlockId, DatanodeId, Result, Schema};

/// Reads one HAIL (PAX) block with the planner-chosen access path,
/// emitting qualifying records.
pub fn read_hail_block(
    cluster: &DfsCluster,
    block: BlockId,
    task_node: DatanodeId,
    schema: &Schema,
    query: &HailQuery,
    emit: &mut dyn FnMut(MapRecord),
) -> Result<TaskStats> {
    read_block(
        cluster,
        DatasetFormat::HailPax,
        block,
        task_node,
        schema,
        query,
        emit,
    )
}

/// Reads one standard Hadoop text block: full scan, line splitting,
/// filtering in the reader (the expensive `v.toString().split(",")` of
/// §4.1).
pub fn read_hadoop_text_block(
    cluster: &DfsCluster,
    block: BlockId,
    task_node: DatanodeId,
    schema: &Schema,
    query: &HailQuery,
    delimiter: char,
    emit: &mut dyn FnMut(MapRecord),
) -> Result<TaskStats> {
    let planner = QueryPlanner::with_config(
        cluster,
        crate::planner::PlannerConfig {
            text_delimiter: Some(delimiter),
            ..Default::default()
        },
    );
    let plan = planner.plan(DatasetFormat::HadoopText, &[block], query)?;
    planner.execute_block(&plan, block, task_node, schema, query, emit)
}

/// Reads one Hadoop++ row-layout block: trojan-index scan when the
/// query ranges over the block's key column, full scan otherwise.
pub fn read_hpp_block(
    cluster: &DfsCluster,
    block: BlockId,
    task_node: DatanodeId,
    schema: &Schema,
    query: &HailQuery,
    emit: &mut dyn FnMut(MapRecord),
) -> Result<TaskStats> {
    read_block(
        cluster,
        DatasetFormat::HadoopPlusPlus,
        block,
        task_node,
        schema,
        query,
        emit,
    )
}

fn read_block(
    cluster: &DfsCluster,
    format: DatasetFormat,
    block: BlockId,
    task_node: DatanodeId,
    schema: &Schema,
    query: &HailQuery,
    emit: &mut dyn FnMut(MapRecord),
) -> Result<TaskStats> {
    let planner = QueryPlanner::new(cluster);
    let plan = planner.plan(format, &[block], query)?;
    planner.execute_block(&plan, block, task_node, schema, query, emit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hail_core::{upload_hadoop, upload_hail};
    use hail_index::ReplicaIndexConfig;
    use hail_types::{DataType, Field, StorageConfig};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("ip", DataType::VarChar),
            Field::new("visitDate", DataType::Date),
            Field::new("revenue", DataType::Float),
        ])
        .unwrap()
    }

    fn text(n: usize) -> String {
        (0..n)
            .map(|i| {
                format!(
                    "10.0.{}.{}|19{:02}-01-01|{}.5\n",
                    i / 250,
                    i % 250,
                    70 + (i % 30),
                    i % 100
                )
            })
            .collect()
    }

    fn hail_setup(rows: usize) -> (DfsCluster, hail_core::Dataset) {
        // Small blocks need proportionally small index partitions for the
        // index to narrow anything (the paper's 64 MB block holds ~650
        // partitions of 1,024 values).
        let mut config = StorageConfig::test_scale(4096);
        config.index_partition_size = 16;
        let mut c = DfsCluster::new(4, config);
        let cfg = ReplicaIndexConfig::first_indexed(3, &[1, 0, 2]);
        let ds = upload_hail(&mut c, &schema(), "uv", &[(0, text(rows))], &cfg).unwrap();
        (c, ds)
    }

    fn collect_hail(
        c: &DfsCluster,
        ds: &hail_core::Dataset,
        query: &HailQuery,
    ) -> (Vec<MapRecord>, TaskStats) {
        let mut records = Vec::new();
        let mut total = TaskStats::default();
        for &b in &ds.blocks {
            let stats =
                read_hail_block(c, b, 0, &schema(), query, &mut |r| records.push(r)).unwrap();
            total.merge(&stats);
        }
        (records, total)
    }

    #[test]
    fn index_scan_equals_full_scan_results() {
        let (c, ds) = hail_setup(500);
        let q = HailQuery::parse("@2 between(1975-01-01, 1980-12-31)", "{@1}", &schema()).unwrap();
        let (with_index, stats) = collect_hail(&c, &ds, &q);
        assert!(stats.serial_pricing, "index scans are latency-bound");
        assert!(!with_index.is_empty());
        assert_eq!(
            stats
                .paths
                .get(hail_types::AccessPathKind::ClusteredIndexScan),
            ds.blocks.len() as u64,
            "every block should be index-served"
        );

        // Oracle: parse the original text and filter.
        let expected: Vec<String> = text(500)
            .lines()
            .filter(|l| {
                let date = l.split('|').nth(1).unwrap();
                ("1975-01-01"..="1980-12-31").contains(&date)
            })
            .map(|l| l.split('|').next().unwrap().to_string())
            .collect();
        let mut got: Vec<String> = with_index
            .iter()
            .filter(|r| !r.bad)
            .map(|r| r.row.get(0).unwrap().to_string())
            .collect();
        let mut expected = expected;
        got.sort();
        expected.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn index_scan_reads_less_than_full_scan() {
        let (c, ds) = hail_setup(2000);
        // Highly selective point query on the date column.
        let q = HailQuery::parse("@2 = 1975-01-01", "{@1}", &schema()).unwrap();
        let (_, idx_stats) = collect_hail(&c, &ds, &q);

        // A no-filter query scans everything.
        let scan_q = HailQuery::parse("", "{@1}", &schema()).unwrap();
        let (_, scan_stats) = collect_hail(&c, &ds, &scan_q);
        assert!(
            idx_stats.ledger.disk_read * 4 < scan_stats.ledger.disk_read,
            "index scan ({} B) should read far less than full scan ({} B)",
            idx_stats.ledger.disk_read,
            scan_stats.ledger.disk_read
        );
        assert!(!idx_stats.fell_back_to_scan);
        assert_eq!(
            scan_stats.paths.get(hail_types::AccessPathKind::FullScan),
            ds.blocks.len() as u64
        );
    }

    #[test]
    fn fallback_when_index_node_dies() {
        let (mut c, ds) = hail_setup(300);
        let q = HailQuery::parse("@2 between(1975-01-01, 1980-12-31)", "{@1}", &schema()).unwrap();
        let (before, _) = collect_hail(&c, &ds, &q);

        // Kill the nodes holding the visitDate index until none serve it.
        for &b in &ds.blocks {
            for dn in c.namenode().get_hosts_with_index(b, 1).unwrap() {
                c.kill_node(dn).unwrap();
            }
        }
        let (after, stats) = collect_hail(&c, &ds, &q);
        assert!(stats.fell_back_to_scan, "must fall back to scanning");
        let key = |records: &[MapRecord]| {
            let mut v: Vec<String> = records
                .iter()
                .filter(|r| !r.bad)
                .map(|r| r.row.to_string())
                .collect();
            v.sort();
            v
        };
        assert_eq!(
            key(&before),
            key(&after),
            "results identical after failover"
        );
    }

    #[test]
    fn conjunction_filters_on_secondary_column() {
        let (c, ds) = hail_setup(400);
        let q = HailQuery::parse(
            "@2 between(1975-01-01, 1985-12-31) and @1 = '10.0.0.33'",
            "",
            &schema(),
        )
        .unwrap();
        let (records, _) = collect_hail(&c, &ds, &q);
        for r in records.iter().filter(|r| !r.bad) {
            assert_eq!(r.row.get(0).unwrap().to_string(), "10.0.0.33");
        }
    }

    #[test]
    fn hadoop_reader_matches_hail_results() {
        let rows = 400;
        let mut hc = DfsCluster::new(4, StorageConfig::test_scale(4096));
        let hds = upload_hadoop(&mut hc, &schema(), "uv", &[(0, text(rows))]).unwrap();
        let (pc, pds) = hail_setup(rows);

        let q = HailQuery::parse("@3 >= 10 and @3 <= 20", "{@1, @3}", &schema()).unwrap();
        let mut hadoop_records = Vec::new();
        for &b in &hds.blocks {
            read_hadoop_text_block(&hc, b, 0, &schema(), &q, '|', &mut |r| {
                hadoop_records.push(r)
            })
            .unwrap();
        }
        let (hail_records, _) = collect_hail(&pc, &pds, &q);
        let norm = |rs: &[MapRecord]| {
            let mut v: Vec<String> = rs
                .iter()
                .filter(|r| !r.bad)
                .map(|r| r.row.to_string())
                .collect();
            v.sort();
            v
        };
        assert_eq!(norm(&hadoop_records), norm(&hail_records));
    }

    /// Regression: the caller's delimiter is honored on text blocks,
    /// even when it differs from the cluster's configured one.
    #[test]
    fn text_reader_honors_custom_delimiter() {
        let mut c = DfsCluster::new(3, StorageConfig::test_scale(1 << 20));
        assert_eq!(c.config().delimiter, '|');
        // Comma-separated data in a '|'-configured cluster.
        let text = "1.1.1.1,1999-01-01,1.5\n2.2.2.2,1999-06-01,2.5\n";
        let ds = upload_hadoop(&mut c, &schema(), "csv", &[(0, text.into())]).unwrap();
        let q = HailQuery::parse("@2 = 1999-01-01", "{@1}", &schema()).unwrap();
        let mut records = Vec::new();
        read_hadoop_text_block(&c, ds.blocks[0], 0, &schema(), &q, ',', &mut |r| {
            records.push(r)
        })
        .unwrap();
        let good: Vec<_> = records.iter().filter(|r| !r.bad).collect();
        assert_eq!(good.len(), 1, "comma rows must parse: {records:?}");
        assert_eq!(good[0].row.get(0).unwrap().as_str(), Some("1.1.1.1"));
    }

    /// Regression: a filtered query over a plain text dataset is not an
    /// index fallback — there never was an index to fall back from.
    #[test]
    fn text_scans_are_not_fallbacks() {
        let mut c = DfsCluster::new(3, StorageConfig::test_scale(4096));
        let ds = upload_hadoop(&mut c, &schema(), "uv", &[(0, text(200))]).unwrap();
        let q = HailQuery::parse("@2 = 1975-01-01", "{@1}", &schema()).unwrap();
        let mut total = TaskStats::default();
        for &b in &ds.blocks {
            let s = read_hadoop_text_block(&c, b, 0, &schema(), &q, '|', &mut |_| {}).unwrap();
            total.merge(&s);
        }
        assert!(!total.fell_back_to_scan, "text scans are the normal path");
    }

    #[test]
    fn bad_records_flow_to_map() {
        let mut c = DfsCluster::new(4, StorageConfig::test_scale(1 << 20));
        let cfg = ReplicaIndexConfig::first_indexed(3, &[1]);
        let text = "1.1.1.1|1999-01-01|1.0\nBROKEN LINE\n2.2.2.2|1999-06-01|2.0\n";
        let ds = upload_hail(&mut c, &schema(), "uv", &[(0, text.into())], &cfg).unwrap();
        let q = HailQuery::parse("@2 = 1999-01-01", "", &schema()).unwrap();
        let mut records = Vec::new();
        read_hail_block(&c, ds.blocks[0], 0, &schema(), &q, &mut |r| records.push(r)).unwrap();
        let bad: Vec<_> = records.iter().filter(|r| r.bad).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].row.get(0).unwrap().as_str(), Some("BROKEN LINE"));
    }

    #[test]
    fn hpp_reader_index_scan_matches_full_scan() {
        use hail_core::upload_hadoop_plus_plus;
        use hail_sim::{ClusterSpec, HardwareProfile};

        let spec = ClusterSpec::new(4, HardwareProfile::physical());
        let texts: Vec<(usize, String)> = (0..2)
            .map(|n| {
                let t: String = (0..300)
                    .map(|i| {
                        format!(
                            "10.{n}.0.{}|19{:02}-0{}-01|{}.25\n",
                            i % 250,
                            70 + (i % 29),
                            1 + (i % 9),
                            i % 50
                        )
                    })
                    .collect();
                (n, t)
            })
            .collect();
        let mut c = DfsCluster::new(4, StorageConfig::test_scale(8192));
        let (ds, _) =
            upload_hadoop_plus_plus(&mut c, &spec, &schema(), "uv", &texts, Some(0)).unwrap();

        let q = HailQuery::parse("@1 = '10.0.0.42'", "{@1, @3}", &schema()).unwrap();
        let mut via_index = Vec::new();
        let mut idx_stats = TaskStats::default();
        for &b in &ds.blocks {
            let s = read_hpp_block(&c, b, 0, &schema(), &q, &mut |r| via_index.push(r)).unwrap();
            idx_stats.merge(&s);
        }
        assert!(idx_stats.serial_pricing);
        assert!(!idx_stats.fell_back_to_scan);
        assert!(
            idx_stats
                .paths
                .get(hail_types::AccessPathKind::TrojanIndexScan)
                > 0
        );

        // Filter on a non-key column → full scan, same logical results
        // for an equivalent predicate expressed differently.
        let q2 = HailQuery::parse(
            "@2 >= 1970-01-01 and @1 = '10.0.0.42'",
            "{@1, @3}",
            &schema(),
        )
        .unwrap();
        let mut via_scan = Vec::new();
        let mut scan_stats = TaskStats::default();
        for &b in &ds.blocks {
            // Key column is @1 (= index 0); q2's first filter is @2 so
            // the planner still finds @1 = … and uses the trojan index.
            let s = read_hpp_block(&c, b, 0, &schema(), &q2, &mut |r| via_scan.push(r)).unwrap();
            scan_stats.merge(&s);
        }
        let norm = |v: &[MapRecord]| {
            let mut out: Vec<String> = v
                .iter()
                .filter(|r| !r.bad)
                .map(|r| r.row.to_string())
                .collect();
            out.sort();
            out
        };
        assert_eq!(norm(&via_index), norm(&via_scan));
        // The index scan reads far less than the block size per block.
        let total_block_bytes: u64 = ds
            .blocks
            .iter()
            .map(|&b| {
                let h = c.namenode().get_hosts(b).unwrap()[0];
                c.namenode().replica_info(b, h).unwrap().replica_bytes as u64
            })
            .sum();
        assert!(idx_stats.ledger.disk_read < total_block_bytes / 2);
    }
}
