//! The three `InputFormat` implementations the experiments compare —
//! `HailInputFormat`, the standard Hadoop text format, and Hadoop++'s
//! trojan-indexed format — all routed through the cost-based
//! [`QueryPlanner`].
//!
//! Splitting consumes a [`crate::planner::QueryPlan`] (the scheduler
//! follows the plan's locations; it never re-derives replica choices),
//! and every block read goes through
//! [`QueryPlanner::execute_block`] → `AccessPath::execute`.

use crate::planner::{PlannerConfig, QueryPlanner};
use crate::splitting::{default_splits, plan_default_splits, plan_hail_splits};
use hail_core::baselines::hadoop_plus_plus::trojan_header_bytes;
use hail_core::{Dataset, HailQuery};
use hail_dfs::DfsCluster;
use hail_mr::{InputFormat, InputSplit, MapRecord, SplitPlan, TaskStats};
use hail_types::{BlockId, DatanodeId, Result};

/// HAIL's input format: planner-driven `HailSplitting` + access-path
/// execution.
///
/// Set `splitting` to false to reproduce the paper's §6.4 configuration
/// (per-replica indexes but default Hadoop splitting) and true for §6.5.
pub struct HailInputFormat {
    pub dataset: Dataset,
    pub query: HailQuery,
    pub splitting: bool,
    /// Map slots per TaskTracker, used by `HailSplitting`.
    pub map_slots: usize,
    /// Planner knobs: cost model, selectivity estimates, sidecar
    /// extension indexes.
    pub planner: PlannerConfig,
}

impl HailInputFormat {
    pub fn new(dataset: Dataset, query: HailQuery) -> Self {
        HailInputFormat {
            dataset,
            query,
            splitting: true,
            map_slots: 2,
            planner: PlannerConfig::default(),
        }
    }

    /// Disables `HailSplitting` (the §6.4 configuration).
    pub fn without_splitting(mut self) -> Self {
        self.splitting = false;
        self
    }

    /// Overrides the planner configuration.
    pub fn with_planner(mut self, config: PlannerConfig) -> Self {
        self.planner = config;
        self
    }
}

impl InputFormat for HailInputFormat {
    fn splits(&self, cluster: &DfsCluster, input: &[BlockId]) -> Result<SplitPlan> {
        // HAIL computes splits from the namenode's main-memory Dir_rep —
        // no block header reads, so client_cost stays zero (§6.4.1).
        let planner = QueryPlanner::with_config(cluster, self.planner.clone());
        if self.splitting && !self.query.filter_columns().is_empty() {
            let plan = planner.plan_lenient(self.dataset.format, input, &self.query)?;
            Ok(plan_hail_splits(&plan, self.map_slots))
        } else if self.query.filter_columns().is_empty()
            && self.planner.bad_record_tokens.is_empty()
        {
            // Pure scan queries keep Hadoop's splitting and failover
            // granularity.
            default_splits(cluster, input)
        } else {
            // Default (per-block) splitting, but still scheduling toward
            // the replica the plan chose.
            let plan = planner.plan_lenient(self.dataset.format, input, &self.query)?;
            Ok(plan_default_splits(&plan))
        }
    }

    fn read_split(
        &self,
        cluster: &DfsCluster,
        split: &InputSplit,
        task_node: DatanodeId,
        emit: &mut dyn FnMut(MapRecord),
    ) -> Result<TaskStats> {
        read_split_via_planner(
            cluster,
            &self.planner,
            &self.dataset,
            &self.query,
            split,
            task_node,
            emit,
        )
    }

    fn name(&self) -> &str {
        "HAIL"
    }
}

/// The standard Hadoop text input format: per-block splits, full-scan
/// record reader, filtering in the map function.
pub struct HadoopInputFormat {
    pub dataset: Dataset,
    pub query: HailQuery,
    pub delimiter: char,
}

impl HadoopInputFormat {
    pub fn new(dataset: Dataset, query: HailQuery) -> Self {
        HadoopInputFormat {
            dataset,
            query,
            delimiter: '|',
        }
    }
}

impl InputFormat for HadoopInputFormat {
    fn splits(&self, cluster: &DfsCluster, input: &[BlockId]) -> Result<SplitPlan> {
        default_splits(cluster, input)
    }

    fn read_split(
        &self,
        cluster: &DfsCluster,
        split: &InputSplit,
        task_node: DatanodeId,
        emit: &mut dyn FnMut(MapRecord),
    ) -> Result<TaskStats> {
        let config = PlannerConfig {
            text_delimiter: Some(self.delimiter),
            ..Default::default()
        };
        read_split_via_planner(
            cluster,
            &config,
            &self.dataset,
            &self.query,
            split,
            task_node,
            emit,
        )
    }

    fn name(&self) -> &str {
        "Hadoop"
    }
}

/// Hadoop++: per-block splits whose computation must read every block's
/// trojan-index header (the cost HAIL avoids, §6.4.1), then a
/// planner-chosen index-or-scan read over the binary row layout.
pub struct HadoopPlusPlusInputFormat {
    pub dataset: Dataset,
    pub query: HailQuery,
}

impl HadoopPlusPlusInputFormat {
    pub fn new(dataset: Dataset, query: HailQuery) -> Self {
        HadoopPlusPlusInputFormat { dataset, query }
    }
}

impl InputFormat for HadoopPlusPlusInputFormat {
    fn splits(&self, cluster: &DfsCluster, input: &[BlockId]) -> Result<SplitPlan> {
        let mut plan = default_splits(cluster, input)?;
        // The JobClient fetches each block's header (trojan index
        // directory) before it can build splits.
        for &b in input {
            let header = trojan_header_bytes(cluster, b)?;
            plan.client_cost.seeks += 1;
            plan.client_cost.disk_read += header as u64;
        }
        Ok(plan)
    }

    fn read_split(
        &self,
        cluster: &DfsCluster,
        split: &InputSplit,
        task_node: DatanodeId,
        emit: &mut dyn FnMut(MapRecord),
    ) -> Result<TaskStats> {
        read_split_via_planner(
            cluster,
            &PlannerConfig::default(),
            &self.dataset,
            &self.query,
            split,
            task_node,
            emit,
        )
    }

    fn name(&self) -> &str {
        "Hadoop++"
    }
}

/// Shared read path: plan the split's blocks against the *current*
/// cluster state and execute each block's chosen access path.
///
/// Planning is deterministic, so this reproduces the split-time plan on
/// a healthy cluster; after a mid-job failure it transparently re-plans
/// around dead replicas (HAIL's failover story).
///
/// This is also where the adaptive loop closes: plan-cache hits and
/// misses incurred by this split are recorded into its [`TaskStats`],
/// and after the split finishes, every per-block selectivity the access
/// paths observed is folded into the configured
/// [`crate::cache::SelectivityFeedback`] store — subsequent splits (and
/// jobs sharing the store) plan from corrected estimates.
fn read_split_via_planner(
    cluster: &DfsCluster,
    config: &PlannerConfig,
    dataset: &Dataset,
    query: &HailQuery,
    split: &InputSplit,
    task_node: DatanodeId,
    emit: &mut dyn FnMut(MapRecord),
) -> Result<TaskStats> {
    let planner = QueryPlanner::with_config(cluster, config.clone());
    let plan = planner.plan(dataset.format, &split.blocks, query)?;
    let mut total = TaskStats::default();
    // Attribute cache effectiveness from this plan's own blocks (not a
    // diff of the shared cache's global counters, which would misassign
    // other tasks' lookups once splits execute concurrently).
    if config.plan_cache.is_some() {
        total.plan_cache_hits = plan.blocks.iter().filter(|b| b.cached).count() as u64;
        total.plan_cache_misses = plan.blocks.len() as u64 - total.plan_cache_hits;
    }
    for &block in &split.blocks {
        let stats = planner.execute_block(&plan, block, task_node, &dataset.schema, query, emit)?;
        total.merge(&stats);
    }
    if let Some(feedback) = &config.feedback {
        feedback.absorb(&total);
    }
    Ok(total)
}
