//! The three `InputFormat` implementations the experiments compare —
//! `HailInputFormat`, the standard Hadoop text format, and Hadoop++'s
//! trojan-indexed format — all routed through the cost-based
//! [`QueryPlanner`].
//!
//! Splitting consumes a [`crate::planner::QueryPlan`] (the scheduler
//! follows the plan's locations; it never re-derives replica choices),
//! and every block read goes through
//! [`QueryPlanner::execute_block`] → `AccessPath::execute`.

use crate::executor::{
    env_job_parallelism, ExecutorConfig, ExecutorContext, JobPool, JobPoolConfig, SplitLease,
};
use crate::planner::{PlannerConfig, QueryPlanner};
use crate::splitting::{default_splits, plan_default_splits, plan_hail_splits};
use hail_core::baselines::hadoop_plus_plus::trojan_header_bytes;
use hail_core::{Dataset, HailQuery};
use hail_dfs::DfsCluster;
use hail_mr::{
    InputFormat, InputSplit, MapRecord, SplitContext, SplitPlan, SplitRead, SplitTask, TaskStats,
};
use hail_types::{BlockId, DatanodeId, Result};
use std::sync::Arc;
use std::time::Instant;

/// HAIL's input format: planner-driven `HailSplitting` + access-path
/// execution.
///
/// Set `splitting` to false to reproduce the paper's §6.4 configuration
/// (per-replica indexes but default Hadoop splitting) and true for §6.5.
pub struct HailInputFormat {
    pub dataset: Dataset,
    pub query: HailQuery,
    pub splitting: bool,
    /// Map slots per TaskTracker, used by `HailSplitting`.
    pub map_slots: usize,
    /// Planner knobs: cost model, selectivity estimates, sidecar
    /// extension indexes.
    pub planner: PlannerConfig,
    /// Parallel-executor knobs for fanning a split's block reads across
    /// workers; default serial unless `HAIL_PARALLELISM` overrides.
    pub executor: ExecutorConfig,
    /// A [`JobPool`] shared with other concurrently running jobs (see
    /// [`shared_job_pool`]). `None` — the solo default — builds a
    /// private pool per batch read.
    pub shared_pool: Option<Arc<JobPool>>,
}

impl HailInputFormat {
    pub fn new(dataset: Dataset, query: HailQuery) -> Self {
        HailInputFormat {
            dataset,
            query,
            splitting: true,
            map_slots: 2,
            planner: PlannerConfig::default(),
            executor: ExecutorConfig::default(),
            shared_pool: None,
        }
    }

    /// Disables `HailSplitting` (the §6.4 configuration).
    pub fn without_splitting(mut self) -> Self {
        self.splitting = false;
        self
    }

    /// Overrides the planner configuration.
    pub fn with_planner(mut self, config: PlannerConfig) -> Self {
        self.planner = config;
        self
    }

    /// Overrides the executor configuration.
    pub fn with_executor(mut self, config: ExecutorConfig) -> Self {
        self.executor = config;
        self
    }

    /// Routes this format's batch reads through a cluster-wide shared
    /// [`JobPool`] instead of a private per-batch one.
    pub fn with_shared_pool(mut self, pool: Arc<JobPool>) -> Self {
        self.shared_pool = Some(pool);
        self
    }
}

impl InputFormat for HailInputFormat {
    fn splits(&self, cluster: &DfsCluster, input: &[BlockId]) -> Result<SplitPlan> {
        // HAIL computes splits from the namenode's main-memory Dir_rep —
        // no block header reads, so client_cost stays zero (§6.4.1).
        let planner = QueryPlanner::with_config(cluster, self.planner.clone());
        if self.splitting && !self.query.filter_columns().is_empty() {
            let plan = planner.plan_lenient(self.dataset.format, input, &self.query)?;
            Ok(plan_hail_splits(&plan, self.map_slots))
        } else if self.query.filter_columns().is_empty()
            && self.planner.bad_record_tokens.is_empty()
        {
            // Pure scan queries keep Hadoop's splitting and failover
            // granularity.
            default_splits(cluster, input)
        } else {
            // Default (per-block) splitting, but still scheduling toward
            // the replica the plan chose.
            let plan = planner.plan_lenient(self.dataset.format, input, &self.query)?;
            Ok(plan_default_splits(&plan))
        }
    }

    fn read_split(
        &self,
        cluster: &DfsCluster,
        split: &InputSplit,
        task_node: DatanodeId,
        emit: &mut dyn FnMut(MapRecord),
    ) -> Result<TaskStats> {
        self.read_split_with(cluster, split, &SplitContext::on(task_node), emit)
    }

    fn read_split_with(
        &self,
        cluster: &DfsCluster,
        split: &InputSplit,
        ctx: &SplitContext,
        emit: &mut dyn FnMut(MapRecord),
    ) -> Result<TaskStats> {
        read_split_via_planner(
            cluster,
            &self.planner,
            &ExecutorContext::new(executor_for(&self.executor, ctx)),
            &self.dataset,
            &self.query,
            split,
            ctx.task_node,
            emit,
        )
    }

    fn read_split_batch(
        &self,
        cluster: &DfsCluster,
        batch: &[SplitTask<'_>],
        job_parallelism: Option<usize>,
    ) -> Result<Vec<SplitRead>> {
        batch_read_via_planner(
            cluster,
            &self.planner,
            &self.executor,
            self.shared_pool.as_deref(),
            &self.dataset,
            &self.query,
            batch,
            job_parallelism,
        )
    }

    fn estimate_split(&self, cluster: &DfsCluster, split: &InputSplit) -> Option<f64> {
        Some(
            QueryPlanner::with_config(cluster, self.planner.clone()).estimate_split(
                self.dataset.format,
                &split.blocks,
                &self.query,
            ),
        )
    }

    fn estimate_splits(&self, cluster: &DfsCluster, splits: &[InputSplit]) -> Option<Vec<f64>> {
        Some(
            QueryPlanner::with_config(cluster, self.planner.clone()).estimate_split_batch(
                self.dataset.format,
                splits,
                &self.query,
            ),
        )
    }

    fn name(&self) -> &str {
        "HAIL"
    }
}

/// The standard Hadoop text input format: per-block splits, full-scan
/// record reader, filtering in the map function.
pub struct HadoopInputFormat {
    pub dataset: Dataset,
    pub query: HailQuery,
    pub delimiter: char,
    /// Parallel-executor knobs (see [`HailInputFormat::executor`]).
    pub executor: ExecutorConfig,
    /// Shared cross-job pool (see [`HailInputFormat::shared_pool`]).
    pub shared_pool: Option<Arc<JobPool>>,
}

impl HadoopInputFormat {
    pub fn new(dataset: Dataset, query: HailQuery) -> Self {
        HadoopInputFormat {
            dataset,
            query,
            delimiter: '|',
            executor: ExecutorConfig::default(),
            shared_pool: None,
        }
    }

    /// Routes this format's batch reads through a cluster-wide shared
    /// [`JobPool`] instead of a private per-batch one.
    pub fn with_shared_pool(mut self, pool: Arc<JobPool>) -> Self {
        self.shared_pool = Some(pool);
        self
    }

    fn planner_config(&self) -> PlannerConfig {
        PlannerConfig {
            text_delimiter: Some(self.delimiter),
            ..Default::default()
        }
    }
}

impl InputFormat for HadoopInputFormat {
    fn splits(&self, cluster: &DfsCluster, input: &[BlockId]) -> Result<SplitPlan> {
        default_splits(cluster, input)
    }

    fn read_split(
        &self,
        cluster: &DfsCluster,
        split: &InputSplit,
        task_node: DatanodeId,
        emit: &mut dyn FnMut(MapRecord),
    ) -> Result<TaskStats> {
        self.read_split_with(cluster, split, &SplitContext::on(task_node), emit)
    }

    fn read_split_with(
        &self,
        cluster: &DfsCluster,
        split: &InputSplit,
        ctx: &SplitContext,
        emit: &mut dyn FnMut(MapRecord),
    ) -> Result<TaskStats> {
        read_split_via_planner(
            cluster,
            &self.planner_config(),
            &ExecutorContext::new(executor_for(&self.executor, ctx)),
            &self.dataset,
            &self.query,
            split,
            ctx.task_node,
            emit,
        )
    }

    fn read_split_batch(
        &self,
        cluster: &DfsCluster,
        batch: &[SplitTask<'_>],
        job_parallelism: Option<usize>,
    ) -> Result<Vec<SplitRead>> {
        batch_read_via_planner(
            cluster,
            &self.planner_config(),
            &self.executor,
            self.shared_pool.as_deref(),
            &self.dataset,
            &self.query,
            batch,
            job_parallelism,
        )
    }

    fn estimate_split(&self, cluster: &DfsCluster, split: &InputSplit) -> Option<f64> {
        Some(
            QueryPlanner::with_config(cluster, self.planner_config()).estimate_split(
                self.dataset.format,
                &split.blocks,
                &self.query,
            ),
        )
    }

    fn estimate_splits(&self, cluster: &DfsCluster, splits: &[InputSplit]) -> Option<Vec<f64>> {
        Some(
            QueryPlanner::with_config(cluster, self.planner_config()).estimate_split_batch(
                self.dataset.format,
                splits,
                &self.query,
            ),
        )
    }

    fn name(&self) -> &str {
        "Hadoop"
    }
}

/// Hadoop++: per-block splits whose computation must read every block's
/// trojan-index header (the cost HAIL avoids, §6.4.1), then a
/// planner-chosen index-or-scan read over the binary row layout.
pub struct HadoopPlusPlusInputFormat {
    pub dataset: Dataset,
    pub query: HailQuery,
    /// Parallel-executor knobs (see [`HailInputFormat::executor`]).
    pub executor: ExecutorConfig,
    /// Shared cross-job pool (see [`HailInputFormat::shared_pool`]).
    pub shared_pool: Option<Arc<JobPool>>,
}

impl HadoopPlusPlusInputFormat {
    pub fn new(dataset: Dataset, query: HailQuery) -> Self {
        HadoopPlusPlusInputFormat {
            dataset,
            query,
            executor: ExecutorConfig::default(),
            shared_pool: None,
        }
    }

    /// Routes this format's batch reads through a cluster-wide shared
    /// [`JobPool`] instead of a private per-batch one.
    pub fn with_shared_pool(mut self, pool: Arc<JobPool>) -> Self {
        self.shared_pool = Some(pool);
        self
    }
}

impl InputFormat for HadoopPlusPlusInputFormat {
    fn splits(&self, cluster: &DfsCluster, input: &[BlockId]) -> Result<SplitPlan> {
        let mut plan = default_splits(cluster, input)?;
        // The JobClient fetches each block's header (trojan index
        // directory) before it can build splits.
        for &b in input {
            let header = trojan_header_bytes(cluster, b)?;
            plan.client_cost.seeks += 1;
            plan.client_cost.disk_read += header as u64;
        }
        Ok(plan)
    }

    fn read_split(
        &self,
        cluster: &DfsCluster,
        split: &InputSplit,
        task_node: DatanodeId,
        emit: &mut dyn FnMut(MapRecord),
    ) -> Result<TaskStats> {
        self.read_split_with(cluster, split, &SplitContext::on(task_node), emit)
    }

    fn read_split_with(
        &self,
        cluster: &DfsCluster,
        split: &InputSplit,
        ctx: &SplitContext,
        emit: &mut dyn FnMut(MapRecord),
    ) -> Result<TaskStats> {
        read_split_via_planner(
            cluster,
            &PlannerConfig::default(),
            &ExecutorContext::new(executor_for(&self.executor, ctx)),
            &self.dataset,
            &self.query,
            split,
            ctx.task_node,
            emit,
        )
    }

    fn read_split_batch(
        &self,
        cluster: &DfsCluster,
        batch: &[SplitTask<'_>],
        job_parallelism: Option<usize>,
    ) -> Result<Vec<SplitRead>> {
        batch_read_via_planner(
            cluster,
            &PlannerConfig::default(),
            &self.executor,
            self.shared_pool.as_deref(),
            &self.dataset,
            &self.query,
            batch,
            job_parallelism,
        )
    }

    fn estimate_split(&self, cluster: &DfsCluster, split: &InputSplit) -> Option<f64> {
        Some(
            QueryPlanner::with_config(cluster, PlannerConfig::default()).estimate_split(
                self.dataset.format,
                &split.blocks,
                &self.query,
            ),
        )
    }

    fn estimate_splits(&self, cluster: &DfsCluster, splits: &[InputSplit]) -> Option<Vec<f64>> {
        Some(
            QueryPlanner::with_config(cluster, PlannerConfig::default()).estimate_split_batch(
                self.dataset.format,
                splits,
                &self.query,
            ),
        )
    }

    fn name(&self) -> &str {
        "Hadoop++"
    }
}

/// The effective executor configuration for one split read: the
/// format's own knobs, with the scheduler's [`SplitContext`]
/// parallelism taking precedence when the job set one.
fn executor_for(format_config: &ExecutorConfig, ctx: &SplitContext) -> ExecutorConfig {
    let mut config = format_config.clone();
    if let Some(parallelism) = ctx.parallelism {
        config.parallelism = parallelism.max(1);
    }
    config
}

/// Shared read path: plan the split's blocks against the *current*
/// cluster state and execute each block's chosen access path.
///
/// Planning is deterministic, so this reproduces the split-time plan on
/// a healthy cluster; after a mid-job failure it transparently re-plans
/// around dead replicas (HAIL's failover story).
///
/// With executor parallelism above 1, the split's independent block
/// reads fan out across an [`ExecutorContext`] worker pool — every
/// worker sharing the same `Sync` planner handle and the same
/// `AccessPath::execute` seam — and the per-block results are merged
/// **in split order**, so records, statistics, and simulated costs are
/// bit-for-bit identical to the serial read. Parallelism 1 takes the
/// historical streaming path exactly.
///
/// This is also where the adaptive loop closes: plan-cache hits and
/// misses incurred by this split are recorded into its [`TaskStats`],
/// and after the split finishes, every per-block selectivity the access
/// paths observed is folded into the configured
/// [`crate::cache::SelectivityFeedback`] store — subsequent splits (and
/// jobs sharing the store) plan from corrected estimates. The
/// absorption happens once per split, after the deterministic merge, so
/// the feedback store sees observations in split order at any
/// parallelism.
#[allow(clippy::too_many_arguments)]
fn read_split_via_planner(
    cluster: &DfsCluster,
    config: &PlannerConfig,
    executor: &ExecutorContext,
    dataset: &Dataset,
    query: &HailQuery,
    split: &InputSplit,
    task_node: DatanodeId,
    emit: &mut dyn FnMut(MapRecord),
) -> Result<TaskStats> {
    let total = read_split_unabsorbed(
        cluster, config, executor, dataset, query, split, task_node, emit,
    )?;
    if let Some(feedback) = &config.feedback {
        // Under `defer_feedback` the store is frozen for the whole
        // batch; the batch runner absorbs in submission order later.
        if !config.defer_feedback {
            feedback.absorb(&total);
        }
    }
    Ok(total)
}

/// [`read_split_via_planner`] without the final feedback absorption —
/// the batch path runs this per split, then absorbs every split's
/// observations **in batch order after the barrier**, so the feedback
/// store's decayed state is identical at any job-level parallelism.
#[allow(clippy::too_many_arguments)]
fn read_split_unabsorbed(
    cluster: &DfsCluster,
    config: &PlannerConfig,
    context: &ExecutorContext,
    dataset: &Dataset,
    query: &HailQuery,
    split: &InputSplit,
    task_node: DatanodeId,
    emit: &mut dyn FnMut(MapRecord),
) -> Result<TaskStats> {
    let planner = QueryPlanner::with_config(cluster, config.clone());
    let plan = planner.plan(dataset.format, &split.blocks, query)?;
    let mut total = TaskStats::default();
    // Attribute cache effectiveness from this plan's own blocks (not a
    // diff of the shared cache's global counters, which would misassign
    // other tasks' lookups once splits execute concurrently).
    if config.plan_cache.is_some() {
        total.plan_cache_hits = plan.blocks.iter().filter(|b| b.cached).count() as u64;
        total.plan_cache_misses = plan.blocks.len() as u64 - total.plan_cache_hits;
    }
    let scan_share = context.scan_share().map(Arc::as_ref);
    if context.workers_for(split.blocks.len()) <= 1 && !context.has_shared_gate() {
        // Serial: stream records straight to `emit`, no buffering —
        // the exact pre-executor behavior.
        for &block in &split.blocks {
            let stats = planner.execute_block_shared(
                &plan,
                block,
                task_node,
                &dataset.schema,
                query,
                scan_share,
                emit,
            )?;
            total.merge(&stats);
        }
    } else {
        let per_block = context.run(
            split.blocks.len(),
            // Per-node slot gating keys on the node the read will
            // actually hit — the planner's locality resolution, not the
            // raw planned replica. (A mid-split failover re-plan inside
            // `execute_block` can still move a read afterwards; the
            // gate is a bound on the planned physical layout, not a
            // transactional reservation.)
            |i| {
                plan.block_plan(split.blocks[i])
                    .map(|bp| planner.resolve_host(bp, task_node))
            },
            |i| {
                let block = split.blocks[i];
                let mut records = Vec::new();
                let stats = planner.execute_block_shared(
                    &plan,
                    block,
                    task_node,
                    &dataset.schema,
                    query,
                    scan_share,
                    &mut |rec| records.push(rec),
                )?;
                Ok((stats, records))
            },
        )?;
        // Deterministic merge: split order, not completion order.
        for (stats, records) in per_block {
            total.merge(&stats);
            for rec in records {
                emit(rec);
            }
        }
    }
    Ok(total)
}

/// Shared job-level batch read: the execution phase of
/// [`hail_mr::run_map_job`] for the planner-backed formats.
///
/// Whole splits fan out across a [`JobPool`] — per-worker deques with
/// stealing — while each split's block reads still fan out across an
/// intra-split [`ExecutorContext`] whose width is *claimed* from the
/// pool's global [`crate::executor::ParallelismBudget`]: the budget is
/// the larger of the job-level worker count and the widest intra-split
/// configuration, so `HAIL_PARALLELISM` / `HAIL_JOB_PARALLELISM` bound
/// total threads rather than threads per layer. A per-node slot cap
/// ([`ExecutorConfig::per_node_slots`]) becomes one **job-wide**
/// [`crate::executor::NodeGate`] shared by every split.
///
/// Determinism: results return in batch order; the error of the
/// lowest-indexed failing split wins; and selectivity feedback is
/// absorbed in batch order *after* all reads complete (the barrier) —
/// at job parallelism 1 too, so the post-job feedback state is
/// bit-for-bit identical at any overlap. Splits cover disjoint blocks,
/// so concurrent plan-cache use stays per-split deterministic as well.
///
/// With a `shared_pool`, every batch (even a single-split one) routes
/// through that cluster-wide pool via [`JobPool::run_capped`]: the
/// job's own `job_parallelism` caps its fan-out, the pool's budget
/// squeezes simultaneous jobs down to the global thread total, and
/// the pool's [`crate::executor::NodeGate`] bounds concurrent reads
/// per node across *all* jobs. Results stay bit-for-bit identical to
/// the private-pool (and sequential) paths.
#[allow(clippy::too_many_arguments)]
fn batch_read_via_planner(
    cluster: &DfsCluster,
    config: &PlannerConfig,
    format_exec: &ExecutorConfig,
    shared_pool: Option<&JobPool>,
    dataset: &Dataset,
    query: &HailQuery,
    batch: &[SplitTask<'_>],
    job_parallelism: Option<usize>,
) -> Result<Vec<SplitRead>> {
    let job_workers = job_parallelism.unwrap_or_else(env_job_parallelism).max(1);
    // Per-split intra-split budgets, exactly as `read_split_with`
    // would resolve them.
    let intra: Vec<ExecutorConfig> = batch
        .iter()
        .map(|t| executor_for(format_exec, &t.ctx))
        .collect();
    let run_split = |i: usize, lease: &SplitLease<'_>| -> Result<SplitRead> {
        let t = &batch[i];
        // Claim intra-split workers from whatever the global
        // budget has free right now; the claim frees when the
        // split finishes, so the job tail widens automatically.
        let claim = lease.claim_intra(intra[i].parallelism.max(1));
        let context = ExecutorContext::new(ExecutorConfig {
            parallelism: claim.workers(),
            per_node_slots: None,
        })
        .with_shared_gate(lease.shared_gate())
        .with_scan_share(lease.scan_share());
        let mut records = Vec::new();
        let wall = Instant::now();
        let stats = read_split_unabsorbed(
            cluster,
            config,
            &context,
            dataset,
            query,
            t.split,
            t.ctx.task_node,
            &mut |rec| records.push(rec),
        )?;
        Ok(SplitRead {
            records,
            stats,
            reader_wall_seconds: wall.elapsed().as_secs_f64(),
        })
    };
    let reads = if let Some(pool) = shared_pool {
        pool.run_capped(batch.len(), job_workers, run_split)?
    } else if job_workers <= 1 || batch.len() <= 1 {
        // Sequential split execution: the exact pre-overlap read path
        // per split (streaming, unbuffered when intra parallelism is 1)
        // — only the feedback absorption moves past the barrier below.
        let mut reads = Vec::with_capacity(batch.len());
        for (t, exec) in batch.iter().zip(&intra) {
            let mut records = Vec::new();
            let wall = Instant::now();
            let stats = read_split_unabsorbed(
                cluster,
                config,
                &ExecutorContext::new(exec.clone()),
                dataset,
                query,
                t.split,
                t.ctx.task_node,
                &mut |rec| records.push(rec),
            )?;
            reads.push(SplitRead {
                records,
                stats,
                reader_wall_seconds: wall.elapsed().as_secs_f64(),
            });
        }
        reads
    } else {
        let widest_intra = intra
            .iter()
            .map(|c| c.parallelism.max(1))
            .max()
            .unwrap_or(1);
        let pool = JobPool::new(JobPoolConfig {
            workers: job_workers.min(batch.len()),
            budget: job_workers.max(widest_intra),
            per_node_slots: format_exec.per_node_slots,
        });
        pool.run(batch.len(), run_split)?
    };
    // The barrier: fold every split's observations into the feedback
    // store in batch (split) order — never completion order. Under
    // `defer_feedback` the store stays frozen through the whole job;
    // the managed-batch runner absorbs in job-submission order instead.
    if let Some(feedback) = &config.feedback {
        if !config.defer_feedback {
            for read in &reads {
                feedback.absorb(&read.stats);
            }
        }
    }
    Ok(reads)
}

/// One cluster-wide [`JobPool`] for serving up to `max_jobs` jobs at
/// once — the shared pool a `JobManager` deployment plumbs into every
/// job's format via `with_shared_pool`.
///
/// Sized so each of `max_jobs` concurrent jobs can claim the same
/// fan-out a solo run would build privately: split-level workers from
/// the `HAIL_JOB_PARALLELISM` knob and a thread budget covering the
/// widest intra-split configuration, both multiplied by `max_jobs`.
/// The per-node slot cap is **not** multiplied: it becomes one gate
/// bounding concurrent reads per datanode across all jobs — the
/// cluster-wide resource the gate models is the node, not the job.
pub fn shared_job_pool(max_jobs: usize, executor: &ExecutorConfig) -> Arc<JobPool> {
    let max_jobs = max_jobs.max(1);
    let job_workers = env_job_parallelism().max(1);
    // A pool serving concurrent jobs is exactly where overlapping block
    // decodes can be shared, so it carries the cross-job scan-share
    // registry (unless `HAIL_DISABLE_SCAN_SHARING` turns sharing off).
    let scan_share = crate::sharing::env_scan_sharing_enabled()
        .then(|| Arc::new(crate::sharing::ScanShareRegistry::new()));
    Arc::new(
        JobPool::new(JobPoolConfig {
            workers: job_workers * max_jobs,
            budget: job_workers.max(executor.parallelism.max(1)) * max_jobs,
            per_node_slots: executor.per_node_slots,
        })
        .with_scan_share(scan_share),
    )
}
