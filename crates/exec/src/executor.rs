//! The parallel executors: an intra-split worker pool
//! ([`ExecutorContext`]) fanning one split's independent block reads
//! across OS threads, and a job-level work-stealing pool ([`JobPool`])
//! overlapping whole splits across the job — every read still going
//! through the single [`crate::path::AccessPath::execute`] seam.
//!
//! HAIL's planning layer makes each block read cheap; this module makes
//! the cheap reads *compound*: a multi-block split (the product of
//! `HailSplitting`, §4.3) no longer serializes its block reads on one
//! thread. The design constraints, in order:
//!
//! 1. **Determinism.** Results are merged in split order regardless of
//!    completion order, and `TaskStats` merging is associative, so a
//!    run at any parallelism is bit-for-bit identical to the serial
//!    run — same records in the same order, same statistics, same
//!    simulated-clock costs. `parallelism = 1` takes the exact
//!    pre-executor code path (no worker threads, no buffering).
//! 2. **One seam.** Workers share one `Sync` [`crate::QueryPlanner`]
//!    handle and call `execute_block` exactly as the serial path does;
//!    no read bypasses the planner.
//! 3. **Slot accounting.** The scheduler's simulated per-node
//!    `NodeSlots` accounting is untouched (simulated time never depends
//!    on real parallelism); the executor optionally mirrors that
//!    discipline at the physical layer with a per-node slot gate
//!    bounding concurrent reads against any single datanode.
//!
//! Errors are deterministic too: the error of the **lowest-indexed**
//! failing block is reported, so the winner of a completion race never
//! changes what the caller sees. Tasks above a known failure are
//! skipped (their results could never influence the outcome); tasks
//! below it always run, in case one fails at a lower index still.

use crate::sharing::ScanShareRegistry;
use hail_sync::{LockRank, OrderedCondvar, OrderedMutex};
use hail_types::{DatanodeId, Result};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Environment variable overriding the default executor parallelism
/// (`HAIL_PARALLELISM=4` runs every split's block reads on 4 workers).
/// Unset, unparsable, or zero values mean serial execution. Registered
/// in [`hail_core::knobs`].
pub const PARALLELISM_ENV: &str = hail_core::knobs::PARALLELISM.name;

/// Environment variable overriding the default *job-level* parallelism
/// (`HAIL_JOB_PARALLELISM=4` lets the planner-backed formats overlap 4
/// whole splits). Unset, unparsable, or zero values mean sequential
/// split execution. Registered in [`hail_core::knobs`].
pub const JOB_PARALLELISM_ENV: &str = hail_core::knobs::JOB_PARALLELISM.name;

/// The parallelism configured by [`PARALLELISM_ENV`], defaulting to 1
/// (serial) — the knob CI uses to exercise the parallel path across the
/// whole suite without touching any call site.
pub fn env_parallelism() -> usize {
    hail_core::knobs::parallelism()
}

/// The job-level parallelism configured by [`JOB_PARALLELISM_ENV`],
/// defaulting to 1 (sequential split execution).
pub fn env_job_parallelism() -> usize {
    hail_core::knobs::job_parallelism()
}

/// Executor knobs: worker-pool width and the optional per-node slot
/// cap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutorConfig {
    /// Worker threads fanning out one split's block reads. `1` is
    /// serial execution on the caller's thread (the exact pre-executor
    /// behavior).
    pub parallelism: usize,
    /// Maximum concurrent block reads against any one datanode, the
    /// physical-layer analog of the scheduler's per-node `SlotPool`
    /// accounting. `None` (default) lets the worker pool alone bound
    /// concurrency.
    pub per_node_slots: Option<usize>,
}

impl Default for ExecutorConfig {
    /// Serial unless [`PARALLELISM_ENV`] overrides, no per-node cap.
    fn default() -> Self {
        ExecutorConfig {
            parallelism: env_parallelism(),
            per_node_slots: None,
        }
    }
}

impl ExecutorConfig {
    /// Strictly serial execution, ignoring the environment override.
    pub fn serial() -> Self {
        ExecutorConfig {
            parallelism: 1,
            per_node_slots: None,
        }
    }

    /// A pool of `parallelism` workers (clamped to at least 1).
    pub fn with_parallelism(parallelism: usize) -> Self {
        ExecutorConfig {
            parallelism: parallelism.max(1),
            per_node_slots: None,
        }
    }

    /// Builder-style per-node slot cap.
    pub fn with_per_node_slots(mut self, slots: usize) -> Self {
        self.per_node_slots = Some(slots.max(1));
        self
    }
}

/// Per-node in-flight read accounting: the executor-layer counterpart
/// of the scheduler's `NodeSlots`, bounding how many workers read from
/// one datanode at once. (The scheduler's simulated slot pools are
/// about *when* tasks run in simulated time; this gate is about real
/// I/O concurrency against one node's disk.)
///
/// Since the job-overlap change the gate is **shared job-wide**: one
/// instance, owned by the [`JobPool`], bounds the combined pressure of
/// every concurrently executing split (and their intra-split workers)
/// against any single datanode — not just one split's. Permits are
/// held only for the duration of a single block read (never across
/// blocks, never while waiting on another permit), so the gate cannot
/// deadlock; its mutex sits at [`LockRank::NodeGate`] — strictly below
/// the `JobPool`'s scheduling state and strictly above the planner's
/// locks (enforced by `hail-sync`; see ARCHITECTURE.md, "Concurrency
/// invariants & enforcement").
#[derive(Debug)]
pub struct NodeGate {
    in_flight: OrderedMutex<BTreeMap<DatanodeId, usize>>,
    freed: OrderedCondvar,
    slots_per_node: usize,
}

impl NodeGate {
    /// A gate admitting at most `slots_per_node` concurrent reads
    /// against any one datanode (clamped to at least 1).
    pub fn new(slots_per_node: usize) -> Self {
        NodeGate {
            in_flight: OrderedMutex::new(LockRank::NodeGate, "node-gate", BTreeMap::new()),
            freed: OrderedCondvar::new(),
            slots_per_node: slots_per_node.max(1),
        }
    }

    /// Blocks until `node` has a free slot, then occupies one. The
    /// returned guard frees the slot on drop.
    pub fn acquire(&self, node: DatanodeId) -> NodePermit<'_> {
        let mut counts = self.in_flight.acquire();
        while counts.get(&node).copied().unwrap_or(0) >= self.slots_per_node {
            counts = self.freed.wait(counts);
        }
        *counts.entry(node).or_insert(0) += 1;
        NodePermit { gate: self, node }
    }
}

/// RAII slot occupation; releasing wakes blocked workers.
pub struct NodePermit<'a> {
    gate: &'a NodeGate,
    node: DatanodeId,
}

impl Drop for NodePermit<'_> {
    fn drop(&mut self) {
        let mut counts = self.gate.in_flight.acquire();
        if let Some(n) = counts.get_mut(&self.node) {
            *n = n.saturating_sub(1);
        }
        self.gate.freed.notify_all();
    }
}

/// A scoped worker pool executing independent indexed tasks.
///
/// One context is built per split read; its workers live only for the
/// duration of [`ExecutorContext::run`] (via [`std::thread::scope`]),
/// so borrowed planner/cluster state needs no `'static` bounds and no
/// threads outlive the read.
#[derive(Debug, Clone)]
pub struct ExecutorContext {
    config: ExecutorConfig,
    /// A job-wide [`NodeGate`] this context gates through instead of
    /// building its own per-read gate from
    /// [`ExecutorConfig::per_node_slots`]. Set by the [`JobPool`] so
    /// concurrent splits share one per-node bound.
    shared_gate: Option<Arc<NodeGate>>,
    /// The cross-job scan-share registry, when this context executes a
    /// managed job whose block decodes may be shared with other
    /// in-flight jobs ([`crate::sharing`]). `None` reads every block
    /// independently.
    scan_share: Option<Arc<ScanShareRegistry>>,
}

impl ExecutorContext {
    pub fn new(config: ExecutorConfig) -> Self {
        ExecutorContext {
            config,
            shared_gate: None,
            scan_share: None,
        }
    }

    /// A serial context (parallelism 1).
    pub fn serial() -> Self {
        ExecutorContext::new(ExecutorConfig::serial())
    }

    /// Builder-style job-wide gate: when set, every read of this
    /// context acquires permits from `gate` (shared with the rest of
    /// the job) rather than a private per-read gate, and
    /// [`ExecutorConfig::per_node_slots`] is ignored.
    pub fn with_shared_gate(mut self, gate: Option<Arc<NodeGate>>) -> Self {
        self.shared_gate = gate;
        self
    }

    /// The configured worker count.
    pub fn parallelism(&self) -> usize {
        self.config.parallelism.max(1)
    }

    /// True if a job-wide [`NodeGate`] is attached to this context.
    pub fn has_shared_gate(&self) -> bool {
        self.shared_gate.is_some()
    }

    /// Builder-style scan-share registry: when set, block reads driven
    /// by this context may attach to (or produce for) decodes shared
    /// with other in-flight jobs.
    pub fn with_scan_share(mut self, scan_share: Option<Arc<ScanShareRegistry>>) -> Self {
        self.scan_share = scan_share;
        self
    }

    /// The attached cross-job scan-share registry, if any.
    pub fn scan_share(&self) -> Option<&Arc<ScanShareRegistry>> {
        self.scan_share.as_ref()
    }

    /// The worker count that would actually run `n` tasks.
    pub fn workers_for(&self, n: usize) -> usize {
        self.parallelism().min(n).max(1)
    }

    /// Runs tasks `0..n`, returning their results **in index order**.
    ///
    /// `node_of(i)` names the datanode task `i` reads from, consulted
    /// only when a [`ExecutorConfig::per_node_slots`] cap is set.
    /// With one worker the tasks run sequentially on the caller's
    /// thread; otherwise workers pull indices from a shared counter and
    /// write results into per-index slots, and the merge replays them
    /// in index order. On failure the error of the lowest-indexed
    /// failing task is returned — independent of completion order:
    /// once a failure at index `f` is known, workers skip every task
    /// above `f` (those can never influence the result), while tasks
    /// below `f` still run in case one of them fails at a lower index.
    pub fn run<T, F, N>(&self, n: usize, node_of: N, task: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(usize) -> Result<T> + Sync,
        N: Fn(usize) -> Option<DatanodeId> + Sync,
    {
        let workers = self.workers_for(n);
        if workers <= 1 {
            if let Some(gate) = &self.shared_gate {
                // Serial read inside a parallel job: same in-order,
                // stop-at-first-error semantics, but each block read
                // still takes a permit from the job-wide gate so
                // concurrent splits respect the shared per-node bound.
                return (0..n)
                    .map(|i| {
                        let _permit = node_of(i).map(|node| gate.acquire(node));
                        task(i)
                    })
                    .collect();
            }
            // Serial: the exact historical behavior, in-order on the
            // calling thread, stopping at the first error.
            return (0..n).map(task).collect();
        }

        let own_gate = if self.shared_gate.is_none() {
            self.config.per_node_slots.map(NodeGate::new)
        } else {
            None
        };
        let gate: Option<&NodeGate> = self.shared_gate.as_deref().or(own_gate.as_ref());
        let next = AtomicUsize::new(0);
        // Lowest failing index seen so far (monotonically decreasing).
        let failed_at = AtomicUsize::new(usize::MAX);
        let slots: Vec<OrderedMutex<Option<Result<T>>>> = (0..n)
            .map(|_| OrderedMutex::new(LockRank::PoolDeque, "executor-task-slot", None))
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    // Indices are pulled in increasing order, so once i
                    // passes n or a known failure there is nothing
                    // smaller left to pull: stop instead of burning
                    // I/O on results the merge would discard.
                    if i >= n || i > failed_at.load(Ordering::Relaxed) {
                        break;
                    }
                    let _permit = gate.and_then(|g| node_of(i).map(|node| g.acquire(node)));
                    let result = task(i);
                    if result.is_err() {
                        failed_at.fetch_min(i, Ordering::Relaxed);
                    }
                    *slots[i].acquire() = Some(result);
                });
            }
        });

        // Merge in index order. Every slot below the final failed_at is
        // filled (skipping requires being above a failure), so the
        // lowest-index error is always reached before any skipped slot.
        let mut out = Vec::with_capacity(n);
        for slot in slots {
            let result = slot
                .into_inner()
                .expect("executor worker left a pre-failure task slot unfilled");
            out.push(result?);
        }
        Ok(out)
    }
}

/// A job's global thread budget, shared between the [`JobPool`]'s
/// split-level workers and the intra-split [`ExecutorContext`] workers
/// each split read spawns: the total number of concurrently running
/// executor threads never exceeds `total`.
///
/// The pool seeds the counter with its split workers; each split read
/// then *claims* extra intra-split workers from whatever is left
/// ([`SplitLease::claim_intra`]) and releases them when the read
/// finishes. A split worker whose deque (and every steal target) has
/// drained releases its own seed share too, so late, long splits can
/// widen their intra-split fan-out as the job tail empties.
#[derive(Debug)]
pub struct ParallelismBudget {
    total: usize,
    in_use: AtomicUsize,
}

impl ParallelismBudget {
    /// A budget of `total` concurrent threads (clamped to at least 1).
    pub fn new(total: usize) -> Self {
        ParallelismBudget {
            total: total.max(1),
            in_use: AtomicUsize::new(0),
        }
    }

    /// The budget's ceiling.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Threads currently accounted against the budget.
    pub fn in_use(&self) -> usize {
        self.in_use.load(Ordering::Relaxed)
    }

    /// Claims up to `want` threads, returning how many were granted
    /// (possibly 0 — never blocks).
    fn claim(&self, want: usize) -> usize {
        let mut current = self.in_use.load(Ordering::Relaxed);
        loop {
            let granted = want.min(self.total.saturating_sub(current));
            if granted == 0 {
                return 0;
            }
            match self.in_use.compare_exchange_weak(
                current,
                current + granted,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return granted,
                Err(now) => current = now,
            }
        }
    }

    /// [`ParallelismBudget::claim`], but always grants at least one
    /// thread even on a fully claimed budget — a [`JobPool::run`] call
    /// must make progress on the caller's thread no matter what. With
    /// `k` concurrent `run` calls sharing one pool, combined threads
    /// exceed `total` by at most `k − 1` (one guaranteed worker each);
    /// a single run never exceeds the budget.
    fn claim_workers(&self, want: usize) -> usize {
        let mut current = self.in_use.load(Ordering::Relaxed);
        loop {
            let granted = want.min(self.total.saturating_sub(current)).max(1);
            match self.in_use.compare_exchange_weak(
                current,
                current + granted,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return granted,
                Err(now) => current = now,
            }
        }
    }

    fn release(&self, n: usize) {
        if n > 0 {
            self.in_use.fetch_sub(n, Ordering::Relaxed);
        }
    }
}

/// Extra intra-split workers claimed from a [`ParallelismBudget`];
/// released on drop.
#[derive(Debug)]
pub struct IntraClaim<'a> {
    budget: &'a ParallelismBudget,
    granted: usize,
}

impl IntraClaim<'_> {
    /// Total workers the split read may use: the caller's own thread
    /// plus every extra thread granted.
    pub fn workers(&self) -> usize {
        1 + self.granted
    }
}

impl Drop for IntraClaim<'_> {
    fn drop(&mut self) {
        self.budget.release(self.granted);
    }
}

/// What a [`JobPool`] worker hands each split task: access to the
/// job-wide budget (for intra-split worker claims) and the shared
/// per-node gate.
#[derive(Debug, Clone, Copy)]
pub struct SplitLease<'a> {
    budget: &'a ParallelismBudget,
    gate: Option<&'a Arc<NodeGate>>,
    scan_share: Option<&'a Arc<ScanShareRegistry>>,
}

impl<'a> SplitLease<'a> {
    /// Claims intra-split workers toward `want` total (including the
    /// split's own thread) from the job's global budget. Never blocks;
    /// grants whatever is free, down to just the caller's own thread.
    pub fn claim_intra(&self, want: usize) -> IntraClaim<'a> {
        IntraClaim {
            budget: self.budget,
            granted: self.budget.claim(want.max(1) - 1),
        }
    }

    /// The job-wide per-node gate, if the job configured one.
    pub fn shared_gate(&self) -> Option<Arc<NodeGate>> {
        self.gate.cloned()
    }

    /// The pool's cross-job scan-share registry, if one is attached.
    pub fn scan_share(&self) -> Option<Arc<ScanShareRegistry>> {
        self.scan_share.cloned()
    }
}

/// [`JobPool`] knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPoolConfig {
    /// Split-level workers: how many whole splits may execute at once.
    pub workers: usize,
    /// Global thread budget shared by split workers and their
    /// intra-split claims (raised to at least `workers`).
    pub budget: usize,
    /// Per-node concurrent-read cap, enforced by one job-wide
    /// [`NodeGate`] across every split. `None` disables gating.
    pub per_node_slots: Option<usize>,
}

/// The job-level work-stealing pool: [`ExecutorContext`] generalized
/// from "blocks of one split" to "splits of one job".
///
/// Each worker owns a deque seeded with a round-robin share of the
/// split indices; it drains its own deque from the front and, when
/// empty, steals from the back of a sibling's. Three properties carry
/// over from the intra-split executor unchanged:
///
/// 1. **Deterministic results** — per-split results land in index
///    slots and are merged in split order, never completion order.
/// 2. **Deterministic errors** — the lowest-indexed failure wins;
///    splits above a known failure are skipped, splits below it always
///    run.
/// 3. **One budget** — the pool's split workers and every intra-split
///    worker they claim share one [`ParallelismBudget`], so
///    `HAIL_PARALLELISM`-style knobs bound *total* threads, not
///    threads per layer. The per-node [`NodeGate`] is likewise shared
///    job-wide.
#[derive(Debug)]
pub struct JobPool {
    workers: usize,
    budget: ParallelismBudget,
    gate: Option<Arc<NodeGate>>,
    scan_share: Option<Arc<ScanShareRegistry>>,
}

impl JobPool {
    pub fn new(config: JobPoolConfig) -> Self {
        let workers = config.workers.max(1);
        JobPool {
            workers,
            budget: ParallelismBudget::new(config.budget.max(workers)),
            gate: config
                .per_node_slots
                .map(|slots| Arc::new(NodeGate::new(slots))),
            scan_share: None,
        }
    }

    /// Builder-style cross-job scan-share registry: a pool shared by
    /// concurrent managed jobs attaches one so overlapping block
    /// decodes are produced once and shared ([`crate::sharing`]).
    pub fn with_scan_share(mut self, scan_share: Option<Arc<ScanShareRegistry>>) -> Self {
        self.scan_share = scan_share;
        self
    }

    /// The pool's cross-job scan-share registry, if one is attached.
    pub fn scan_share(&self) -> Option<&Arc<ScanShareRegistry>> {
        self.scan_share.as_ref()
    }

    /// The job-wide thread budget.
    pub fn budget(&self) -> &ParallelismBudget {
        &self.budget
    }

    /// Runs split tasks `0..n`, returning their results **in index
    /// order**; on failure the error of the lowest-indexed failing
    /// split is returned. Each task receives a [`SplitLease`] for
    /// claiming intra-split workers and the shared gate.
    pub fn run<T, F>(&self, n: usize, task: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(usize, &SplitLease<'_>) -> Result<T> + Sync,
    {
        self.run_capped(n, self.workers, task)
    }

    /// [`JobPool::run`] with the caller's split-level fan-out
    /// additionally capped at `cap` — the seam a pool shared across
    /// concurrent jobs needs. The pool's `workers` and budget stay the
    /// cluster-wide bound; each job passes its own `job_parallelism`
    /// as `cap` so one greedy job cannot monopolise the shared pool,
    /// and the additive budget claim squeezes simultaneous callers
    /// down to the global total. Results and errors are identical to
    /// [`JobPool::run`] at every `cap` — the cap only bounds overlap.
    pub fn run_capped<T, F>(&self, n: usize, cap: usize, task: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(usize, &SplitLease<'_>) -> Result<T> + Sync,
    {
        let workers = self.workers.min(cap.max(1)).min(n).max(1);
        // The split workers themselves occupy budget while they live —
        // claimed additively against the total (never `store`d), so a
        // pool shared across concurrent `run` calls both keeps a
        // consistent count and respects the global bound: a second
        // concurrent run is squeezed down to the budget's remainder
        // (but always gets one worker). Each parallel worker releases
        // its own seat on exit; the sequential path releases its single
        // seat itself.
        let workers = self.budget.claim_workers(workers);
        self.run_seeded(n, workers, &task)
    }

    fn run_seeded<T, F>(&self, n: usize, workers: usize, task: &F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(usize, &SplitLease<'_>) -> Result<T> + Sync,
    {
        if workers <= 1 {
            // Sequential: in split order on the caller's thread,
            // stopping at the first error — with budget and gate still
            // live so intra-split reads behave identically.
            let lease = SplitLease {
                budget: &self.budget,
                gate: self.gate.as_ref(),
                scan_share: self.scan_share.as_ref(),
            };
            let out = (0..n).map(|i| task(i, &lease)).collect();
            self.budget.release(1);
            return out;
        }

        // Per-worker deques, seeded round-robin so early (often larger,
        // often lower-indexed) splits start immediately everywhere.
        let deques: Vec<OrderedMutex<VecDeque<usize>>> = (0..workers)
            .map(|w| {
                OrderedMutex::new(
                    LockRank::PoolDeque,
                    "pool-deque",
                    (w..n).step_by(workers).collect(),
                )
            })
            .collect();
        // Lowest failing split index seen so far.
        let failed_at = AtomicUsize::new(usize::MAX);
        let slots: Vec<OrderedMutex<Option<Result<T>>>> = (0..n)
            .map(|_| OrderedMutex::new(LockRank::PoolDeque, "pool-split-slot", None))
            .collect();
        std::thread::scope(|scope| {
            for w in 0..workers {
                let deques = &deques;
                let slots = &slots;
                let failed_at = &failed_at;
                let lease = SplitLease {
                    budget: &self.budget,
                    gate: self.gate.as_ref(),
                    scan_share: self.scan_share.as_ref(),
                };
                scope.spawn(move || {
                    loop {
                        // Own deque first (front); when it drains,
                        // steal from the back of the first sibling
                        // still holding work. The task set is static
                        // (no pushes after seeding), so finding every
                        // deque empty means the job tail is done.
                        let mut next = deques[w].acquire().pop_front();
                        if next.is_none() {
                            for (v, d) in deques.iter().enumerate() {
                                if v == w {
                                    continue;
                                }
                                next = d.acquire().pop_back();
                                if next.is_some() {
                                    break;
                                }
                            }
                        }
                        let Some(i) = next else { break };
                        if i > failed_at.load(Ordering::Relaxed) {
                            // Past a known failure: skip (its result
                            // could never influence the outcome) but
                            // keep draining — lower indices may remain.
                            continue;
                        }
                        let result = task(i, &lease);
                        if result.is_err() {
                            failed_at.fetch_min(i, Ordering::Relaxed);
                        }
                        *slots[i].acquire() = Some(result);
                    }
                    // This worker is done: its budget share frees up
                    // for the surviving splits' intra-split claims.
                    self.budget.release(1);
                });
            }
        });

        // Merge in split order: every slot below the final failed_at is
        // filled, so the lowest-index error is reached before any
        // skipped (None) slot.
        let mut out = Vec::with_capacity(n);
        for slot in slots {
            let result = slot
                .into_inner()
                .expect("job pool worker left a pre-failure split slot unfilled");
            out.push(result?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hail_types::HailError;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_index_order_at_any_parallelism() {
        for parallelism in [1, 2, 4, 8] {
            let ctx = ExecutorContext::new(ExecutorConfig::with_parallelism(parallelism));
            let out = ctx
                .run(
                    17,
                    |_| None,
                    |i| {
                        // Finish later tasks first under contention.
                        if i % 3 == 0 {
                            std::thread::yield_now();
                        }
                        Ok(i * 10)
                    },
                )
                .unwrap();
            assert_eq!(out, (0..17).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn lowest_index_error_wins() {
        let ctx = ExecutorContext::new(ExecutorConfig::with_parallelism(4));
        let err = ctx
            .run(
                16,
                |_| None,
                |i| {
                    if i == 11 || i == 3 {
                        Err(HailError::Job(format!("task {i}")))
                    } else {
                        Ok(i)
                    }
                },
            )
            .unwrap_err();
        assert_eq!(err.to_string(), HailError::Job("task 3".into()).to_string());
    }

    #[test]
    fn serial_runs_on_caller_thread_and_stops_at_first_error() {
        let ctx = ExecutorContext::serial();
        let caller = std::thread::current().id();
        let ran = AtomicUsize::new(0);
        let err = ctx
            .run(
                10,
                |_| None,
                |i| {
                    assert_eq!(std::thread::current().id(), caller);
                    ran.fetch_add(1, Ordering::Relaxed);
                    if i == 4 {
                        Err(HailError::Job("boom".into()))
                    } else {
                        Ok(())
                    }
                },
            )
            .unwrap_err();
        assert!(err.to_string().contains("boom"));
        // Old behavior: nothing past the failing block runs.
        assert_eq!(ran.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn known_failure_skips_higher_indexed_tasks() {
        use std::sync::atomic::AtomicBool;
        let ctx = ExecutorContext::new(ExecutorConfig::with_parallelism(4));
        let ran = AtomicUsize::new(0);
        // Tasks other than the failing one block until the failure has
        // *started*, then linger long enough for it to be recorded —
        // so no worker can pull a second task before the skip flag is
        // set, and the run-count bound is workers, not wall clock.
        let failing_started = AtomicBool::new(false);
        let err = ctx
            .run(
                40,
                |_| None,
                |i| {
                    ran.fetch_add(1, Ordering::SeqCst);
                    if i == 0 {
                        failing_started.store(true, Ordering::SeqCst);
                        Err(HailError::Job("early".into()))
                    } else {
                        let deadline =
                            std::time::Instant::now() + std::time::Duration::from_secs(5);
                        while !failing_started.load(Ordering::SeqCst)
                            && std::time::Instant::now() < deadline
                        {
                            std::thread::yield_now();
                        }
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        Ok(i)
                    }
                },
            )
            .unwrap_err();
        assert!(err.to_string().contains("early"));
        let ran = ran.load(Ordering::SeqCst);
        // Typically exactly `workers` tasks start (the non-failing
        // ones park on the flag until the failure is underway), but
        // the recording races the linger, so only assert what cannot
        // flake on an oversubscribed machine: at least one task above
        // the failure was skipped.
        assert!(
            ran < 40,
            "tasks above a known failure should be skipped, ran {ran}/40"
        );
    }

    #[test]
    fn per_node_slot_gate_bounds_concurrency() {
        let ctx = ExecutorContext::new(ExecutorConfig::with_parallelism(8).with_per_node_slots(2));
        let in_flight = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        // All 24 tasks target the same node: the gate must keep at most
        // 2 concurrent despite 8 workers.
        ctx.run(
            24,
            |_| Some(0),
            |_| {
                let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(1));
                in_flight.fetch_sub(1, Ordering::SeqCst);
                Ok(())
            },
        )
        .unwrap();
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "peak {} exceeded the per-node cap",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn distinct_nodes_do_not_contend_for_slots() {
        let ctx = ExecutorContext::new(ExecutorConfig::with_parallelism(4).with_per_node_slots(1));
        let peak = AtomicUsize::new(0);
        let in_flight = AtomicUsize::new(0);
        // Four tasks on four distinct nodes: all may run at once.
        ctx.run(4, Some, |_| {
            let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(2));
            in_flight.fetch_sub(1, Ordering::SeqCst);
            Ok(())
        })
        .unwrap();
        assert!(
            peak.load(Ordering::SeqCst) >= 2,
            "distinct nodes blocked each other"
        );
    }

    #[test]
    fn config_defaults_and_builders() {
        assert_eq!(ExecutorConfig::serial().parallelism, 1);
        assert_eq!(ExecutorConfig::with_parallelism(0).parallelism, 1);
        let capped = ExecutorConfig::with_parallelism(4).with_per_node_slots(0);
        assert_eq!(capped.per_node_slots, Some(1));
        assert_eq!(ExecutorContext::new(capped).workers_for(2), 2);
    }

    fn pool(workers: usize, budget: usize) -> JobPool {
        JobPool::new(JobPoolConfig {
            workers,
            budget,
            per_node_slots: None,
        })
    }

    #[test]
    fn job_pool_results_in_index_order_at_any_width() {
        for workers in [1, 2, 4, 8] {
            let out = pool(workers, workers)
                .run(19, |i, _| {
                    if i % 3 == 0 {
                        std::thread::yield_now();
                    }
                    Ok(i * 7)
                })
                .unwrap();
            assert_eq!(out, (0..19).map(|i| i * 7).collect::<Vec<_>>());
        }
    }

    #[test]
    fn job_pool_lowest_index_error_wins() {
        let err = pool(4, 4)
            .run(16, |i, _| {
                if i == 2 || i == 13 {
                    Err(HailError::Job(format!("split {i}")))
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
        assert_eq!(
            err.to_string(),
            HailError::Job("split 2".into()).to_string()
        );
    }

    /// With two workers and worker 0 stuck on its first split, its
    /// remaining deque entries must be stolen and completed by the
    /// sibling — the whole batch finishes, and the stolen indices run
    /// on a different thread than the stuck one.
    #[test]
    fn job_pool_steals_drained_work() {
        use std::sync::Mutex as StdMutex;
        let ran_by: StdMutex<BTreeMap<usize, std::thread::ThreadId>> =
            StdMutex::new(BTreeMap::new());
        pool(2, 2)
            .run(8, |i, _| {
                if i == 0 {
                    // Worker 0's first task: hold it long enough for
                    // the sibling to drain everything else.
                    std::thread::sleep(std::time::Duration::from_millis(40));
                }
                ran_by
                    .lock()
                    .unwrap()
                    .insert(i, std::thread::current().id());
                Ok(i)
            })
            .unwrap();
        let ran_by = ran_by.into_inner().unwrap();
        assert_eq!(ran_by.len(), 8, "every split ran");
        // Indices 2,4,6 were seeded to the stuck worker's deque; at
        // least one must have been stolen by the other thread.
        let stuck = ran_by[&0];
        assert!(
            [2usize, 4, 6].iter().any(|i| ran_by[i] != stuck),
            "no split was stolen from the stuck worker"
        );
    }

    /// The global budget is shared: split workers plus every
    /// intra-split claim never exceed the total, and claims free up as
    /// splits (and then workers) finish.
    #[test]
    fn job_pool_budget_bounds_total_threads() {
        let p = pool(2, 4);
        let peak_in_use = AtomicUsize::new(0);
        p.run(12, |_, lease| {
            let claim = lease.claim_intra(100);
            // 2 split workers seeded + at most 2 extra grantable.
            assert!(claim.workers() <= 3);
            let now = p.budget().in_use();
            peak_in_use.fetch_max(now, Ordering::SeqCst);
            assert!(now <= p.budget().total());
            Ok(())
        })
        .unwrap();
        assert!(peak_in_use.load(Ordering::SeqCst) <= 4);
        assert_eq!(p.budget().in_use(), 0, "budget fully released after run");
        // The budget never sinks below the worker count.
        assert_eq!(pool(4, 1).budget().total(), 4);
    }

    /// One job-wide gate bounds concurrent reads against a node across
    /// *splits*, not just within one — four concurrently executing
    /// splits all reading node 0 through their own `ExecutorContext`s
    /// never overlap when the shared gate has one slot.
    #[test]
    fn shared_gate_bounds_cross_split_concurrency() {
        let p = JobPool::new(JobPoolConfig {
            workers: 4,
            budget: 8,
            per_node_slots: Some(1),
        });
        let in_flight = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        p.run(4, |_, lease| {
            let ctx = ExecutorContext::new(ExecutorConfig::with_parallelism(2))
                .with_shared_gate(lease.shared_gate());
            ctx.run(
                3,
                |_| Some(0),
                |_| {
                    let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                    Ok(())
                },
            )
            .map(|_| ())
        })
        .unwrap();
        assert_eq!(
            peak.load(Ordering::SeqCst),
            1,
            "the job-wide gate must serialize all reads against node 0"
        );
    }

    #[test]
    fn env_job_parallelism_defaults_serial() {
        // The suite cannot mutate the process environment safely, but
        // the parser contract is pinned: absent/zero → 1.
        assert!(env_job_parallelism() >= 1);
    }
}
