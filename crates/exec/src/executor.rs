//! The parallel split executor: a thread-safe worker pool that fans the
//! independent block reads of one input split out across OS threads,
//! every read still going through the single
//! [`crate::path::AccessPath::execute`] seam.
//!
//! HAIL's planning layer makes each block read cheap; this module makes
//! the cheap reads *compound*: a multi-block split (the product of
//! `HailSplitting`, §4.3) no longer serializes its block reads on one
//! thread. The design constraints, in order:
//!
//! 1. **Determinism.** Results are merged in split order regardless of
//!    completion order, and `TaskStats` merging is associative, so a
//!    run at any parallelism is bit-for-bit identical to the serial
//!    run — same records in the same order, same statistics, same
//!    simulated-clock costs. `parallelism = 1` takes the exact
//!    pre-executor code path (no worker threads, no buffering).
//! 2. **One seam.** Workers share one `Sync` [`crate::QueryPlanner`]
//!    handle and call `execute_block` exactly as the serial path does;
//!    no read bypasses the planner.
//! 3. **Slot accounting.** The scheduler's simulated per-node
//!    `NodeSlots` accounting is untouched (simulated time never depends
//!    on real parallelism); the executor optionally mirrors that
//!    discipline at the physical layer with a per-node slot gate
//!    bounding concurrent reads against any single datanode.
//!
//! Errors are deterministic too: the error of the **lowest-indexed**
//! failing block is reported, so the winner of a completion race never
//! changes what the caller sees. Tasks above a known failure are
//! skipped (their results could never influence the outcome); tasks
//! below it always run, in case one fails at a lower index still.

use hail_types::{DatanodeId, Result};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Environment variable overriding the default executor parallelism
/// (`HAIL_PARALLELISM=4` runs every split's block reads on 4 workers).
/// Unset, unparsable, or zero values mean serial execution.
pub const PARALLELISM_ENV: &str = "HAIL_PARALLELISM";

/// The parallelism configured by [`PARALLELISM_ENV`], defaulting to 1
/// (serial) — the knob CI uses to exercise the parallel path across the
/// whole suite without touching any call site.
pub fn env_parallelism() -> usize {
    std::env::var(PARALLELISM_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&p| p >= 1)
        .unwrap_or(1)
}

/// Executor knobs: worker-pool width and the optional per-node slot
/// cap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutorConfig {
    /// Worker threads fanning out one split's block reads. `1` is
    /// serial execution on the caller's thread (the exact pre-executor
    /// behavior).
    pub parallelism: usize,
    /// Maximum concurrent block reads against any one datanode, the
    /// physical-layer analog of the scheduler's per-node `SlotPool`
    /// accounting. `None` (default) lets the worker pool alone bound
    /// concurrency.
    pub per_node_slots: Option<usize>,
}

impl Default for ExecutorConfig {
    /// Serial unless [`PARALLELISM_ENV`] overrides, no per-node cap.
    fn default() -> Self {
        ExecutorConfig {
            parallelism: env_parallelism(),
            per_node_slots: None,
        }
    }
}

impl ExecutorConfig {
    /// Strictly serial execution, ignoring the environment override.
    pub fn serial() -> Self {
        ExecutorConfig {
            parallelism: 1,
            per_node_slots: None,
        }
    }

    /// A pool of `parallelism` workers (clamped to at least 1).
    pub fn with_parallelism(parallelism: usize) -> Self {
        ExecutorConfig {
            parallelism: parallelism.max(1),
            per_node_slots: None,
        }
    }

    /// Builder-style per-node slot cap.
    pub fn with_per_node_slots(mut self, slots: usize) -> Self {
        self.per_node_slots = Some(slots.max(1));
        self
    }
}

/// Per-node in-flight read accounting: the executor-layer counterpart
/// of the scheduler's `NodeSlots`, bounding how many workers read from
/// one datanode at once. (The scheduler's simulated slot pools are
/// about *when* tasks run in simulated time; this gate is about real
/// I/O concurrency against one node's disk.)
#[derive(Debug)]
struct NodeGate {
    in_flight: Mutex<BTreeMap<DatanodeId, usize>>,
    freed: Condvar,
    slots_per_node: usize,
}

impl NodeGate {
    fn new(slots_per_node: usize) -> Self {
        NodeGate {
            in_flight: Mutex::new(BTreeMap::new()),
            freed: Condvar::new(),
            slots_per_node: slots_per_node.max(1),
        }
    }

    /// Blocks until `node` has a free slot, then occupies one. The
    /// returned guard frees the slot on drop.
    fn acquire(&self, node: DatanodeId) -> NodePermit<'_> {
        let mut counts = self.in_flight.lock().unwrap();
        while counts.get(&node).copied().unwrap_or(0) >= self.slots_per_node {
            counts = self.freed.wait(counts).unwrap();
        }
        *counts.entry(node).or_insert(0) += 1;
        NodePermit { gate: self, node }
    }
}

/// RAII slot occupation; releasing wakes blocked workers.
struct NodePermit<'a> {
    gate: &'a NodeGate,
    node: DatanodeId,
}

impl Drop for NodePermit<'_> {
    fn drop(&mut self) {
        let mut counts = self.gate.in_flight.lock().unwrap();
        if let Some(n) = counts.get_mut(&self.node) {
            *n = n.saturating_sub(1);
        }
        self.gate.freed.notify_all();
    }
}

/// A scoped worker pool executing independent indexed tasks.
///
/// One context is built per split read; its workers live only for the
/// duration of [`ExecutorContext::run`] (via [`std::thread::scope`]),
/// so borrowed planner/cluster state needs no `'static` bounds and no
/// threads outlive the read.
#[derive(Debug, Clone)]
pub struct ExecutorContext {
    config: ExecutorConfig,
}

impl ExecutorContext {
    pub fn new(config: ExecutorConfig) -> Self {
        ExecutorContext { config }
    }

    /// A serial context (parallelism 1).
    pub fn serial() -> Self {
        ExecutorContext::new(ExecutorConfig::serial())
    }

    /// The configured worker count.
    pub fn parallelism(&self) -> usize {
        self.config.parallelism.max(1)
    }

    /// The worker count that would actually run `n` tasks.
    pub fn workers_for(&self, n: usize) -> usize {
        self.parallelism().min(n).max(1)
    }

    /// Runs tasks `0..n`, returning their results **in index order**.
    ///
    /// `node_of(i)` names the datanode task `i` reads from, consulted
    /// only when a [`ExecutorConfig::per_node_slots`] cap is set.
    /// With one worker the tasks run sequentially on the caller's
    /// thread; otherwise workers pull indices from a shared counter and
    /// write results into per-index slots, and the merge replays them
    /// in index order. On failure the error of the lowest-indexed
    /// failing task is returned — independent of completion order:
    /// once a failure at index `f` is known, workers skip every task
    /// above `f` (those can never influence the result), while tasks
    /// below `f` still run in case one of them fails at a lower index.
    pub fn run<T, F, N>(&self, n: usize, node_of: N, task: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(usize) -> Result<T> + Sync,
        N: Fn(usize) -> Option<DatanodeId> + Sync,
    {
        let workers = self.workers_for(n);
        if workers <= 1 {
            // Serial: the exact historical behavior, in-order on the
            // calling thread, stopping at the first error.
            return (0..n).map(task).collect();
        }

        let gate = self.config.per_node_slots.map(NodeGate::new);
        let next = AtomicUsize::new(0);
        // Lowest failing index seen so far (monotonically decreasing).
        let failed_at = AtomicUsize::new(usize::MAX);
        let slots: Vec<Mutex<Option<Result<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    // Indices are pulled in increasing order, so once i
                    // passes n or a known failure there is nothing
                    // smaller left to pull: stop instead of burning
                    // I/O on results the merge would discard.
                    if i >= n || i > failed_at.load(Ordering::Relaxed) {
                        break;
                    }
                    let _permit = gate
                        .as_ref()
                        .and_then(|g| node_of(i).map(|node| g.acquire(node)));
                    let result = task(i);
                    if result.is_err() {
                        failed_at.fetch_min(i, Ordering::Relaxed);
                    }
                    *slots[i].lock().unwrap() = Some(result);
                });
            }
        });

        // Merge in index order. Every slot below the final failed_at is
        // filled (skipping requires being above a failure), so the
        // lowest-index error is always reached before any skipped slot.
        let mut out = Vec::with_capacity(n);
        for slot in slots {
            let result = slot
                .into_inner()
                .unwrap()
                .expect("executor worker left a pre-failure task slot unfilled");
            out.push(result?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hail_types::HailError;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_index_order_at_any_parallelism() {
        for parallelism in [1, 2, 4, 8] {
            let ctx = ExecutorContext::new(ExecutorConfig::with_parallelism(parallelism));
            let out = ctx
                .run(
                    17,
                    |_| None,
                    |i| {
                        // Finish later tasks first under contention.
                        if i % 3 == 0 {
                            std::thread::yield_now();
                        }
                        Ok(i * 10)
                    },
                )
                .unwrap();
            assert_eq!(out, (0..17).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn lowest_index_error_wins() {
        let ctx = ExecutorContext::new(ExecutorConfig::with_parallelism(4));
        let err = ctx
            .run(
                16,
                |_| None,
                |i| {
                    if i == 11 || i == 3 {
                        Err(HailError::Job(format!("task {i}")))
                    } else {
                        Ok(i)
                    }
                },
            )
            .unwrap_err();
        assert_eq!(err.to_string(), HailError::Job("task 3".into()).to_string());
    }

    #[test]
    fn serial_runs_on_caller_thread_and_stops_at_first_error() {
        let ctx = ExecutorContext::serial();
        let caller = std::thread::current().id();
        let ran = AtomicUsize::new(0);
        let err = ctx
            .run(
                10,
                |_| None,
                |i| {
                    assert_eq!(std::thread::current().id(), caller);
                    ran.fetch_add(1, Ordering::Relaxed);
                    if i == 4 {
                        Err(HailError::Job("boom".into()))
                    } else {
                        Ok(())
                    }
                },
            )
            .unwrap_err();
        assert!(err.to_string().contains("boom"));
        // Old behavior: nothing past the failing block runs.
        assert_eq!(ran.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn known_failure_skips_higher_indexed_tasks() {
        use std::sync::atomic::AtomicBool;
        let ctx = ExecutorContext::new(ExecutorConfig::with_parallelism(4));
        let ran = AtomicUsize::new(0);
        // Tasks other than the failing one block until the failure has
        // *started*, then linger long enough for it to be recorded —
        // so no worker can pull a second task before the skip flag is
        // set, and the run-count bound is workers, not wall clock.
        let failing_started = AtomicBool::new(false);
        let err = ctx
            .run(
                40,
                |_| None,
                |i| {
                    ran.fetch_add(1, Ordering::SeqCst);
                    if i == 0 {
                        failing_started.store(true, Ordering::SeqCst);
                        Err(HailError::Job("early".into()))
                    } else {
                        let deadline =
                            std::time::Instant::now() + std::time::Duration::from_secs(5);
                        while !failing_started.load(Ordering::SeqCst)
                            && std::time::Instant::now() < deadline
                        {
                            std::thread::yield_now();
                        }
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        Ok(i)
                    }
                },
            )
            .unwrap_err();
        assert!(err.to_string().contains("early"));
        let ran = ran.load(Ordering::SeqCst);
        // Typically exactly `workers` tasks start (the non-failing
        // ones park on the flag until the failure is underway), but
        // the recording races the linger, so only assert what cannot
        // flake on an oversubscribed machine: at least one task above
        // the failure was skipped.
        assert!(
            ran < 40,
            "tasks above a known failure should be skipped, ran {ran}/40"
        );
    }

    #[test]
    fn per_node_slot_gate_bounds_concurrency() {
        let ctx = ExecutorContext::new(ExecutorConfig::with_parallelism(8).with_per_node_slots(2));
        let in_flight = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        // All 24 tasks target the same node: the gate must keep at most
        // 2 concurrent despite 8 workers.
        ctx.run(
            24,
            |_| Some(0),
            |_| {
                let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(1));
                in_flight.fetch_sub(1, Ordering::SeqCst);
                Ok(())
            },
        )
        .unwrap();
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "peak {} exceeded the per-node cap",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn distinct_nodes_do_not_contend_for_slots() {
        let ctx = ExecutorContext::new(ExecutorConfig::with_parallelism(4).with_per_node_slots(1));
        let peak = AtomicUsize::new(0);
        let in_flight = AtomicUsize::new(0);
        // Four tasks on four distinct nodes: all may run at once.
        ctx.run(4, Some, |_| {
            let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(2));
            in_flight.fetch_sub(1, Ordering::SeqCst);
            Ok(())
        })
        .unwrap();
        assert!(
            peak.load(Ordering::SeqCst) >= 2,
            "distinct nodes blocked each other"
        );
    }

    #[test]
    fn config_defaults_and_builders() {
        assert_eq!(ExecutorConfig::serial().parallelism, 1);
        assert_eq!(ExecutorConfig::with_parallelism(0).parallelism, 1);
        let capped = ExecutorConfig::with_parallelism(4).with_per_node_slots(0);
        assert_eq!(capped.per_node_slots, Some(1));
        assert_eq!(ExecutorContext::new(capped).workers_for(2), 2);
    }
}
