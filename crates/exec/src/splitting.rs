//! Splitting policies, driven by the planner's [`QueryPlan`]: default
//! Hadoop splitting and `HailSplitting` (§4.3).
//!
//! Default Hadoop creates one input split per block — 3,200 blocks means
//! 3,200 map tasks, each paying seconds of scheduling overhead.
//!
//! `HailSplitting` collapses the task count: blocks whose plan is an
//! index scan are clustered by the datanode the planner chose to serve
//! them, and each collection is cut into *as many input splits as the
//! TaskTracker has map slots* — a 10-node cluster with 2 slots per node
//! runs the whole job in ~20 map tasks, one wave (the mechanism behind
//! the 68× end-to-end result). Blocks planned as full scans keep default
//! per-block splits, so their failover granularity is unchanged.
//!
//! The split locations come straight out of the plan: the scheduler
//! never consults the namenode's index directory itself.

use crate::planner::{QueryPlan, QueryPlanner};
use hail_core::{DatasetFormat, HailQuery};
use hail_dfs::DfsCluster;
use hail_mr::{InputSplit, SplitPlan};
use hail_types::{BlockId, DatanodeId, Result};
use std::collections::BTreeMap;

/// Default Hadoop splitting: one split per block, located at the
/// block's replica holders, no planning involved.
pub fn default_splits(cluster: &DfsCluster, blocks: &[BlockId]) -> Result<SplitPlan> {
    let mut splits = Vec::with_capacity(blocks.len());
    for &b in blocks {
        let hosts = cluster.namenode().get_hosts(b)?;
        splits.push(InputSplit::for_block(b, hosts));
    }
    Ok(SplitPlan {
        splits,
        client_cost: Default::default(),
    })
}

/// Per-block splits whose location lists come from the plan (chosen
/// replica first) — the §6.4 configuration: HailSplitting disabled, but
/// the JobTracker still schedules map tasks "to the replicas having the
/// matching index".
pub fn plan_default_splits(plan: &QueryPlan) -> SplitPlan {
    SplitPlan {
        splits: plan
            .blocks
            .iter()
            .map(|bp| InputSplit::for_block(bp.block, bp.locations.clone()))
            .collect(),
        client_cost: Default::default(),
    }
}

/// `HailSplitting` over a computed plan: cluster index-served blocks by
/// their serving datanode, then cut each collection into `map_slots`
/// splits; full-scan blocks keep per-block splits.
pub fn plan_hail_splits(plan: &QueryPlan, map_slots: usize) -> SplitPlan {
    let mut by_node: BTreeMap<DatanodeId, Vec<BlockId>> = BTreeMap::new();
    let mut scanned: Vec<&crate::planner::BlockPlan> = Vec::new();
    for bp in &plan.blocks {
        // Synopsis-pruned blocks ride along with the index-served
        // collections: they cost nothing to "read" (execution skips
        // them), so packing them into collected splits keeps the
        // per-block scan splits for blocks that genuinely stream.
        if bp.kind.is_index_scan() || bp.pruned.is_some() {
            by_node.entry(bp.replica).or_default().push(bp.block);
        } else {
            scanned.push(bp);
        }
    }

    let mut splits = Vec::new();
    for (node, collection) in by_node {
        // As many splits per collection as the TaskTracker has map slots,
        // so every slot of the node gets one task.
        let n_splits = map_slots.max(1).min(collection.len());
        let per = collection.len().div_ceil(n_splits);
        for chunk in collection.chunks(per) {
            splits.push(InputSplit::new(chunk.to_vec(), vec![node]));
        }
    }
    // Full-scan blocks: default splitting, locations from the plan.
    for bp in scanned {
        splits.push(InputSplit::for_block(bp.block, bp.locations.clone()));
    }
    SplitPlan {
        splits,
        client_cost: Default::default(),
    }
}

/// Convenience form of [`plan_hail_splits`] that plans internally with
/// the default planner configuration (HAIL PAX blocks).
///
/// Queries without an index-friendly filter keep default splitting —
/// their failover granularity must stay Hadoop's.
pub fn hail_splits(
    cluster: &DfsCluster,
    blocks: &[BlockId],
    query: &HailQuery,
    map_slots: usize,
) -> Result<SplitPlan> {
    if query.filter_columns().is_empty() {
        return default_splits(cluster, blocks);
    }
    let plan = QueryPlanner::new(cluster).plan_lenient(DatasetFormat::HailPax, blocks, query)?;
    Ok(plan_hail_splits(&plan, map_slots))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hail_core::upload_hail;
    use hail_index::ReplicaIndexConfig;
    use hail_types::{DataType, Field, Schema, StorageConfig};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::VarChar),
        ])
        .unwrap()
    }

    fn setup(nodes: usize, rows_per_node: usize) -> (DfsCluster, Vec<BlockId>) {
        let mut c = DfsCluster::new(nodes, StorageConfig::test_scale(512));
        let cfg = ReplicaIndexConfig::first_indexed(3, &[0, 1]);
        let texts: Vec<(usize, String)> = (0..nodes)
            .map(|n| {
                (
                    n,
                    (0..rows_per_node)
                        .map(|i| format!("{}|w{}\n", i * 3 + n, i))
                        .collect(),
                )
            })
            .collect();
        let ds = upload_hail(&mut c, &schema(), "t", &texts, &cfg).unwrap();
        (c, ds.blocks)
    }

    #[test]
    fn default_one_split_per_block() {
        let (c, blocks) = setup(4, 60);
        let plan = default_splits(&c, &blocks).unwrap();
        assert_eq!(plan.splits.len(), blocks.len());
        for s in &plan.splits {
            assert_eq!(s.blocks.len(), 1);
            assert_eq!(s.locations.len(), 3);
        }
    }

    #[test]
    fn hail_splitting_collapses_task_count() {
        let (c, blocks) = setup(4, 500);
        assert!(blocks.len() > 16, "need many blocks, got {}", blocks.len());
        let q = HailQuery::parse("@1 between(5, 50)", "", &schema()).unwrap();
        let plan = hail_splits(&c, &blocks, &q, 2).unwrap();
        // At most map_slots × nodes splits — far fewer than blocks.
        assert!(
            plan.splits.len() <= 2 * 4,
            "{} splits for {} blocks",
            plan.splits.len(),
            blocks.len()
        );
        // Every block appears exactly once.
        let mut seen: Vec<BlockId> = plan.splits.iter().flat_map(|s| s.blocks.clone()).collect();
        seen.sort_unstable();
        let mut expected = blocks.clone();
        expected.sort_unstable();
        assert_eq!(seen, expected);
        // Splits are single-located at the planner-chosen index holder.
        for s in &plan.splits {
            assert_eq!(s.locations.len(), 1);
        }
    }

    #[test]
    fn full_scan_keeps_default_splitting() {
        let (c, blocks) = setup(4, 100);
        let q = HailQuery::full_scan();
        let plan = hail_splits(&c, &blocks, &q, 2).unwrap();
        assert_eq!(plan.splits.len(), blocks.len());
    }

    #[test]
    fn dead_index_nodes_fall_back_to_default_splits() {
        let (mut c, blocks) = setup(4, 100);
        let q = HailQuery::parse("@1 = 7", "", &schema()).unwrap();
        // Kill every node holding a column-0 index.
        let mut killers = std::collections::BTreeSet::new();
        for &b in &blocks {
            for h in c.namenode().get_hosts_with_index(b, 0).unwrap() {
                killers.insert(h);
            }
        }
        for k in killers {
            c.kill_node(k).unwrap();
        }
        let plan = hail_splits(&c, &blocks, &q, 2).unwrap();
        // Blocks may still be readable; none has an index host, so all
        // fall back to per-block splits (failover granularity intact).
        assert_eq!(plan.splits.len(), blocks.len());
    }

    #[test]
    fn no_silent_block_loss_in_mixed_plans() {
        let (c, blocks) = setup(4, 150);
        let q = HailQuery::parse("@2 = 'w3'", "", &schema()).unwrap();
        let plan = hail_splits(&c, &blocks, &q, 2).unwrap();
        let total: usize = plan.splits.iter().map(|s| s.blocks.len()).sum();
        assert_eq!(total, blocks.len());
    }
}
