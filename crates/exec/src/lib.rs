//! # hail-exec
//!
//! The unified query-execution layer: **one seam** where every replica
//! and access-path decision is made.
//!
//! HAIL's core claim (Dittrich et al., VLDB 2012) is that a different
//! clustered index per block replica lets the system pick, per block,
//! the cheapest way to read data. Earlier revisions scattered that
//! decision across the record readers, the splitting policies, and the
//! baselines' hard-wired read paths; this crate consolidates all of it:
//!
//! - [`path`] — the [`AccessPath`] trait and its implementations:
//!   [`FullScan`], [`ClusteredIndexScan`], [`TrojanIndexScan`],
//!   [`BitmapScan`], [`InvertedListScan`]
//! - [`planner`] — the cost-based [`QueryPlanner`]: per block, consult
//!   the namenode's per-replica index metadata (`Dir_rep`), price each
//!   `(replica, access path)` candidate with the `hail-sim` cost model,
//!   and emit an explainable [`QueryPlan`]
//! - [`cache`] — the adaptive layer: a fingerprinted [`PlanCache`] that
//!   memoizes per-block plans across queries with the same filter
//!   shape, and a [`SelectivityFeedback`] store that blends observed
//!   per-block selectivities back into the [`SelectivityEstimate`] prior;
//!   both thread-safe behind `RwLock`s so concurrent executor workers
//!   share them
//! - [`executor`] — the parallel executors: an [`ExecutorContext`]
//!   worker pool (scoped threads, configurable parallelism via
//!   [`ExecutorConfig`] or the `HAIL_PARALLELISM` environment override,
//!   optional per-node slot gating) that fans one split's independent
//!   block reads across workers with deterministic, split-ordered
//!   result merging — and a job-level work-stealing [`JobPool`]
//!   (per-worker deques, `HAIL_JOB_PARALLELISM`) that overlaps whole
//!   splits across the job, sharing one global thread budget and one
//!   job-wide per-node gate with the intra-split workers
//! - [`sharing`] — cooperative scan sharing: a [`ScanShareRegistry`]
//!   under which a job whose plan touches a block another in-flight job
//!   is already decoding *attaches* to that decode (producer reads
//!   once, each consumer applies its own residual predicate/projection
//!   with solo-identical accounting), keyed by (block, replica,
//!   access-path shape) and disabled via `HAIL_DISABLE_SCAN_SHARING`
//! - [`synopsis`] — block skipping: evaluate the query against the
//!   persisted per-block zone-map/Bloom synopses *before* candidate
//!   enumeration, so provably-empty blocks get zero-cost plans and are
//!   never priced or read (conservative: any doubt means no prune)
//! - [`adapt`] — adaptive re-indexing: a [`ReindexAdvisor`] that turns
//!   sustained [`SelectivityFeedback`] evidence into in-place replica
//!   rewrites building the missing clustered index or bitmap sidecar,
//!   applied under `&mut DfsCluster` so concurrent queries see either
//!   the old design or the new one — never a half-registered hybrid
//! - [`splitting`] — default Hadoop splitting and `HailSplitting`
//!   (§4.3), consuming plans instead of re-deriving replica choices
//! - [`formats`] — the three `InputFormat`s (Hadoop, Hadoop++, HAIL),
//!   all routed through `QueryPlanner::plan` → `AccessPath::execute`,
//!   and all driving the executor for multi-block splits
//! - [`readers`] — single-block reader entry points (planner-backed)
//!
//! New access paths or index types plug into the planner's candidate
//! enumeration — nothing else needs to change; cross-query planning
//! state (memoized plans, selectivity feedback) lives in [`cache`] and
//! is shared by plugging `Arc`s into the [`PlannerConfig`].
//!
//! # Adaptive planning in five lines
//!
//! The plan cache and feedback store are opt-in knobs on the planner
//! configuration, and `explain()` shows them working:
//!
//! ```
//! use std::sync::Arc;
//! use hail_core::{upload_hail, HailQuery};
//! use hail_dfs::DfsCluster;
//! use hail_exec::{PlanCache, PlannerConfig, QueryPlanner, SelectivityFeedback};
//! use hail_index::ReplicaIndexConfig;
//! use hail_types::{DataType, Field, Schema, StorageConfig};
//!
//! let schema = Schema::new(vec![
//!     Field::new("k", DataType::Int),
//!     Field::new("v", DataType::VarChar),
//! ]).unwrap();
//! let mut config = StorageConfig::test_scale(4096);
//! config.index_partition_size = 16;
//! let mut cluster = DfsCluster::new(4, config);
//! let text: String = (0..400).map(|i| format!("{}|w{}\n", i % 89, i)).collect();
//! let dataset = upload_hail(&mut cluster, &schema, "t", &[(0, text)],
//!     &ReplicaIndexConfig::first_indexed(3, &[0])).unwrap();
//!
//! let planner_config = PlannerConfig {
//!     plan_cache: Some(Arc::new(PlanCache::default())),
//!     feedback: Some(Arc::new(SelectivityFeedback::default())),
//!     ..Default::default()
//! };
//! let planner = QueryPlanner::with_config(&cluster, planner_config);
//! let query = HailQuery::parse("@1 between(10, 20)", "{@2}", &schema).unwrap();
//!
//! // Cold cache: every block is freshly priced from the static prior.
//! let cold = planner.plan_dataset(&dataset, &query).unwrap();
//! assert!(cold.explain().contains("[priced]"));
//! assert!(cold.explain().contains("sel @1=0.050(prior)"));
//!
//! // Same filter shape again: served from the cache, nothing priced.
//! let warm = planner.plan_dataset(&dataset, &query).unwrap();
//! assert!(warm.explain().contains("[cached]"));
//! let stats = planner.config().plan_cache.as_ref().unwrap().stats();
//! assert_eq!(stats.hits, warm.blocks.len() as u64);
//! ```

#![forbid(unsafe_code)]

pub mod adapt;
pub mod cache;
pub mod executor;
pub mod formats;
pub mod path;
pub mod planner;
pub mod readers;
pub mod sharing;
pub mod splitting;
pub mod synopsis;

pub use adapt::{
    apply_reindex, env_reindex_enabled, plan_rewrites, ReindexAction, ReindexAdvisor, ReindexKind,
    ReindexOutcome, ReindexPolicy, ReplicaRewrite, DISABLE_REINDEX_ENV,
};
pub use cache::{
    BlockFingerprint, CacheStats, FilterShape, PlanCache, SelectivityChoice, SelectivityFeedback,
    SelectivitySource, ValidatedLookup,
};
pub use executor::{
    env_job_parallelism, env_parallelism, ExecutorConfig, ExecutorContext, IntraClaim, JobPool,
    JobPoolConfig, NodeGate, NodePermit, ParallelismBudget, SplitLease, JOB_PARALLELISM_ENV,
    PARALLELISM_ENV,
};
pub use formats::{shared_job_pool, HadoopInputFormat, HadoopPlusPlusInputFormat, HailInputFormat};
pub use path::{
    AccessPath, BitmapScan, BlockAccess, ClusteredIndexScan, FullScan, InvertedListScan,
    ScanLayout, TrojanIndexScan,
};
pub use planner::{
    BlockPlan, Candidate, CostModel, PlannerConfig, QueryPlan, QueryPlanner, SelectivityEstimate,
};
pub use readers::{read_hadoop_text_block, read_hail_block, read_hpp_block};
pub use sharing::{
    env_scan_sharing_enabled, Acquired, DecodedBlock, ScanShareRegistry, ShareKey, ShareShape,
    ShareStats, DISABLE_SCAN_SHARING_ENV,
};
pub use splitting::{default_splits, hail_splits, plan_default_splits, plan_hail_splits};
pub use synopsis::{env_synopsis_pruning, PruneInfo, PruneReason, DISABLE_SYNOPSES_ENV};
