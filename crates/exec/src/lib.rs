//! # hail-exec
//!
//! The unified query-execution layer: **one seam** where every replica
//! and access-path decision is made.
//!
//! HAIL's core claim (Dittrich et al., VLDB 2012) is that a different
//! clustered index per block replica lets the system pick, per block,
//! the cheapest way to read data. Earlier revisions scattered that
//! decision across the record readers, the splitting policies, and the
//! baselines' hard-wired read paths; this crate consolidates all of it:
//!
//! - [`path`] — the [`AccessPath`] trait and its implementations:
//!   [`FullScan`], [`ClusteredIndexScan`], [`TrojanIndexScan`],
//!   [`BitmapScan`], [`InvertedListScan`]
//! - [`planner`] — the cost-based [`QueryPlanner`]: per block, consult
//!   the namenode's per-replica index metadata (`Dir_rep`), price each
//!   `(replica, access path)` candidate with the `hail-sim` cost model,
//!   and emit an explainable [`QueryPlan`]
//! - [`splitting`] — default Hadoop splitting and `HailSplitting`
//!   (§4.3), consuming plans instead of re-deriving replica choices
//! - [`formats`] — the three `InputFormat`s (Hadoop, Hadoop++, HAIL),
//!   all routed through `QueryPlanner::plan` → `AccessPath::execute`
//! - [`readers`] — single-block reader entry points (planner-backed)
//!
//! Future work (caching, async execution, new index types) plugs into
//! the planner's candidate enumeration — nothing else needs to change.

#![forbid(unsafe_code)]

pub mod formats;
pub mod path;
pub mod planner;
pub mod readers;
pub mod splitting;

pub use formats::{HadoopInputFormat, HadoopPlusPlusInputFormat, HailInputFormat};
pub use path::{
    AccessPath, BitmapScan, BlockAccess, ClusteredIndexScan, FullScan, InvertedListScan,
    ScanLayout, TrojanIndexScan,
};
pub use planner::{
    BlockPlan, Candidate, CostModel, PlannerConfig, QueryPlan, QueryPlanner, SelectivityEstimate,
};
pub use readers::{read_hadoop_text_block, read_hail_block, read_hpp_block};
pub use splitting::{default_splits, hail_splits, plan_default_splits, plan_hail_splits};
