//! Adaptive incremental re-indexing: the aggressive-elephant loop,
//! closed.
//!
//! The paper's upload-time design is static — Bob picks the per-replica
//! sort orders once, and a workload that later concentrates on an
//! unindexed column pays full scans forever. This module reacts: when
//! the [`SelectivityFeedback`] store shows *sustained* evidence of a
//! selective predicate on a column no replica can serve, a
//! [`ReindexAdvisor`] recommends building the missing clustered index
//! (range predicates) or bitmap sidecar (equality predicates) on one
//! replica per block, and [`apply_reindex`] performs the in-place
//! rewrite through `hail_dfs::rewrite_replica` — the same step-7
//! sort/index/register machinery the upload pipeline runs, minus the
//! network hop.
//!
//! # The correctness contract
//!
//! Concurrent queries must see either the old design or the new one,
//! never a half-registered hybrid. The enforcement is structural:
//! [`apply_reindex`] takes `&mut DfsCluster` while every planning and
//! read path takes `&DfsCluster`, so the borrow checker itself
//! guarantees no query is in flight while `Dir_rep` mutates. Under a
//! `JobManager` workload this means re-indexing runs at batch
//! boundaries — admitted jobs are never paused mid-split, and because
//! rebuild decisions depend only on evidence absorbed in job-submission
//! order, the FullScan→index flip lands at the same job boundary at
//! every concurrency.
//!
//! Each rewritten replica re-registers through
//! `Namenode::register_replica`, which bumps the design epoch; the
//! epoch-validated [`PlanCache`](crate::PlanCache) then re-checks
//! fingerprints, misses exactly on the blocks whose metadata changed,
//! and re-plans them onto the candidates the planner now enumerates
//! from the updated `Dir_rep` — untouched blocks keep their cached
//! plans.
//!
//! # Hysteresis
//!
//! One skewed job must not trigger a rebuild. The advisor requires
//! `min_observations` absorbed block observations, an observed mean
//! selectivity at or below `max_selectivity`, *and* the evidence to
//! persist across `hysteresis_rounds` consecutive advisory rounds
//! before it recommends anything; a round without evidence resets the
//! streak. Each `(column, class)` is rebuilt at most once.

use crate::cache::SelectivityFeedback;
use hail_dfs::{rewrite_replica, DfsCluster, Namenode};
use hail_index::{IndexKind, IndexMetadata, SidecarSpec, SortOrder};
use hail_sync::{LockRank, OrderedMutex};
use hail_types::{BlockId, DatanodeId, Result};
use std::collections::BTreeMap;
use std::fmt;

/// Environment knob: set to `1` to force adaptive re-indexing off (the
/// conservative static-design fallback). Registered in
/// [`hail_core::knobs`].
pub const DISABLE_REINDEX_ENV: &str = hail_core::knobs::DISABLE_REINDEX.name;

/// Whether adaptive re-indexing is enabled; on by default,
/// [`DISABLE_REINDEX_ENV`] turns it off. Delegates to the central knob
/// registry.
pub fn env_reindex_enabled() -> bool {
    hail_core::knobs::reindex_enabled()
}

/// What kind of index a recommendation builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReindexKind {
    /// A clustered index: re-sort one unsorted replica per block on the
    /// target column (serves range and point predicates).
    Clustered,
    /// A bitmap sidecar over the target column on one replica per block
    /// (serves equality predicates; sort-order independent).
    BitmapSidecar,
}

impl fmt::Display for ReindexKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReindexKind::Clustered => f.write_str("clustered"),
            ReindexKind::BitmapSidecar => f.write_str("bitmap-sidecar"),
        }
    }
}

/// One advisory recommendation: build `kind` over `column`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReindexAction {
    /// 0-based target column.
    pub column: usize,
    /// Predicate class the evidence came from (`true` = equality).
    pub eq: bool,
    /// What to build.
    pub kind: ReindexKind,
}

/// Evidence thresholds and hysteresis for the advisor.
#[derive(Debug, Clone)]
pub struct ReindexPolicy {
    /// Master switch; defaults to [`env_reindex_enabled`]. Disabled
    /// advisors never recommend anything (the conservative fallback the
    /// `HAIL_DISABLE_REINDEX=1` CI leg pins).
    pub enabled: bool,
    /// Minimum absorbed block observations for a `(column, class)`
    /// before its evidence counts at all.
    pub min_observations: u64,
    /// Observed mean selectivity must be at or below this for the
    /// predicate to be worth an index (a scan-friendly predicate never
    /// triggers a rebuild).
    pub max_selectivity: f64,
    /// Consecutive advisory rounds the evidence must persist before a
    /// rebuild fires. A round without evidence resets the streak — one
    /// skewed job cannot trigger a rewrite on its own.
    pub hysteresis_rounds: u32,
    /// At most this many rebuild actions per round, so background
    /// maintenance stays bounded between job batches.
    pub max_builds_per_round: usize,
}

impl Default for ReindexPolicy {
    fn default() -> Self {
        ReindexPolicy {
            enabled: env_reindex_enabled(),
            min_observations: 6,
            max_selectivity: 0.15,
            hysteresis_rounds: 2,
            max_builds_per_round: 1,
        }
    }
}

/// Per-(column, class) trigger state.
#[derive(Debug, Default, Clone)]
struct TriggerState {
    /// Consecutive rounds with qualifying evidence.
    streak: u32,
    /// Set once an action fired; the advisor never re-recommends.
    fired: bool,
}

/// The advisory side of the loop: watches a [`SelectivityFeedback`]
/// store between job batches and recommends missing indexes once the
/// evidence is sustained. Interior-mutable behind a mutex
/// ([`LockRank::AdvisorState`] — held across `SelectivityFeedback`
/// reads, hence ranked above [`LockRank::Feedback`]) so it can sit in
/// shared infrastructure next to the plan cache.
#[derive(Debug)]
pub struct ReindexAdvisor {
    policy: ReindexPolicy,
    state: OrderedMutex<BTreeMap<(usize, bool), TriggerState>>,
}

impl Default for ReindexAdvisor {
    fn default() -> Self {
        ReindexAdvisor::new(ReindexPolicy::default())
    }
}

impl ReindexAdvisor {
    pub fn new(policy: ReindexPolicy) -> Self {
        ReindexAdvisor {
            policy,
            state: OrderedMutex::new(
                LockRank::AdvisorState,
                "reindex-advisor-state",
                BTreeMap::new(),
            ),
        }
    }

    /// The advisor's policy.
    pub fn policy(&self) -> &ReindexPolicy {
        &self.policy
    }

    /// True when a `(column, class)` already fired (diagnostics).
    pub fn has_fired(&self, column: usize, eq: bool) -> bool {
        self.state
            .acquire()
            .get(&(column, eq))
            .is_some_and(|s| s.fired)
    }

    /// One advisory round, run between job batches: walks the feedback
    /// store's evidence in deterministic (column, class) order, updates
    /// hysteresis streaks, and returns the rebuild actions whose
    /// evidence has persisted long enough. `blocks` scopes the design
    /// gap check to one dataset's blocks.
    ///
    /// Evidence for a `(column, class)` qualifies when:
    /// - at least `min_observations` block observations were absorbed,
    /// - the observed mean selectivity is ≤ `max_selectivity`, and
    /// - some live block lacks any replica able to serve the predicate
    ///   (no clustered index on the column; for equality, no bitmap
    ///   sidecar either).
    pub fn note_round(
        &self,
        feedback: &SelectivityFeedback,
        namenode: &Namenode,
        blocks: &[BlockId],
    ) -> Vec<ReindexAction> {
        if !self.policy.enabled {
            return Vec::new();
        }
        let mut state = self.state.acquire();
        let mut actions = Vec::new();
        for (column, eq) in feedback.observed_classes() {
            let entry = state.entry((column, eq)).or_default();
            let qualified = feedback.observation_count(column, eq) >= self.policy.min_observations
                && feedback
                    .observed(column, eq)
                    .is_some_and(|(mean, _)| mean <= self.policy.max_selectivity)
                && design_gap(namenode, blocks, column, eq);
            if !qualified {
                entry.streak = 0;
                continue;
            }
            entry.streak += 1;
            if entry.streak >= self.policy.hysteresis_rounds
                && !entry.fired
                && actions.len() < self.policy.max_builds_per_round
            {
                entry.fired = true;
                actions.push(ReindexAction {
                    column,
                    eq,
                    kind: if eq {
                        ReindexKind::BitmapSidecar
                    } else {
                        ReindexKind::Clustered
                    },
                });
            }
        }
        actions
    }
}

/// True when some live block has no replica able to serve the predicate
/// class on `column` — the "full scans keep paying" condition.
fn design_gap(namenode: &Namenode, blocks: &[BlockId], column: usize, eq: bool) -> bool {
    blocks.iter().any(|&b| {
        let replicas = namenode.live_replicas(b);
        if replicas.is_empty() {
            return false; // unreadable block: nothing to fix here
        }
        !replicas
            .iter()
            .any(|r| r.index.serves_column(column) || (eq && r.index.bitmap_on(column).is_some()))
    })
}

/// Reconstructs the [`SidecarSpec`] a replica's stored sidecars imply,
/// so a rewrite preserves every existing extension index.
fn spec_of(meta: &IndexMetadata) -> SidecarSpec {
    let mut spec = SidecarSpec::default();
    for s in &meta.sidecars {
        match s.kind {
            IndexKind::Bitmap { column } => spec.bitmap_columns.push(column),
            IndexKind::InvertedList => spec.inverted_list = true,
            IndexKind::ZoneMap { column } => spec.zone_map_columns.push(column),
            IndexKind::Bloom { column } => spec.bloom_columns.push(column),
            _ => {}
        }
    }
    spec
}

/// One planned per-block rewrite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaRewrite {
    pub block: BlockId,
    pub datanode: DatanodeId,
    pub order: SortOrder,
    pub spec: SidecarSpec,
}

/// Plans the per-block rewrites an action needs, deterministically:
/// blocks in the given order, replicas in datanode order.
///
/// Conservative target choice — a rewrite must never destroy design
/// diversity the upload paid for:
/// - `Clustered` targets the first live *unsorted* replica of each
///   block still lacking the index; blocks whose replicas are all
///   sorted (on other columns) are skipped rather than re-sorted.
/// - `BitmapSidecar` targets the first live replica without the bitmap,
///   preferring unsorted replicas, and keeps its sort order.
///
/// Blocks already able to serve the predicate plan no rewrite.
pub fn plan_rewrites(
    namenode: &Namenode,
    blocks: &[BlockId],
    action: &ReindexAction,
) -> Vec<ReplicaRewrite> {
    let column = action.column;
    let mut out = Vec::new();
    for &block in blocks {
        let replicas = namenode.live_replicas(block);
        let served = replicas.iter().any(|r| {
            r.index.serves_column(column)
                || (action.eq
                    && action.kind == ReindexKind::BitmapSidecar
                    && r.index.bitmap_on(column).is_some())
        });
        if served {
            continue;
        }
        match action.kind {
            ReindexKind::Clustered => {
                let Some(target) = replicas
                    .iter()
                    .find(|r| r.index.sort_order() == SortOrder::Unsorted)
                else {
                    continue; // never overwrite an existing clustered index
                };
                out.push(ReplicaRewrite {
                    block,
                    datanode: target.datanode,
                    order: SortOrder::Clustered { column },
                    spec: spec_of(&target.index),
                });
            }
            ReindexKind::BitmapSidecar => {
                let Some(target) = replicas
                    .iter()
                    .find(|r| r.index.sort_order() == SortOrder::Unsorted)
                    .or_else(|| replicas.first())
                else {
                    continue;
                };
                let mut spec = spec_of(&target.index);
                if !spec.bitmap_columns.contains(&column) {
                    spec.bitmap_columns.push(column);
                }
                out.push(ReplicaRewrite {
                    block,
                    datanode: target.datanode,
                    order: target.index.sort_order(),
                    spec,
                });
            }
        }
    }
    out
}

/// The outcome of applying one [`ReindexAction`] across a dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReindexOutcome {
    pub action: ReindexAction,
    /// Replicas rewritten and re-registered.
    pub replicas_rewritten: usize,
    /// Blocks left untouched (already served, or no safe target).
    pub blocks_skipped: usize,
}

/// Applies one action: plans the per-block rewrites and performs each
/// through [`hail_dfs::rewrite_replica`]. Requires `&mut DfsCluster` —
/// the structural guarantee that no query observes a half-registered
/// design (see the module docs). Every rewrite bumps the design epoch,
/// so warm `PlanCache` entries revalidate on the next lookup.
pub fn apply_reindex(
    cluster: &mut DfsCluster,
    blocks: &[BlockId],
    action: &ReindexAction,
) -> Result<ReindexOutcome> {
    let rewrites = plan_rewrites(cluster.namenode(), blocks, action);
    let blocks_skipped = blocks.len() - rewrites.len();
    let mut replicas_rewritten = 0;
    for rw in &rewrites {
        rewrite_replica(cluster, rw.block, rw.datanode, rw.order, &rw.spec)?;
        replicas_rewritten += 1;
    }
    Ok(ReindexOutcome {
        action: *action,
        replicas_rewritten,
        blocks_skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hail_dfs::{hail_upload_block, verify_replica_equivalence, FaultPlan};
    use hail_index::ReplicaIndexConfig;
    use hail_pax::blocks_from_text;
    use hail_types::{DataType, Field, Schema, StorageConfig};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::VarChar),
        ])
        .unwrap()
    }

    /// 4-node cluster, replicas clustered on column 0 / unsorted /
    /// unsorted — column 1 is served by nothing.
    fn uploaded() -> (DfsCluster, Vec<BlockId>) {
        let mut cluster = DfsCluster::new(4, StorageConfig::test_scale(512));
        let text: String = (0..60)
            .map(|i| format!("{}|w{}\n", (i * 7) % 60, i))
            .collect();
        let blocks = blocks_from_text(&text, &schema(), &StorageConfig::test_scale(512)).unwrap();
        let config = ReplicaIndexConfig::first_indexed(3, &[0]);
        let ids: Vec<BlockId> = blocks
            .iter()
            .enumerate()
            .map(|(i, b)| {
                hail_upload_block(&mut cluster, i % 4, b, &config, &FaultPlan::none()).unwrap()
            })
            .collect();
        (cluster, ids)
    }

    fn feed(feedback: &SelectivityFeedback, column: usize, eq: bool, n: usize) {
        for _ in 0..n {
            feedback.observe(column, eq, 5, 100);
        }
    }

    #[test]
    fn advisor_requires_sustained_evidence() {
        let (cluster, blocks) = uploaded();
        let advisor = ReindexAdvisor::new(ReindexPolicy {
            enabled: true,
            ..ReindexPolicy::default()
        });
        let feedback = SelectivityFeedback::default();
        feed(&feedback, 1, false, 8);

        // Round 1: evidence qualifies but hysteresis holds it back.
        assert!(advisor
            .note_round(&feedback, cluster.namenode(), &blocks)
            .is_empty());
        // Round 2: streak reaches the threshold — the action fires.
        let actions = advisor.note_round(&feedback, cluster.namenode(), &blocks);
        assert_eq!(
            actions,
            vec![ReindexAction {
                column: 1,
                eq: false,
                kind: ReindexKind::Clustered
            }]
        );
        // Never twice.
        assert!(advisor
            .note_round(&feedback, cluster.namenode(), &blocks)
            .is_empty());
        assert!(advisor.has_fired(1, false));
    }

    #[test]
    fn one_skewed_round_cannot_trigger() {
        let (cluster, blocks) = uploaded();
        let advisor = ReindexAdvisor::new(ReindexPolicy {
            enabled: true,
            ..ReindexPolicy::default()
        });
        let feedback = SelectivityFeedback::default();
        feed(&feedback, 1, false, 8);
        assert!(advisor
            .note_round(&feedback, cluster.namenode(), &blocks)
            .is_empty());
        // The workload shifts: broad matches drive the mean above the
        // threshold — the streak resets instead of firing.
        for _ in 0..40 {
            feedback.observe(1, false, 95, 100);
        }
        assert!(advisor
            .note_round(&feedback, cluster.namenode(), &blocks)
            .is_empty());
    }

    #[test]
    fn unselective_or_served_columns_never_trigger() {
        let (cluster, blocks) = uploaded();
        let advisor = ReindexAdvisor::new(ReindexPolicy {
            enabled: true,
            ..ReindexPolicy::default()
        });
        let feedback = SelectivityFeedback::default();
        // Column 0 is already served by the clustered replica; column 1
        // is observed but unselective.
        feed(&feedback, 0, false, 10);
        for _ in 0..10 {
            feedback.observe(1, false, 80, 100);
        }
        for _ in 0..4 {
            assert!(advisor
                .note_round(&feedback, cluster.namenode(), &blocks)
                .is_empty());
        }
    }

    #[test]
    fn disabled_policy_recommends_nothing() {
        let (cluster, blocks) = uploaded();
        let advisor = ReindexAdvisor::new(ReindexPolicy {
            enabled: false,
            ..ReindexPolicy::default()
        });
        let feedback = SelectivityFeedback::default();
        feed(&feedback, 1, false, 20);
        for _ in 0..4 {
            assert!(advisor
                .note_round(&feedback, cluster.namenode(), &blocks)
                .is_empty());
        }
    }

    #[test]
    fn apply_builds_the_missing_clustered_index() {
        let (mut cluster, blocks) = uploaded();
        let action = ReindexAction {
            column: 1,
            eq: false,
            kind: ReindexKind::Clustered,
        };
        let epoch = cluster.namenode().design_epoch();
        let outcome = apply_reindex(&mut cluster, &blocks, &action).unwrap();
        assert_eq!(outcome.replicas_rewritten, blocks.len());
        assert_eq!(outcome.blocks_skipped, 0);
        assert!(cluster.namenode().design_epoch() > epoch);
        for &b in &blocks {
            assert_eq!(
                cluster.namenode().get_hosts_with_index(b, 1).unwrap().len(),
                1,
                "block {b} gained exactly one clustered index on column 1"
            );
            // The original design survives untouched.
            assert_eq!(
                cluster.namenode().get_hosts_with_index(b, 0).unwrap().len(),
                1
            );
        }
        // Logical content is preserved on every replica.
        verify_replica_equivalence(&cluster).unwrap();

        // Idempotent: the gap is closed, so a second apply plans nothing.
        let again = apply_reindex(&mut cluster, &blocks, &action).unwrap();
        assert_eq!(again.replicas_rewritten, 0);
        assert_eq!(again.blocks_skipped, blocks.len());
    }

    #[test]
    fn apply_builds_a_bitmap_sidecar_for_equality_evidence() {
        let (mut cluster, blocks) = uploaded();
        let action = ReindexAction {
            column: 0,
            eq: true,
            kind: ReindexKind::BitmapSidecar,
        };
        // Column 0 is clustered on replica 0, so the design gap for a
        // *bitmap* doesn't exist — plan_rewrites treats served blocks
        // as done (a clustered index already serves equality).
        assert!(plan_rewrites(cluster.namenode(), &blocks, &action).is_empty());

        // Column 1 has no serving structure: a bitmap lands.
        let action = ReindexAction {
            column: 1,
            eq: true,
            kind: ReindexKind::BitmapSidecar,
        };
        let outcome = apply_reindex(&mut cluster, &blocks, &action).unwrap();
        assert_eq!(outcome.replicas_rewritten, blocks.len());
        for &b in &blocks {
            assert_eq!(
                cluster
                    .namenode()
                    .get_hosts_with_bitmap(b, 1)
                    .unwrap()
                    .len(),
                1
            );
        }
        verify_replica_equivalence(&cluster).unwrap();
    }

    #[test]
    fn rewrites_skip_blocks_with_no_safe_target() {
        // All three replicas sorted: nothing unsorted to claim for a
        // new clustered index.
        let mut cluster = DfsCluster::new(4, StorageConfig::test_scale(512));
        let text: String = (0..40).map(|i| format!("{}|w{}\n", i, i)).collect();
        let blocks = blocks_from_text(&text, &schema(), &StorageConfig::test_scale(512)).unwrap();
        let config = ReplicaIndexConfig::uniform(3, 0);
        let ids: Vec<BlockId> = blocks
            .iter()
            .map(|b| hail_upload_block(&mut cluster, 0, b, &config, &FaultPlan::none()).unwrap())
            .collect();
        let action = ReindexAction {
            column: 1,
            eq: false,
            kind: ReindexKind::Clustered,
        };
        let outcome = apply_reindex(&mut cluster, &ids, &action).unwrap();
        assert_eq!(outcome.replicas_rewritten, 0);
        assert_eq!(outcome.blocks_skipped, ids.len());
    }

    #[test]
    fn env_knob_parses() {
        // Whatever the ambient environment, the function answers.
        let _ = env_reindex_enabled();
        assert_eq!(DISABLE_REINDEX_ENV, "HAIL_DISABLE_REINDEX");
    }
}
