//! Adaptive planning state: the fingerprinted [`PlanCache`] and the
//! [`SelectivityFeedback`] store.
//!
//! HAIL's planning win only holds if planning stays near-zero-overhead
//! (§4.3: split computation from main-memory `Dir_rep` state, no block
//! reads). The base [`crate::planner::QueryPlanner`] is stateless and
//! re-prices every `(replica, access path)` candidate on every
//! `read_split`; this module adds the two pieces of cross-query state
//! that turn it into an adaptive subsystem:
//!
//! - [`PlanCache`] memoizes per-block [`BlockPlan`] fragments keyed on
//!   (canonical [`FilterShape`], block, replica-index **fingerprint**).
//!   The fingerprint covers everything `Dir_rep` knows about each live
//!   replica — primary index kind and key column, index size/offset,
//!   replica size, and the full [`hail_index::SidecarMetadata`]
//!   directory — so any re-registration, sidecar change, or replica
//!   death changes the fingerprint and forces a fresh pricing pass.
//! - [`SelectivityFeedback`] aggregates the observed per-block
//!   selectivities that `AccessPath::execute` records into
//!   `TaskStats::selectivity`, and blends them (decayed, bounded by a
//!   prior weight) into the static [`crate::planner::SelectivityEstimate`]
//!   for subsequent plans.
//!
//! # Invalidation rules
//!
//! 1. **Replica death.** `DfsCluster::kill_node` appends to the
//!    namenode's death log; the planner calls [`PlanCache::sync_deaths`]
//!    before every lookup, evicting exactly the entries whose fingerprint
//!    involved a dead datanode. Failover therefore re-plans instead of
//!    executing a plan pinned to a dead replica.
//! 2. **Fingerprint mismatch.** A hit requires the stored fingerprint to
//!    equal the one recomputed from the current `Dir_rep` state; a
//!    changed `ReplicaIndexConfig` (different primary index or sidecar
//!    directory) misses and replaces the stale entry.
//! 3. **Estimate drift.** The [`FilterShape`] embeds the (quantized)
//!    effective selectivity of every filter column, so selectivity
//!    feedback that moves an estimate also moves the key: adapted plans
//!    are re-priced, and once the feedback converges the quantized value
//!    stabilizes and caching resumes.
//!
//! Bad-record token searches bypass the cache entirely: they are rare
//! diagnostics whose candidate enumeration is a single directory probe,
//! not worth cache slots.
//!
//! # Concurrency and lock hierarchy
//!
//! Both structures are **thread-safe** behind `Arc`: one instance is
//! shared by every `QueryPlanner` a job constructs — including the
//! worker threads of [`crate::executor::ExecutorContext`] fanning one
//! split's block reads out in parallel. Internally each store is a
//! single rank-checked [`OrderedRwLock`]: concurrent `plan_block`
//! calls take the read lock for warm hits, and only structural changes
//! (inserts, evictions, death-log processing, fingerprint
//! revalidation) take the write lock. Effectiveness counters are
//! separate atomics so read-path hits never contend on a write lock.
//!
//! Both locks sit in the global hierarchy enforced by `hail-sync`
//! (see ARCHITECTURE.md, "Concurrency invariants & enforcement"):
//! [`LockRank::PlanCache`] ranks above [`LockRank::Feedback`], and
//! neither lock is ever held across an `AccessPath::execute` call.
//! Acquisitions recover from poisoning, so a worker panicking mid-read
//! cannot wedge every other job's planner. Death-log eviction
//! ([`PlanCache::sync_deaths`]) and feedback absorption
//! ([`SelectivityFeedback::absorb`]) each run under one continuous
//! write-lock section, so an in-flight `plan_block` observes either
//! none or all of a batch — never a torn prefix.

use crate::planner::BlockPlan;
use hail_core::{CmpOp, DatasetFormat, HailQuery, Predicate};
use hail_dfs::Namenode;
use hail_mr::TaskStats;
use hail_sync::{LockRank, OrderedRwLock};
use hail_types::{BlockId, DatanodeId};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

/// Quantization granularity for selectivities embedded in a
/// [`FilterShape`]: 1/1000ths. Coarse enough that a converged feedback
/// estimate maps to a stable key, fine enough that any plan-relevant
/// drift re-prices.
const SEL_QUANTUM: f64 = 1000.0;

/// The canonical shape of a query's filter — everything about a query
/// that influences plan *choice*, with literal values abstracted away.
///
/// Two queries with the same shape get the same plan for a block in the
/// same `Dir_rep` state: the planner prices candidates from predicate
/// *classes* (range-bounded vs equality, per column) and per-column
/// selectivity estimates, never from literals. Literals only matter at
/// execution time, and `AccessPath::execute` reads them from the query
/// it is handed, not from the plan.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FilterShape {
    /// Physical format tag (text / PAX / row layout).
    format: u8,
    /// Per column: bit 0 = index-friendly bounds present, bit 1 =
    /// equality predicate present. Sorted, deduplicated.
    predicates: Vec<(usize, u8)>,
    /// Text delimiter override, part of the full-scan path identity.
    delimiter: Option<char>,
    /// Quantized effective selectivity per filter column (estimate
    /// drift must move the key — invalidation rule 3).
    selectivities: Vec<(usize, u32)>,
    /// Digest of the cost model the plan was priced under, so planners
    /// with different hardware profiles or scale rules sharing one
    /// cache never cross-serve each other's choices.
    cost_digest: u64,
}

impl FilterShape {
    /// Canonicalizes a query's filter against the effective per-column
    /// selectivities — and the cost-model digest — the planner will
    /// price with.
    pub fn of(
        format: DatasetFormat,
        query: &HailQuery,
        delimiter: Option<char>,
        selectivities: &[(usize, f64)],
        cost_digest: u64,
    ) -> FilterShape {
        let mut classes: BTreeMap<usize, u8> = BTreeMap::new();
        for p in &query.predicates {
            let c = classes.entry(p.column()).or_insert(0);
            if p.index_friendly() {
                *c |= 1;
            }
            if matches!(p, Predicate::Cmp { op: CmpOp::Eq, .. }) {
                *c |= 2;
            }
        }
        let format = match format {
            DatasetFormat::HadoopText => 0,
            DatasetFormat::HailPax => 1,
            DatasetFormat::HadoopPlusPlus => 2,
        };
        let mut sels: Vec<(usize, u32)> = selectivities
            .iter()
            .map(|&(col, s)| (col, (s.clamp(0.0, 1.0) * SEL_QUANTUM).round() as u32))
            .collect();
        sels.sort_unstable();
        sels.dedup();
        FilterShape {
            format,
            predicates: classes.into_iter().collect(),
            delimiter,
            selectivities: sels,
            cost_digest,
        }
    }
}

/// True if the query has an equality predicate on `column` — the
/// predicate *class* under which selectivity feedback is keyed, and the
/// same bit that drives bitmap-path candidacy in the planner.
pub fn has_eq_on(query: &HailQuery, column: usize) -> bool {
    query
        .predicates
        .iter()
        .any(|p| matches!(p, Predicate::Cmp { column: c, op: CmpOp::Eq, .. } if *c == column))
}

/// The per-block replica-index fingerprint a cached plan is valid for:
/// a digest of the `Dir_rep` state planning depended on, plus the set of
/// datanodes that state came from (for death-driven eviction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockFingerprint {
    /// FNV-1a digest over every live replica's `Dir_rep` entry.
    pub digest: u64,
    /// Datanodes whose replicas fed the digest, ascending.
    pub datanodes: Vec<DatanodeId>,
}

impl BlockFingerprint {
    /// Fingerprints a block's current `Dir_rep` state: for each live
    /// replica, the datanode id, the physical replica size, and the full
    /// serialized [`hail_index::IndexMetadata`] — primary index kind,
    /// key column, size, offset, and the complete sidecar directory.
    pub fn of(namenode: &Namenode, block: BlockId) -> BlockFingerprint {
        let mut digest: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        let mut fold = |bytes: &[u8]| {
            for &b in bytes {
                digest ^= b as u64;
                digest = digest.wrapping_mul(0x100_0000_01b3);
            }
        };
        let mut datanodes = Vec::new();
        for info in namenode.live_replicas(block) {
            fold(&(info.datanode as u64).to_le_bytes());
            fold(&(info.replica_bytes as u64).to_le_bytes());
            fold(&info.index.to_bytes());
            datanodes.push(info.datanode);
        }
        datanodes.sort_unstable();
        BlockFingerprint { digest, datanodes }
    }
}

/// Outcome of an epoch-validated cache lookup
/// ([`PlanCache::lookup_validated_full`]): a hit carries the memoized
/// plan; a miss carries the [`BlockFingerprint`] the revalidation pass
/// computed, if any, so the caller's insert need not recompute it.
#[derive(Debug)]
pub enum ValidatedLookup {
    Hit(BlockPlan),
    Miss(Option<BlockFingerprint>),
}

/// Cache effectiveness counters, exposed for job reports and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache (zero cost-model evaluations).
    pub hits: u64,
    /// Lookups that had to price candidates (absent or stale entry).
    pub misses: u64,
    /// Entries evicted by replica death or capacity pressure.
    pub evictions: u64,
    /// Entries dropped because their fingerprint no longer matched the
    /// current `Dir_rep` state (invalidation rule 2).
    pub fingerprint_invalidations: u64,
    /// Individual `(replica, access path)` candidates priced through the
    /// cost model on behalf of cache misses. A repeat plan with an
    /// identical shape must not move this counter.
    pub cost_evaluations: u64,
}

/// Sentinel for entries inserted without epoch validation (the plain
/// [`PlanCache::insert`] API): such entries always revalidate by
/// fingerprint on their next lookup. Namenode instance ids start at 1,
/// so instance 0 never matches a real namenode.
const EPOCH_UNVALIDATED: (u64, u64) = (0, 0);

#[derive(Debug)]
struct CacheEntry {
    fingerprint: BlockFingerprint,
    plan: BlockPlan,
    /// The `(namenode instance id, design epoch)` at which this entry's
    /// fingerprint was last known to match `Dir_rep`. A lookup against
    /// the same namenode at the same epoch is a hit with **zero**
    /// fingerprint work (the O(1) warm path); any other watermark
    /// recomputes the fingerprint once and, on a match, refreshes this
    /// watermark. Qualifying by instance id keeps a cache shared
    /// between clusters honest: equal epochs from different namenodes
    /// prove nothing and fall back to fingerprint revalidation.
    validated_at: (u64, u64),
}

#[derive(Debug, Default)]
struct CacheInner {
    entries: BTreeMap<(FilterShape, BlockId), CacheEntry>,
    /// Insertion order, for capacity eviction.
    order: VecDeque<(FilterShape, BlockId)>,
    /// Prefix of the namenode death log already processed.
    deaths_seen: usize,
}

/// Effectiveness counters as shared atomics, so warm read-path hits
/// never take a write lock just to count themselves.
#[derive(Debug, Default)]
struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    fingerprint_invalidations: AtomicU64,
    cost_evaluations: AtomicU64,
}

/// A bounded, fingerprinted memo of per-block plans.
///
/// See the [module docs](self) for the key structure, the invalidation
/// rules, and the locking discipline. Shared via `Arc` through
/// [`crate::planner::PlannerConfig::plan_cache`]; all methods take
/// `&self` and are safe to call from concurrent executor workers.
#[derive(Debug)]
pub struct PlanCache {
    inner: OrderedRwLock<CacheInner>,
    counters: CacheCounters,
    capacity: usize,
}

impl Default for PlanCache {
    /// A cache bounded at 1024 block-plan entries.
    fn default() -> Self {
        PlanCache::with_capacity(1024)
    }
}

impl PlanCache {
    /// A cache holding at most `capacity` block-plan entries; the oldest
    /// entry is evicted when a new insert would exceed it.
    pub fn with_capacity(capacity: usize) -> Self {
        PlanCache {
            inner: OrderedRwLock::new(LockRank::PlanCache, "plan-cache", CacheInner::default()),
            counters: CacheCounters::default(),
            capacity: capacity.max(1),
        }
    }

    /// Processes the namenode's death log (invalidation rule 1): every
    /// death not yet seen evicts exactly the entries whose fingerprint
    /// involved that datanode. Idempotent; the planner calls this before
    /// every lookup.
    ///
    /// One cache tracks **one** namenode's log: the seen-prefix cursor
    /// is meaningless across different logs, so a cache shared between
    /// clusters loses rule-1 eviction granularity (a shorter log resets
    /// the cursor; an unrelated equal-length log is indistinguishable).
    /// Correctness is still guarded either way — dead replicas drop out
    /// of `live_replicas`, so rule 2's fingerprint mismatch catches any
    /// plan a missed death would have invalidated.
    pub fn sync_deaths(&self, death_log: &[DatanodeId]) {
        // Fast path: nothing new — a read lock suffices, so concurrent
        // planners only serialize when a death actually needs work.
        {
            let inner = self.inner.read();
            if death_log.len() == inner.deaths_seen {
                return;
            }
        }
        let mut inner = self.inner.write();
        let seen = inner.deaths_seen;
        if death_log.len() < seen {
            // A shorter log than the one we tracked: this is a
            // different namenode. Restart the cursor so its future
            // deaths are processed rather than skipped forever.
            inner.deaths_seen = death_log.len();
            return;
        }
        // One continuous write section covers every unseen death plus
        // the cursor bump, so a concurrent `plan_block` sees either the
        // pre-sync or the fully synced cache — never a torn prefix, and
        // two racing sync calls cannot double-process a death.
        for &dn in death_log.iter().skip(seen) {
            self.evict_datanode_locked(&mut inner, dn);
        }
        inner.deaths_seen = death_log.len();
    }

    /// Evicts every entry whose fingerprint involved `datanode`. The
    /// death-log path calls this automatically; it is public for callers
    /// that learn about a failure out of band.
    pub fn invalidate_datanode(&self, datanode: DatanodeId) {
        let mut inner = self.inner.write();
        self.evict_datanode_locked(&mut inner, datanode);
    }

    fn evict_datanode_locked(&self, inner: &mut CacheInner, datanode: DatanodeId) {
        let before = inner.entries.len();
        inner
            .entries
            .retain(|_, e| !e.fingerprint.datanodes.contains(&datanode));
        let evicted = before - inner.entries.len();
        if evicted > 0 {
            let entries = &inner.entries;
            inner.order.retain(|k| entries.contains_key(k));
            self.counters
                .evictions
                .fetch_add(evicted as u64, Ordering::Relaxed);
        }
    }

    /// Entries whose fingerprint involves `datanode` — diagnostics for
    /// eviction tests; a fully synced cache reports zero for every dead
    /// datanode.
    pub fn entries_involving(&self, datanode: DatanodeId) -> usize {
        let inner = self.inner.read();
        inner
            .entries
            .values()
            .filter(|e| e.fingerprint.datanodes.contains(&datanode))
            .count()
    }

    /// Looks up the memoized plan for `(shape, block)`. A hit requires
    /// the stored fingerprint to match `fingerprint` exactly; a stale
    /// entry is dropped (invalidation rule 2) and the lookup misses.
    /// Returned plans are marked [`BlockPlan::cached`].
    pub fn lookup(
        &self,
        shape: &FilterShape,
        block: BlockId,
        fingerprint: &BlockFingerprint,
    ) -> Option<BlockPlan> {
        let key = (shape.clone(), block);
        // Hits resolve under the read lock; only dropping a stale entry
        // needs the write lock.
        {
            let inner = self.inner.read();
            match inner.entries.get(&key) {
                Some(e) if e.fingerprint == *fingerprint => {
                    return Some(self.count_hit(&e.plan));
                }
                Some(_) => {}
                None => {
                    self.counters.misses.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            }
        }
        self.drop_stale(&key, |e| e.fingerprint == *fingerprint)
            .map(|p| self.count_hit(&p))
    }

    /// The O(1) warm path: looks up `(shape, block)` validated against
    /// the namenode's [design epoch](Namenode::design_epoch) instead of
    /// a freshly computed fingerprint. An entry last validated against
    /// this namenode at the current epoch hits with **zero**
    /// fingerprint work — no per-replica metadata serialization at all.
    /// If the epoch has moved (any upload, death, or abandonment
    /// anywhere on the cluster) — or the entry was last validated
    /// against a *different* namenode — the fingerprint is recomputed
    /// once: a match refreshes the entry's watermark (hit), a mismatch
    /// drops the stale entry (invalidation rule 2, miss).
    pub fn lookup_validated(
        &self,
        shape: &FilterShape,
        block: BlockId,
        namenode: &Namenode,
    ) -> Option<BlockPlan> {
        match self.lookup_validated_full(shape, block, namenode) {
            ValidatedLookup::Hit(plan) => Some(plan),
            ValidatedLookup::Miss(_) => None,
        }
    }

    /// [`PlanCache::lookup_validated`], additionally handing a miss any
    /// fingerprint the revalidation pass already computed — so the
    /// caller's subsequent [`PlanCache::insert_validated`] reuses it
    /// instead of serializing every replica's metadata a second time.
    pub fn lookup_validated_full(
        &self,
        shape: &FilterShape,
        block: BlockId,
        namenode: &Namenode,
    ) -> ValidatedLookup {
        let key = (shape.clone(), block);
        let watermark = (namenode.instance_id(), namenode.design_epoch());
        {
            let inner = self.inner.read();
            match inner.entries.get(&key) {
                Some(e) if e.validated_at == watermark => {
                    return ValidatedLookup::Hit(self.count_hit(&e.plan));
                }
                Some(_) => {}
                None => {
                    self.counters.misses.fetch_add(1, Ordering::Relaxed);
                    return ValidatedLookup::Miss(None);
                }
            }
        }
        // Epoch moved (or different namenode) since this entry was
        // validated: pay the fingerprint once, then either refresh the
        // watermark or evict.
        let fingerprint = BlockFingerprint::of(namenode, block);
        let mut inner = self.inner.write();
        match inner.entries.get_mut(&key) {
            Some(e) if e.fingerprint == fingerprint => {
                e.validated_at = watermark;
                ValidatedLookup::Hit(self.count_hit(&e.plan))
            }
            Some(_) => {
                inner.entries.remove(&key);
                inner.order.retain(|k| *k != key);
                self.counters
                    .fingerprint_invalidations
                    .fetch_add(1, Ordering::Relaxed);
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                ValidatedLookup::Miss(Some(fingerprint))
            }
            // Evicted between the read and write sections (death sync or
            // capacity pressure racing this lookup): a plain miss, and
            // the fingerprint — just computed against current state —
            // is still good for the caller's insert.
            None => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                ValidatedLookup::Miss(Some(fingerprint))
            }
        }
    }

    /// Clones a hit's plan, marking it cached and counting it.
    fn count_hit(&self, plan: &BlockPlan) -> BlockPlan {
        self.counters.hits.fetch_add(1, Ordering::Relaxed);
        let mut plan = plan.clone();
        plan.cached = true;
        plan
    }

    /// Removes `key` unless `keep` approves the entry present at write
    /// time; returns the kept entry's plan (a concurrent writer may
    /// have replaced the stale entry we saw under the read lock).
    fn drop_stale(
        &self,
        key: &(FilterShape, BlockId),
        keep: impl Fn(&CacheEntry) -> bool,
    ) -> Option<BlockPlan> {
        let mut inner = self.inner.write();
        match inner.entries.get(key) {
            Some(e) if keep(e) => Some(e.plan.clone()),
            Some(_) => {
                inner.entries.remove(key);
                inner.order.retain(|k| k != key);
                self.counters
                    .fingerprint_invalidations
                    .fetch_add(1, Ordering::Relaxed);
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Memoizes a freshly priced plan, evicting the oldest entry if the
    /// cache is full. Entries inserted this way carry no epoch
    /// watermark and revalidate by fingerprint on their next
    /// epoch-based lookup; [`PlanCache::insert_validated`] stamps one.
    pub fn insert(
        &self,
        shape: &FilterShape,
        block: BlockId,
        fingerprint: BlockFingerprint,
        plan: BlockPlan,
    ) {
        self.insert_at(shape, block, fingerprint, EPOCH_UNVALIDATED, plan);
    }

    /// Memoizes a freshly priced plan whose fingerprint was computed at
    /// the namenode's current design epoch, enabling the O(1)
    /// epoch-validated warm path of [`PlanCache::lookup_validated`].
    pub fn insert_validated(
        &self,
        shape: &FilterShape,
        block: BlockId,
        fingerprint: BlockFingerprint,
        namenode: &Namenode,
        plan: BlockPlan,
    ) {
        self.insert_at(
            shape,
            block,
            fingerprint,
            (namenode.instance_id(), namenode.design_epoch()),
            plan,
        );
    }

    fn insert_at(
        &self,
        shape: &FilterShape,
        block: BlockId,
        fingerprint: BlockFingerprint,
        validated_at: (u64, u64),
        plan: BlockPlan,
    ) {
        let mut inner = self.inner.write();
        let key = (shape.clone(), block);
        if inner
            .entries
            .insert(
                key.clone(),
                CacheEntry {
                    fingerprint,
                    plan,
                    validated_at,
                },
            )
            .is_none()
        {
            inner.order.push_back(key);
        }
        while inner.entries.len() > self.capacity {
            let Some(oldest) = inner.order.pop_front() else {
                break;
            };
            inner.entries.remove(&oldest);
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counter-free, validation-free peek at a memoized plan's
    /// estimated cost — the assignment phase's pricing source
    /// (`QueryPlanner::estimate_split`). Deliberately bypasses hit/miss
    /// accounting and fingerprint revalidation: a scheduling estimate
    /// must not perturb cache effectiveness counters, and a mildly
    /// stale estimate is still a fine slot-occupancy price (the read
    /// itself revalidates before executing anything).
    pub fn peek_est_seconds(&self, shape: &FilterShape, block: BlockId) -> Option<f64> {
        self.peek_est_seconds_many(shape, std::slice::from_ref(&block))[0]
    }

    /// Batch form of [`PlanCache::peek_est_seconds`]: one read-lock
    /// acquisition and one shape clone for the whole block list, so
    /// the assignment phase's per-split probe is O(blocks) map lookups
    /// rather than O(blocks) lock round-trips and key allocations.
    pub fn peek_est_seconds_many(
        &self,
        shape: &FilterShape,
        blocks: &[BlockId],
    ) -> Vec<Option<f64>> {
        let inner = self.inner.read();
        let mut key = (shape.clone(), 0);
        blocks
            .iter()
            .map(|&b| {
                key.1 = b;
                inner.entries.get(&key).map(|e| e.plan.est_seconds)
            })
            .collect()
    }

    /// Charges `n` cost-model candidate evaluations to this cache's
    /// accounting (the planner reports every pricing pass it runs on a
    /// miss, so tests can assert a warm cache prices nothing).
    pub fn record_cost_evaluations(&self, n: u64) {
        self.counters
            .cost_evaluations
            .fetch_add(n, Ordering::Relaxed);
    }

    /// A snapshot of the effectiveness counters. Each lookup counts as
    /// exactly one hit or one miss, so under any interleaving of
    /// concurrent planners `hits + misses` equals the number of lookups
    /// issued.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            fingerprint_invalidations: self
                .counters
                .fingerprint_invalidations
                .load(Ordering::Relaxed),
            cost_evaluations: self.counters.cost_evaluations.load(Ordering::Relaxed),
        }
    }

    /// Number of memoized block plans.
    pub fn len(&self) -> usize {
        self.inner.read().entries.len()
    }

    /// True if nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        let mut inner = self.inner.write();
        let n = inner.entries.len() as u64;
        inner.entries.clear();
        inner.order.clear();
        self.counters.evictions.fetch_add(n, Ordering::Relaxed);
    }
}

/// Where a plan's per-column selectivity estimate came from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectivitySource {
    /// The static [`crate::planner::SelectivityEstimate`] prior.
    Prior,
    /// Observed execution feedback blended into the prior; `weight` is
    /// the decayed number of block observations behind it.
    Observed { weight: f64 },
}

/// One per-column selectivity the planner priced a plan with, kept on
/// the [`BlockPlan`] so `explain()` can say where each number came from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectivityChoice {
    pub column: usize,
    pub value: f64,
    pub source: SelectivitySource,
}

#[derive(Debug, Clone, Copy, Default)]
struct ColumnFeedback {
    /// Decayed observation weight, bounded by `1 / (1 - decay)`.
    weight: f64,
    /// Decayed sum of observed selectivities.
    weighted_sum: f64,
    /// Raw observation count (diagnostics).
    observations: u64,
}

/// Aggregated per-column selectivity observations, fed back into
/// planning.
///
/// Every `AccessPath::execute` that can attribute its row counts to a
/// single filter column records a `TaskStats::selectivity` observation
/// (`matched / total` rows of one block). [`SelectivityFeedback::absorb`]
/// folds those in with exponential decay, and
/// [`SelectivityFeedback::adjusted`] blends the decayed mean with the
/// static prior under a fixed prior weight. The bounds matter: the decay
/// caps the total observation weight (old blocks fade), and the prior
/// weight keeps any single skewed block from swinging an estimate to its
/// own selectivity — sustained evidence moves plans, outliers do not.
///
/// Observations are keyed by `(column, predicate class)` — equality vs
/// range — so a broad range query (`@1 between(0, 1000)` matching most
/// rows) cannot poison the estimate a needle lookup (`@1 = 42`) is
/// priced with. Within one class the store is literal-blind, like any
/// column-granularity statistic: different ranges over the same column
/// share an estimate, and the decay is what lets it track a workload
/// shift.
#[derive(Debug)]
pub struct SelectivityFeedback {
    inner: OrderedRwLock<BTreeMap<(usize, bool), ColumnFeedback>>,
    decay: f64,
    prior_weight: f64,
}

impl Default for SelectivityFeedback {
    /// Decay 0.95 (observation weight bounded at 20 blocks) and prior
    /// weight 2 — roughly: the static prior counts as two observed
    /// blocks.
    fn default() -> Self {
        SelectivityFeedback::new(0.95, 2.0)
    }
}

impl SelectivityFeedback {
    /// A store with an explicit decay factor (`0 ≤ decay < 1`; the
    /// effective observation window is `1 / (1 - decay)` blocks) and
    /// prior weight (in units of observed blocks).
    pub fn new(decay: f64, prior_weight: f64) -> Self {
        SelectivityFeedback {
            inner: OrderedRwLock::new(LockRank::Feedback, "selectivity-feedback", BTreeMap::new()),
            decay: decay.clamp(0.0, 0.999),
            prior_weight: prior_weight.max(0.0),
        }
    }

    /// Folds one observation into a (column, class) cell. Callers hold
    /// the write lock — `absorb` folds a whole task's batch under one
    /// lock section.
    fn fold(
        &self,
        inner: &mut BTreeMap<(usize, bool), ColumnFeedback>,
        column: usize,
        eq: bool,
        matched: u64,
        total: u64,
    ) {
        if total == 0 {
            return;
        }
        let obs = (matched as f64 / total as f64).clamp(0.0, 1.0);
        let f = inner.entry((column, eq)).or_default();
        f.weight = f.weight * self.decay + 1.0;
        f.weighted_sum = f.weighted_sum * self.decay + obs;
        f.observations += 1;
    }

    /// Records one block's observed selectivity for a column under a
    /// predicate class (`eq` = equality, else range).
    pub fn observe(&self, column: usize, eq: bool, matched: u64, total: u64) {
        let mut inner = self.inner.write();
        self.fold(&mut inner, column, eq, matched, total);
    }

    /// Folds every observation a finished task recorded — the
    /// `TaskStats` → feedback plumbing the input formats run after each
    /// split. The whole batch is absorbed under one write-lock section,
    /// so a concurrent `plan_block` prices against either none or all
    /// of a task's evidence — never a torn prefix.
    pub fn absorb(&self, stats: &TaskStats) {
        if stats.selectivity.is_empty() {
            return;
        }
        let mut inner = self.inner.write();
        for obs in &stats.selectivity {
            self.fold(&mut inner, obs.column, obs.eq, obs.matched, obs.total);
        }
    }

    /// The decayed observed mean for a (column, class), with its
    /// weight, if any observation has been recorded.
    pub fn observed(&self, column: usize, eq: bool) -> Option<(f64, f64)> {
        let inner = self.inner.read();
        inner
            .get(&(column, eq))
            .filter(|f| f.weight > 0.0)
            .map(|f| (f.weighted_sum / f.weight, f.weight))
    }

    /// Raw observation count for a (column, class) (diagnostics).
    pub fn observation_count(&self, column: usize, eq: bool) -> u64 {
        let inner = self.inner.read();
        inner
            .get(&(column, eq))
            .map(|f| f.observations)
            .unwrap_or(0)
    }

    /// Every `(column, predicate class)` with recorded evidence, in
    /// deterministic (column, class) order — the enumeration the
    /// re-indexing advisor walks when it looks for sustained evidence
    /// of a selective predicate on an unindexed column.
    pub fn observed_classes(&self) -> Vec<(usize, bool)> {
        let inner = self.inner.read();
        inner
            .iter()
            .filter(|(_, f)| f.weight > 0.0)
            .map(|(&k, _)| k)
            .collect()
    }

    /// The effective selectivity for a (column, class): the static
    /// `prior` when nothing was observed, otherwise the prior-weighted
    /// blend `(prior·Wp + Σ decayed obs) / (Wp + W)`.
    pub fn adjusted(&self, column: usize, eq: bool, prior: f64) -> (f64, SelectivitySource) {
        let inner = self.inner.read();
        match inner.get(&(column, eq)).filter(|f| f.weight > 0.0) {
            None => (prior, SelectivitySource::Prior),
            Some(f) => {
                let blended =
                    (prior * self.prior_weight + f.weighted_sum) / (self.prior_weight + f.weight);
                (
                    blended.clamp(0.0, 1.0),
                    SelectivitySource::Observed { weight: f.weight },
                )
            }
        }
    }

    /// Drops all accumulated feedback.
    pub fn clear(&self) {
        self.inner.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hail_index::{HailBlockReplicaInfo, IndexKind, IndexMetadata, SidecarMetadata};
    use hail_types::{DataType, Field, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::VarChar),
        ])
        .unwrap()
    }

    fn meta(kind: IndexKind, col: Option<usize>) -> IndexMetadata {
        IndexMetadata {
            kind,
            key_column: col,
            index_bytes: 64,
            index_offset: 1024,
            sidecars: Vec::new(),
        }
    }

    fn namenode_with(configs: &[IndexMetadata]) -> (Namenode, BlockId) {
        let mut nn = Namenode::new();
        let b = nn.allocate_block((0..configs.len()).collect()).unwrap();
        for (dn, m) in configs.iter().enumerate() {
            nn.register_replica(HailBlockReplicaInfo::new(b, dn, m.clone(), 4000 + dn))
                .unwrap();
        }
        (nn, b)
    }

    #[test]
    fn filter_shape_abstracts_literals_not_structure() {
        let s = schema();
        let q1 = HailQuery::parse("@1 between(10, 20)", "{@2}", &s).unwrap();
        let q2 = HailQuery::parse("@1 between(500, 900)", "", &s).unwrap();
        let q3 = HailQuery::parse("@1 = 7", "", &s).unwrap();
        let sels = [(0usize, 0.05)];
        let f = DatasetFormat::HailPax;
        assert_eq!(
            FilterShape::of(f, &q1, None, &sels, 7),
            FilterShape::of(f, &q2, None, &sels, 7),
            "literals (and projection) are not part of the shape"
        );
        assert_ne!(
            FilterShape::of(f, &q1, None, &sels, 7),
            FilterShape::of(f, &q3, None, &sels, 7),
            "equality vs range is a different shape"
        );
        assert_ne!(
            FilterShape::of(f, &q1, None, &sels, 7),
            FilterShape::of(DatasetFormat::HadoopText, &q1, None, &sels, 7),
            "format is part of the shape"
        );
        assert_ne!(
            FilterShape::of(f, &q1, None, &[(0, 0.05)], 7),
            FilterShape::of(f, &q1, None, &[(0, 0.9)], 7),
            "estimate drift moves the key"
        );
        assert_ne!(
            FilterShape::of(f, &q1, None, &sels, 7),
            FilterShape::of(f, &q1, None, &sels, 8),
            "a different cost model is a different key"
        );
        // Quantization: drift below 1/1000 does not move the key.
        assert_eq!(
            FilterShape::of(f, &q1, None, &[(0, 0.0501)], 7),
            FilterShape::of(f, &q1, None, &[(0, 0.0503)], 7),
        );
    }

    #[test]
    fn fingerprint_covers_primary_index_and_sidecars() {
        let clustered = meta(IndexKind::Clustered, Some(0));
        let (nn1, b1) = namenode_with(&[clustered.clone(), meta(IndexKind::None, None)]);
        let (nn2, b2) = namenode_with(&[clustered.clone(), meta(IndexKind::None, None)]);
        assert_eq!(b1, b2);
        assert_eq!(
            BlockFingerprint::of(&nn1, b1),
            BlockFingerprint::of(&nn2, b2),
            "same Dir_rep state, same fingerprint"
        );

        // A different primary index on one replica changes it…
        let (nn3, b3) = namenode_with(&[
            meta(IndexKind::Clustered, Some(1)),
            meta(IndexKind::None, None),
        ]);
        assert_ne!(
            BlockFingerprint::of(&nn1, b1).digest,
            BlockFingerprint::of(&nn3, b3).digest
        );

        // …and so does a sidecar directory difference alone.
        let mut with_sidecar = clustered;
        with_sidecar.sidecars.push(SidecarMetadata {
            kind: IndexKind::Bitmap { column: 1 },
            sidecar_bytes: 99,
            sidecar_offset: 2000,
        });
        let (nn4, b4) = namenode_with(&[with_sidecar, meta(IndexKind::None, None)]);
        assert_ne!(
            BlockFingerprint::of(&nn1, b1).digest,
            BlockFingerprint::of(&nn4, b4).digest
        );

        // Replica death changes both the digest and the datanode set.
        let (mut nn5, b5) = namenode_with(&[
            meta(IndexKind::Clustered, Some(0)),
            meta(IndexKind::None, None),
        ]);
        let before = BlockFingerprint::of(&nn5, b5);
        nn5.mark_dead(1);
        let after = BlockFingerprint::of(&nn5, b5);
        assert_ne!(before, after);
        assert_eq!(after.datanodes, vec![0]);
    }

    #[test]
    fn capacity_bound_evicts_oldest() {
        let cache = PlanCache::with_capacity(2);
        let (nn, b) = namenode_with(&[meta(IndexKind::Clustered, Some(0))]);
        let fp = BlockFingerprint::of(&nn, b);
        let q = HailQuery::parse("@1 = 1", "", &schema()).unwrap();
        let plan = crate::planner::QueryPlanner::test_block_plan(b);
        for i in 0..3u32 {
            let shape = FilterShape::of(
                DatasetFormat::HailPax,
                &q,
                None,
                &[(0, f64::from(i) / 10.0)],
                0,
            );
            cache.insert(&shape, b, fp.clone(), plan.clone());
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // The oldest shape (sel bucket 0.0) is gone.
        let oldest = FilterShape::of(DatasetFormat::HailPax, &q, None, &[(0, 0.0)], 0);
        assert!(cache.lookup(&oldest, b, &fp).is_none());
    }

    /// The O(1) warm path: a lookup at an unchanged design epoch never
    /// recomputes a fingerprint, a bumped epoch revalidates once and
    /// re-arms the fast path, and a genuine `Dir_rep` change still
    /// invalidates (rule 2).
    #[test]
    fn epoch_validated_lookup_skips_fingerprints_until_design_changes() {
        let cache = PlanCache::default();
        let (mut nn, b) = namenode_with(&[meta(IndexKind::Clustered, Some(0))]);
        let q = HailQuery::parse("@1 = 1", "", &schema()).unwrap();
        let shape = FilterShape::of(DatasetFormat::HailPax, &q, None, &[(0, 0.05)], 0);
        let plan = crate::planner::QueryPlanner::test_block_plan(b);

        assert!(cache.lookup_validated(&shape, b, &nn).is_none());
        cache.insert_validated(&shape, b, BlockFingerprint::of(&nn, b), &nn, plan.clone());
        // Unchanged epoch: hit (the fast path — nothing to observe here
        // beyond correctness; the planning_overhead bench measures it).
        let hit = cache.lookup_validated(&shape, b, &nn).unwrap();
        assert!(hit.cached);

        // An unrelated upload bumps the epoch; the entry revalidates by
        // fingerprint (same Dir_rep for this block → still a hit) and
        // re-arms the fast path at the new epoch.
        let other = nn.allocate_block(vec![0]).unwrap();
        nn.register_replica(HailBlockReplicaInfo::new(
            other,
            0,
            meta(IndexKind::None, None),
            100,
        ))
        .unwrap();
        assert!(cache.lookup_validated(&shape, b, &nn).is_some());
        assert!(cache.lookup_validated(&shape, b, &nn).is_some());
        assert_eq!(cache.stats().fingerprint_invalidations, 0);

        // A real change to this block's Dir_rep (its replica holder
        // dies) must miss and drop the entry.
        nn.mark_dead(0);
        assert!(cache.lookup_validated(&shape, b, &nn).is_none());
        assert_eq!(cache.stats().fingerprint_invalidations, 1);
        assert!(cache.is_empty());
    }

    /// Epoch watermarks are namenode-qualified: a second cluster with a
    /// coincidentally equal epoch cannot fast-path-validate entries
    /// inserted from the first — it falls back to fingerprints.
    #[test]
    fn epoch_watermarks_do_not_cross_namenodes() {
        let cache = PlanCache::default();
        let (nn1, b1) = namenode_with(&[meta(IndexKind::Clustered, Some(0))]);
        // Same registration count → same design epoch, different state.
        let (nn2, b2) = namenode_with(&[meta(IndexKind::Clustered, Some(1))]);
        assert_eq!(b1, b2);
        assert_eq!(nn1.design_epoch(), nn2.design_epoch());
        assert_ne!(nn1.instance_id(), nn2.instance_id());

        let q = HailQuery::parse("@1 = 1", "", &schema()).unwrap();
        let shape = FilterShape::of(DatasetFormat::HailPax, &q, None, &[(0, 0.05)], 0);
        let plan = crate::planner::QueryPlanner::test_block_plan(b1);
        cache.insert_validated(&shape, b1, BlockFingerprint::of(&nn1, b1), &nn1, plan);

        // nn2's lookup must not be fooled by the equal epoch: the
        // fingerprint differs, so the stale entry is dropped.
        assert!(cache.lookup_validated(&shape, b2, &nn2).is_none());
        assert_eq!(cache.stats().fingerprint_invalidations, 1);
    }

    /// Lookup counters are exact: every lookup is one hit or one miss,
    /// under both the fingerprint and the epoch-validated APIs.
    #[test]
    fn every_lookup_counts_once() {
        let cache = PlanCache::default();
        let (nn, b) = namenode_with(&[meta(IndexKind::Clustered, Some(0))]);
        let q = HailQuery::parse("@1 = 1", "", &schema()).unwrap();
        let shape = FilterShape::of(DatasetFormat::HailPax, &q, None, &[(0, 0.05)], 0);
        let fp = BlockFingerprint::of(&nn, b);
        let plan = crate::planner::QueryPlanner::test_block_plan(b);

        cache.lookup(&shape, b, &fp); // miss (absent)
        cache.lookup_validated(&shape, b, &nn); // miss (absent)
        cache.insert_validated(&shape, b, fp.clone(), &nn, plan);
        cache.lookup(&shape, b, &fp); // hit
        cache.lookup_validated(&shape, b, &nn); // hit
        let stale = BlockFingerprint {
            digest: fp.digest ^ 1,
            datanodes: fp.datanodes.clone(),
        };
        cache.lookup(&shape, b, &stale); // miss (invalidates)
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (2, 3));
        assert_eq!(s.hits + s.misses, 5, "each lookup counted exactly once");
        assert_eq!(s.fingerprint_invalidations, 1);
    }

    #[test]
    fn feedback_decays_and_is_bounded_by_prior() {
        let fb = SelectivityFeedback::default();
        assert_eq!(
            fb.adjusted(0, false, 0.05),
            (0.05, SelectivitySource::Prior)
        );

        // One wildly skewed block cannot drag the estimate to itself.
        fb.observe(0, false, 100, 100);
        let (one_obs, src) = fb.adjusted(0, false, 0.05);
        assert!(matches!(src, SelectivitySource::Observed { .. }));
        assert!(
            one_obs < 0.5,
            "one block observation stays bounded: {one_obs}"
        );

        // Sustained evidence converges toward the observed value…
        for _ in 0..60 {
            fb.observe(0, false, 100, 100);
        }
        let (many, _) = fb.adjusted(0, false, 0.05);
        assert!(many > 0.85, "sustained evidence dominates: {many}");
        // …but the decay bounds the weight, so the prior never fully
        // disappears and fresh contrary evidence can still move it back.
        let (_, weight) = fb.observed(0, false).unwrap();
        assert!(
            weight <= 1.0 / (1.0 - 0.95) + 1e-9,
            "weight bounded: {weight}"
        );
        for _ in 0..60 {
            fb.observe(0, false, 0, 100);
        }
        let (back, _) = fb.adjusted(0, false, 0.05);
        assert!(back < 0.1, "decay lets estimates recover: {back}");
        assert_eq!(fb.observation_count(0, false), 121);

        // Empty blocks are ignored rather than recorded as 0/0.
        fb.observe(1, false, 0, 0);
        assert!(fb.observed(1, false).is_none());
        fb.clear();
        assert!(fb.observed(0, false).is_none());
    }

    /// Observations are class-keyed: a broad range scan on a column
    /// leaves that column's *equality* estimate untouched, so needle
    /// lookups are still priced from their own evidence.
    #[test]
    fn feedback_classes_do_not_cross_poison() {
        let fb = SelectivityFeedback::default();
        // A broad range query observes ~everything matching.
        for _ in 0..30 {
            fb.observe(0, false, 99, 100);
        }
        let (range_est, _) = fb.adjusted(0, false, 0.05);
        assert!(range_est > 0.8, "range class learned: {range_est}");
        // The eq class still answers from the prior…
        assert_eq!(
            fb.adjusted(0, true, 0.001),
            (0.001, SelectivitySource::Prior)
        );
        // …and learns independently.
        for _ in 0..5 {
            fb.observe(0, true, 1, 1000);
        }
        let (eq_est, _) = fb.adjusted(0, true, 0.001);
        assert!(eq_est < 0.01, "eq class unpoisoned: {eq_est}");
    }
}
