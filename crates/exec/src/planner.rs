//! The cost-based [`QueryPlanner`]: one seam where every replica and
//! access-path decision is made.
//!
//! For each block of a dataset the planner consults the namenode's
//! per-replica directory (`Dir_rep`, §3.3) for what each replica
//! physically offers — clustered index and key column, trojan header,
//! replica size, and the §3.5 sidecar extension indexes (bitmaps over
//! low-cardinality columns, the inverted list over bad records) with
//! their stored sizes — enumerates the candidate `(replica, access
//! path)` pairs, prices each with the `hail-sim` cost model, and picks
//! the cheapest. Sidecar paths are offered *only* for replicas whose
//! `Dir_rep` entry records the sidecar, priced from its stored byte
//! size, and annotated in `explain()` output as `[sidecar N B]`. The
//! result is an explainable [`QueryPlan`] that the input formats turn
//! into input splits (scheduling) and per-block reads (execution), so
//! neither the scheduler nor the record readers re-derive replica or
//! index choices anywhere else.
//!
//! Planning is adaptive when the two [`crate::cache`] stores are plugged
//! into the [`PlannerConfig`]: a [`crate::cache::PlanCache`] memoizes
//! per-block plans keyed on (canonical filter shape, replica-index
//! fingerprint) so a repeated `read_split` with an identical filter
//! shape prices nothing, and a [`crate::cache::SelectivityFeedback`]
//! store blends observed per-block selectivities into the static
//! [`SelectivityEstimate`] prior. `explain()` annotates both: every
//! block line says whether its plan was `[cached]` or `[priced]`, and
//! each filter column's selectivity is tagged `(prior)` or `(observed)`.
//!
//! # Worked example
//!
//! ```
//! use hail_core::{upload_hail, HailQuery};
//! use hail_dfs::DfsCluster;
//! use hail_exec::QueryPlanner;
//! use hail_index::ReplicaIndexConfig;
//! use hail_types::{DataType, Field, Schema, StorageConfig};
//!
//! let schema = Schema::new(vec![
//!     Field::new("k", DataType::Int),
//!     Field::new("v", DataType::VarChar),
//! ]).unwrap();
//! let mut config = StorageConfig::test_scale(4096);
//! config.index_partition_size = 16;
//! let mut cluster = DfsCluster::new(4, config);
//! let text: String = (0..500).map(|i| format!("{}|w{}\n", i * 3 % 97, i)).collect();
//! let dataset = upload_hail(&mut cluster, &schema, "t", &[(0, text)],
//!     &ReplicaIndexConfig::first_indexed(3, &[0])).unwrap();
//!
//! // A selective range query on the indexed column @1.
//! let query = HailQuery::parse("@1 between(10, 20)", "{@2}", &schema).unwrap();
//! let plan = QueryPlanner::new(&cluster).plan_dataset(&dataset, &query).unwrap();
//!
//! // Every block is served by the clustered index, and the plan says so:
//! //
//! //   QueryPlan for 2 blocks (format HailPax)
//! //     filter: @1 between(10, 20)   projection: {@2}
//! //     block 0: DN1 clustered-index-scan(@1)  est 0.011s  (5 candidates)  sel @1=0.050(prior)  [priced]
//! //     block 1: DN1 clustered-index-scan(@1)  est 0.011s  (5 candidates)  sel @1=0.050(prior)  [priced]
//! //   paths: clustered-index-scan×2
//! let explain = plan.explain();
//! assert!(explain.contains("clustered-index-scan(@1)"));
//! for bp in &plan.blocks {
//!     assert_eq!(bp.kind, hail_types::AccessPathKind::ClusteredIndexScan);
//! }
//! ```

use crate::cache::{
    BlockFingerprint, FilterShape, PlanCache, SelectivityChoice, SelectivityFeedback,
    SelectivitySource,
};
use crate::path::{
    AccessPath, BitmapScan, BlockAccess, ClusteredIndexScan, FullScan, InvertedListScan,
    ScanLayout, TrojanIndexScan,
};
use crate::sharing::{Acquired, ScanShareRegistry, ShareKey};
use hail_core::{Dataset, DatasetFormat, HailQuery, Predicate};
use hail_dfs::DfsCluster;
use hail_index::IndexKind;
use hail_mr::{MapRecord, TaskStats};
use hail_sim::{CostLedger, HardwareProfile, ScaleFactor};
use hail_types::{AccessPathKind, BlockId, DatanodeId, HailError, Result, Schema};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// How candidate byte counts map onto paper-scale data.
#[derive(Debug, Clone, Copy)]
pub enum CostScale {
    /// A fixed scale factor (e.g. the experiment testbed's).
    Fixed(ScaleFactor),
    /// Per-block automatic scaling: each materialized replica stands in
    /// for one logical block of this many bytes, exactly as the
    /// experiment harness scales its testbeds. This keeps planning
    /// decisions faithful to paper-scale physics even when tests
    /// materialize kilobyte-sized blocks (where seek time would
    /// otherwise dominate everything).
    PerBlock { logical_block: usize },
}

/// The hardware and scale the planner prices candidates against.
#[derive(Debug, Clone)]
pub struct CostModel {
    pub profile: HardwareProfile,
    pub scale: CostScale,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            profile: HardwareProfile::physical(),
            // The paper's 64 MB block.
            scale: CostScale::PerBlock {
                logical_block: 64 * 1024 * 1024,
            },
        }
    }
}

impl CostModel {
    /// The scale factor pricing one replica's candidates.
    fn scale_for(&self, replica_bytes: usize) -> ScaleFactor {
        match self.scale {
            CostScale::Fixed(s) => s,
            CostScale::PerBlock { logical_block } => {
                ScaleFactor::from_block_sizes(replica_bytes.max(1), logical_block)
            }
        }
    }

    /// FNV-1a digest of every input the pricing functions read, so
    /// plans priced under different hardware profiles or scale rules
    /// never share a cache key (planners with different cost models may
    /// share one [`PlanCache`]).
    fn digest(&self) -> u64 {
        let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |bytes: &[u8]| {
            for &b in bytes {
                digest ^= b as u64;
                digest = digest.wrapping_mul(0x100_0000_01b3);
            }
        };
        let p = &self.profile;
        for rate in [
            p.disk_read_mb_s,
            p.disk_write_mb_s,
            p.seek_s,
            p.net_mb_s,
            p.parse_mb_s,
            p.sort_mb_s,
            p.scan_cpu_mb_s,
        ] {
            fold(&rate.to_bits().to_le_bytes());
        }
        fold(&(p.cores as u64).to_le_bytes());
        match self.scale {
            CostScale::Fixed(s) => {
                fold(&[0]);
                fold(&s.0.to_bits().to_le_bytes());
            }
            CostScale::PerBlock { logical_block } => {
                fold(&[1]);
                fold(&(logical_block as u64).to_le_bytes());
            }
        }
        digest
    }
}

/// Per-column selectivity estimates feeding the cost model — the
/// *static prior*.
///
/// The planner has no histograms; callers that know their workload (the
/// benchmark harness knows each query's paper selectivity) can override
/// the default, and tests use the override to walk a query across the
/// index-vs-scan break-even point. When a
/// [`crate::cache::SelectivityFeedback`] store is configured, observed
/// per-block selectivities are blended into this prior for subsequent
/// plans; `explain()` reports which source each number came from.
#[derive(Debug, Clone)]
pub struct SelectivityEstimate {
    default: f64,
    per_column: BTreeMap<usize, f64>,
}

impl Default for SelectivityEstimate {
    /// The default assumes selective filters (5 %), matching the
    /// paper's workloads where indexed queries select 10⁻⁸…0.2 of rows.
    fn default() -> Self {
        SelectivityEstimate::uniform(0.05)
    }
}

impl SelectivityEstimate {
    /// The same estimate for every column.
    pub fn uniform(selectivity: f64) -> Self {
        SelectivityEstimate {
            default: selectivity.clamp(0.0, 1.0),
            per_column: BTreeMap::new(),
        }
    }

    /// Overrides the estimate for one column.
    pub fn with_column(mut self, column: usize, selectivity: f64) -> Self {
        self.per_column.insert(column, selectivity.clamp(0.0, 1.0));
        self
    }

    /// The estimated fraction of rows a filter on `column` selects.
    pub fn for_column(&self, column: usize) -> f64 {
        self.per_column
            .get(&column)
            .copied()
            .unwrap_or(self.default)
    }
}

/// Planner configuration: cost model, selectivity estimates, and the
/// query-shape knobs. Which sidecar extension indexes exist is *not*
/// configured here: the planner discovers them per replica from the
/// namenode's `Dir_rep` directory, where the upload pipeline registered
/// them.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    pub cost: CostModel,
    pub estimate: SelectivityEstimate,
    /// When non-empty, the query is a bad-record token search: every
    /// block is served by [`InvertedListScan`] over these tokens, on a
    /// replica whose `Dir_rep` entry records an inverted-list sidecar.
    pub bad_record_tokens: Vec<String>,
    /// Field delimiter for text (Hadoop) blocks; `None` uses the
    /// cluster's [`hail_types::StorageConfig::delimiter`].
    pub text_delimiter: Option<char>,
    /// Memoized per-block plans keyed on (filter shape, replica-index
    /// fingerprint); `None` (the default) prices every plan freshly.
    /// Share one instance across planners via `Arc`.
    pub plan_cache: Option<Arc<PlanCache>>,
    /// Observed-selectivity feedback blended into
    /// [`PlannerConfig::estimate`]; `None` (the default) plans from the
    /// static prior alone.
    pub feedback: Option<Arc<SelectivityFeedback>>,
    /// Consult persisted zone-map/Bloom synopses before candidate
    /// enumeration, skipping blocks they prove empty
    /// ([`crate::synopsis`]). Defaults on; the
    /// [`crate::synopsis::DISABLE_SYNOPSES_ENV`] environment variable
    /// flips the default off for a whole process (CI's unpruned leg).
    pub synopsis_pruning: bool,
    /// Freeze [`PlannerConfig::feedback`] for the duration of a job:
    /// observations are still *collected* into each task's
    /// `TaskStats::selectivity`, but the execution layer does not
    /// absorb them into the shared store mid-job. The batch runner
    /// absorbs every job's observations afterwards in submission
    /// order, which is what makes a shared feedback store
    /// deterministic under concurrency: during the batch the store is
    /// read-only, and the write order is fixed by submission, not by
    /// completion races.
    pub defer_feedback: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            cost: CostModel::default(),
            estimate: SelectivityEstimate::default(),
            bad_record_tokens: Vec::new(),
            text_delimiter: None,
            plan_cache: None,
            feedback: None,
            synopsis_pruning: crate::synopsis::env_synopsis_pruning(),
            defer_feedback: false,
        }
    }
}

/// One priced `(replica, access path)` alternative.
#[derive(Debug, Clone)]
pub struct Candidate {
    pub replica: DatanodeId,
    pub kind: AccessPathKind,
    pub detail: String,
    pub est_seconds: f64,
    /// Stored size of the sidecar this candidate reads, for the sidecar
    /// paths (from `Dir_rep`, not a guess).
    pub sidecar_bytes: Option<usize>,
}

/// The planner's decision for one block.
#[derive(Debug, Clone)]
pub struct BlockPlan {
    pub block: BlockId,
    /// The replica chosen to serve the read.
    pub replica: DatanodeId,
    /// The access path to execute.
    pub path: Arc<dyn AccessPath + Send + Sync>,
    pub kind: AccessPathKind,
    pub est_seconds: f64,
    /// Scheduling locations: the chosen replica first, then the other
    /// live replica holders as fallbacks.
    pub locations: Vec<DatanodeId>,
    /// All alternatives considered, cheapest first (plan explanation).
    pub candidates: Vec<Candidate>,
    /// True if the query wanted an index but no live replica offers one
    /// — HAIL's failover story, surfaced as `fell_back_to_scan`.
    pub fallback: bool,
    /// Stored sidecar size behind the chosen path, when it is a sidecar
    /// path.
    pub sidecar_bytes: Option<usize>,
    /// True if this plan came out of the [`PlanCache`] (no candidate was
    /// priced); false if it was freshly priced.
    pub cached: bool,
    /// The per-column selectivities this plan was priced with, each
    /// tagged with its source (static prior vs observed feedback).
    pub selectivity: Vec<SelectivityChoice>,
    /// `Some` when a persisted synopsis proved this block matches no
    /// row: the plan is a zero-cost placeholder, no candidate was ever
    /// priced, and execution skips the read entirely, synthesizing the
    /// statistics the scan would have produced (zero matches).
    pub pruned: Option<crate::synopsis::PruneInfo>,
}

/// A full, explainable query plan: one [`BlockPlan`] per input block.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    pub format: DatasetFormat,
    pub filter: String,
    pub projection: String,
    pub blocks: Vec<BlockPlan>,
    by_block: BTreeMap<BlockId, usize>,
}

impl QueryPlan {
    /// The plan for one block.
    pub fn block_plan(&self, block: BlockId) -> Option<&BlockPlan> {
        self.by_block.get(&block).map(|&i| &self.blocks[i])
    }

    /// Blocks per chosen access-path kind.
    pub fn path_histogram(&self) -> BTreeMap<AccessPathKind, usize> {
        let mut h = BTreeMap::new();
        for bp in &self.blocks {
            *h.entry(bp.kind).or_insert(0) += 1;
        }
        h
    }

    /// Renders the plan in an `EXPLAIN`-style text form.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "QueryPlan for {} blocks (format {:?})",
            self.blocks.len(),
            self.format
        );
        let _ = writeln!(
            out,
            "  filter: {}   projection: {}",
            if self.filter.is_empty() {
                "(none)"
            } else {
                &self.filter
            },
            if self.projection.is_empty() {
                "(all)"
            } else {
                &self.projection
            },
        );
        for bp in &self.blocks {
            let sidecar = match bp.sidecar_bytes {
                Some(n) => format!("  [sidecar {n} B]"),
                None => String::new(),
            };
            // Selectivity provenance: which estimate priced this plan
            // and whether it was the static prior or observed feedback.
            let mut sel = String::new();
            for sc in &bp.selectivity {
                let src = match sc.source {
                    SelectivitySource::Prior => "prior",
                    SelectivitySource::Observed { .. } => "observed",
                };
                let sep = if sel.is_empty() { "  sel " } else { ", " };
                let _ = write!(sel, "{sep}@{}={:.3}({src})", sc.column + 1, sc.value);
            }
            let pruned = match &bp.pruned {
                Some(info) => format!("  [pruned: {}]", info.reason),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "  block {}: DN{} {}  est {:.3}s  ({} candidate{}){}{}{}{}{}",
                bp.block,
                bp.replica + 1,
                bp.path.describe(),
                bp.est_seconds,
                bp.candidates.len(),
                if bp.candidates.len() == 1 { "" } else { "s" },
                sel,
                sidecar,
                if bp.pruned.is_some() {
                    // A pruned plan was never priced; "[priced]" would
                    // misreport the zero evaluations it cost.
                    ""
                } else if bp.cached {
                    "  [cached]"
                } else {
                    "  [priced]"
                },
                pruned,
                if bp.fallback { "  [fallback]" } else { "" },
            );
        }
        let hist = self.path_histogram();
        let mut parts: Vec<String> = hist.iter().map(|(k, n)| format!("{k}×{n}")).collect();
        if parts.is_empty() {
            parts.push("(empty)".into());
        }
        let _ = writeln!(out, "paths: {}", parts.join(", "));
        out
    }
}

/// The cost-based planner over one cluster's namenode state.
///
/// The handle is `Send + Sync`: the [`crate::executor::ExecutorContext`]
/// workers of a parallel split read share one planner reference, and
/// all cross-query state it touches ([`PlanCache`],
/// [`SelectivityFeedback`]) is internally locked.
pub struct QueryPlanner<'a> {
    cluster: &'a DfsCluster,
    config: PlannerConfig,
}

/// Compile-time proof that a planner handle can be shared across the
/// executor's worker threads. If any field ever loses `Sync` (say, an
/// `Rc` or `RefCell` sneaks into the config or cluster), this stops
/// building instead of the executor failing at a distance.
const _PLANNER_IS_SEND_SYNC: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryPlanner<'static>>();
    assert_send_sync::<QueryPlan>();
    assert_send_sync::<PlanCache>();
    assert_send_sync::<SelectivityFeedback>();
};

/// Block-invariant state shared by every `plan_block` of one plan:
/// effective selectivities and, when the cache participates, the
/// filter-shape key. See [`QueryPlanner::plan_context`].
struct PlanContext {
    selectivity: Vec<SelectivityChoice>,
    shape: Option<FilterShape>,
}

impl<'a> QueryPlanner<'a> {
    /// A planner with the default cost model and estimates.
    pub fn new(cluster: &'a DfsCluster) -> Self {
        QueryPlanner {
            cluster,
            config: PlannerConfig::default(),
        }
    }

    /// A planner with an explicit configuration.
    pub fn with_config(cluster: &'a DfsCluster, config: PlannerConfig) -> Self {
        QueryPlanner { cluster, config }
    }

    /// The planner's configuration.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// Plans a query over a dataset handle.
    pub fn plan_dataset(&self, dataset: &Dataset, query: &HailQuery) -> Result<QueryPlan> {
        self.plan(dataset.format, &dataset.blocks, query)
    }

    /// Plans a query over explicit blocks of a given physical format.
    pub fn plan(
        &self,
        format: DatasetFormat,
        blocks: &[BlockId],
        query: &HailQuery,
    ) -> Result<QueryPlan> {
        let ctx = self.plan_context(format, query);
        let mut plans = Vec::with_capacity(blocks.len());
        let mut by_block = BTreeMap::new();
        for &b in blocks {
            by_block.insert(b, plans.len());
            plans.push(self.plan_block_in(&ctx, format, b, query)?);
        }
        Ok(QueryPlan {
            format,
            filter: render_filter(query),
            projection: render_projection(query),
            blocks: plans,
            by_block,
        })
    }

    /// Like [`QueryPlanner::plan`], but a known block whose replicas are
    /// all dead degrades to a full-scan plan over the namenode's
    /// (possibly empty) location list instead of erroring — as in HDFS,
    /// split computation succeeds and the failure surfaces at read
    /// time. Unknown blocks still error, and so do bad-record token
    /// searches that cannot be served (no live replica stores the
    /// inverted-list sidecar): a full scan is not a substitute for a
    /// token search, so there is nothing to degrade to.
    pub fn plan_lenient(
        &self,
        format: DatasetFormat,
        blocks: &[BlockId],
        query: &HailQuery,
    ) -> Result<QueryPlan> {
        let ctx = self.plan_context(format, query);
        let mut plans = Vec::with_capacity(blocks.len());
        let mut by_block = BTreeMap::new();
        for &b in blocks {
            by_block.insert(b, plans.len());
            match self.plan_block_in(&ctx, format, b, query) {
                Ok(bp) => plans.push(bp),
                Err(e) => {
                    // A token search cannot degrade to a full scan — the
                    // scan would emit good records the search never
                    // asked for. Surface the missing sidecar instead.
                    if !self.config.bad_record_tokens.is_empty() {
                        return Err(e);
                    }
                    // Distinguish "unknown block" (propagate) from "no
                    // live replica" (degrade).
                    let hosts = self.cluster.namenode().get_hosts(b)?;
                    let layout = self.scan_layout(format);
                    plans.push(BlockPlan {
                        block: b,
                        replica: hosts.first().copied().unwrap_or(0),
                        path: Arc::new(FullScan::new(layout)),
                        kind: AccessPathKind::FullScan,
                        est_seconds: 0.0,
                        locations: hosts,
                        candidates: Vec::new(),
                        fallback: format != DatasetFormat::HadoopText
                            && !query.filter_columns().is_empty(),
                        sidecar_bytes: None,
                        cached: false,
                        selectivity: Vec::new(),
                        pruned: None,
                    });
                }
            }
        }
        Ok(QueryPlan {
            format,
            filter: render_filter(query),
            projection: render_projection(query),
            blocks: plans,
            by_block,
        })
    }

    /// The full-scan layout for a dataset format.
    fn scan_layout(&self, format: DatasetFormat) -> ScanLayout {
        match format {
            DatasetFormat::HadoopText => ScanLayout::Text {
                delimiter: self
                    .config
                    .text_delimiter
                    .unwrap_or(self.cluster.config().delimiter),
            },
            DatasetFormat::HailPax => ScanLayout::HailPax,
            DatasetFormat::HadoopPlusPlus => ScanLayout::RowLayout,
        }
    }

    /// The effective per-column selectivities for a query's filter
    /// columns: the static prior, blended with observed feedback when a
    /// [`SelectivityFeedback`] store is configured.
    fn effective_selectivities(&self, query: &HailQuery) -> Vec<SelectivityChoice> {
        let mut columns = query.filter_columns();
        columns.sort_unstable();
        columns.dedup();
        columns
            .into_iter()
            .map(|column| {
                let prior = self.config.estimate.for_column(column);
                // Feedback is class-keyed: a column filtered by equality
                // reads the eq-class estimate, ranges the range-class.
                let eq = crate::cache::has_eq_on(query, column);
                let (value, source) = match &self.config.feedback {
                    Some(fb) => fb.adjusted(column, eq, prior),
                    None => (prior, SelectivitySource::Prior),
                };
                SelectivityChoice {
                    column,
                    value,
                    source,
                }
            })
            .collect()
    }

    /// The canonical cache shape of a query over `format`, under the
    /// effective selectivities.
    fn filter_shape(
        &self,
        format: DatasetFormat,
        query: &HailQuery,
        selectivity: &[SelectivityChoice],
    ) -> FilterShape {
        let delimiter = match format {
            DatasetFormat::HadoopText => Some(
                self.config
                    .text_delimiter
                    .unwrap_or(self.cluster.config().delimiter),
            ),
            _ => None,
        };
        let sels: Vec<(usize, f64)> = selectivity.iter().map(|s| (s.column, s.value)).collect();
        FilterShape::of(format, query, delimiter, &sels, self.config.cost.digest())
    }

    /// The block-invariant planning state, computed **once per plan**
    /// rather than per block: effective selectivities (one feedback
    /// lookup per filter column), and — when the cache participates —
    /// the filter-shape key (cost-model digest included) with the cache
    /// synced against the namenode's death log. Bad-record token
    /// searches never get a shape: they bypass the cache, their
    /// candidate enumeration being a single directory probe.
    fn plan_context(&self, format: DatasetFormat, query: &HailQuery) -> PlanContext {
        let selectivity = self.effective_selectivities(query);
        let shape = match &self.config.plan_cache {
            Some(cache) if self.config.bad_record_tokens.is_empty() => {
                cache.sync_deaths(self.cluster.namenode().death_log());
                Some(self.filter_shape(format, query, &selectivity))
            }
            _ => None,
        };
        PlanContext { selectivity, shape }
    }

    /// Estimated record-reader seconds for reading `blocks` under
    /// `query` — the scheduler's assignment-phase seam.
    ///
    /// Priced from memoized [`BlockPlan`]s where the [`PlanCache`]
    /// holds one for the query's filter shape (a counter-free,
    /// validation-free peek: estimation must not perturb cache
    /// effectiveness accounting), falling back to a uniform
    /// full-scan-of-one-logical-block heuristic per uncached block.
    /// Never prices candidates, never inserts, never blocks on more
    /// than the cache's read lock.
    pub fn estimate_split(
        &self,
        format: DatasetFormat,
        blocks: &[BlockId],
        query: &HailQuery,
    ) -> f64 {
        let heuristic = self.heuristic_block_seconds();
        let shape = match &self.config.plan_cache {
            Some(_) if self.config.bad_record_tokens.is_empty() => {
                let selectivity = self.effective_selectivities(query);
                Some(self.filter_shape(format, query, &selectivity))
            }
            _ => None,
        };
        match shape.as_ref().zip(self.config.plan_cache.as_ref()) {
            Some((shape, cache)) => cache
                .peek_est_seconds_many(shape, blocks)
                .into_iter()
                .map(|est| est.unwrap_or(heuristic))
                .sum(),
            None => heuristic * blocks.len() as f64,
        }
    }

    /// [`QueryPlanner::estimate_split`] over a whole job's splits at
    /// once: the canonical filter shape (feedback lookups, shape
    /// hashing, cost-model digest) is derived **once** and reused for
    /// every split, instead of once per `estimate_split` call. The
    /// scheduler's assignment phase estimates every split of a job
    /// against the same query, so this is its batch seam; results are
    /// positionally aligned with `splits`.
    pub fn estimate_split_batch(
        &self,
        format: DatasetFormat,
        splits: &[hail_mr::InputSplit],
        query: &HailQuery,
    ) -> Vec<f64> {
        let heuristic = self.heuristic_block_seconds();
        let shape = match &self.config.plan_cache {
            Some(_) if self.config.bad_record_tokens.is_empty() => {
                let selectivity = self.effective_selectivities(query);
                Some(self.filter_shape(format, query, &selectivity))
            }
            _ => None,
        };
        splits
            .iter()
            .map(
                |split| match shape.as_ref().zip(self.config.plan_cache.as_ref()) {
                    Some((shape, cache)) => cache
                        .peek_est_seconds_many(shape, &split.blocks)
                        .into_iter()
                        .map(|est| est.unwrap_or(heuristic))
                        .sum(),
                    None => heuristic * split.blocks.len() as f64,
                },
            )
            .collect()
    }

    /// The estimate for one block with no memoized plan: a pipelined
    /// full scan of one logical block under this planner's cost model.
    /// Uniform across blocks, so relative slot-occupancy ordering —
    /// all the assignment phase consumes — matches uniform actual
    /// durations exactly.
    fn heuristic_block_seconds(&self) -> f64 {
        let cost = &self.config.cost;
        let (bytes, scale) = match cost.scale {
            CostScale::PerBlock { logical_block } => (logical_block, ScaleFactor::unit()),
            // The paper's 64 MB block at the fixed scale.
            CostScale::Fixed(s) => (64 * 1024 * 1024, s),
        };
        let ledger = CostLedger {
            disk_read: bytes as u64,
            scan_cpu: bytes as u64,
            seeks: 1,
            ..Default::default()
        };
        ledger.pipelined_seconds(&cost.profile, scale)
    }

    /// Plans one block, through the [`PlanCache`] when one is
    /// configured: a hit returns the memoized plan with **zero**
    /// cost-model evaluations; a miss runs the full pricing pass and
    /// memoizes the result.
    pub fn plan_block(
        &self,
        format: DatasetFormat,
        block: BlockId,
        query: &HailQuery,
    ) -> Result<BlockPlan> {
        self.plan_block_in(&self.plan_context(format, query), format, block, query)
    }

    /// [`QueryPlanner::plan_block`] under an already-computed
    /// [`PlanContext`] — the per-block step of `plan`/`plan_lenient`.
    fn plan_block_in(
        &self,
        ctx: &PlanContext,
        format: DatasetFormat,
        block: BlockId,
        query: &HailQuery,
    ) -> Result<BlockPlan> {
        if let (Some(shape), Some(cache)) = (&ctx.shape, &self.config.plan_cache) {
            let namenode = self.cluster.namenode();
            // Epoch-validated lookup: while the namenode's physical
            // design is unchanged, a warm hit is a map probe — no
            // per-replica fingerprint recomputation at all.
            let miss_fingerprint = match cache.lookup_validated_full(shape, block, namenode) {
                crate::cache::ValidatedLookup::Hit(mut plan) => {
                    // The hit proves the *quantized* estimates match,
                    // but the provenance may have moved (e.g. feedback
                    // arrived without leaving the bucket): report the
                    // current selectivity sources, not the insert-time
                    // snapshot.
                    plan.selectivity.clone_from(&ctx.selectivity);
                    return Ok(plan);
                }
                crate::cache::ValidatedLookup::Miss(fp) => fp,
            };
            // Block skipping runs *before* candidate enumeration: a
            // synopsis proof yields a zero-cost plan with no pricing
            // pass at all (and no cost evaluations recorded), memoized
            // under the same fingerprint machinery as priced plans so
            // design changes and replica deaths evict it normally.
            let plan = match crate::synopsis::try_prune(
                self.cluster,
                &self.config,
                format,
                block,
                query,
            ) {
                Some(info) => self.pruned_block_plan(format, block, info, ctx.selectivity.clone()),
                None => {
                    let plan = self.price_block(format, block, query, ctx.selectivity.clone())?;
                    cache.record_cost_evaluations(plan.candidates.len() as u64);
                    plan
                }
            };
            // Reuse the fingerprint the failed revalidation computed;
            // Dir_rep cannot have moved since (mutation needs &mut).
            let fingerprint =
                miss_fingerprint.unwrap_or_else(|| BlockFingerprint::of(namenode, block));
            cache.insert_validated(shape, block, fingerprint, namenode, plan.clone());
            Ok(plan)
        } else if let Some(info) =
            crate::synopsis::try_prune(self.cluster, &self.config, format, block, query)
        {
            Ok(self.pruned_block_plan(format, block, info, ctx.selectivity.clone()))
        } else {
            self.price_block(format, block, query, ctx.selectivity.clone())
        }
    }

    /// The zero-cost placeholder plan for a synopsis-pruned block: no
    /// candidates were priced, execution will skip the read, and the
    /// scheduler sees it as free (`est_seconds` 0, so
    /// [`QueryPlanner::estimate_split`] naturally prices it at zero
    /// once memoized). Locations still list the live holders so split
    /// construction and locality grouping treat the block normally.
    fn pruned_block_plan(
        &self,
        format: DatasetFormat,
        block: BlockId,
        info: crate::synopsis::PruneInfo,
        selectivity: Vec<SelectivityChoice>,
    ) -> BlockPlan {
        let locations: Vec<DatanodeId> = self
            .cluster
            .namenode()
            .live_replicas(block)
            .iter()
            .map(|r| r.datanode)
            .collect();
        BlockPlan {
            block,
            replica: locations.first().copied().unwrap_or(0),
            path: Arc::new(FullScan::new(self.scan_layout(format))),
            kind: AccessPathKind::FullScan,
            est_seconds: 0.0,
            locations,
            candidates: Vec::new(),
            fallback: false,
            sidecar_bytes: None,
            cached: false,
            selectivity,
            pruned: Some(info),
        }
    }

    /// Prices one block: enumerate candidates, price them, pick the
    /// cheapest (deterministic tie-break on replica id then kind).
    fn price_block(
        &self,
        format: DatasetFormat,
        block: BlockId,
        query: &HailQuery,
        selectivity: Vec<SelectivityChoice>,
    ) -> Result<BlockPlan> {
        let sel_for = |column: usize| {
            selectivity
                .iter()
                .find(|s| s.column == column)
                .map(|s| s.value)
                .unwrap_or_else(|| self.config.estimate.for_column(column))
        };
        let replicas = self.cluster.namenode().live_replicas(block);
        if replicas.is_empty() {
            // The block exists but no live node serves it (or it is
            // unknown): surface the same error the readers used to.
            self.cluster.namenode().get_hosts(block)?;
            return Err(HailError::UnknownBlock(block));
        }

        struct Priced {
            candidate: Candidate,
            path: Arc<dyn AccessPath + Send + Sync>,
        }
        let mut priced: Vec<Priced> = Vec::new();
        let mut push = |replica: DatanodeId,
                        path: Arc<dyn AccessPath + Send + Sync>,
                        ledger: CostLedger,
                        serial: bool,
                        replica_bytes: usize,
                        sidecar_bytes: Option<usize>| {
            let cost = &self.config.cost;
            let scale = cost.scale_for(replica_bytes);
            let est_seconds = if serial {
                ledger.serial_seconds(&cost.profile, scale)
            } else {
                ledger.pipelined_seconds(&cost.profile, scale)
            };
            priced.push(Priced {
                candidate: Candidate {
                    replica,
                    kind: path.kind(),
                    detail: path.describe(),
                    est_seconds,
                    sidecar_bytes,
                },
                path,
            });
        };

        // A bad-record token search short-circuits every other path.
        if !self.config.bad_record_tokens.is_empty() {
            // Only HAIL PAX blocks carry a queryable bad-record section;
            // reject other formats up front instead of failing at read
            // time.
            if format != DatasetFormat::HailPax {
                return Err(HailError::Job(format!(
                    "bad-record token search requires a HAIL PAX dataset, got {format:?}"
                )));
            }
            // Only replicas whose Dir_rep entry records an inverted-list
            // sidecar can serve the search; the read never rebuilds one.
            for info in &replicas {
                let Some(sidecar) = info.index.inverted_list() else {
                    continue;
                };
                let ledger = CostLedger {
                    // The persisted list's stored size, not a guess.
                    disk_read: sidecar.sidecar_bytes as u64,
                    seeks: 1,
                    ..Default::default()
                };
                push(
                    info.datanode,
                    Arc::new(InvertedListScan {
                        tokens: self.config.bad_record_tokens.clone(),
                    }),
                    ledger,
                    true,
                    info.replica_bytes,
                    Some(sidecar.sidecar_bytes),
                );
            }
            if priced.is_empty() {
                return Err(HailError::Job(format!(
                    "bad-record token search on block {block}: no live replica stores an \
                     inverted-list sidecar (upload with \
                     `ReplicaIndexConfig::with_inverted_list`)"
                )));
            }
        } else {
            for info in &replicas {
                let data_bytes = info
                    .replica_bytes
                    .saturating_sub(info.index.index_bytes + info.index.sidecar_bytes_total())
                    as u64;

                // Full scan: always possible, streams everything.
                let scan_layout = self.scan_layout(format);
                push(
                    info.datanode,
                    Arc::new(FullScan::new(scan_layout)),
                    CostLedger {
                        disk_read: info.replica_bytes as u64,
                        scan_cpu: data_bytes,
                        seeks: 1,
                        ..Default::default()
                    },
                    false,
                    info.replica_bytes,
                    None,
                );

                // Index scan on this replica's own index (clustered on a
                // HAIL replica, trojan on a Hadoop++ block), when the
                // query ranges over its key column. Both share the same
                // cost shape: read the index, then the qualifying
                // fraction; they differ in the path object and the seek
                // count (the clustered scan seeks per column region,
                // approximated as one extra).
                if let Some(column) = info.index.key_column {
                    let index_path: Option<(Arc<dyn AccessPath + Send + Sync>, u64)> = match info
                        .index
                        .kind
                    {
                        IndexKind::Clustered => Some((Arc::new(ClusteredIndexScan { column }), 3)),
                        IndexKind::Trojan => Some((Arc::new(TrojanIndexScan { column }), 2)),
                        _ => None,
                    };
                    if let Some((path, seeks)) = index_path {
                        if query.bounds_on(column).is_some() {
                            let sel = sel_for(column);
                            let touched = (sel * data_bytes as f64) as u64;
                            push(
                                info.datanode,
                                path,
                                CostLedger {
                                    disk_read: info.index.index_bytes as u64 + touched,
                                    scan_cpu: touched,
                                    seeks,
                                    ..Default::default()
                                },
                                true,
                                info.replica_bytes,
                                None,
                            );
                        }
                    }
                }

                // Sidecar bitmap scan for equality on a column whose
                // bitmap this replica physically stores (per Dir_rep).
                // Replicas without the sidecar never produce a bitmap
                // candidate — there is nothing to read there. Only HAIL
                // PAX containers carry a sidecar region, so other
                // formats are excluded at plan time even if a crafted
                // Dir_rep entry claims one.
                let sidecars = if format == DatasetFormat::HailPax {
                    info.index.sidecars.as_slice()
                } else {
                    &[]
                };
                for sidecar in sidecars {
                    let IndexKind::Bitmap { column } = sidecar.kind else {
                        continue;
                    };
                    if !crate::cache::has_eq_on(query, column) {
                        continue;
                    }
                    let sel = sel_for(column);
                    let touched = (sel * data_bytes as f64) as u64;
                    push(
                        info.datanode,
                        Arc::new(BitmapScan { column }),
                        CostLedger {
                            // The persisted sidecar's stored size plus
                            // the qualifying fraction of the data.
                            disk_read: sidecar.sidecar_bytes as u64 + touched,
                            scan_cpu: touched,
                            // Matching rows scatter: estimate a seek per
                            // 16 touched KB.
                            seeks: 2 + touched / (16 * 1024),
                            ..Default::default()
                        },
                        true,
                        info.replica_bytes,
                        Some(sidecar.sidecar_bytes),
                    );
                }
            }
        }

        // Deterministic choice: cheapest, then lowest replica id, then
        // kind order.
        priced.sort_by(|a, b| {
            a.candidate
                .est_seconds
                .total_cmp(&b.candidate.est_seconds)
                .then(a.candidate.replica.cmp(&b.candidate.replica))
                .then(a.candidate.kind.cmp(&b.candidate.kind))
        });
        // Text datasets never had an index to fall back from; only the
        // indexed formats can report a genuine failover to scanning.
        let wanted_index =
            format != DatasetFormat::HadoopText && !query.filter_columns().is_empty();
        let had_index_candidate = priced.iter().any(|p| p.candidate.kind.is_index_scan());
        let best = priced.first().ok_or_else(|| {
            HailError::Job(format!("no access path candidates for block {block}"))
        })?;
        let chosen_replica = best.candidate.replica;
        let chosen_kind = best.candidate.kind;
        let path = Arc::clone(&best.path);
        let est_seconds = best.candidate.est_seconds;
        let sidecar_bytes = best.candidate.sidecar_bytes;

        // Locations: chosen replica first, then remaining live holders.
        // A sidecar path can only run where the sidecar is stored, so
        // the scheduler must not treat sidecar-less holders as local
        // placements for it.
        let required_sidecar = path.required_sidecar();
        let mut locations = vec![chosen_replica];
        for info in &replicas {
            if locations.contains(&info.datanode) {
                continue;
            }
            if let Some(kind) = required_sidecar {
                if !info.index.sidecars.iter().any(|s| s.kind == kind) {
                    continue;
                }
            }
            locations.push(info.datanode);
        }

        Ok(BlockPlan {
            block,
            replica: chosen_replica,
            path,
            kind: chosen_kind,
            est_seconds,
            locations,
            candidates: priced.into_iter().map(|p| p.candidate).collect(),
            fallback: wanted_index
                && !had_index_candidate
                && chosen_kind == AccessPathKind::FullScan,
            sidecar_bytes,
            cached: false,
            selectivity,
            pruned: None,
        })
    }

    /// Executes one block according to its plan, resolving the serving
    /// host against the *current* cluster state.
    ///
    /// If the planned replica has died since planning (mid-job failure),
    /// the block is re-planned on the degraded cluster — possibly
    /// downgrading an index scan to a full scan, which is HAIL's
    /// failover story and is surfaced via `fell_back_to_scan`.
    pub fn execute_block(
        &self,
        plan: &QueryPlan,
        block: BlockId,
        task_node: DatanodeId,
        schema: &Schema,
        query: &HailQuery,
        emit: &mut dyn FnMut(MapRecord),
    ) -> Result<TaskStats> {
        self.execute_block_shared(plan, block, task_node, schema, query, None, emit)
    }

    /// [`QueryPlanner::execute_block`] with cooperative scan sharing:
    /// when a registry is passed and the planned path's decode is
    /// shareable ([`AccessPath::share_shape`]), the read goes through
    /// [`ScanShareRegistry::acquire`] — one concurrent job decodes the
    /// block, every other job attaches to that decode and applies only
    /// its own residual predicate/projection. Attached reads synthesize
    /// bit-for-bit the statistics a solo read records (the residual
    /// replays the solo read's exact ledger charges), plus the
    /// telemetry-only [`TaskStats::blocks_read_shared`] /
    /// [`TaskStats::shared_bytes_saved`] counters. Any mismatch —
    /// unshareable path, registry says fall back, residual fails
    /// against a stale decode — degrades to an independent
    /// [`AccessPath::execute`].
    #[allow(clippy::too_many_arguments)]
    pub fn execute_block_shared(
        &self,
        plan: &QueryPlan,
        block: BlockId,
        task_node: DatanodeId,
        schema: &Schema,
        query: &HailQuery,
        scan_share: Option<&ScanShareRegistry>,
        emit: &mut dyn FnMut(MapRecord),
    ) -> Result<TaskStats> {
        let bp_owned;
        let mut bp = match plan.block_plan(block) {
            Some(bp) => bp,
            None => {
                bp_owned = self.plan_block(plan.format, block, query)?;
                &bp_owned
            }
        };
        // A pruned block is never read — not even if its planned
        // replica died since planning: block content is immutable, so
        // the synopsis proof outlives any replica. Synthesize exactly
        // the statistics the skipped scan would have produced: zero
        // records, zero bad records (blocks with bad records are never
        // pruned), and — when the query's filter shape admits a
        // selectivity observation — a zero-match observation so the
        // feedback store learns from skipped blocks too.
        if let Some(info) = &bp.pruned {
            let mut stats = TaskStats {
                blocks_pruned: 1,
                synopsis_bytes_read: info.synopsis_bytes,
                ..TaskStats::default()
            };
            if crate::path::sole_filter_column(query) == Some((info.column, info.eq)) {
                stats.selectivity.push(hail_mr::SelectivityObservation {
                    column: info.column,
                    eq: info.eq,
                    matched: 0,
                    total: info.row_count as u64,
                });
            }
            return Ok(stats);
        }
        let replanned;
        let replica_alive = self
            .cluster
            .datanode(bp.replica)
            .map(|d| d.is_alive())
            .unwrap_or(false);
        let originally_indexed = bp.kind.is_index_scan();
        if !replica_alive {
            replanned = self.plan_block(plan.format, block, query)?;
            bp = &replanned;
        }

        // Locality: prefer the task's own node when it can serve the
        // same access path, so colocated reads stay local.
        let host = self.resolve_host(bp, task_node);
        let access = BlockAccess {
            cluster: self.cluster,
            block,
            replica: host,
            task_node,
            schema,
            query,
        };
        let mut stats = execute_access(&*bp.path, &access, scan_share, emit)?;
        stats.fell_back_to_scan |= bp.fallback || (originally_indexed && !bp.kind.is_index_scan());
        Ok(stats)
    }

    /// The host actually serving a block read: the task's own node when
    /// its replica supports the planned path, else the planned replica.
    /// Also used by the input formats to key the executor's per-node
    /// slot gate on the node a read will really hit (locality reroutes
    /// mean this is not always `bp.replica`).
    pub(crate) fn resolve_host(&self, bp: &BlockPlan, task_node: DatanodeId) -> DatanodeId {
        if bp.replica == task_node || !bp.locations.contains(&task_node) {
            return bp.replica;
        }
        match bp.kind {
            // A full scan can read any replica.
            AccessPathKind::FullScan => task_node,
            // Bitmap/inverted sidecars are sort-order independent, and
            // `plan_block` already restricted `locations` to replicas
            // whose Dir_rep entry stores the required sidecar — any
            // task node that passed the membership guard above can
            // serve the read.
            AccessPathKind::BitmapScan | AccessPathKind::InvertedListScan => task_node,
            // Trojan indexes are identical on every replica (§5).
            AccessPathKind::TrojanIndexScan => task_node,
            // A clustered index exists only on replicas sorted on the
            // same column as the planned one.
            AccessPathKind::ClusteredIndexScan => {
                let nn = self.cluster.namenode();
                let planned_col = nn
                    .replica_index(bp.block, bp.replica)
                    .and_then(|m| m.key_column);
                let serves = planned_col.is_some()
                    && nn.replica_index(bp.block, task_node).is_some_and(|m| {
                        m.kind == IndexKind::Clustered && m.key_column == planned_col
                    });
                if serves {
                    task_node
                } else {
                    bp.replica
                }
            }
        }
    }
}

#[cfg(test)]
impl QueryPlanner<'_> {
    /// A minimal, clusterless [`BlockPlan`] for cache unit tests.
    pub(crate) fn test_block_plan(block: BlockId) -> BlockPlan {
        BlockPlan {
            block,
            replica: 0,
            path: Arc::new(FullScan::new(ScanLayout::HailPax)),
            kind: AccessPathKind::FullScan,
            est_seconds: 0.0,
            locations: vec![0],
            candidates: Vec::new(),
            fallback: false,
            sidecar_bytes: None,
            cached: false,
            selectivity: Vec::new(),
            pruned: None,
        }
    }
}

/// Runs one resolved block access, routing it through the scan-share
/// registry when both sides can share (a registry is plugged in *and*
/// the path's decode has a [`crate::sharing::ShareShape`]); anything
/// else is a plain independent [`AccessPath::execute`].
fn execute_access(
    path: &dyn AccessPath,
    access: &BlockAccess<'_>,
    scan_share: Option<&ScanShareRegistry>,
    emit: &mut dyn FnMut(MapRecord),
) -> Result<TaskStats> {
    let (registry, shape) = match (scan_share, path.share_shape()) {
        (Some(registry), Some(shape)) => (registry, shape),
        _ => return path.execute(access, emit),
    };
    let key = ShareKey {
        block: access.block,
        replica: access.replica,
        shape,
    };
    match registry.acquire(key, || path.produce_decoded(access))? {
        Acquired::Produced(decoded) => path.apply_residual(&decoded, access, emit),
        Acquired::Attached(decoded) => match path.apply_residual(&decoded, access, emit) {
            Ok(mut stats) => {
                stats.blocks_read_shared = 1;
                stats.shared_bytes_saved = stats.ledger.disk_read;
                Ok(stats)
            }
            Err(_) => {
                // A retained decode that no longer applies (say the
                // serving replica died between the producer's decode
                // and this residual) must not poison later consumers:
                // drop it and read independently.
                registry.evict_blocks(&[key.block]);
                path.execute(access, emit)
            }
        },
        Acquired::Fallback => path.execute(access, emit),
    }
}

fn render_filter(query: &HailQuery) -> String {
    query
        .predicates
        .iter()
        .map(render_predicate)
        .collect::<Vec<_>>()
        .join(" and ")
}

fn render_predicate(p: &Predicate) -> String {
    match p {
        Predicate::Cmp { column, op, value } => format!("@{} {op} {value}", column + 1),
        Predicate::Between { column, lo, hi } => {
            format!("@{} between({lo}, {hi})", column + 1)
        }
    }
}

fn render_projection(query: &HailQuery) -> String {
    if query.projection.is_empty() {
        String::new()
    } else {
        format!(
            "{{{}}}",
            query
                .projection
                .iter()
                .map(|c| format!("@{}", c + 1))
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hail_core::upload_hail;
    use hail_index::{select_for_workload, ReplicaIndexConfig, WorkloadFilter};
    use hail_types::{DataType, Field, StorageConfig};
    use hail_workloads::{bob_queries, bob_schema, UserVisitsGenerator};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::VarChar),
        ])
        .unwrap()
    }

    fn setup(rows: usize) -> (DfsCluster, Dataset) {
        let mut config = StorageConfig::test_scale(4096);
        config.index_partition_size = 16;
        let mut c = DfsCluster::new(4, config);
        let text: String = (0..rows)
            .map(|i| format!("{}|w{i}\n", (i * 7) % 500))
            .collect();
        let ds = upload_hail(
            &mut c,
            &schema(),
            "t",
            &[(0, text)],
            &ReplicaIndexConfig::first_indexed(3, &[0]),
        )
        .unwrap();
        (c, ds)
    }

    fn plan_with_selectivity(c: &DfsCluster, ds: &Dataset, sel: f64) -> QueryPlan {
        let q = HailQuery::parse("@1 between(100, 400)", "", &schema()).unwrap();
        let config = PlannerConfig {
            estimate: SelectivityEstimate::uniform(sel),
            ..Default::default()
        };
        QueryPlanner::with_config(c, config)
            .plan_dataset(ds, &q)
            .unwrap()
    }

    /// The satellite requirement: the chosen access path flips from
    /// `ClusteredIndexScan` to `FullScan` as the estimated selectivity
    /// crosses the cost-model break-even.
    #[test]
    fn access_path_flips_at_cost_break_even() {
        let (c, ds) = setup(600);

        // Selective: the index must win on every block.
        let selective = plan_with_selectivity(&c, &ds, 0.01);
        for bp in &selective.blocks {
            assert_eq!(bp.kind, AccessPathKind::ClusteredIndexScan, "sel=0.01");
            assert!(!bp.fallback);
        }

        // Unselective: reading (almost) everything through the
        // latency-bound index path costs more than one pipelined scan.
        let unselective = plan_with_selectivity(&c, &ds, 1.0);
        for bp in &unselective.blocks {
            assert_eq!(bp.kind, AccessPathKind::FullScan, "sel=1.0");
            // A deliberate cost-based choice is not a fallback.
            assert!(!bp.fallback);
        }

        // The flip is monotone: walking selectivity upward switches
        // index → scan exactly once.
        let mut kinds = Vec::new();
        for sel in [0.01, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0] {
            kinds.push(plan_with_selectivity(&c, &ds, sel).blocks[0].kind);
        }
        let flips = kinds.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(flips, 1, "exactly one break-even crossing: {kinds:?}");
        assert_eq!(*kinds.first().unwrap(), AccessPathKind::ClusteredIndexScan);
        assert_eq!(*kinds.last().unwrap(), AccessPathKind::FullScan);
    }

    /// Candidates are priced and ordered; the chosen path is the
    /// cheapest candidate; explain() renders all of it.
    #[test]
    fn plans_are_explainable() {
        let (c, ds) = setup(400);
        let plan = plan_with_selectivity(&c, &ds, 0.05);
        for bp in &plan.blocks {
            assert!(!bp.candidates.is_empty());
            for w in bp.candidates.windows(2) {
                assert!(w[0].est_seconds <= w[1].est_seconds, "candidates sorted");
            }
            assert_eq!(bp.kind, bp.candidates[0].kind);
            assert!((bp.est_seconds - bp.candidates[0].est_seconds).abs() < 1e-12);
            assert_eq!(bp.locations[0], bp.replica);
        }
        let text = plan.explain();
        assert!(text.contains("QueryPlan for"));
        assert!(text.contains("clustered-index-scan(@1)"));
        assert!(text.contains("paths:"));
        assert!(text.contains("@1 between(100, 400)"));
    }

    /// Dead replicas disappear from planning; with every indexed
    /// replica dead the plan falls back to scanning and says so.
    #[test]
    fn replans_around_dead_index_replicas() {
        let (mut c, ds) = setup(300);
        let b = ds.blocks[0];
        for dn in c.namenode().get_hosts_with_index(b, 0).unwrap() {
            c.kill_node(dn).unwrap();
        }
        let plan = plan_with_selectivity(&c, &ds, 0.01);
        let bp = plan.block_plan(b).unwrap();
        assert_eq!(bp.kind, AccessPathKind::FullScan);
        assert!(bp.fallback, "index wanted but unavailable → fallback");
        assert!(plan.explain().contains("[fallback]"));
    }

    /// The satellite requirement: `select_for_workload`'s ranking agrees
    /// with the planner's per-replica preferences on the Bob workload —
    /// every Bob query runs as an index scan on a column the advisor
    /// indexed, and the planner prices that choice below a full scan.
    #[test]
    fn advisor_agrees_with_planner_on_bob_workload() {
        let schema = bob_schema();
        let workload: Vec<WorkloadFilter> = bob_queries()
            .iter()
            .flat_map(|q| {
                let query = q.to_query(&schema).unwrap();
                query
                    .filter_columns()
                    .into_iter()
                    .map(move |c| WorkloadFilter::new(c, q.paper_selectivity, 1.0))
            })
            .collect();
        let advisor_config = select_for_workload(&schema, 3, &workload).unwrap();
        let advised: Vec<usize> = advisor_config
            .orders()
            .iter()
            .filter_map(|o| o.column())
            .collect();

        let texts = UserVisitsGenerator::default().generate(2, 600);
        let mut storage = StorageConfig::test_scale(4 * 1024);
        storage.index_partition_size = 8;
        let mut cluster = DfsCluster::new(3, storage);
        let ds = upload_hail(&mut cluster, &schema, "uv", &texts, &advisor_config).unwrap();

        for q in bob_queries() {
            let query = q.to_query(&schema).unwrap();
            // Feed the planner the same selectivities the advisor saw.
            let mut est = SelectivityEstimate::uniform(0.05);
            for c in query.filter_columns() {
                est = est.with_column(c, q.paper_selectivity);
            }
            let config = PlannerConfig {
                estimate: est,
                ..Default::default()
            };
            let plan = QueryPlanner::with_config(&cluster, config)
                .plan_dataset(&ds, &query)
                .unwrap();
            for bp in &plan.blocks {
                assert_eq!(
                    bp.kind,
                    AccessPathKind::ClusteredIndexScan,
                    "{}: block {} should be index-served",
                    q.id,
                    bp.block
                );
                // The planner's chosen index candidate must beat its own
                // full-scan alternative — the same `benefit > 0`
                // inequality the advisor ranks by.
                let full = bp
                    .candidates
                    .iter()
                    .find(|cand| cand.kind == AccessPathKind::FullScan)
                    .expect("full scan is always a candidate");
                assert!(bp.est_seconds < full.est_seconds, "{}", q.id);
                // And the column it scans is one the advisor indexed.
                let col = cluster
                    .namenode()
                    .replica_index(bp.block, bp.replica)
                    .and_then(|m| m.key_column)
                    .unwrap();
                assert!(advised.contains(&col), "{}: column {col}", q.id);
            }
        }
    }

    /// Equality on a column with a persisted bitmap sidecar routes
    /// through the bitmap path and still matches a scan's results.
    #[test]
    fn bitmap_scan_chosen_and_correct() {
        let mut storage = StorageConfig::test_scale(1 << 20);
        storage.index_partition_size = 32;
        let mut c = DfsCluster::new(3, storage);
        let schema = Schema::new(vec![
            Field::new("country", DataType::VarChar),
            Field::new("v", DataType::Int),
        ])
        .unwrap();
        const COUNTRIES: [&str; 4] = ["USA", "DEU", "FRA", "BRA"];
        let text: String = (0..800)
            .map(|i| format!("{}|{}\n", COUNTRIES[i % 4], i))
            .collect();
        let ds = upload_hail(
            &mut c,
            &schema,
            "t",
            &[(0, text)],
            &ReplicaIndexConfig::first_indexed(3, &[1]).with_bitmap(0),
        )
        .unwrap();

        let q = HailQuery::parse("@1 = 'DEU'", "{@2}", &schema).unwrap();
        let planner = QueryPlanner::new(&c);
        let plan = planner.plan_dataset(&ds, &q).unwrap();
        assert_eq!(plan.blocks[0].kind, AccessPathKind::BitmapScan);
        // The plan carries the stored sidecar size and explains it.
        let stored = c
            .namenode()
            .replica_index(ds.blocks[0], plan.blocks[0].replica)
            .unwrap()
            .bitmap_on(0)
            .unwrap()
            .sidecar_bytes;
        assert_eq!(plan.blocks[0].sidecar_bytes, Some(stored));
        assert!(plan.explain().contains(&format!("[sidecar {stored} B]")));

        let mut via_bitmap = Vec::new();
        let stats = planner
            .execute_block(&plan, ds.blocks[0], 0, &schema, &q, &mut |r| {
                via_bitmap.push(r)
            })
            .unwrap();
        assert!(stats.paths.get(AccessPathKind::BitmapScan) == 1);
        assert_eq!(stats.sidecar_bytes_read, stored as u64);

        // Oracle: full scan with the default planner.
        let scan_planner = QueryPlanner::new(&c);
        let scan_plan = scan_planner
            .plan(DatasetFormat::HailPax, &ds.blocks, &HailQuery::full_scan())
            .unwrap();
        let mut via_scan = Vec::new();
        scan_planner
            .execute_block(
                &scan_plan,
                ds.blocks[0],
                0,
                &schema,
                &HailQuery::full_scan(),
                &mut |r| {
                    if !r.bad && r.row.get(0).unwrap().as_str() == Some("DEU") {
                        via_scan.push(r.row.project(&[1]));
                    }
                },
            )
            .unwrap();
        let mut got: Vec<String> = via_bitmap
            .iter()
            .filter(|r| !r.bad)
            .map(|r| r.row.to_string())
            .collect();
        let mut expected: Vec<String> = via_scan.iter().map(|r| r.to_string()).collect();
        got.sort();
        expected.sort();
        assert_eq!(got, expected);
        assert!(!got.is_empty());
    }

    /// Bad-record token searches route through the inverted list and
    /// return only matching bad records.
    #[test]
    fn inverted_list_scan_serves_bad_record_search() {
        let mut storage = StorageConfig::test_scale(1 << 20);
        storage.index_partition_size = 32;
        let mut c = DfsCluster::new(3, storage);
        let schema = schema();
        let text = "1|one\nERROR timeout at DN3\n2|two\ngarbage ###GARBAGE### line\n3|three\n";
        let ds = upload_hail(
            &mut c,
            &schema,
            "t",
            &[(0, text.into())],
            &ReplicaIndexConfig::first_indexed(3, &[0]).with_inverted_list(),
        )
        .unwrap();

        let config = PlannerConfig {
            bad_record_tokens: vec!["error".into(), "timeout".into()],
            ..Default::default()
        };
        let planner = QueryPlanner::with_config(&c, config);
        let q = HailQuery::full_scan();
        let plan = planner.plan_dataset(&ds, &q).unwrap();
        assert_eq!(plan.blocks[0].kind, AccessPathKind::InvertedListScan);
        assert!(plan
            .explain()
            .contains("inverted-list-scan(error & timeout)"));

        let mut records = Vec::new();
        planner
            .execute_block(&plan, ds.blocks[0], 0, &schema, &q, &mut |r| {
                records.push(r)
            })
            .unwrap();
        assert_eq!(records.len(), 1);
        assert!(records[0].bad);
        assert_eq!(
            records[0].row.get(0).unwrap().as_str(),
            Some("ERROR timeout at DN3")
        );
    }

    /// Bad-record searches are rejected up front on formats whose
    /// blocks carry no queryable bad-record section, and on PAX
    /// datasets uploaded without the inverted-list sidecar.
    #[test]
    fn bad_record_search_rejected_without_sidecar() {
        let (c, ds) = setup(100); // uploaded without sidecars
        let config = PlannerConfig {
            bad_record_tokens: vec!["error".into()],
            ..Default::default()
        };
        let planner = QueryPlanner::with_config(&c, config);
        let q = HailQuery::full_scan();
        for format in [DatasetFormat::HadoopText, DatasetFormat::HadoopPlusPlus] {
            let err = planner.plan(format, &ds.blocks, &q).unwrap_err();
            assert!(err.to_string().contains("HAIL PAX"), "{format:?}: {err}");
        }
        // PAX, but no replica persisted an inverted list: the search
        // cannot run (and must not silently degrade to a full scan).
        let err = planner
            .plan(DatasetFormat::HailPax, &ds.blocks, &q)
            .unwrap_err();
        assert!(err.to_string().contains("inverted-list sidecar"), "{err}");
        let err = planner
            .plan_lenient(DatasetFormat::HailPax, &ds.blocks, &q)
            .unwrap_err();
        assert!(err.to_string().contains("inverted-list sidecar"), "{err}");
    }

    /// Planner estimates scale with the logical block: a candidate's
    /// cost is invariant to how small the materialized block is.
    #[test]
    fn per_block_scaling_prices_at_paper_scale() {
        let (c, ds) = setup(500);
        let plan = plan_with_selectivity(&c, &ds, 0.05);
        let bp = &plan.blocks[0];
        // A full scan of a logical 64 MB block takes seconds, not the
        // microseconds the ~4 KB materialized block would.
        let full = bp
            .candidates
            .iter()
            .find(|cand| cand.kind == AccessPathKind::FullScan)
            .unwrap();
        assert!(full.est_seconds > 1.0, "scaled: {}", full.est_seconds);
        assert!(bp.est_seconds < full.est_seconds);
    }
}
