//! Cooperative scan sharing: one physical decode serves every
//! concurrent job that wants the same block the same way.
//!
//! HAIL's multi-job premise (and the lesson BENCH_7 taught: 4× job
//! concurrency bought only 1.04× throughput) is that overlapping jobs
//! should not each pay for their own reads of the same blocks. The
//! [`ScanShareRegistry`] is the rendezvous: the first job to want a
//! `(block, replica, shape)` becomes the **producer** — it decodes the
//! replica once ([`crate::path::AccessPath::produce_decoded`]) — and
//! every other in-flight job that wants the same key **attaches** to
//! that decode, applying only its own residual predicate/projection
//! ([`crate::path::AccessPath::apply_residual`]).
//!
//! # Accounting and determinism
//!
//! A consumer's [`hail_mr::TaskStats`] are *synthesized*, not skipped:
//! the residual charges its ledger exactly what a solo read would have
//! (the replica's stored length is a property of the replica, so
//! `Datanode::charge_replica_read` replays the identical seek + byte
//! charges without touching the bytes). Every report field therefore
//! stays bit-for-bit identical to a solo run. The only trace of
//! sharing is the dedicated telemetry pair
//! [`hail_mr::TaskStats::blocks_read_shared`] /
//! [`hail_mr::TaskStats::shared_bytes_saved`] — which job of an
//! overlapping pair produces vs. attaches is a race, so those two
//! counters (and nothing else) are excluded from the determinism
//! contract.
//!
//! # Retention and eviction
//!
//! Produced decodes are retained so late-arriving jobs can still
//! attach, bounded three ways:
//!
//! 1. **Admission-window interest**: when a `JobManager`'s
//!    [`hail_mr::InFlightBlocks`] tracker is attached
//!    ([`ScanShareRegistry::attach_in_flight`]), its drain signal — no
//!    admitted job is still going to read the block — evicts the
//!    block's entries. At `HAIL_MAX_CONCURRENT_JOBS=1` admission is
//!    serial, so entries never survive into the next job and attach
//!    counts are exactly zero.
//! 2. **Capacity**: at most [`RETAINED_CAP`] produced entries, oldest
//!    evicted first.
//! 3. **Invalidation**: [`ScanShareRegistry::clear`] drops everything —
//!    callers must invoke it after in-place replica rewrites
//!    (`apply_reindex`), whose content changes would otherwise be
//!    invisible to the registry's keying.
//!
//! # Locking
//!
//! The registry's mutex sits at [`LockRank::ShareRegistry`] — the
//! **leaf** of the hierarchy enforced by `hail-sync` (see
//! ARCHITECTURE.md, "Concurrency invariants & enforcement"): it is
//! never held while decoding, applying residuals, or doing I/O. A
//! producer inserts an in-flight marker, *releases the lock*, decodes
//! (holding its `NodeGate` permit like any other read), then publishes.
//! Waiters block on the registry's condvar holding no other engine
//! lock beyond their own node permit — and a producer already holds its
//! permit before its marker exists, so waiters can never starve the
//! producer's gate slot.
//!
//! The in-flight marker is protected by an RAII cleanup guard, so a
//! producer that **panics** mid-decode (not just one that returns an
//! error) still removes its marker and wakes waiters into
//! [`Acquired::Fallback`] — without it, a worker panic would strand
//! the marker and every later acquirer of that key would wait forever.
//!
//! Set [`DISABLE_SCAN_SHARING_ENV`] to opt out: every read degrades to
//! today's independent path with identical results.

use hail_index::IndexedBlock;
use hail_mr::InFlightBlocks;
use hail_sync::{LockRank, OrderedCondvar, OrderedMutex};
use hail_types::{BlockId, DatanodeId};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Environment kill switch: set to a non-empty value other than `0` to
/// disable cooperative scan sharing (every job reads independently, as
/// before this module existed). Registered in [`hail_core::knobs`].
pub const DISABLE_SCAN_SHARING_ENV: &str = hail_core::knobs::DISABLE_SCAN_SHARING.name;

/// The default for scan sharing: on, unless [`DISABLE_SCAN_SHARING_ENV`]
/// turns it off. Delegates to the central knob registry.
pub fn env_scan_sharing_enabled() -> bool {
    hail_core::knobs::scan_sharing_enabled()
}

/// Retained produced-decode cap (entries, not bytes): a backstop for
/// registries running without an in-flight tracker, where no drain
/// signal bounds retention.
pub const RETAINED_CAP: usize = 256;

/// The access-path *shape* of a shareable decode: what the producer's
/// decode must have done for a consumer's residual to be valid against
/// it. Part of the registry key — reads with different shapes never
/// share.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShareShape {
    /// Full sequential replica read with checksum verification, parsed
    /// as an `IndexedBlock` (the PAX [`crate::path::FullScan`]).
    PaxVerified,
    /// Unverified whole-replica peek parsed as an `IndexedBlock` (the
    /// [`crate::path::ClusteredIndexScan`], which prices index +
    /// partition ranges itself).
    PaxPeek,
}

/// One decoded block, shareable across jobs. Immutable by construction:
/// consumers only read it.
#[derive(Clone)]
pub struct DecodedBlock {
    indexed: Arc<IndexedBlock>,
}

impl DecodedBlock {
    pub fn new(indexed: IndexedBlock) -> Self {
        DecodedBlock {
            indexed: Arc::new(indexed),
        }
    }

    pub fn indexed(&self) -> &IndexedBlock {
        &self.indexed
    }
}

/// Registry key: a decode is shareable only between reads of the same
/// block, from the same replica, with the same access-path shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShareKey {
    pub block: BlockId,
    pub replica: DatanodeId,
    pub shape: ShareShape,
}

/// Outcome of [`ScanShareRegistry::acquire`].
pub enum Acquired {
    /// This caller decoded the block; the decode is now published for
    /// others to attach to.
    Produced(DecodedBlock),
    /// Another job's decode served this caller.
    Attached(DecodedBlock),
    /// No shared decode is (or became) available — read independently.
    Fallback,
}

enum Entry {
    /// A producer is decoding; `waiters` callers block on the condvar.
    InFlight,
    /// A published decode, retained for late attachers.
    Produced { decoded: DecodedBlock, tick: u64 },
}

/// RAII ownership of an [`Entry::InFlight`] marker: while `armed`,
/// dropping (including during panic unwinding) removes the marker and
/// wakes waiters so they fall back to independent reads.
struct MarkerCleanup<'a> {
    registry: &'a ScanShareRegistry,
    key: ShareKey,
    armed: bool,
}

impl Drop for MarkerCleanup<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.registry.entries.acquire().remove(&self.key);
            self.registry.published.notify_all();
        }
    }
}

#[derive(Default)]
struct Telemetry {
    produced: AtomicU64,
    attached: AtomicU64,
    fallback: AtomicU64,
}

/// Point-in-time registry counters (telemetry; see the module docs for
/// why these are outside the determinism contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShareStats {
    /// Physical decodes performed through the registry.
    pub produced: u64,
    /// Reads served by attaching to another job's decode.
    pub attached: u64,
    /// Reads that fell back to an independent path (producer failure).
    pub fallback: u64,
}

/// The shared block-read service. See the module docs for the
/// protocol; one registry is shared by every job of a
/// [`crate::executor::JobPool`] (see [`crate::formats::shared_job_pool`]).
pub struct ScanShareRegistry {
    entries: OrderedMutex<HashMap<ShareKey, Entry>>,
    published: OrderedCondvar,
    tick: AtomicU64,
    telemetry: Telemetry,
    /// Trackers already subscribed to (ptr-identity dedup, so repeated
    /// batch wiring never stacks duplicate observers). Same leaf rank
    /// as `entries`; the two are never held together.
    attached_trackers: OrderedMutex<Vec<Weak<InFlightBlocks>>>,
}

impl fmt::Debug for ScanShareRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("ScanShareRegistry")
            .field("retained", &self.retained())
            .field("produced", &stats.produced)
            .field("attached", &stats.attached)
            .field("fallback", &stats.fallback)
            .finish()
    }
}

impl Default for ScanShareRegistry {
    fn default() -> Self {
        ScanShareRegistry {
            entries: OrderedMutex::new(
                LockRank::ShareRegistry,
                "scan-share-entries",
                HashMap::new(),
            ),
            published: OrderedCondvar::new(),
            tick: AtomicU64::new(0),
            telemetry: Telemetry::default(),
            attached_trackers: OrderedMutex::new(
                LockRank::ShareRegistry,
                "scan-share-trackers",
                Vec::new(),
            ),
        }
    }
}

impl ScanShareRegistry {
    pub fn new() -> Self {
        ScanShareRegistry::default()
    }

    /// One shared read of `key`: attach to a published decode, wait for
    /// an in-flight producer, or become the producer by running
    /// `produce` (outside the registry lock). A producer error — or
    /// panic — removes the marker and wakes waiters with
    /// [`Acquired::Fallback`]; the error itself is returned only to the
    /// producer, so each caller still surfaces its own failures.
    pub fn acquire<E>(
        &self,
        key: ShareKey,
        produce: impl FnOnce() -> std::result::Result<DecodedBlock, E>,
    ) -> std::result::Result<Acquired, E> {
        {
            let mut entries = self.entries.acquire();
            loop {
                match entries.get(&key) {
                    Some(Entry::Produced { decoded, .. }) => {
                        self.telemetry.attached.fetch_add(1, Ordering::Relaxed);
                        return Ok(Acquired::Attached(decoded.clone()));
                    }
                    Some(Entry::InFlight) => {
                        // Producer in flight: wait for it to publish or
                        // fail. The condvar releases the registry lock,
                        // and the producer never blocks on the registry
                        // while decoding, so this always makes progress.
                        entries = self.published.wait(entries);
                        if entries.get(&key).is_none() {
                            // Producer failed and removed its marker:
                            // read independently rather than racing to
                            // re-produce behind its error.
                            self.telemetry.fallback.fetch_add(1, Ordering::Relaxed);
                            return Ok(Acquired::Fallback);
                        }
                    }
                    None => {
                        entries.insert(key, Entry::InFlight);
                        break;
                    }
                }
            }
        }
        // From here this caller owns the in-flight marker. The cleanup
        // guard removes it and wakes waiters on *any* exit that did not
        // publish — error return or unwinding panic alike — so a dying
        // producer can never strand waiters on a marker nobody owns.
        let mut cleanup = MarkerCleanup {
            registry: self,
            key,
            armed: true,
        };
        // Produce outside the lock (this is the actual read + decode,
        // done while holding the caller's NodeGate permit like any
        // independent read).
        let decoded = produce()?;
        cleanup.armed = false;
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.acquire();
        entries.insert(
            key,
            Entry::Produced {
                decoded: decoded.clone(),
                tick,
            },
        );
        self.enforce_cap(&mut entries);
        drop(entries);
        self.published.notify_all();
        self.telemetry.produced.fetch_add(1, Ordering::Relaxed);
        Ok(Acquired::Produced(decoded))
    }

    /// Evicts every published decode of the given blocks (the in-flight
    /// tracker's drain signal: no admitted job wants them any more).
    /// In-flight markers are left alone — their producer's job still
    /// holds its own interest.
    pub fn evict_blocks(&self, blocks: &[BlockId]) {
        let mut entries = self.entries.acquire();
        entries.retain(|key, entry| {
            !(matches!(entry, Entry::Produced { .. }) && blocks.contains(&key.block))
        });
    }

    /// Drops every published decode. **Must** be called after in-place
    /// replica rewrites (`apply_reindex`): the registry keys on (block,
    /// replica, shape), not content, so a rewrite would otherwise serve
    /// stale decodes to later attachers.
    pub fn clear(&self) {
        self.entries
            .acquire()
            .retain(|_, entry| matches!(entry, Entry::InFlight));
    }

    /// Number of currently retained published decodes.
    pub fn retained(&self) -> usize {
        self.entries
            .acquire()
            .values()
            .filter(|e| matches!(e, Entry::Produced { .. }))
            .count()
    }

    /// Point-in-time telemetry counters.
    pub fn stats(&self) -> ShareStats {
        ShareStats {
            produced: self.telemetry.produced.load(Ordering::Relaxed),
            attached: self.telemetry.attached.load(Ordering::Relaxed),
            fallback: self.telemetry.fallback.load(Ordering::Relaxed),
        }
    }

    /// Subscribes this registry to a manager's in-flight tracker:
    /// drained blocks evict their retained decodes, bounding sharing
    /// windows to admission windows. Idempotent per (registry, tracker)
    /// pair — re-wiring the same batch infrastructure never stacks
    /// observers.
    pub fn attach_in_flight(self: &Arc<Self>, tracker: &Arc<InFlightBlocks>) {
        {
            let mut attached = self.attached_trackers.acquire();
            attached.retain(|w| w.strong_count() > 0);
            if attached
                .iter()
                .any(|w| w.upgrade().is_some_and(|t| Arc::ptr_eq(&t, tracker)))
            {
                return;
            }
            attached.push(Arc::downgrade(tracker));
        }
        let registry = Arc::downgrade(self);
        tracker.on_drained(move |blocks| {
            if let Some(registry) = registry.upgrade() {
                registry.evict_blocks(blocks);
            }
        });
    }

    fn enforce_cap(&self, entries: &mut HashMap<ShareKey, Entry>) {
        loop {
            let produced = entries
                .iter()
                .filter_map(|(k, e)| match e {
                    Entry::Produced { tick, .. } => Some((*tick, *k)),
                    Entry::InFlight => None,
                })
                .collect::<Vec<_>>();
            if produced.len() <= RETAINED_CAP {
                return;
            }
            if let Some(&(_, oldest)) = produced.iter().min_by_key(|(tick, _)| *tick) {
                entries.remove(&oldest);
            } else {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hail_pax::PaxBlockBuilder;
    use hail_types::{DataType, Field, HailError, Result, Schema, StorageConfig};

    fn decoded_block() -> DecodedBlock {
        let schema = Schema::new(vec![Field::new("k", DataType::Int)]).unwrap();
        let mut builder = PaxBlockBuilder::new(schema, StorageConfig::default());
        for line in ["1", "2", "3"] {
            builder.push_line(line).unwrap();
        }
        let pax = builder.finish().unwrap();
        DecodedBlock::new(IndexedBlock::assemble(pax, None).unwrap())
    }

    fn key(block: BlockId) -> ShareKey {
        ShareKey {
            block,
            replica: 0,
            shape: ShareShape::PaxVerified,
        }
    }

    #[test]
    fn produce_then_attach_then_evict() {
        let reg = Arc::new(ScanShareRegistry::new());
        let got = reg
            .acquire::<HailError>(key(1), || Ok(decoded_block()))
            .unwrap();
        assert!(matches!(got, Acquired::Produced(_)));
        // Second acquire attaches without invoking produce.
        let got = reg
            .acquire::<HailError>(key(1), || panic!("must not re-produce"))
            .unwrap();
        assert!(matches!(got, Acquired::Attached(_)));
        assert_eq!(reg.stats().produced, 1);
        assert_eq!(reg.stats().attached, 1);
        assert_eq!(reg.retained(), 1);

        // A different shape is a different key.
        let other = ShareKey {
            shape: ShareShape::PaxPeek,
            ..key(1)
        };
        let got = reg
            .acquire::<HailError>(other, || Ok(decoded_block()))
            .unwrap();
        assert!(matches!(got, Acquired::Produced(_)));

        reg.evict_blocks(&[1]);
        assert_eq!(reg.retained(), 0);
        let got = reg
            .acquire::<HailError>(key(1), || Ok(decoded_block()))
            .unwrap();
        assert!(matches!(got, Acquired::Produced(_)));
    }

    #[test]
    fn producer_failure_falls_back_waiters_and_heals() {
        let reg = Arc::new(ScanShareRegistry::new());
        let barrier = Arc::new(std::sync::Barrier::new(2));

        std::thread::scope(|scope| {
            let producer_reg = Arc::clone(&reg);
            let producer_barrier = Arc::clone(&barrier);
            let producer = scope.spawn(move || {
                producer_reg.acquire(key(9), || -> Result<DecodedBlock> {
                    producer_barrier.wait(); // waiter is about to queue
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    Err(HailError::DeadDatanode(0))
                })
            });
            barrier.wait();
            // This caller finds the in-flight marker and waits; the
            // producer's failure must wake it with Fallback.
            let got = reg
                .acquire::<HailError>(key(9), || panic!("waiter never produces"))
                .unwrap();
            assert!(matches!(got, Acquired::Fallback));
            assert!(matches!(
                producer.join().unwrap(),
                Err(HailError::DeadDatanode(0))
            ));
        });

        // The failed key self-heals: the next acquire produces afresh.
        let got = reg
            .acquire::<HailError>(key(9), || Ok(decoded_block()))
            .unwrap();
        assert!(matches!(got, Acquired::Produced(_)));
        assert_eq!(reg.stats().fallback, 1);
    }

    #[test]
    fn producer_panic_unstrands_waiters_and_heals() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let reg = Arc::new(ScanShareRegistry::new());
        let barrier = Arc::new(std::sync::Barrier::new(2));

        std::thread::scope(|scope| {
            let producer_reg = Arc::clone(&reg);
            let producer_barrier = Arc::clone(&barrier);
            let producer = scope.spawn(move || {
                catch_unwind(AssertUnwindSafe(|| {
                    let _ = producer_reg.acquire(key(11), || -> Result<DecodedBlock> {
                        producer_barrier.wait(); // waiter is about to queue
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        panic!("producer dies mid-decode");
                    });
                }))
            });
            barrier.wait();
            // Without the RAII marker cleanup this wait would hang
            // forever on the stranded InFlight marker.
            let got = reg
                .acquire::<HailError>(key(11), || panic!("waiter never produces"))
                .unwrap();
            assert!(matches!(got, Acquired::Fallback));
            assert!(producer.join().unwrap().is_err(), "producer panicked");
        });

        // The panicked key self-heals: the next acquire produces afresh.
        let got = reg
            .acquire::<HailError>(key(11), || Ok(decoded_block()))
            .unwrap();
        assert!(matches!(got, Acquired::Produced(_)));
        assert_eq!(reg.stats().fallback, 1);
    }

    #[test]
    fn clear_drops_everything_and_cap_bounds_retention() {
        let reg = ScanShareRegistry::new();
        for b in 0..(RETAINED_CAP as u64 + 10) {
            reg.acquire::<HailError>(key(b), || Ok(decoded_block()))
                .unwrap();
        }
        assert_eq!(reg.retained(), RETAINED_CAP);
        // The oldest entries were the ones evicted.
        assert!(matches!(
            reg.acquire::<HailError>(key(0), || Ok(decoded_block()))
                .unwrap(),
            Acquired::Produced(_)
        ));
        reg.clear();
        assert_eq!(reg.retained(), 0);
    }

    #[test]
    fn drain_signal_evicts_via_attached_tracker() {
        let reg = Arc::new(ScanShareRegistry::new());
        let tracker = Arc::new(InFlightBlocks::new());
        reg.attach_in_flight(&tracker);
        reg.attach_in_flight(&tracker); // idempotent
        assert_eq!(tracker.observer_count(), 1);

        let guard = tracker.register(&[3]);
        reg.acquire::<HailError>(key(3), || Ok(decoded_block()))
            .unwrap();
        assert_eq!(reg.retained(), 1);
        drop(guard); // drains block 3 → evicts its decode
        assert_eq!(reg.retained(), 0);
    }

    #[test]
    fn env_knob_reports_a_bool() {
        // Just exercise the parse; CI runs the suite with the knob set.
        let _ = env_scan_sharing_enabled();
    }
}
