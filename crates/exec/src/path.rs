//! The [`AccessPath`] trait: every physical way of reading one block
//! replica at query time, behind one interface.
//!
//! These implementations are the former `hail-core` record readers
//! (`HailRecordReader`, the Hadoop text reader, the Hadoop++ trojan
//! reader) plus the §3.5 extension indexes, refactored to a common
//! shape so the [`crate::planner::QueryPlanner`] can choose between
//! them per block and per replica:
//!
//! - [`FullScan`] — stream the whole replica (text, PAX, or row layout)
//! - [`ClusteredIndexScan`] — HAIL's sparse clustered index (§4.3)
//! - [`TrojanIndexScan`] — Hadoop++'s dense in-header index (§5)
//! - [`BitmapScan`] — sidecar bitmap over a low-cardinality column
//! - [`InvertedListScan`] — sidecar inverted list over bad records
//!
//! An access path receives a fully resolved [`BlockAccess`] (the block,
//! the serving replica, the task's node) and performs the read: real
//! bytes, real filtering, and cost accounting into a [`TaskStats`] —
//! including, where the read can attribute its row counts to a single
//! filter column, a [`SelectivityObservation`] that feeds the planner's
//! [`crate::cache::SelectivityFeedback`] store.

use crate::sharing::{DecodedBlock, ShareShape};
use hail_core::{CmpOp, HailQuery, Predicate, RowBlock};
use hail_dfs::DfsCluster;
use hail_index::{IndexKind, IndexedBlock, UnclusteredIndex};
use hail_mr::{MapRecord, SelectivityObservation, TaskStats};
use hail_pax::PaxBlock;
use hail_sim::CostLedger;
use hail_types::{AccessPathKind, BlockId, DatanodeId, HailError, Result, Schema, Value};
use std::fmt;

/// Everything an access path needs to read one block.
pub struct BlockAccess<'a> {
    pub cluster: &'a DfsCluster,
    pub block: BlockId,
    /// The replica (datanode) serving the read, resolved by the planner.
    pub replica: DatanodeId,
    /// The node the map task runs on; remote reads charge the network.
    pub task_node: DatanodeId,
    pub schema: &'a Schema,
    pub query: &'a HailQuery,
}

impl BlockAccess<'_> {
    /// Charges remote traffic when the serving replica is not local.
    fn charge_remote(&self, stats: &mut TaskStats, bytes: u64) {
        if self.replica != self.task_node {
            stats.ledger.net_sent += bytes;
        }
    }
}

/// One physical way of reading a block replica.
pub trait AccessPath: fmt::Debug {
    /// The path's kind, for plan explanation and task statistics.
    fn kind(&self) -> AccessPathKind;

    /// Human-readable description for `EXPLAIN` output, e.g.
    /// `clustered-index-scan(@3)`.
    fn describe(&self) -> String {
        self.kind().to_string()
    }

    /// The sidecar extension index this path reads from the serving
    /// replica, if any. The planner's locality resolution only reroutes
    /// a sidecar path to a node whose own replica stores this sidecar
    /// (per the namenode's `Dir_rep`).
    fn required_sidecar(&self) -> Option<IndexKind> {
        None
    }

    /// Reads the block via this path, emitting qualifying records and
    /// returning the task statistics (with [`TaskStats::paths`] already
    /// recording this read).
    fn execute(
        &self,
        access: &BlockAccess<'_>,
        emit: &mut dyn FnMut(MapRecord),
    ) -> Result<TaskStats>;

    /// The scan-share shape of this path's decode, if the read splits
    /// into "produce decoded block" + "apply residual" so concurrent
    /// jobs can share one physical decode. `None` (the default) means
    /// the path never shares and always executes independently.
    fn share_shape(&self) -> Option<ShareShape> {
        None
    }

    /// Performs only the physical decode of this path's read — the part
    /// one producer can do on behalf of every attached consumer. Must
    /// behave exactly like the decode inside [`AccessPath::execute`]
    /// (same checksum verification, same failure modes); the I/O cost
    /// is *not* charged here but replayed per consumer by
    /// [`AccessPath::apply_residual`], so each job's ledger is
    /// bit-for-bit what a solo read records. Only meaningful when
    /// [`AccessPath::share_shape`] is `Some`.
    fn produce_decoded(&self, _access: &BlockAccess<'_>) -> Result<DecodedBlock> {
        Err(HailError::Internal(
            "access path does not support scan sharing".into(),
        ))
    }

    /// Applies this path's residual work — cost accounting, predicate
    /// evaluation, projection, record emission — against an
    /// already-decoded block of this path's [`AccessPath::share_shape`].
    /// `execute` == `produce_decoded` + `apply_residual` by
    /// construction: shareable paths implement `execute` as exactly
    /// that composition, so a shared read cannot diverge from a solo
    /// one. Returns stats with [`TaskStats::paths`] recorded.
    fn apply_residual(
        &self,
        _decoded: &DecodedBlock,
        _access: &BlockAccess<'_>,
        _emit: &mut dyn FnMut(MapRecord),
    ) -> Result<TaskStats> {
        Err(HailError::Internal(
            "access path does not support scan sharing".into(),
        ))
    }
}

/// The physical layout a [`FullScan`] streams over. Mirrors
/// `hail_core::DatasetFormat` but lives at the access-path layer so the
/// scan knows how to decode what it reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanLayout {
    /// Raw delimited text (standard Hadoop): split every line.
    Text { delimiter: char },
    /// HAIL PAX container (sorted or not).
    HailPax,
    /// Hadoop++ binary row layout.
    RowLayout,
}

/// Streams the whole replica, filters row by row, reconstructs the
/// projection. Works on all three storage layouts.
#[derive(Debug, Clone, Copy)]
pub struct FullScan {
    pub layout: ScanLayout,
}

impl FullScan {
    pub fn new(layout: ScanLayout) -> Self {
        FullScan { layout }
    }

    fn scan_text(
        &self,
        a: &BlockAccess<'_>,
        delimiter: char,
        emit: &mut dyn FnMut(MapRecord),
    ) -> Result<TaskStats> {
        let dn = a.cluster.datanode(a.replica)?;
        let mut stats = TaskStats::default();
        let bytes = dn.read_replica(a.block, &mut stats.ledger)?;
        // Every record is split into strings and compared — CPU over the
        // whole block (the expensive `v.toString().split(",")` of §4.1).
        stats.ledger.scan_cpu += bytes.len() as u64;
        a.charge_remote(&mut stats, bytes.len() as u64);
        let text = std::str::from_utf8(&bytes)
            .map_err(|_| HailError::Corrupt("text block is not UTF-8".into()))?;
        let (mut matched, mut total) = (0u64, 0u64);
        let projection = a.query.projected_columns(a.schema);
        for line in text.lines() {
            match hail_types::parse_line(line, a.schema, delimiter) {
                hail_types::ParsedRecord::Good(row) => {
                    total += 1;
                    if a.query.matches(&row) {
                        matched += 1;
                        emit(MapRecord::good(row.project(&projection)));
                        stats.records += 1;
                    }
                }
                hail_types::ParsedRecord::Bad { line, .. } => {
                    emit(MapRecord::bad(line));
                    stats.records += 1;
                }
            }
        }
        if let Some((column, eq)) = sole_filter_column(a.query) {
            stats.selectivity.push(SelectivityObservation {
                column,
                eq,
                matched,
                total,
            });
        }
        Ok(stats)
    }

    fn scan_rows(&self, a: &BlockAccess<'_>, emit: &mut dyn FnMut(MapRecord)) -> Result<TaskStats> {
        let dn = a.cluster.datanode(a.replica)?;
        let bytes = dn.peek_replica(a.block)?;
        let row_block = RowBlock::parse(bytes)?;
        let mut stats = TaskStats::default();
        let blen = row_block.byte_len();
        dn.charge_range_read(blen, &mut stats.ledger)?;
        stats.ledger.scan_cpu += blen as u64;
        a.charge_remote(&mut stats, blen as u64);
        let mut matched = 0u64;
        let projection = a.query.projected_columns(a.schema);
        for r in 0..row_block.row_count() {
            let row = row_block.row(a.schema, r)?;
            if a.query.matches(&row) {
                matched += 1;
                emit(MapRecord::good(row.project(&projection)));
                stats.records += 1;
            }
        }
        if let Some((column, eq)) = sole_filter_column(a.query) {
            stats.selectivity.push(SelectivityObservation {
                column,
                eq,
                matched,
                total: row_block.row_count() as u64,
            });
        }
        for bad in row_block.bad_records(a.schema)? {
            emit(MapRecord::bad(bad));
            stats.records += 1;
        }
        Ok(stats)
    }
}

impl AccessPath for FullScan {
    fn kind(&self) -> AccessPathKind {
        AccessPathKind::FullScan
    }

    fn describe(&self) -> String {
        match self.layout {
            ScanLayout::Text { .. } => "full-scan(text)".into(),
            ScanLayout::HailPax => "full-scan(pax)".into(),
            ScanLayout::RowLayout => "full-scan(rows)".into(),
        }
    }

    fn execute(
        &self,
        access: &BlockAccess<'_>,
        emit: &mut dyn FnMut(MapRecord),
    ) -> Result<TaskStats> {
        let mut stats = match self.layout {
            ScanLayout::Text { delimiter } => self.scan_text(access, delimiter, emit)?,
            ScanLayout::HailPax => {
                // The PAX scan is the produce + residual composition, so
                // shared and solo reads cannot diverge.
                let decoded = self.produce_decoded(access)?;
                return self.apply_residual(&decoded, access, emit);
            }
            ScanLayout::RowLayout => self.scan_rows(access, emit)?,
        };
        stats.paths.record(self.kind());
        Ok(stats)
    }

    fn share_shape(&self) -> Option<ShareShape> {
        (self.layout == ScanLayout::HailPax).then_some(ShareShape::PaxVerified)
    }

    fn produce_decoded(&self, a: &BlockAccess<'_>) -> Result<DecodedBlock> {
        if self.layout != ScanLayout::HailPax {
            return Err(HailError::Internal(
                "full scan shares only the PAX layout".into(),
            ));
        }
        let dn = a.cluster.datanode(a.replica)?;
        // The same checksum-verified read a solo scan performs; the
        // scratch ledger is discarded because every consumer — producer
        // included — replays the identical charge via
        // `charge_replica_read` in `apply_residual`.
        let mut scratch = CostLedger::default();
        let bytes = dn.read_replica(a.block, &mut scratch)?;
        Ok(DecodedBlock::new(IndexedBlock::parse(bytes)?))
    }

    fn apply_residual(
        &self,
        decoded: &DecodedBlock,
        a: &BlockAccess<'_>,
        emit: &mut dyn FnMut(MapRecord),
    ) -> Result<TaskStats> {
        if self.layout != ScanLayout::HailPax {
            return Err(HailError::Internal(
                "full scan shares only the PAX layout".into(),
            ));
        }
        let dn = a.cluster.datanode(a.replica)?;
        let mut stats = TaskStats::default();
        dn.charge_replica_read(a.block, &mut stats.ledger)?;
        let indexed = decoded.indexed();
        let pax = indexed.pax();

        // Predicate evaluation + tuple reconstruction stream over the
        // block.
        stats.ledger.scan_cpu += pax.byte_len() as u64;
        a.charge_remote(&mut stats, pax.byte_len() as u64);

        // When the whole conjunction sits on one column, the match count
        // below doubles as that column's selectivity observation — no
        // extra per-row decode.
        let mut matched = 0u64;
        let projection = a.query.projected_columns(a.schema);
        for row in 0..pax.row_count() {
            if full_predicate_match(a.query, pax, row)? {
                matched += 1;
                emit(MapRecord::good(pax.reconstruct(row, &projection)?));
                stats.records += 1;
            }
        }
        if let Some((column, eq)) = sole_filter_column(a.query) {
            stats.selectivity.push(SelectivityObservation {
                column,
                eq,
                matched,
                total: pax.row_count() as u64,
            });
        }
        emit_pax_bad_records(indexed, &mut stats, emit)?;
        stats.paths.record(self.kind());
        Ok(stats)
    }
}

/// HAIL's sparse clustered index scan (§4.3): read the few-KB index into
/// memory, resolve the first and last qualifying partition in memory,
/// read *only those partitions* of the needed columns, post-filter with
/// the full conjunction, reconstruct PAX → rows.
#[derive(Debug, Clone, Copy)]
pub struct ClusteredIndexScan {
    /// The 0-based column the chosen replica is clustered on.
    pub column: usize,
}

impl AccessPath for ClusteredIndexScan {
    fn kind(&self) -> AccessPathKind {
        AccessPathKind::ClusteredIndexScan
    }

    fn describe(&self) -> String {
        format!("clustered-index-scan(@{})", self.column + 1)
    }

    fn execute(&self, a: &BlockAccess<'_>, emit: &mut dyn FnMut(MapRecord)) -> Result<TaskStats> {
        // Produce + residual composition — identical to a shared read.
        let decoded = self.produce_decoded(a)?;
        self.apply_residual(&decoded, a, emit)
    }

    fn share_shape(&self) -> Option<ShareShape> {
        Some(ShareShape::PaxPeek)
    }

    fn produce_decoded(&self, a: &BlockAccess<'_>) -> Result<DecodedBlock> {
        let dn = a.cluster.datanode(a.replica)?;
        let bytes = dn.peek_replica(a.block)?;
        Ok(DecodedBlock::new(IndexedBlock::parse(bytes)?))
    }

    fn apply_residual(
        &self,
        decoded: &DecodedBlock,
        a: &BlockAccess<'_>,
        emit: &mut dyn FnMut(MapRecord),
    ) -> Result<TaskStats> {
        let dn = a.cluster.datanode(a.replica)?;
        let indexed = decoded.indexed();
        let index = indexed
            .index()
            .ok_or_else(|| HailError::Internal("replica advertised an index it lacks".into()))?;
        let pax = indexed.pax();

        let mut stats = TaskStats {
            serial_pricing: true,
            ..Default::default()
        };

        // Read the whole index into main memory ("typically a few KB").
        dn.charge_range_read(indexed.metadata().index_bytes, &mut stats.ledger)?;
        let mut remote_bytes = indexed.metadata().index_bytes as u64;

        let bounds = a
            .query
            .bounds_on(self.column)
            .ok_or_else(|| HailError::Internal("index scan without predicate".into()))?;

        // The index is clustered and sound: every row satisfying the
        // bounds lies inside the qualifying partitions, so counting
        // bound matches there observes the key column's true per-block
        // selectivity — the feedback the planner's estimates learn from.
        let mut bounds_matched = 0u64;
        if let Some((first, last)) = index.lookup(&bounds) {
            let needed = a.query.needed_columns(a.schema);
            let scan_bytes = pax.partition_scan_bytes(&needed, first, last)?;
            // The qualifying leaves are contiguous on disk: one seek + one
            // sequential read per column region.
            for _ in &needed {
                dn.charge_range_read(0, &mut stats.ledger)?; // seek per column
            }
            stats.ledger.disk_read += scan_bytes as u64;
            remote_bytes += scan_bytes as u64;
            // Post-filtering + PAX→row reconstruction over what was read.
            stats.ledger.scan_cpu += scan_bytes as u64;

            let projection = a.query.projected_columns(a.schema);
            for row in index.partition_rows(first, last) {
                let key = pax.value(self.column, row)?;
                if !bounds.contains(&key) {
                    continue;
                }
                bounds_matched += 1;
                // Post-filter with the *full* conjunction — other
                // predicates may touch other columns or even the index
                // column again (e.g. `@4 >= 1 and @4 <= 10`).
                if !full_predicate_match(a.query, pax, row)? {
                    continue;
                }
                emit(MapRecord::good(pax.reconstruct(row, &projection)?));
                stats.records += 1;
            }
        }
        stats.selectivity.push(SelectivityObservation {
            column: self.column,
            eq: crate::cache::has_eq_on(a.query, self.column),
            matched: bounds_matched,
            total: pax.row_count() as u64,
        });

        // Bad records ride along to the map function (§4.3).
        emit_pax_bad_records(indexed, &mut stats, emit)?;
        a.charge_remote(&mut stats, remote_bytes);
        stats.paths.record(self.kind());
        Ok(stats)
    }
}

/// Hadoop++'s trojan index scan (§5): read the (large) in-header index,
/// resolve the qualifying row range, read those rows from the binary row
/// layout, post-filter.
#[derive(Debug, Clone, Copy)]
pub struct TrojanIndexScan {
    /// The block's trojan key column.
    pub column: usize,
}

impl AccessPath for TrojanIndexScan {
    fn kind(&self) -> AccessPathKind {
        AccessPathKind::TrojanIndexScan
    }

    fn describe(&self) -> String {
        format!("trojan-index-scan(@{})", self.column + 1)
    }

    fn execute(&self, a: &BlockAccess<'_>, emit: &mut dyn FnMut(MapRecord)) -> Result<TaskStats> {
        let dn = a.cluster.datanode(a.replica)?;
        let bytes = dn.peek_replica(a.block)?;
        let row_block = RowBlock::parse(bytes)?;
        let index = row_block.index().ok_or_else(|| {
            HailError::Internal("block advertised a trojan index it lacks".into())
        })?;
        let bounds = a
            .query
            .bounds_on(self.column)
            .ok_or_else(|| HailError::Internal("trojan scan without predicate".into()))?;

        let mut stats = TaskStats {
            serial_pricing: true,
            ..Default::default()
        };
        // Read the (≈150× larger than HAIL's) trojan index into memory.
        dn.charge_range_read(row_block.header_bytes(), &mut stats.ledger)?;
        let mut remote_bytes = row_block.header_bytes() as u64;

        let projection = a.query.projected_columns(a.schema);
        // The dense trojan index is sound too: all bound matches lie in
        // the looked-up range, so the bound-match count there is the key
        // column's observed per-block selectivity.
        let mut bounds_matched = 0u64;
        if let Some(range) = index.lookup_rows(&bounds) {
            let scan_bytes =
                row_block.row_range_bytes(a.schema, range.start, range.end)? + 4 * range.len(); // the offsets slice for the range
            dn.charge_range_read(scan_bytes, &mut stats.ledger)?;
            remote_bytes += scan_bytes as u64;
            stats.ledger.scan_cpu += scan_bytes as u64;
            for r in range {
                if r >= row_block.row_count() {
                    break;
                }
                let row = row_block.row(a.schema, r)?;
                if row.get(self.column).is_some_and(|v| bounds.contains(v)) {
                    bounds_matched += 1;
                }
                if a.query.matches(&row) {
                    emit(MapRecord::good(row.project(&projection)));
                    stats.records += 1;
                }
            }
        }
        stats.selectivity.push(SelectivityObservation {
            column: self.column,
            eq: crate::cache::has_eq_on(a.query, self.column),
            matched: bounds_matched,
            total: row_block.row_count() as u64,
        });

        for bad in row_block.bad_records(a.schema)? {
            emit(MapRecord::bad(bad));
            stats.records += 1;
        }
        a.charge_remote(&mut stats, remote_bytes);
        stats.paths.record(self.kind());
        Ok(stats)
    }
}

/// Sidecar bitmap scan over a low-cardinality column (§3.5): read the
/// *persisted* bitmap sidecar stored with the replica, probe it in
/// memory, then fetch only the matching rows. Sort-order independent,
/// so it can serve any replica whose `Dir_rep` entry carries the
/// sidecar; the planner never routes it elsewhere.
#[derive(Debug, Clone, Copy)]
pub struct BitmapScan {
    /// The bitmap-indexed 0-based column.
    pub column: usize,
}

impl BitmapScan {
    /// The equality value this scan probes, from the query's first `=`
    /// predicate on the bitmap column.
    fn probe_value(&self, query: &HailQuery) -> Option<Value> {
        query.predicates.iter().find_map(|p| match p {
            Predicate::Cmp {
                column,
                op: CmpOp::Eq,
                value,
            } if *column == self.column => Some(value.clone()),
            _ => None,
        })
    }
}

impl AccessPath for BitmapScan {
    fn kind(&self) -> AccessPathKind {
        AccessPathKind::BitmapScan
    }

    fn describe(&self) -> String {
        format!("bitmap-scan(@{})", self.column + 1)
    }

    fn required_sidecar(&self) -> Option<IndexKind> {
        Some(IndexKind::Bitmap {
            column: self.column,
        })
    }

    fn execute(&self, a: &BlockAccess<'_>, emit: &mut dyn FnMut(MapRecord)) -> Result<TaskStats> {
        let probe = self
            .probe_value(a.query)
            .ok_or_else(|| HailError::Internal("bitmap scan without equality predicate".into()))?;
        let dn = a.cluster.datanode(a.replica)?;
        let bytes = dn.peek_replica(a.block)?;
        let indexed = IndexedBlock::parse(bytes)?;
        let pax = indexed.pax();

        // The sidecar was built at upload time and stored with the
        // replica; a replica routed here without one is a planner or
        // directory bug, not something to paper over by rebuilding.
        let (sidecar, bitmap) = indexed.bitmap_sidecar(self.column)?.ok_or_else(|| {
            HailError::Internal("replica advertised a bitmap sidecar it lacks".into())
        })?;
        let sidecar_bytes = sidecar.sidecar_bytes;

        let mut stats = TaskStats {
            serial_pricing: true,
            ..Default::default()
        };
        dn.charge_range_read(sidecar_bytes, &mut stats.ledger)?;
        stats.sidecar_bytes_read += sidecar_bytes as u64;
        let mut remote_bytes = sidecar_bytes as u64;

        let rows = bitmap.rows_equal(&probe);
        // The bitmap gives the equality predicate's exact match count —
        // the observed selectivity of the probe on this column.
        stats.selectivity.push(SelectivityObservation {
            column: self.column,
            eq: true,
            matched: rows.len() as u64,
            total: pax.row_count() as u64,
        });
        // Matching rows cluster into runs; each run costs one seek, and
        // the fetched bytes are charged per reconstructed row.
        stats.ledger.seeks += UnclusteredIndex::seek_count(&rows) as u64;

        let projection = a.query.projected_columns(a.schema);
        for row in rows {
            if !full_predicate_match(a.query, pax, row)? {
                continue;
            }
            let out = pax.reconstruct(row, &projection)?;
            let row_bytes = out.encoded_len() as u64;
            stats.ledger.disk_read += row_bytes;
            stats.ledger.scan_cpu += row_bytes;
            remote_bytes += row_bytes;
            emit(MapRecord::good(out));
            stats.records += 1;
        }

        emit_pax_bad_records(&indexed, &mut stats, emit)?;
        a.charge_remote(&mut stats, remote_bytes);
        stats.paths.record(self.kind());
        Ok(stats)
    }
}

/// Sidecar inverted-list scan over the block's bad-record section
/// (§3.5): serve token searches over schema-less records from the
/// *persisted* inverted-list sidecar, without scanning them. Emits
/// *only* matching bad records. An empty token list is the empty
/// conjunction and matches every bad record (see
/// [`hail_index::InvertedList::search_all`]).
#[derive(Debug, Clone)]
pub struct InvertedListScan {
    /// Tokens every returned bad record must contain (conjunctive).
    pub tokens: Vec<String>,
}

impl AccessPath for InvertedListScan {
    fn kind(&self) -> AccessPathKind {
        AccessPathKind::InvertedListScan
    }

    fn describe(&self) -> String {
        format!("inverted-list-scan({})", self.tokens.join(" & "))
    }

    fn required_sidecar(&self) -> Option<IndexKind> {
        Some(IndexKind::InvertedList)
    }

    fn execute(&self, a: &BlockAccess<'_>, emit: &mut dyn FnMut(MapRecord)) -> Result<TaskStats> {
        let dn = a.cluster.datanode(a.replica)?;
        let bytes = dn.peek_replica(a.block)?;
        let indexed = IndexedBlock::parse(bytes)?;

        // Read the persisted sidecar; the replica must carry it or the
        // planner mis-routed the read.
        let (sidecar, list) = indexed.inverted_list_sidecar()?.ok_or_else(|| {
            HailError::Internal("replica advertised an inverted-list sidecar it lacks".into())
        })?;
        let sidecar_bytes = sidecar.sidecar_bytes;

        let mut stats = TaskStats {
            serial_pricing: true,
            ..Default::default()
        };
        dn.charge_range_read(sidecar_bytes, &mut stats.ledger)?;
        stats.sidecar_bytes_read += sidecar_bytes as u64;
        let mut remote_bytes = sidecar_bytes as u64;

        let token_refs: Vec<&str> = self.tokens.iter().map(String::as_str).collect();
        let hits = list.search_all(&token_refs);
        // Only the matching bad records are fetched from the block.
        if !hits.is_empty() {
            let bad = indexed.pax().bad_records()?;
            for id in hits {
                let line = &bad[id as usize];
                let line_bytes = line.len() as u64;
                stats.ledger.disk_read += line_bytes;
                remote_bytes += line_bytes;
                emit(MapRecord::bad(line.clone()));
                stats.records += 1;
            }
        }
        a.charge_remote(&mut stats, remote_bytes);
        stats.paths.record(self.kind());
        Ok(stats)
    }
}

/// The one column a full scan can attribute its match counts to — and
/// its predicate class: `Some((column, eq))` only when *every* predicate
/// is index-friendly and on that one column, so the full conjunction's
/// match count *is* the column's bound-match count and no extra
/// per-row decode is needed. Conjunctions over several columns (or with
/// an unattributable `!=`) yield `None` — attributing the combined
/// selectivity to one column would poison the per-column feedback.
pub(crate) fn sole_filter_column(query: &HailQuery) -> Option<(usize, bool)> {
    let column = query.predicates.first()?.column();
    query
        .predicates
        .iter()
        .all(|p| p.column() == column && p.index_friendly())
        .then(|| (column, crate::cache::has_eq_on(query, column)))
}

/// Evaluates the query's full conjunction against one PAX row.
/// Decode errors propagate: a corrupt block must fail the read rather
/// than silently dropping rows that no longer decode.
fn full_predicate_match(query: &HailQuery, pax: &PaxBlock, row: usize) -> Result<bool> {
    for p in &query.predicates {
        if !p.matches_value(&pax.value(p.column(), row)?) {
            return Ok(false);
        }
    }
    Ok(true)
}

fn emit_pax_bad_records(
    indexed: &IndexedBlock,
    stats: &mut TaskStats,
    emit: &mut dyn FnMut(MapRecord),
) -> Result<()> {
    for bad in indexed.pax().bad_records()? {
        emit(MapRecord::bad(bad));
        stats.records += 1;
    }
    Ok(())
}
