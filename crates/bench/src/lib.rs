//! # hail-bench
//!
//! The experiment harness: every table and figure of the paper's §6 has
//! a bench target under `benches/` that prints a paper-vs-measured
//! report, plus repo-grown targets such as `planning_overhead` (the
//! stateless planner vs the warm fingerprinted plan cache).
//!
//! - [`setup`] — scaled testbeds, per-system upload, query execution
//! - [`report`] — table rendering
//! - [`paper`] — the paper's reported numbers, transcribed

#![forbid(unsafe_code)]

pub mod paper;
pub mod report;
pub mod setup;

pub use report::{json_mode, BenchSummary, Report, ReportRow};
pub use setup::{
    make_shared_format, run_adaptive_workload, run_queries_managed, run_query, run_query_at,
    run_query_overlapped, run_query_with_failure, setup_hadoop, setup_hail, setup_hail_with_config,
    setup_hpp, syn_testbed, uv_testbed, AdaptiveRun, BatchSummary, ExperimentScale, ManagedBatch,
    ReindexEvent, SharedJobInfra, SystemSetup, Testbed, LOGICAL_BLOCK,
};
