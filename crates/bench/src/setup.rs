//! Shared experiment infrastructure: scaled testbeds, per-system setup
//! (upload), and query execution.
//!
//! Experiments materialize real data at laptop scale. A testbed fixes
//! the mapping: `blocks_per_node` determines the real block size, and
//! the cost model's [`ScaleFactor`] maps each real block onto the
//! paper's 64 MB logical block. Structural quantities — block counts,
//! waves, seeks, packets-per-block — are preserved; byte-denominated
//! quantities are scaled.

use hail_core::{
    upload_hadoop, upload_hadoop_plus_plus, upload_hail, upload_seconds, Dataset, DatasetFormat,
    HailQuery, HppUploadReport,
};
use hail_dfs::DfsCluster;
use hail_exec::{
    apply_reindex, shared_job_pool, ExecutorConfig, HadoopInputFormat, HadoopPlusPlusInputFormat,
    HailInputFormat, JobPool, PlanCache, ReindexAdvisor, ReindexOutcome, SelectivityFeedback,
};
use hail_index::ReplicaIndexConfig;
use hail_mr::{run_map_job, InputFormat, JobManager, JobRun, MapJob};
use hail_sim::{ClusterSpec, HardwareProfile, ScaleFactor};
use hail_types::{DatanodeId, Result, Schema, StorageConfig};
use hail_workloads::{SyntheticGenerator, UserVisitsGenerator};
use std::sync::Arc;

/// The paper's logical block size (64 MB).
pub const LOGICAL_BLOCK: usize = 64 * 1024 * 1024;

/// How an experiment materializes a dataset.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentScale {
    pub nodes: usize,
    pub rows_per_node: usize,
    /// Logical blocks each node's portion is cut into (block size
    /// follows from the text volume).
    pub blocks_per_node: usize,
    /// Values per index partition at this scale (the paper's 1,024 per
    /// 64 MB block ≈ 650 partitions; small blocks need proportionally
    /// small partitions).
    pub index_partition_size: usize,
    pub replication: usize,
}

/// The paper's UserVisits volume: 20 GB/node ÷ 64 MB = 312 blocks/node.
pub const UV_BLOCKS_PER_NODE: usize = 312;
/// The paper's Synthetic volume: 13 GB/node ÷ 64 MB = 203 blocks/node.
pub const SYN_BLOCKS_PER_NODE: usize = 203;

impl ExperimentScale {
    /// Upload-experiment default, structurally matching the paper's
    /// UserVisits setup: every node holds 312 logical 64 MB blocks
    /// (20 GB/node).
    pub fn upload(nodes: usize, rows_per_node: usize) -> Self {
        ExperimentScale {
            nodes,
            rows_per_node,
            blocks_per_node: UV_BLOCKS_PER_NODE,
            index_partition_size: 4,
            replication: 3,
        }
    }

    /// Query-experiment default: same block structure, so the task
    /// count and wave structure match the paper's 3,200-task jobs.
    pub fn query(nodes: usize, rows_per_node: usize) -> Self {
        ExperimentScale {
            nodes,
            rows_per_node,
            blocks_per_node: UV_BLOCKS_PER_NODE,
            index_partition_size: 4,
            replication: 3,
        }
    }

    /// Builder override for the per-node block count (e.g. Synthetic's
    /// 203 blocks/node).
    pub fn with_blocks_per_node(mut self, blocks: usize) -> Self {
        self.blocks_per_node = blocks;
        self
    }

    /// Builder override for the index partition size.
    pub fn with_partition_size(mut self, partition: usize) -> Self {
        self.index_partition_size = partition;
        self
    }
}

/// A generated, scaled experiment environment.
pub struct Testbed {
    pub scale: ExperimentScale,
    pub schema: Schema,
    pub texts: Vec<(DatanodeId, String)>,
    pub storage: StorageConfig,
    pub spec: ClusterSpec,
}

fn build_testbed(
    scale: ExperimentScale,
    profile: HardwareProfile,
    schema: Schema,
    texts: Vec<(DatanodeId, String)>,
) -> Testbed {
    let per_node_bytes = texts.first().map(|(_, t)| t.len()).unwrap_or(1);
    let real_block = (per_node_bytes / scale.blocks_per_node).max(1);
    let storage = StorageConfig {
        block_size: real_block,
        replication: scale.replication,
        delimiter: '|',
        index_partition_size: scale.index_partition_size,
    };
    let spec = ClusterSpec::new(scale.nodes, profile)
        .with_scale(ScaleFactor::from_block_sizes(real_block, LOGICAL_BLOCK));
    Testbed {
        scale,
        schema,
        texts,
        storage,
        spec,
    }
}

/// UserVisits testbed.
pub fn uv_testbed(scale: ExperimentScale, profile: HardwareProfile) -> Testbed {
    let generator = UserVisitsGenerator::default();
    build_testbed(
        scale,
        profile,
        hail_workloads::bob_schema(),
        generator.generate(scale.nodes, scale.rows_per_node),
    )
}

/// Synthetic testbed.
pub fn syn_testbed(scale: ExperimentScale, profile: HardwareProfile) -> Testbed {
    let generator = SyntheticGenerator::default();
    build_testbed(
        scale,
        profile,
        hail_workloads::synthetic_schema(),
        generator.generate(scale.nodes, scale.rows_per_node),
    )
}

/// One uploaded system: its cluster state, dataset handle, and simulated
/// upload time.
pub struct SystemSetup {
    pub cluster: DfsCluster,
    pub dataset: Dataset,
    pub upload_seconds: f64,
}

/// Interleaves a dataset's blocks round-robin across the uploading
/// nodes. A real multi-node parallel upload allocates block ids
/// interleaved across writers; our in-process upload is sequential per
/// node, which would otherwise correlate job progress with writer
/// identity (and distort failover experiments).
fn interleave_blocks(blocks: Vec<hail_types::BlockId>, nodes: usize) -> Vec<hail_types::BlockId> {
    if nodes <= 1 || blocks.is_empty() {
        return blocks;
    }
    let per = blocks.len().div_ceil(nodes);
    let mut out = Vec::with_capacity(blocks.len());
    for i in 0..per {
        for n in 0..nodes {
            if let Some(&b) = blocks.get(n * per + i) {
                out.push(b);
            }
        }
    }
    debug_assert_eq!(out.len(), blocks.len());
    out
}

/// Standard Hadoop: text upload.
pub fn setup_hadoop(tb: &Testbed) -> Result<SystemSetup> {
    let mut cluster = DfsCluster::new(tb.scale.nodes, tb.storage.clone());
    let mut dataset = upload_hadoop(&mut cluster, &tb.schema, "dataset", &tb.texts)?;
    dataset.blocks = interleave_blocks(dataset.blocks, tb.scale.nodes);
    let t = upload_seconds(&cluster, &tb.spec);
    Ok(SystemSetup {
        cluster,
        dataset,
        upload_seconds: t,
    })
}

/// HAIL with clustered indexes on `index_columns[i]` for replica `i`
/// (missing entries stay unsorted).
pub fn setup_hail(tb: &Testbed, index_columns: &[usize]) -> Result<SystemSetup> {
    let mut cluster = DfsCluster::new(tb.scale.nodes, tb.storage.clone());
    let config = ReplicaIndexConfig::first_indexed(tb.scale.replication, index_columns);
    let mut dataset = upload_hail(&mut cluster, &tb.schema, "dataset", &tb.texts, &config)?;
    dataset.blocks = interleave_blocks(dataset.blocks, tb.scale.nodes);
    let t = upload_seconds(&cluster, &tb.spec);
    Ok(SystemSetup {
        cluster,
        dataset,
        upload_seconds: t,
    })
}

/// HAIL with an explicit replica index configuration (e.g. HAIL-1Idx).
pub fn setup_hail_with_config(tb: &Testbed, config: &ReplicaIndexConfig) -> Result<SystemSetup> {
    let mut cluster = DfsCluster::new(tb.scale.nodes, tb.storage.clone());
    let mut dataset = upload_hail(&mut cluster, &tb.schema, "dataset", &tb.texts, config)?;
    dataset.blocks = interleave_blocks(dataset.blocks, tb.scale.nodes);
    let t = upload_seconds(&cluster, &tb.spec);
    Ok(SystemSetup {
        cluster,
        dataset,
        upload_seconds: t,
    })
}

/// Hadoop++ with a trojan index on `key_column` (None = binary
/// conversion only).
pub fn setup_hpp(
    tb: &Testbed,
    key_column: Option<usize>,
) -> Result<(SystemSetup, HppUploadReport)> {
    let mut cluster = DfsCluster::new(tb.scale.nodes, tb.storage.clone());
    let (mut dataset, report) = upload_hadoop_plus_plus(
        &mut cluster,
        &tb.spec,
        &tb.schema,
        "dataset",
        &tb.texts,
        key_column,
    )?;
    dataset.blocks = interleave_blocks(dataset.blocks, tb.scale.nodes);
    let t = report.total_seconds();
    Ok((
        SystemSetup {
            cluster,
            dataset,
            upload_seconds: t,
        },
        report,
    ))
}

/// Builds the matching input format for a dataset and runs the query as
/// a map-only job, collecting output.
pub fn run_query(
    setup: &SystemSetup,
    spec: &ClusterSpec,
    query: &HailQuery,
    hail_splitting: bool,
) -> Result<JobRun> {
    let format = make_format(setup, spec, query, hail_splitting);
    let job = MapJob::collecting("query", setup.dataset.blocks.clone(), format.as_ref());
    run_map_job(&setup.cluster, spec, &job)
}

/// [`run_query`] with an explicit intra-split executor parallelism:
/// each task's independent block reads fan out across this many
/// workers. Results and simulated times are identical at any setting;
/// only the measured `reader_wall_seconds` changes.
pub fn run_query_at(
    setup: &SystemSetup,
    spec: &ClusterSpec,
    query: &HailQuery,
    hail_splitting: bool,
    parallelism: usize,
) -> Result<JobRun> {
    let format = make_format(setup, spec, query, hail_splitting);
    let job = MapJob::collecting("query", setup.dataset.blocks.clone(), format.as_ref())
        .with_parallelism(parallelism);
    run_map_job(&setup.cluster, spec, &job)
}

/// [`run_query_at`] with an explicit *job-level* overlap as well: up to
/// `job_parallelism` whole splits execute concurrently through the
/// format's work-stealing pool, each fanning its block reads across
/// `split_parallelism` workers claimed from the shared budget. Results
/// and simulated times are identical at any setting; only the measured
/// wall clock changes.
pub fn run_query_overlapped(
    setup: &SystemSetup,
    spec: &ClusterSpec,
    query: &HailQuery,
    hail_splitting: bool,
    split_parallelism: usize,
    job_parallelism: usize,
) -> Result<JobRun> {
    let format = make_format(setup, spec, query, hail_splitting);
    let job = MapJob::collecting("query", setup.dataset.blocks.clone(), format.as_ref())
        .with_parallelism(split_parallelism)
        .with_job_parallelism(job_parallelism);
    run_map_job(&setup.cluster, spec, &job)
}

/// Builds the input format for a dataset (shared by the two runners).
fn make_format(
    setup: &SystemSetup,
    spec: &ClusterSpec,
    query: &HailQuery,
    hail_splitting: bool,
) -> Box<dyn InputFormat> {
    match setup.dataset.format {
        DatasetFormat::HadoopText => {
            Box::new(HadoopInputFormat::new(setup.dataset.clone(), query.clone()))
        }
        DatasetFormat::HailPax => {
            let mut f = HailInputFormat::new(setup.dataset.clone(), query.clone());
            f.splitting = hail_splitting;
            f.map_slots = spec.profile.map_slots;
            Box::new(f)
        }
        DatasetFormat::HadoopPlusPlus => Box::new(HadoopPlusPlusInputFormat::new(
            setup.dataset.clone(),
            query.clone(),
        )),
    }
}

/// The cross-job resources a multi-job deployment shares: one plan
/// cache, one cluster-wide [`JobPool`] (global thread budget + one
/// per-node gate across all jobs), and optionally one selectivity
/// feedback store.
///
/// Formats built from the same infra ([`make_shared_format`]) hit the
/// same cache and draw from the same pool, so a query whose filter
/// shape another job already planned reuses its block plans.
///
/// `feedback` defaults to a fresh shared store. Sharing one
/// [`SelectivityFeedback`] between *concurrently running* jobs is safe
/// because formats built by [`make_shared_format`] freeze the store for
/// the duration of each job (`PlannerConfig::defer_feedback`):
/// observations are collected into per-task statistics but absorbed
/// only afterwards, by [`run_queries_managed`], in **job-submission
/// order** (tasks in schedule order within each job). During a batch
/// every job plans against the same read-only snapshot, and the write
/// order is fixed by submission rather than by completion races — so
/// outputs, reports, and the post-batch feedback state are bit-for-bit
/// identical at every `HAIL_MAX_CONCURRENT_JOBS`. Use
/// [`SharedJobInfra::without_shared_feedback`] to opt out and plan
/// from the static prior alone.
pub struct SharedJobInfra {
    pub plan_cache: Arc<PlanCache>,
    pub feedback: Option<Arc<SelectivityFeedback>>,
    pub pool: Arc<JobPool>,
}

impl SharedJobInfra {
    /// Infrastructure sized for up to `max_jobs` concurrent jobs with
    /// default executor knobs (the `HAIL_*` environment overrides).
    pub fn for_jobs(max_jobs: usize) -> Self {
        SharedJobInfra {
            plan_cache: Arc::new(PlanCache::default()),
            feedback: Some(Arc::new(SelectivityFeedback::default())),
            pool: shared_job_pool(max_jobs, &ExecutorConfig::default()),
        }
    }

    /// Drops the shared feedback store: jobs plan from the static
    /// selectivity prior alone, and nothing is absorbed after batches.
    pub fn without_shared_feedback(mut self) -> Self {
        self.feedback = None;
        self
    }
}

/// [`make_shared_format`]'s solo-format counterpart is the private
/// `make_format`; this builds the matching input format wired to the
/// shared multi-job infrastructure: every format built from one
/// `infra` shares its plan cache (HAIL formats — the planner-cached
/// path), its feedback store if any, and its cluster-wide job pool.
pub fn make_shared_format(
    setup: &SystemSetup,
    spec: &ClusterSpec,
    query: &HailQuery,
    hail_splitting: bool,
    infra: &SharedJobInfra,
) -> Box<dyn InputFormat> {
    match setup.dataset.format {
        DatasetFormat::HadoopText => Box::new(
            HadoopInputFormat::new(setup.dataset.clone(), query.clone())
                .with_shared_pool(infra.pool.clone()),
        ),
        DatasetFormat::HailPax => {
            let mut f = HailInputFormat::new(setup.dataset.clone(), query.clone())
                .with_shared_pool(infra.pool.clone());
            f.splitting = hail_splitting;
            f.map_slots = spec.profile.map_slots;
            f.planner.plan_cache = Some(infra.plan_cache.clone());
            f.planner.feedback = infra.feedback.clone();
            // Freeze the shared store during the job; the batch runner
            // absorbs observations afterwards in submission order (the
            // determinism contract on [`SharedJobInfra`]).
            f.planner.defer_feedback = true;
            Box::new(f)
        }
        DatasetFormat::HadoopPlusPlus => Box::new(
            HadoopPlusPlusInputFormat::new(setup.dataset.clone(), query.clone())
                .with_shared_pool(infra.pool.clone()),
        ),
    }
}

/// Batch-level aggregates [`run_queries_managed`] computes over its
/// runs, so benches and tests stop recomputing percentiles by hand.
///
/// The queue-wait percentiles use the nearest-rank method over every
/// job's [`hail_mr::JobReport::queue_wait_seconds`]. The sharing
/// counters aggregate the telemetry-only
/// [`hail_mr::TaskStats::blocks_read_shared`] /
/// [`hail_mr::TaskStats::shared_bytes_saved`] fields — which decode
/// was shared depends on real thread timing, so these (and the wait
/// percentiles) are **outside** the determinism contract; everything
/// else in the runs is bit-for-bit reproducible.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchSummary {
    /// Jobs in the batch.
    pub jobs: usize,
    pub queue_wait_p50_seconds: f64,
    pub queue_wait_p95_seconds: f64,
    /// Block reads served by attaching to another job's decode.
    pub blocks_read_shared: u64,
    /// Simulated disk bytes those attached reads did not re-read.
    pub shared_bytes_saved: u64,
    /// Logical block reads requested across all jobs (before pruning
    /// or sharing).
    pub logical_blocks: u64,
    /// Blocks skipped via synopsis pruning, summed across jobs.
    pub blocks_pruned: u64,
}

/// What [`run_queries_managed`] returns: per-query runs in submission
/// order plus the batch-level [`BatchSummary`].
#[derive(Debug)]
pub struct ManagedBatch {
    pub runs: Vec<JobRun>,
    pub summary: BatchSummary,
}

/// Nearest-rank percentile (`p` in 0..=100) over unsorted samples.
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((p / 100.0) * samples.len() as f64).ceil().max(1.0) as usize;
    samples[rank.min(samples.len()) - 1]
}

fn summarize_batch(runs: &[JobRun], logical_blocks: u64) -> BatchSummary {
    let mut waits: Vec<f64> = runs.iter().map(|r| r.report.queue_wait_seconds).collect();
    BatchSummary {
        jobs: runs.len(),
        queue_wait_p50_seconds: percentile(&mut waits, 50.0),
        queue_wait_p95_seconds: percentile(&mut waits, 95.0),
        blocks_read_shared: runs.iter().map(|r| r.report.blocks_read_shared()).sum(),
        shared_bytes_saved: runs.iter().map(|r| r.report.shared_bytes_saved()).sum(),
        logical_blocks,
        blocks_pruned: runs.iter().map(|r| r.report.blocks_pruned()).sum(),
    }
}

/// Runs many queries as one [`JobManager`] batch over shared multi-job
/// infrastructure, returning per-query runs in submission order plus
/// batch aggregates. Failing jobs fail the whole call (the benches and
/// tests expect all-success).
///
/// Two pieces of cross-job wiring happen here:
///
/// - the pool's scan-share registry (if any) subscribes to the
///   manager's in-flight block interest, so retained decodes are
///   evicted the moment no admitted job still wants their block;
/// - when the infra carries a shared feedback store, every job's
///   observations are absorbed **after** the batch, in submission
///   order (the store was frozen during the batch via
///   `PlannerConfig::defer_feedback`) — the [`SharedJobInfra`]
///   determinism contract.
pub fn run_queries_managed(
    setup: &SystemSetup,
    spec: &ClusterSpec,
    queries: &[HailQuery],
    hail_splitting: bool,
    manager: &JobManager,
    infra: &SharedJobInfra,
) -> Result<ManagedBatch> {
    if let Some(registry) = infra.pool.scan_share() {
        registry.attach_in_flight(manager.in_flight_blocks());
    }
    let formats: Vec<Box<dyn InputFormat>> = queries
        .iter()
        .map(|q| make_shared_format(setup, spec, q, hail_splitting, infra))
        .collect();
    let jobs: Vec<MapJob<'_>> = formats
        .iter()
        .enumerate()
        .map(|(i, f)| {
            MapJob::collecting(
                format!("query-{i}"),
                setup.dataset.blocks.clone(),
                f.as_ref(),
            )
        })
        .collect();
    let runs: Vec<JobRun> = manager
        .run_batch(&setup.cluster, spec, &jobs)
        .into_iter()
        .collect::<Result<_>>()?;
    if let Some(feedback) = &infra.feedback {
        // The submission-order barrier: jobs in submission order,
        // tasks in each report's schedule order.
        for run in &runs {
            for task in &run.report.tasks {
                feedback.absorb(&task.stats);
            }
        }
    }
    let logical = (queries.len() * setup.dataset.blocks.len()) as u64;
    let summary = summarize_batch(&runs, logical);
    Ok(ManagedBatch { runs, summary })
}

/// One adaptive rebuild that fired during [`run_adaptive_workload`]:
/// which job boundary it ran at and what it built.
#[derive(Debug, Clone)]
pub struct ReindexEvent {
    /// Jobs completed before the rebuild ran — the flip boundary. Job
    /// indexes `0..after_job` planned against the old design, jobs
    /// `after_job..` against the new one.
    pub after_job: usize,
    pub outcome: ReindexOutcome,
}

/// The result of an adaptive workload: per-job runs in submission
/// order, plus every rebuild the advisor fired between rounds.
#[derive(Debug)]
pub struct AdaptiveRun {
    pub runs: Vec<JobRun>,
    pub events: Vec<ReindexEvent>,
}

/// Drives a workload through the `JobManager` with the adaptive
/// re-indexing loop closed: jobs run in rounds of `round_size`, and
/// *between* rounds the harness absorbs every finished job's
/// selectivity observations into `feedback` (in job-submission order),
/// asks the advisor for rebuild recommendations, and applies them to
/// the cluster.
///
/// The between-rounds placement is the correctness mechanism, not a
/// simplification: `JobManager::run_batch` borrows the cluster shared
/// (`&DfsCluster`) while [`apply_reindex`] needs it exclusively
/// (`&mut`), so a rebuild can only run when no job is in flight —
/// queries see the old design or the new one, never a half-registered
/// hybrid, and no admitted job ever blocks mid-split on background
/// maintenance. Because rounds are cut by job count (not by
/// concurrency) and feedback is absorbed in submission order, the
/// FullScan→index flip lands at the same job boundary whatever
/// `HAIL_MAX_CONCURRENT_JOBS` is.
///
/// A disabled advisor (policy `enabled: false`, e.g. under
/// `HAIL_DISABLE_REINDEX=1`) turns this into plain batched serving:
/// evidence still accumulates, but the design never changes.
#[allow(clippy::too_many_arguments)]
pub fn run_adaptive_workload(
    setup: &mut SystemSetup,
    spec: &ClusterSpec,
    queries: &[HailQuery],
    hail_splitting: bool,
    manager: &JobManager,
    infra: &SharedJobInfra,
    advisor: &ReindexAdvisor,
    feedback: &SelectivityFeedback,
    round_size: usize,
) -> Result<AdaptiveRun> {
    let round = round_size.max(1);
    let blocks = setup.dataset.blocks.clone();
    let mut runs = Vec::with_capacity(queries.len());
    let mut events = Vec::new();
    for chunk in queries.chunks(round) {
        let mut batch = run_queries_managed(setup, spec, chunk, hail_splitting, manager, infra)?;
        // Absorb evidence deterministically: jobs in submission order,
        // tasks in each report's schedule order. When the advisor's
        // store *is* the infra's shared store, `run_queries_managed`
        // already absorbed this round — absorbing again would double
        // every observation.
        let absorbed_by_batch = infra
            .feedback
            .as_ref()
            .is_some_and(|f| std::ptr::eq(Arc::as_ptr(f), feedback));
        if !absorbed_by_batch {
            for run in &batch.runs {
                for task in &run.report.tasks {
                    feedback.absorb(&task.stats);
                }
            }
        }
        runs.append(&mut batch.runs);
        for action in advisor.note_round(feedback, setup.cluster.namenode(), &blocks) {
            let outcome = apply_reindex(&mut setup.cluster, &blocks, &action)?;
            // A rewrite changes what a block's replicas physically
            // contain; any decode the scan-share registry retained for
            // those blocks is stale now.
            if let Some(registry) = infra.pool.scan_share() {
                registry.clear();
            }
            events.push(ReindexEvent {
                after_job: runs.len(),
                outcome,
            });
        }
    }
    Ok(AdaptiveRun { runs, events })
}

/// Runs a query under a staged node failure (§6.4.3). The cluster's
/// failed node stays dead afterwards.
pub fn run_query_with_failure(
    setup: &mut SystemSetup,
    spec: &ClusterSpec,
    query: &HailQuery,
    hail_splitting: bool,
    scenario: hail_mr::FailureScenario,
) -> Result<hail_mr::FailoverRun> {
    let format = make_format(setup, spec, query, hail_splitting);
    let job = MapJob::collecting("query", setup.dataset.blocks.clone(), format.as_ref());
    hail_mr::run_map_job_with_failure(&mut setup.cluster, spec, &job, scenario)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hail_workloads::{bob_queries, canonical, oracle_eval};

    #[test]
    fn three_systems_agree_on_bob_q1() {
        let scale = ExperimentScale::query(4, 1500);
        let tb = uv_testbed(scale, HardwareProfile::physical());
        let q = bob_queries()[0].to_query(&tb.schema).unwrap();

        let hadoop = setup_hadoop(&tb).unwrap();
        let hail = setup_hail(&tb, &[2, 0, 3]).unwrap();
        let (hpp, _) = setup_hpp(&tb, Some(0)).unwrap();

        let r_hadoop = run_query(&hadoop, &tb.spec, &q, false).unwrap();
        let r_hail = run_query(&hail, &tb.spec, &q, true).unwrap();
        let r_hpp = run_query(&hpp, &tb.spec, &q, false).unwrap();

        let expected = canonical(&oracle_eval(&tb.texts, &tb.schema, &q));
        assert_eq!(canonical(&r_hadoop.output), expected);
        assert_eq!(canonical(&r_hail.output), expected);
        assert_eq!(canonical(&r_hpp.output), expected);
        assert!(!expected.is_empty());
    }

    #[test]
    fn scale_factor_derivation() {
        let scale = ExperimentScale::upload(2, 500);
        let tb = uv_testbed(scale, HardwareProfile::physical());
        // Block size ≈ per-node text / blocks_per_node.
        let per_node = tb.texts[0].1.len();
        let expected = per_node / tb.scale.blocks_per_node;
        assert!((tb.storage.block_size as i64 - expected as i64).abs() < 2);
        assert!(tb.spec.scale.0 > 1.0);
    }

    #[test]
    fn hail_splitting_reduces_tasks() {
        let scale = ExperimentScale::query(4, 2000);
        let tb = uv_testbed(scale, HardwareProfile::physical());
        let q = bob_queries()[0].to_query(&tb.schema).unwrap();
        let hail = setup_hail(&tb, &[2, 0, 3]).unwrap();
        let with = run_query(&hail, &tb.spec, &q, true).unwrap();
        let without = run_query(&hail, &tb.spec, &q, false).unwrap();
        assert!(with.report.task_count() * 4 < without.report.task_count());
        assert!(with.report.end_to_end_seconds < without.report.end_to_end_seconds);
    }
}
