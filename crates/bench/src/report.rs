//! Experiment report tables: paper-vs-measured rows printed by every
//! bench target and collected into `EXPERIMENTS.md`.

use std::fmt::Write as _;

/// One reported metric row.
#[derive(Debug, Clone)]
pub struct ReportRow {
    pub label: String,
    /// The paper's number, if it reports one for this cell.
    pub paper: Option<f64>,
    pub measured: f64,
}

/// A table of rows for one experiment (figure or table).
#[derive(Debug, Clone)]
pub struct Report {
    pub id: String,
    pub title: String,
    pub unit: String,
    pub rows: Vec<ReportRow>,
    pub notes: Vec<String>,
}

impl Report {
    pub fn new(id: impl Into<String>, title: impl Into<String>, unit: impl Into<String>) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            unit: unit.into(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a paper-vs-measured row.
    pub fn row(&mut self, label: impl Into<String>, paper: Option<f64>, measured: f64) {
        self.rows.push(ReportRow {
            label: label.into(),
            paper,
            measured,
        });
    }

    /// Adds a free-form note shown under the table.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} [{}] ==", self.id, self.title, self.unit);
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain(["series".len()])
            .max()
            .unwrap_or(10);
        let _ = writeln!(
            out,
            "{:<label_w$}  {:>12}  {:>12}  {:>8}",
            "series", "paper", "measured", "ratio"
        );
        for r in &self.rows {
            let paper = r
                .paper
                .map(|p| format!("{p:.2}"))
                .unwrap_or_else(|| "—".to_string());
            let ratio = match r.paper {
                Some(p) if p != 0.0 => format!("{:.2}", r.measured / p),
                _ => "—".to_string(),
            };
            let _ = writeln!(
                out,
                "{:<label_w$}  {:>12}  {:>12.2}  {:>8}",
                r.label, paper, r.measured, ratio
            );
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }

    /// Prints the table to stdout (what `cargo bench` shows).
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// The ratio of two measured rows (by label), used by shape
    /// assertions inside bench targets.
    pub fn measured_ratio(&self, numerator: &str, denominator: &str) -> Option<f64> {
        let num = self.rows.iter().find(|r| r.label == numerator)?.measured;
        let den = self.rows.iter().find(|r| r.label == denominator)?.measured;
        (den != 0.0).then(|| num / den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_rows_and_ratio() {
        let mut r = Report::new("Fig4a", "Upload", "s");
        r.row("Hadoop", Some(1398.0), 1400.0);
        r.row("HAIL-3idx", Some(1600.0), 1580.0);
        r.note("scaled run");
        let s = r.render();
        assert!(s.contains("Fig4a"));
        assert!(s.contains("Hadoop"));
        assert!(s.contains("1.00"));
        assert!(s.contains("note: scaled run"));
    }

    #[test]
    fn missing_paper_number() {
        let mut r = Report::new("x", "t", "s");
        r.row("only-measured", None, 5.0);
        assert!(r.render().contains("—"));
    }

    #[test]
    fn measured_ratio() {
        let mut r = Report::new("x", "t", "s");
        r.row("a", None, 10.0);
        r.row("b", None, 2.0);
        assert_eq!(r.measured_ratio("a", "b"), Some(5.0));
        assert_eq!(r.measured_ratio("a", "missing"), None);
    }
}
