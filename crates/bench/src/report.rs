//! Experiment report tables: paper-vs-measured rows printed by every
//! bench target and collected into `EXPERIMENTS.md`.
//!
//! Bench targets print aligned plain text by default; passing `--json`
//! on the bench command line ([`json_mode`]) switches [`Report::print`]
//! to a machine-readable JSON object instead, and [`BenchSummary`]
//! bundles several reports plus scalar headline metrics into one JSON
//! document for artifact files such as `BENCH_6.json`. The JSON is
//! hand-rolled (no serde in this workspace); non-finite numbers render
//! as `null`.

use std::fmt::Write as _;
use std::path::Path;

/// True when the bench was invoked with a `--json` argument: reports
/// should print machine-readable JSON instead of aligned tables.
pub fn json_mode() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON value: `null` for non-finite numbers
/// (JSON has no NaN/Infinity).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// One reported metric row.
#[derive(Debug, Clone)]
pub struct ReportRow {
    pub label: String,
    /// The paper's number, if it reports one for this cell.
    pub paper: Option<f64>,
    pub measured: f64,
}

/// A table of rows for one experiment (figure or table).
#[derive(Debug, Clone)]
pub struct Report {
    pub id: String,
    pub title: String,
    pub unit: String,
    pub rows: Vec<ReportRow>,
    pub notes: Vec<String>,
}

impl Report {
    pub fn new(id: impl Into<String>, title: impl Into<String>, unit: impl Into<String>) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            unit: unit.into(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a paper-vs-measured row.
    pub fn row(&mut self, label: impl Into<String>, paper: Option<f64>, measured: f64) {
        self.rows.push(ReportRow {
            label: label.into(),
            paper,
            measured,
        });
    }

    /// Adds a free-form note shown under the table.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} [{}] ==", self.id, self.title, self.unit);
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain(["series".len()])
            .max()
            .unwrap_or(10);
        let _ = writeln!(
            out,
            "{:<label_w$}  {:>12}  {:>12}  {:>8}",
            "series", "paper", "measured", "ratio"
        );
        for r in &self.rows {
            let paper = r
                .paper
                .map(|p| format!("{p:.2}"))
                .unwrap_or_else(|| "—".to_string());
            let ratio = match r.paper {
                Some(p) if p != 0.0 => format!("{:.2}", r.measured / p),
                _ => "—".to_string(),
            };
            let _ = writeln!(
                out,
                "{:<label_w$}  {:>12}  {:>12.2}  {:>8}",
                r.label, paper, r.measured, ratio
            );
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }

    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"id\":\"{}\",\"title\":\"{}\",\"unit\":\"{}\",\"rows\":[",
            json_escape(&self.id),
            json_escape(&self.title),
            json_escape(&self.unit)
        );
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let paper = r.paper.map(json_f64).unwrap_or_else(|| "null".to_string());
            let _ = write!(
                out,
                "{{\"label\":\"{}\",\"paper\":{},\"measured\":{}}}",
                json_escape(&r.label),
                paper,
                json_f64(r.measured)
            );
        }
        out.push_str("],\"notes\":[");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", json_escape(n));
        }
        out.push_str("]}");
        out
    }

    /// Prints the table to stdout (what `cargo bench` shows): an
    /// aligned text table, or one JSON object under [`json_mode`].
    pub fn print(&self) {
        if json_mode() {
            println!("{}", self.to_json());
        } else {
            println!("{}", self.render());
        }
    }

    /// The ratio of two measured rows (by label), used by shape
    /// assertions inside bench targets.
    pub fn measured_ratio(&self, numerator: &str, denominator: &str) -> Option<f64> {
        let num = self.rows.iter().find(|r| r.label == numerator)?.measured;
        let den = self.rows.iter().find(|r| r.label == denominator)?.measured;
        (den != 0.0).then(|| num / den)
    }
}

/// A whole bench run's machine-readable summary: scalar headline
/// metrics (named numbers the driver greps for) plus the full report
/// tables, serialized as one JSON document.
#[derive(Debug, Clone)]
pub struct BenchSummary {
    pub id: String,
    pub metrics: Vec<(String, f64)>,
    pub reports: Vec<Report>,
}

impl BenchSummary {
    pub fn new(id: impl Into<String>) -> Self {
        BenchSummary {
            id: id.into(),
            metrics: Vec::new(),
            reports: Vec::new(),
        }
    }

    /// Records a named headline metric.
    pub fn metric(&mut self, name: impl Into<String>, value: f64) {
        self.metrics.push((name.into(), value));
    }

    /// Attaches a full report table.
    pub fn report(&mut self, report: Report) {
        self.reports.push(report);
    }

    /// Serializes the summary as one JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\n  \"id\": \"{}\",\n", json_escape(&self.id));
        out.push_str("  \"metrics\": {");
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {}", json_escape(name), json_f64(*value));
        }
        if !self.metrics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"reports\": [");
        for (i, r) in self.reports.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}", r.to_json());
        }
        if !self.reports.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Writes the JSON summary to `path`.
    pub fn write_to(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_rows_and_ratio() {
        let mut r = Report::new("Fig4a", "Upload", "s");
        r.row("Hadoop", Some(1398.0), 1400.0);
        r.row("HAIL-3idx", Some(1600.0), 1580.0);
        r.note("scaled run");
        let s = r.render();
        assert!(s.contains("Fig4a"));
        assert!(s.contains("Hadoop"));
        assert!(s.contains("1.00"));
        assert!(s.contains("note: scaled run"));
    }

    #[test]
    fn missing_paper_number() {
        let mut r = Report::new("x", "t", "s");
        r.row("only-measured", None, 5.0);
        assert!(r.render().contains("—"));
    }

    #[test]
    fn measured_ratio() {
        let mut r = Report::new("x", "t", "s");
        r.row("a", None, 10.0);
        r.row("b", None, 2.0);
        assert_eq!(r.measured_ratio("a", "b"), Some(5.0));
        assert_eq!(r.measured_ratio("a", "missing"), None);
    }

    #[test]
    fn report_json_shape() {
        let mut r = Report::new("B6", "Block \"skipping\"", "evals");
        r.row("full", Some(2.0), 40.0);
        r.row("pruned", None, f64::NAN);
        r.note("line\nbreak");
        let j = r.to_json();
        assert!(j.contains("\"id\":\"B6\""));
        assert!(j.contains("Block \\\"skipping\\\""));
        assert!(j.contains("\"paper\":2,\"measured\":40"));
        assert!(j.contains("\"paper\":null,\"measured\":null"));
        assert!(j.contains("line\\nbreak"));
    }

    #[test]
    fn json_escape_control_chars() {
        assert_eq!(json_escape("a\tb"), "a\\tb");
        assert_eq!(json_escape("x\u{1}y"), "x\\u0001y");
        assert_eq!(json_escape("q\\\"w"), "q\\\\\\\"w");
    }

    #[test]
    fn summary_json_round_trip_shape() {
        let mut s = BenchSummary::new("BENCH_6");
        s.metric("planning_eval_ratio", 8.5);
        s.metric("blocks_pruned", 12.0);
        let mut r = Report::new("B6", "needle", "blocks");
        r.row("touched", None, 0.0);
        s.report(r);
        let j = s.to_json();
        assert!(j.contains("\"id\": \"BENCH_6\""));
        assert!(j.contains("\"planning_eval_ratio\": 8.5"));
        assert!(j.contains("\"blocks_pruned\": 12"));
        assert!(j.contains("\"id\":\"B6\""));
        // Braces balance (cheap well-formedness check without a parser).
        let opens = j.matches(['{', '[']).count();
        let closes = j.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn empty_summary_is_wellformed() {
        let s = BenchSummary::new("empty");
        let j = s.to_json();
        assert!(j.contains("\"metrics\": {}"));
        assert!(j.contains("\"reports\": []"));
    }
}
