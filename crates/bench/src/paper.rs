//! The paper's reported numbers, transcribed from the figures and tables
//! of §6. Bench targets print these next to measured values.

/// Fig. 4(a): UserVisits upload seconds by number of created indexes.
pub mod fig4a {
    pub const HADOOP: f64 = 1398.0;
    pub const HADOOP_PP: [f64; 2] = [7290.0, 11212.0]; // 0, 1 indexes
    pub const HAIL: [f64; 4] = [1427.0, 1529.0, 1554.0, 1600.0]; // 0..3
}

/// Fig. 4(b): Synthetic upload seconds by number of created indexes.
pub mod fig4b {
    pub const HADOOP: f64 = 1132.0;
    pub const HADOOP_PP: [f64; 2] = [3472.0, 5766.0];
    pub const HAIL: [f64; 4] = [671.0, 704.0, 712.0, 717.0];
}

/// Fig. 4(c): Synthetic upload seconds by replication factor.
pub mod fig4c {
    pub const REPLICAS: [usize; 5] = [3, 5, 6, 7, 10];
    pub const HADOOP: [f64; 5] = [1132.0, 1773.0, 2256.0, 2712.0, 3710.0];
    pub const HAIL: [f64; 5] = [717.0, 956.0, 1089.0, 1254.0, 1700.0];
    /// §6.3.2's footprint comparison: Hadoop needs 390 GB for 3
    /// replicas; HAIL 420 GB for 6.
    pub const HADOOP_3REP_GB: f64 = 390.0;
    pub const HAIL_6REP_GB: f64 = 420.0;
}

/// Table 2: scale-up upload seconds (Hadoop, HAIL) per node type.
pub mod table2 {
    pub const NODE_TYPES: [&str; 4] = [
        "ec2-m1.large",
        "ec2-m1.xlarge",
        "ec2-cc1.4xlarge",
        "physical",
    ];
    pub const UV_HADOOP: [f64; 4] = [1844.0, 1296.0, 1284.0, 1398.0];
    pub const UV_HAIL: [f64; 4] = [3418.0, 2039.0, 1742.0, 1600.0];
    pub const SYN_HADOOP: [f64; 4] = [1176.0, 788.0, 827.0, 1132.0];
    pub const SYN_HAIL: [f64; 4] = [1023.0, 640.0, 600.0, 717.0];
}

/// Fig. 5: scale-out upload seconds (10/50/100 cc1.4xlarge nodes,
/// constant data per node).
pub mod fig5 {
    pub const NODES: [usize; 3] = [10, 50, 100];
    pub const SYN_HADOOP: [f64; 3] = [827.0, 918.0, 1026.0];
    pub const SYN_HAIL: [f64; 3] = [600.0, 684.0, 633.0];
    pub const UV_HADOOP: [f64; 3] = [1284.0, 1836.0, 1476.0];
    pub const UV_HAIL: [f64; 3] = [1742.0, 1530.0, 1486.0];
}

/// Fig. 6(a): Bob-query end-to-end seconds (HailSplitting off).
pub mod fig6a {
    pub const QUERIES: [&str; 5] = ["Bob-Q1", "Bob-Q2", "Bob-Q3", "Bob-Q4", "Bob-Q5"];
    pub const HADOOP: [f64; 5] = [1094.0, 1006.0, 942.0, 1099.0, 1099.0];
    pub const HADOOP_PP: [f64; 5] = [1160.0, 705.0, 651.0, 1143.0, 1145.0];
    pub const HAIL: [f64; 5] = [601.0, 598.0, 598.0, 598.0, 602.0];
}

/// Fig. 6(b): Bob-query average record-reader milliseconds.
pub mod fig6b {
    pub const HADOOP: [f64; 5] = [3358.0, 2156.0, 2112.0, 2470.0, 2442.0];
    pub const HADOOP_PP: [f64; 5] = [2776.0, 53.0, 83.0, 2917.0, 2864.0];
    pub const HAIL: [f64; 5] = [573.0, 527.0, 333.0, 683.0, 683.0];
    /// Headline: HAIL RR is up to 46× faster than Hadoop, 38× than H++.
    pub const MAX_SPEEDUP_VS_HADOOP: f64 = 46.0;
}

/// Fig. 7(a): Synthetic-query end-to-end seconds (HailSplitting off).
pub mod fig7a {
    pub const QUERIES: [&str; 6] = [
        "Syn-Q1a", "Syn-Q1b", "Syn-Q1c", "Syn-Q2a", "Syn-Q2b", "Syn-Q2c",
    ];
    pub const HADOOP: [f64; 6] = [572.0, 517.0, 473.0, 460.0, 446.0, 450.0];
    pub const HADOOP_PP: [f64; 6] = [460.0, 463.0, 433.0, 404.0, 403.0, 403.0];
    pub const HAIL: [f64; 6] = [409.0, 466.0, 433.0, 433.0, 430.0, 433.0];
}

/// Fig. 7(b): Synthetic-query average record-reader milliseconds.
pub mod fig7b {
    pub const HADOOP: [f64; 6] = [2116.0, 1885.0, 1708.0, 1652.0, 1615.0, 1610.0];
    pub const HADOOP_PP: [f64; 6] = [572.0, 331.0, 282.0, 74.0, 60.0, 58.0];
    pub const HAIL: [f64; 6] = [495.0, 274.0, 139.0, 131.0, 78.0, 60.0];
}

/// Fig. 8: failover slowdown percentages.
pub mod fig8 {
    pub const HADOOP_SLOWDOWN: f64 = 10.3;
    pub const HAIL_SLOWDOWN: f64 = 10.5;
    pub const HAIL_1IDX_SLOWDOWN: f64 = 5.5;
    pub const HADOOP_RUNTIME: f64 = 1099.0;
    pub const HAIL_RUNTIME: f64 = 598.0;
}

/// Fig. 9: end-to-end seconds with HailSplitting on.
pub mod fig9 {
    pub const BOB_HAIL: [f64; 5] = [16.0, 15.0, 15.0, 22.0, 65.0];
    pub const SYN_HAIL: [f64; 6] = [127.0, 63.0, 28.0, 57.0, 23.0, 17.0];
    /// Fig. 9(c): total workload seconds.
    pub const BOB_TOTALS: [f64; 3] = [5240.0, 4804.0, 133.0]; // Hadoop, H++, HAIL
    pub const SYN_TOTALS: [f64; 3] = [2918.0, 2655.0, 315.0];
    /// Headline factors: HAIL up to 68× faster than Hadoop (Bob), 39×
    /// on the whole Bob workload, 9× on Synthetic.
    pub const MAX_SPEEDUP: f64 = 68.0;
}

#[cfg(test)]
mod tests {
    #[test]
    fn headline_ratios_consistent() {
        // Fig. 9(c) totals reproduce the paper's 39×/36× claims.
        let bob = super::fig9::BOB_TOTALS;
        assert!((bob[0] / bob[2] - 39.4).abs() < 1.0);
        assert!((bob[1] / bob[2] - 36.1).abs() < 1.0);
        let syn = super::fig9::SYN_TOTALS;
        assert!((syn[0] / syn[2] - 9.26).abs() < 0.5);
    }

    #[test]
    fn fig4_upload_factors() {
        // §6.3.1: Hadoop++ is 5.2×/8.2× slower than HAIL on Synthetic.
        let f0 = super::fig4b::HADOOP_PP[0] / super::fig4b::HAIL[0];
        let f1 = super::fig4b::HADOOP_PP[1] / super::fig4b::HAIL[1];
        assert!((f0 - 5.2).abs() < 0.1);
        assert!((f1 - 8.2).abs() < 0.1);
    }
}
