//! Ablation (§3.5 "Why not a multi-level tree?"): single-level sparse
//! index vs a hypothetical two-level tree, across HDFS block sizes.
//!
//! The paper's argument: a root-directory read costs
//! `seek + size/transfer_rate`; a two-level access costs an extra seek.
//! The single level loses only once the root exceeds
//! `transfer_rate × seek` ≈ 500 KB — i.e. ≈5 GB blocks. We recompute
//! the crossover from the hardware profile and verify it empirically
//! with real index structures.

use hail_bench::Report;
use hail_index::ClusteredIndex;
use hail_sim::HardwareProfile;
use hail_types::{DataType, Value};

/// Index root size for a block of `block_bytes` with 10 fixed-size
/// attributes (the paper's running example: 4 B values, 1,024-value
/// partitions, one 4 B entry per partition).
fn root_bytes(block_bytes: f64) -> f64 {
    let per_attr = block_bytes / 10.0;
    let values = per_attr / 4.0;
    (values / 1024.0) * 4.0
}

fn main() {
    let hw = HardwareProfile::physical();
    let rate = hw.disk_read_mb_s * 1e6; // B/s
    let mut report = Report::new(
        "Ablation: index levels",
        "Index access time, single-level vs two-level",
        "ms",
    );

    let mut crossover_gb = None;
    for gb_tenths in [1u64, 5, 10, 20, 50, 80, 120] {
        let block = gb_tenths as f64 * 0.1 * 1e9;
        let single = hw.seek_s + root_bytes(block) / rate;
        // Two-level: read a small root (fits a page), seek, read one
        // second-level node (also small).
        let two_level = 2.0 * hw.seek_s + 2.0 * 4096.0 / rate;
        report.row(
            format!("block {:.1} GB single-level", block / 1e9),
            None,
            single * 1e3,
        );
        report.row(
            format!("block {:.1} GB two-level", block / 1e9),
            None,
            two_level * 1e3,
        );
        if single > two_level && crossover_gb.is_none() {
            crossover_gb = Some(block / 1e9);
        }
    }

    // The paper's closed form: root may grow to transfer_rate × seek
    // before a second level pays; that is ~500 KB → ~5 GB blocks at
    // 100 MB/s and 5 ms.
    let max_root = rate * hw.seek_s;
    let crossover_block = max_root * 1024.0 / 4.0 * 4.0 * 10.0;
    report.note(format!(
        "analytic max single-level root: {:.0} KB → crossover at {:.1} GB blocks (paper: ~500 KB / ~5 GB)",
        max_root / 1e3,
        crossover_block / 1e9
    ));
    let cross = crossover_gb.expect("a crossover must exist in the sweep");
    assert!(
        (2.0..10.0).contains(&cross),
        "crossover at {cross:.1} GB should be in single-digit GB (paper: ~5 GB)"
    );
    assert!(
        (200e3..1e6).contains(&max_root),
        "max root {max_root:.0} B should be ~500 KB"
    );

    // Empirical sanity: a real index over a 64 MB-equivalent block stays
    // tiny (the paper's "typically a few KB").
    let keys: Vec<Value> = (0..1_600_000).map(Value::Int).collect();
    let idx = ClusteredIndex::build(0, DataType::Int, 1024, &keys).unwrap();
    report.note(format!(
        "real index over 1.6M keys: {} bytes ({} partitions)",
        idx.byte_len(),
        idx.partition_count()
    ));
    assert!(idx.byte_len() < 16 * 1024);
    report.print();
}
