//! Fig. 4(a): upload time for UserVisits while varying the number of
//! created indexes (0–3 for HAIL, 0–1 for Hadoop++, none for Hadoop).
//!
//! Paper shape: HAIL-0 ≈ Hadoop (+2 %); HAIL-3 ≤ +14 %; Hadoop++ is
//! 5.1×/7.3× slower than HAIL.

use hail_bench::{paper, setup_hadoop, setup_hail, setup_hpp, uv_testbed, ExperimentScale, Report};
use hail_sim::HardwareProfile;

fn main() {
    let scale = ExperimentScale::upload(10, 6000);
    let tb = uv_testbed(scale, HardwareProfile::physical());
    let mut report = Report::new(
        "Fig. 4(a)",
        "Upload time, UserVisits, 10-node physical cluster",
        "simulated s",
    );

    let hadoop = setup_hadoop(&tb).expect("hadoop upload");
    report.row("Hadoop", Some(paper::fig4a::HADOOP), hadoop.upload_seconds);

    // Bob's index columns: visitDate (@3), sourceIP (@1), adRevenue (@4).
    let index_cols = [2usize, 0, 3];
    for n in 0..=3usize {
        let hail = setup_hail(&tb, &index_cols[..n]).expect("hail upload");
        report.row(
            format!("HAIL {n} idx"),
            Some(paper::fig4a::HAIL[n]),
            hail.upload_seconds,
        );
    }

    for (n, key) in [(0usize, None), (1, Some(0usize))] {
        let (hpp, _) = setup_hpp(&tb, key).expect("hadoop++ upload");
        report.row(
            format!("Hadoop++ {n} idx"),
            Some(paper::fig4a::HADOOP_PP[n]),
            hpp.upload_seconds,
        );
    }

    report.note(format!(
        "materialized {} nodes x {} rows, {} blocks/node, scale factor {:.0}x",
        scale.nodes, scale.rows_per_node, scale.blocks_per_node, tb.spec.scale.0
    ));

    // Shape assertions (who wins, roughly by how much).
    let h = report.rows[0].measured;
    let hail0 = report.rows[1].measured;
    let hail3 = report.rows[4].measured;
    let hpp1 = report.rows[6].measured;
    assert!(
        (hail0 / h) < 1.25,
        "HAIL-0 should be close to Hadoop: {hail0:.0} vs {h:.0}"
    );
    assert!(
        (hail3 / h) < 1.45,
        "HAIL-3 overhead should stay modest: {hail3:.0} vs {h:.0}"
    );
    assert!(
        hpp1 / hail3 > 2.0,
        "Hadoop++ must be much slower than HAIL: {hpp1:.0} vs {hail3:.0}"
    );
    report.print();
}
