//! Planning overhead, before vs after the adaptive layer: the stateless
//! planner re-prices every `(replica, access path)` candidate on every
//! plan (what each `read_split` used to pay), while a warm
//! fingerprinted `PlanCache` serves the same per-block plans with zero
//! cost-model evaluations. A third target measures the cache's own
//! bookkeeping on a cold pass, and a fourth the marginal cost of
//! selectivity-feedback blending.
//!
//! `--json` switches to a machine-readable [`BenchSummary`] document
//! (min-of-N manual timings; criterion's statistical run is skipped —
//! its arg parser owns the command line otherwise).

use criterion::{criterion_group, Criterion};
use hail_bench::{json_mode, BenchSummary, Report};
use hail_core::{upload_hail, Dataset, HailQuery};
use hail_dfs::DfsCluster;
use hail_exec::{PlanCache, PlannerConfig, QueryPlanner, SelectivityFeedback};
use hail_index::ReplicaIndexConfig;
use hail_types::{DataType, Field, Schema, StorageConfig};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::VarChar),
    ])
    .unwrap()
}

/// A 4-node testbed with enough blocks that per-plan work dominates.
fn testbed() -> (DfsCluster, Dataset) {
    let mut config = StorageConfig::test_scale(2 * 1024);
    config.index_partition_size = 16;
    let mut cluster = DfsCluster::new(4, config);
    let texts: Vec<(usize, String)> = (0..4)
        .map(|n| {
            (
                n,
                (0..4000)
                    .map(|i| format!("{}|w{}\n", (i * 13 + n) % 997, i))
                    .collect(),
            )
        })
        .collect();
    let dataset = upload_hail(
        &mut cluster,
        &schema(),
        "bench",
        &texts,
        &ReplicaIndexConfig::first_indexed(3, &[0]).with_bitmap(0),
    )
    .unwrap();
    (cluster, dataset)
}

fn bench_planning(c: &mut Criterion) {
    let (cluster, dataset) = testbed();
    let query = HailQuery::parse("@1 between(100, 160)", "{@2}", &schema()).unwrap();
    println!(
        "planning-overhead testbed: {} blocks × {} replica candidates each",
        dataset.blocks.len(),
        3
    );

    // Before: the stateless planner — every plan enumerates and prices
    // all candidates from Dir_rep (this is per read_split cost without
    // the cache).
    c.bench_function("plan/stateless_reprice", |b| {
        let planner = QueryPlanner::new(&cluster);
        b.iter(|| planner.plan_dataset(black_box(&dataset), &query).unwrap())
    });

    // Cold cache: pricing plus memoization bookkeeping (paid once per
    // filter shape).
    c.bench_function("plan/cache_cold", |b| {
        b.iter(|| {
            let config = PlannerConfig {
                plan_cache: Some(Arc::new(PlanCache::default())),
                ..Default::default()
            };
            QueryPlanner::with_config(&cluster, config)
                .plan_dataset(black_box(&dataset), &query)
                .unwrap()
        })
    });

    // After: a warm cache — every block plan is a fingerprint check
    // plus a map lookup; zero candidates priced.
    let cache = Arc::new(PlanCache::default());
    let warm_config = PlannerConfig {
        plan_cache: Some(Arc::clone(&cache)),
        ..Default::default()
    };
    let warm_planner = QueryPlanner::with_config(&cluster, warm_config);
    warm_planner.plan_dataset(&dataset, &query).unwrap();
    let priced_once = cache.stats().cost_evaluations;
    c.bench_function("plan/cache_warm", |b| {
        b.iter(|| {
            warm_planner
                .plan_dataset(black_box(&dataset), &query)
                .unwrap()
        })
    });
    assert_eq!(
        cache.stats().cost_evaluations,
        priced_once,
        "warm passes priced nothing"
    );
    println!(
        "cache after warm runs: {} hits, {} misses, {} candidates priced (all on the cold pass)",
        cache.stats().hits,
        cache.stats().misses,
        cache.stats().cost_evaluations
    );

    // Feedback blending on top of the static prior (no cache, so the
    // blend runs on every plan).
    let feedback = Arc::new(SelectivityFeedback::default());
    for _ in 0..16 {
        feedback.observe(0, false, 40, 1000);
    }
    let feedback_config = PlannerConfig {
        feedback: Some(Arc::clone(&feedback)),
        ..Default::default()
    };
    let feedback_planner = QueryPlanner::with_config(&cluster, feedback_config);
    c.bench_function("plan/with_feedback_blend", |b| {
        b.iter(|| {
            feedback_planner
                .plan_dataset(black_box(&dataset), &query)
                .unwrap()
        })
    });
}

criterion_group!(benches, bench_planning);

/// Microseconds per call, min over `samples` timed calls of `f`.
fn time_us(samples: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let started = Instant::now();
        f();
        best = best.min(started.elapsed().as_secs_f64() * 1e6);
    }
    best
}

/// The same four targets as the criterion run, measured with min-of-N
/// manual timings and bundled into one [`BenchSummary`] document.
fn summary_run() {
    const SAMPLES: usize = 25;
    let (cluster, dataset) = testbed();
    let query = HailQuery::parse("@1 between(100, 160)", "{@2}", &schema()).unwrap();

    let stateless = QueryPlanner::new(&cluster);
    let stateless_us = time_us(SAMPLES, || {
        stateless.plan_dataset(black_box(&dataset), &query).unwrap();
    });

    let cold_us = time_us(SAMPLES, || {
        let config = PlannerConfig {
            plan_cache: Some(Arc::new(PlanCache::default())),
            ..Default::default()
        };
        QueryPlanner::with_config(&cluster, config)
            .plan_dataset(black_box(&dataset), &query)
            .unwrap();
    });

    let cache = Arc::new(PlanCache::default());
    let warm_planner = QueryPlanner::with_config(
        &cluster,
        PlannerConfig {
            plan_cache: Some(Arc::clone(&cache)),
            ..Default::default()
        },
    );
    warm_planner.plan_dataset(&dataset, &query).unwrap();
    let priced_once = cache.stats().cost_evaluations;
    let warm_us = time_us(SAMPLES, || {
        warm_planner
            .plan_dataset(black_box(&dataset), &query)
            .unwrap();
    });
    assert_eq!(
        cache.stats().cost_evaluations,
        priced_once,
        "warm passes priced nothing"
    );

    let feedback = Arc::new(SelectivityFeedback::default());
    for _ in 0..16 {
        feedback.observe(0, false, 40, 1000);
    }
    let feedback_planner = QueryPlanner::with_config(
        &cluster,
        PlannerConfig {
            feedback: Some(Arc::clone(&feedback)),
            ..Default::default()
        },
    );
    let feedback_us = time_us(SAMPLES, || {
        feedback_planner
            .plan_dataset(black_box(&dataset), &query)
            .unwrap();
    });

    let mut table = Report::new(
        "planning-overhead",
        format!(
            "plan_dataset over {} blocks, min of {SAMPLES}",
            dataset.blocks.len()
        ),
        "measured µs",
    );
    table.row("plan/stateless_reprice", None, stateless_us);
    table.row("plan/cache_cold", None, cold_us);
    table.row("plan/cache_warm", None, warm_us);
    table.row("plan/with_feedback_blend", None, feedback_us);
    table.note(format!(
        "cold pass priced {priced_once} candidates; warm passes priced 0"
    ));

    let mut summary = BenchSummary::new("planning_overhead");
    summary.metric("plan_stateless_us", stateless_us);
    summary.metric("plan_cache_cold_us", cold_us);
    summary.metric("plan_cache_warm_us", warm_us);
    summary.metric("plan_feedback_blend_us", feedback_us);
    summary.metric("warm_speedup_vs_stateless", stateless_us / warm_us);
    summary.metric("cold_cost_evaluations", priced_once as f64);
    summary.report(table);
    println!("{}", summary.to_json());
}

fn main() {
    if json_mode() {
        summary_run();
    } else {
        benches();
    }
}
