//! Fig. 7 (and Table 1): the Synthetic query workload with HailSplitting
//! disabled — (a) end-to-end runtimes, (b) record-reader times across
//! selectivity × projectivity, (c) framework overhead.
//!
//! All six queries filter on the same attribute (@1), so HAIL cannot
//! benefit from having *different* indexes — the setup isolates the
//! effect of selectivity. Hadoop++ also indexes @1.
//!
//! Paper shape: end-to-end times are flat (overhead-dominated) for all
//! systems; record-reader times fall with selectivity and projectivity;
//! Hadoop++ slightly beats HAIL on the very selective Q2* because tuple
//! reconstruction from PAX pays random I/O that its row layout avoids.

use hail_bench::{
    paper, run_query, setup_hadoop, setup_hail, setup_hpp, syn_testbed, ExperimentScale, Report,
};
use hail_sim::HardwareProfile;
use hail_workloads::synthetic_queries;

fn main() {
    let scale = ExperimentScale::query(10, 15_000)
        .with_blocks_per_node(hail_bench::setup::SYN_BLOCKS_PER_NODE);
    let tb = syn_testbed(scale, HardwareProfile::physical());

    let hadoop = setup_hadoop(&tb).expect("hadoop setup");
    let (hpp, _) = setup_hpp(&tb, Some(0)).expect("hadoop++ setup");
    let hail = setup_hail(&tb, &[0, 1, 2]).expect("hail setup");

    // Print Table 1 first (the workload definition).
    let mut table1 = Report::new("Table 1", "Synthetic queries", "selectivity");
    for spec in synthetic_queries() {
        let q = spec.to_query(&tb.schema).unwrap();
        table1.row(
            format!(
                "{} ({} attrs projected)",
                spec.id,
                q.projected_columns(&tb.schema).len()
            ),
            Some(spec.paper_selectivity),
            spec.paper_selectivity,
        );
    }
    table1.print();

    let mut e2e = Report::new(
        "Fig. 7(a)",
        "End-to-end job runtime, Synthetic",
        "simulated s",
    );
    let mut rr = Report::new(
        "Fig. 7(b)",
        "Average record-reader time, Synthetic",
        "simulated ms",
    );
    let mut overhead = Report::new("Fig. 7(c)", "Framework overhead, Synthetic", "simulated s");

    let mut hail_rr = Vec::new();
    for (qi, spec) in synthetic_queries().iter().enumerate() {
        let q = spec.to_query(&tb.schema).expect(spec.id);
        let rh = run_query(&hadoop, &tb.spec, &q, false).expect(spec.id);
        let rp = run_query(&hpp, &tb.spec, &q, false).expect(spec.id);
        let ra = run_query(&hail, &tb.spec, &q, false).expect(spec.id);

        let norm = |rows: &[hail_types::Row]| {
            let mut v: Vec<String> = rows.iter().map(|r| r.to_string()).collect();
            v.sort();
            v
        };
        assert_eq!(norm(&rh.output), norm(&ra.output), "{} diverges", spec.id);
        assert_eq!(norm(&rh.output), norm(&rp.output), "{} diverges", spec.id);

        e2e.row(
            format!("{} Hadoop", spec.id),
            Some(paper::fig7a::HADOOP[qi]),
            rh.report.end_to_end_seconds,
        );
        e2e.row(
            format!("{} Hadoop++", spec.id),
            Some(paper::fig7a::HADOOP_PP[qi]),
            rp.report.end_to_end_seconds,
        );
        e2e.row(
            format!("{} HAIL", spec.id),
            Some(paper::fig7a::HAIL[qi]),
            ra.report.end_to_end_seconds,
        );

        rr.row(
            format!("{} Hadoop", spec.id),
            Some(paper::fig7b::HADOOP[qi]),
            rh.report.avg_reader_seconds() * 1e3,
        );
        rr.row(
            format!("{} Hadoop++", spec.id),
            Some(paper::fig7b::HADOOP_PP[qi]),
            rp.report.avg_reader_seconds() * 1e3,
        );
        rr.row(
            format!("{} HAIL", spec.id),
            Some(paper::fig7b::HAIL[qi]),
            ra.report.avg_reader_seconds() * 1e3,
        );
        hail_rr.push(ra.report.avg_reader_seconds());

        overhead.row(
            format!("{} Hadoop", spec.id),
            None,
            rh.report.overhead_seconds(),
        );
        overhead.row(
            format!("{} Hadoop++", spec.id),
            None,
            rp.report.overhead_seconds(),
        );
        overhead.row(
            format!("{} HAIL", spec.id),
            None,
            ra.report.overhead_seconds(),
        );

        // Index scans beat full scans at the reader level.
        assert!(
            ra.report.avg_reader_seconds() < rh.report.avg_reader_seconds(),
            "{}: HAIL RR must beat Hadoop RR",
            spec.id
        );
    }

    // Selectivity shape: Q2 (1%) readers are faster than Q1 (10%) at the
    // same projectivity; projectivity shape: c < b < a within Q1.
    assert!(hail_rr[3] < hail_rr[0], "Q2a < Q1a");
    assert!(
        hail_rr[2] < hail_rr[1] && hail_rr[1] < hail_rr[0],
        "c < b < a"
    );

    e2e.note("all queries filter the same attribute; HailSplitting disabled");
    e2e.print();
    rr.print();
    overhead.print();
}
