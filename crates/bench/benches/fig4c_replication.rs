//! Fig. 4(c): upload time for Synthetic while varying the replication
//! factor (HAIL creates as many different clustered indexes as
//! replicas).
//!
//! Paper shape: HAIL stores SIX indexed replicas in about the time
//! Hadoop stores three unindexed ones (dotted line), and HAIL@6
//! occupies only slightly more disk than Hadoop@3 (420 GB vs 390 GB).

use hail_bench::{paper, setup_hadoop, setup_hail, syn_testbed, ExperimentScale, Report};
use hail_sim::HardwareProfile;

fn main() {
    let mut report = Report::new(
        "Fig. 4(c)",
        "Upload time, Synthetic, varying replication factor",
        "simulated s",
    );
    let mut footprint = Report::new(
        "Fig. 4(c) footprint",
        "Disk space, scaled to the paper's 130 GB dataset",
        "logical GB",
    );

    let mut hadoop_at_3 = f64::NAN;
    let mut hail_at_6 = f64::NAN;
    for (i, &replicas) in paper::fig4c::REPLICAS.iter().enumerate() {
        let mut scale = ExperimentScale::upload(10, 6000)
            .with_blocks_per_node(hail_bench::setup::SYN_BLOCKS_PER_NODE);
        scale.replication = replicas;
        let tb = syn_testbed(scale, HardwareProfile::physical());

        let hadoop = setup_hadoop(&tb).expect("hadoop upload");
        report.row(
            format!("Hadoop r={replicas}"),
            Some(paper::fig4c::HADOOP[i]),
            hadoop.upload_seconds,
        );

        let cols: Vec<usize> = (0..replicas).collect();
        let hail = setup_hail(&tb, &cols).expect("hail upload");
        report.row(
            format!("HAIL r={replicas} ({replicas} idx)"),
            Some(paper::fig4c::HAIL[i]),
            hail.upload_seconds,
        );

        let to_gb = |bytes: u64| tb.spec.scale.bytes(bytes) / 1e9;
        if replicas == 3 {
            hadoop_at_3 = hadoop.upload_seconds;
            footprint.row(
                "Hadoop 3 replicas",
                Some(paper::fig4c::HADOOP_3REP_GB),
                to_gb(hadoop.cluster.stored_bytes()),
            );
        }
        if replicas == 6 {
            hail_at_6 = hail.upload_seconds;
            footprint.row(
                "HAIL 6 replicas (6 idx)",
                Some(paper::fig4c::HAIL_6REP_GB),
                to_gb(hail.cluster.stored_bytes()),
            );
        }
    }

    report.note("paper: HAIL@6 replicas ≈ Hadoop@3 replicas upload time");
    report.note(format!(
        "measured HAIL@6 / Hadoop@3 = {:.2} (paper: 0.96; our model uses one effective \
         disk per node, while the paper's nodes spread 6 replica writes over 6 disks)",
        hail_at_6 / hadoop_at_3
    ));
    assert!(
        hail_at_6 < 1.5 * hadoop_at_3,
        "HAIL with 6 indexed replicas ({hail_at_6:.0}s) should stay near Hadoop with 3 ({hadoop_at_3:.0}s)"
    );
    report.print();
    footprint.print();
}
