//! Ablation (§3.5 "Why Clustered Indexes?"): clustered vs unclustered
//! indexing.
//!
//! The paper rejects unclustered indexes because (i) they are dense —
//! 10–20 % space overhead vs ~0.01 % — and (ii) for anything but very
//! selective queries their random row accesses cost more than reading
//! the clustered partitions sequentially. We build both structures over
//! the same block and sweep selectivity.

use hail_bench::Report;
use hail_index::{ClusteredIndex, KeyBounds, UnclusteredIndex};
use hail_sim::HardwareProfile;
use hail_types::{DataType, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const ROWS: usize = 200_000;
const ROW_BYTES: f64 = 40.0;
const PARTITION: usize = 1024;

fn main() {
    let hw = HardwareProfile::physical();
    let rate = hw.disk_read_mb_s * 1e6;
    let mut rng = StdRng::seed_from_u64(99);

    // Unsorted key column (what the unclustered index indexes) and its
    // sorted version (what the clustered replica stores).
    let unsorted: Vec<Value> = (0..ROWS)
        .map(|_| Value::Int(rng.random_range(0..1_000_000)))
        .collect();
    let mut sorted = unsorted.clone();
    sorted.sort();

    let clustered = ClusteredIndex::build(0, DataType::Int, PARTITION, &sorted).unwrap();
    let unclustered = UnclusteredIndex::build(0, DataType::Int, &unsorted).unwrap();

    let block_bytes = ROWS as f64 * ROW_BYTES;
    let mut report = Report::new(
        "Ablation: unclustered index",
        "Access cost by selectivity (index read + data I/O)",
        "ms",
    );
    report.note(format!(
        "space: clustered {} B ({:.3}% of block) vs unclustered {} B ({:.1}% of block); paper: ~0.01% vs 10-20%",
        clustered.byte_len(),
        clustered.byte_len() as f64 / block_bytes * 100.0,
        unclustered.byte_len(),
        unclustered.byte_len() as f64 / block_bytes * 100.0
    ));

    let mut crossover_seen = false;
    let mut last_ratio = 0.0;
    for sel_ppm in [10u32, 100, 1_000, 10_000, 100_000, 300_000] {
        let sel = sel_ppm as f64 / 1e6;
        let hi = (1_000_000.0 * sel) as i32;
        let bounds = KeyBounds::between(Value::Int(0), Value::Int(hi.max(0)));

        // Clustered: one seek + contiguous partitions of the whole rows.
        let (first, last) = clustered.lookup(&bounds).unwrap_or((0, 0));
        let rows_read = clustered.partition_rows(first, last).len() as f64;
        let clustered_ms = (hw.seek_s + rows_read * ROW_BYTES / rate) * 1e3
            + clustered.byte_len() as f64 / rate * 1e3;

        // Unclustered: read the dense index, then one seek per
        // non-adjacent matching rowid.
        let rowids = unclustered.lookup_rowids(&bounds);
        let seeks = UnclusteredIndex::seek_count(&rowids) as f64;
        let unclustered_ms = (unclustered.byte_len() as f64 / rate
            + seeks * hw.seek_s
            + rowids.len() as f64 * ROW_BYTES / rate)
            * 1e3;

        report.row(format!("sel {sel:.4} clustered"), None, clustered_ms);
        report.row(format!("sel {sel:.4} unclustered"), None, unclustered_ms);
        last_ratio = unclustered_ms / clustered_ms;
        if unclustered_ms > clustered_ms {
            crossover_seen = true;
        }
    }

    assert!(
        crossover_seen,
        "unclustered must lose at low selectivities (random I/O)"
    );
    assert!(
        last_ratio > 5.0,
        "at selectivity 0.3 the unclustered index should lose badly ({last_ratio:.1}x)"
    );
    assert!(
        unclustered.byte_len() > 100 * clustered.byte_len(),
        "unclustered indexes are dense"
    );
    report.note("paper conclusion: clustered wins at all but extreme selectivities; HAIL uses clustered only");
    report.print();
}
