//! Fig. 6: Bob's query workload with HailSplitting **disabled** —
//! (a) end-to-end job runtimes, (b) average record-reader times,
//! (c) the Hadoop framework overhead `T_end-to-end − T_ideal`.
//!
//! Configuration per §6.4.1: Hadoop has no index; Hadoop++ clusters all
//! replicas on sourceIP; HAIL clusters one replica each on visitDate,
//! sourceIP, and adRevenue.
//!
//! Paper shape: HAIL's end-to-end times are flat (~600 s) and below
//! both baselines on every query; HAIL record readers are up to 46×
//! faster than Hadoop's; the overhead dominates end-to-end time for
//! short tasks.

use hail_bench::{
    paper, run_query, setup_hadoop, setup_hail, setup_hpp, uv_testbed, ExperimentScale, Report,
};
use hail_sim::HardwareProfile;
use hail_workloads::bob_queries;

fn main() {
    let scale = ExperimentScale::query(10, 20_000);
    let tb = uv_testbed(scale, HardwareProfile::physical());

    let hadoop = setup_hadoop(&tb).expect("hadoop setup");
    let (hpp, _) = setup_hpp(&tb, Some(0)).expect("hadoop++ setup"); // sourceIP
    let hail = setup_hail(&tb, &[2, 0, 3]).expect("hail setup"); // visitDate, sourceIP, adRevenue

    let mut e2e = Report::new(
        "Fig. 6(a)",
        "End-to-end job runtime, Bob queries",
        "simulated s",
    );
    let mut rr = Report::new(
        "Fig. 6(b)",
        "Average record-reader time, Bob queries",
        "simulated ms",
    );
    let mut overhead = Report::new(
        "Fig. 6(c)",
        "Framework overhead (T_end-to-end − T_ideal)",
        "simulated s",
    );

    let mut max_rr_speedup: f64 = 0.0;
    for (qi, spec) in bob_queries().iter().enumerate() {
        let q = spec.to_query(&tb.schema).expect(spec.id);
        let rh = run_query(&hadoop, &tb.spec, &q, false).expect(spec.id);
        let rp = run_query(&hpp, &tb.spec, &q, false).expect(spec.id);
        let ra = run_query(&hail, &tb.spec, &q, false).expect(spec.id);

        // Correctness: identical result sets across systems.
        let norm = |rows: &[hail_types::Row]| {
            let mut v: Vec<String> = rows.iter().map(|r| r.to_string()).collect();
            v.sort();
            v
        };
        assert_eq!(
            norm(&rh.output),
            norm(&ra.output),
            "{} results diverge",
            spec.id
        );
        assert_eq!(
            norm(&rh.output),
            norm(&rp.output),
            "{} results diverge",
            spec.id
        );

        e2e.row(
            format!("{} Hadoop", spec.id),
            Some(paper::fig6a::HADOOP[qi]),
            rh.report.end_to_end_seconds,
        );
        e2e.row(
            format!("{} Hadoop++", spec.id),
            Some(paper::fig6a::HADOOP_PP[qi]),
            rp.report.end_to_end_seconds,
        );
        e2e.row(
            format!("{} HAIL", spec.id),
            Some(paper::fig6a::HAIL[qi]),
            ra.report.end_to_end_seconds,
        );

        rr.row(
            format!("{} Hadoop", spec.id),
            Some(paper::fig6b::HADOOP[qi]),
            rh.report.avg_reader_seconds() * 1e3,
        );
        rr.row(
            format!("{} Hadoop++", spec.id),
            Some(paper::fig6b::HADOOP_PP[qi]),
            rp.report.avg_reader_seconds() * 1e3,
        );
        rr.row(
            format!("{} HAIL", spec.id),
            Some(paper::fig6b::HAIL[qi]),
            ra.report.avg_reader_seconds() * 1e3,
        );
        max_rr_speedup =
            max_rr_speedup.max(rh.report.avg_reader_seconds() / ra.report.avg_reader_seconds());

        overhead.row(
            format!("{} Hadoop", spec.id),
            None,
            rh.report.overhead_seconds(),
        );
        overhead.row(
            format!("{} Hadoop++", spec.id),
            None,
            rp.report.overhead_seconds(),
        );
        overhead.row(
            format!("{} HAIL", spec.id),
            None,
            ra.report.overhead_seconds(),
        );

        // Shape: HAIL end-to-end ≤ both baselines; overhead dominates
        // HAIL's end-to-end (the §6.4.1 observation motivating §6.5).
        assert!(ra.report.end_to_end_seconds <= rh.report.end_to_end_seconds * 1.02);
        assert!(ra.report.end_to_end_seconds <= rp.report.end_to_end_seconds * 1.02);
        assert!(
            ra.report.overhead_seconds() > 0.8 * ra.report.end_to_end_seconds,
            "{}: HAIL should be overhead-dominated",
            spec.id
        );
    }

    assert!(
        max_rr_speedup > 10.0,
        "HAIL record readers should be an order of magnitude faster (paper: up to 46x); got {max_rr_speedup:.1}x"
    );
    e2e.note(format!(
        "{} blocks, {} map slots, scale factor {:.0}x; HailSplitting disabled",
        hadoop.dataset.block_count(),
        tb.spec.total_map_slots(),
        tb.spec.scale.0
    ));
    rr.note(format!(
        "max measured RR speedup vs Hadoop: {max_rr_speedup:.0}x (paper: 46x)"
    ));
    e2e.print();
    rr.print();
    overhead.print();
}
