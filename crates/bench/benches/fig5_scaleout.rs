//! Fig. 5: cluster scale-out — upload times for 10/50/100 cc1.4xlarge
//! nodes with constant data per node, plus the runtime-variance note.
//!
//! Paper shape: per-node upload times stay roughly flat as the cluster
//! grows (the upload is node-local + chain-local), HAIL stays below
//! Hadoop on Synthetic at every size, and HAIL exhibits *lower* runtime
//! variability than Hadoop.

use hail_bench::{
    paper, setup_hadoop, setup_hail, syn_testbed, uv_testbed, ExperimentScale, Report,
};
use hail_sim::{HardwareProfile, Jitter};

fn main() {
    let mut report = Report::new(
        "Fig. 5",
        "Scale-out upload (cc1.4xlarge), constant data per node",
        "simulated s",
    );
    let mut variance = Report::new(
        "Fig. 5 variance",
        "Per-node runtime spread across the cluster",
        "relative spread",
    );

    for (i, &nodes) in paper::fig5::NODES.iter().enumerate() {
        let profile = HardwareProfile::ec2_cc1_4xlarge();

        let tb = syn_testbed(
            ExperimentScale::upload(nodes, 2500)
                .with_blocks_per_node(hail_bench::setup::SYN_BLOCKS_PER_NODE),
            profile.clone(),
        );
        let hadoop = setup_hadoop(&tb).expect("hadoop syn");
        let hail = setup_hail(&tb, &[0, 1, 2]).expect("hail syn");
        report.row(
            format!("Syn {nodes}n Hadoop"),
            Some(paper::fig5::SYN_HADOOP[i]),
            hadoop.upload_seconds,
        );
        report.row(
            format!("Syn {nodes}n HAIL"),
            Some(paper::fig5::SYN_HAIL[i]),
            hail.upload_seconds,
        );
        assert!(
            hail.upload_seconds < hadoop.upload_seconds,
            "HAIL must stay below Hadoop on Synthetic at {nodes} nodes"
        );

        let tb = uv_testbed(ExperimentScale::upload(nodes, 2000), profile.clone());
        let hadoop = setup_hadoop(&tb).expect("hadoop uv");
        let hail = setup_hail(&tb, &[2, 0, 3]).expect("hail uv");
        report.row(
            format!("UV {nodes}n Hadoop"),
            Some(paper::fig5::UV_HADOOP[i]),
            hadoop.upload_seconds,
        );
        report.row(
            format!("UV {nodes}n HAIL"),
            Some(paper::fig5::UV_HAIL[i]),
            hail.upload_seconds,
        );

        // Variance model (§6.3.4, [30]): Hadoop's makespan is set by the
        // slowest of N I/O-bound nodes (high EC2 I/O variance); HAIL's
        // CPU-heavy pipeline smooths it. We model Hadoop node times with
        // full EC2 jitter and HAIL with half of it.
        let mut hadoop_jitter = Jitter::new(42 + nodes as u64, profile.variance);
        let mut hail_jitter = Jitter::new(42 + nodes as u64, profile.variance * 0.5);
        variance.row(
            format!("{nodes}n Hadoop"),
            None,
            hadoop_jitter.spread(hadoop.upload_seconds, nodes),
        );
        variance.row(
            format!("{nodes}n HAIL"),
            None,
            hail_jitter.spread(hail.upload_seconds, nodes),
        );
    }

    report.note("constant 2,500 Synthetic / 2,000 UserVisits rows per node");
    report.print();
    variance.print();
}
