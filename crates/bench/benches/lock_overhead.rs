//! Ranked-lock overhead guard: the PR 10 migration of every engine
//! lock onto `hail_sync`'s `OrderedMutex`/`OrderedRwLock` wrappers
//! must be free in release builds (the rank checking is compiled out;
//! the wrappers are newtypes plus a poison-recovering acquire).
//!
//! Re-runs the `scan_sharing` bench's concurrency-4 managed batch —
//! the most lock-hungry configuration in the suite (manager slots,
//! pool deques, node gate, planner stores, and the share registry all
//! contended at once) — and asserts jobs/sec stays within 5% of the
//! `BENCH_9.json` baseline recorded before the migration. Headline
//! metrics land in `BENCH_10.json`.

use hail_bench::{
    run_queries_managed, setup_hail, uv_testbed, BenchSummary, ExperimentScale, Report,
    SharedJobInfra,
};
use hail_core::HailQuery;
use hail_mr::JobManager;
use hail_sim::HardwareProfile;
use hail_workloads::bob_queries;
use std::time::Instant;

/// Best-of samples: throughput guards compare minima, not means, so a
/// scheduler hiccup cannot fail the guard.
const SAMPLES: usize = 3;
const CONCURRENCY: usize = 4;
/// Queue depth, matching `scan_sharing`: each Bob query ×4, adjacent.
const REPEATS: usize = 4;
/// Allowed regression vs the pre-migration baseline.
const FLOOR: f64 = 0.95;

/// Pulls `"jobs_per_sec_c4": <value>` out of `BENCH_9.json` without a
/// JSON dependency — the file is flat `"key": number` pairs.
fn baseline_jobs_per_sec(bench9: &str) -> Option<f64> {
    let key = "\"jobs_per_sec_c4\":";
    let at = bench9.find(key)? + key.len();
    let rest = bench9[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let scale = ExperimentScale::query(4, 40_000)
        .with_blocks_per_node(16)
        .with_partition_size(64);
    let tb = uv_testbed(scale, HardwareProfile::physical());
    let hail = setup_hail(&tb, &[2, 0, 3]).expect("hail setup"); // visitDate, sourceIP, adRevenue

    let queries: Vec<HailQuery> = bob_queries()
        .iter()
        .flat_map(|spec| {
            let q = spec.to_query(&tb.schema).expect(spec.id);
            std::iter::repeat_n(q, REPEATS)
        })
        .collect();

    let mut table = Report::new(
        "lock-overhead/throughput",
        format!(
            "{} queued Bob jobs at concurrency {CONCURRENCY}, ranked locks, best of {SAMPLES}",
            queries.len()
        ),
        "jobs/sec vs the BENCH_9 pre-migration baseline",
    );
    let mut summary = BenchSummary::new("BENCH_10");

    let mut best = 0.0f64;
    for sample in 0..SAMPLES {
        let manager = JobManager::new(CONCURRENCY);
        let infra = SharedJobInfra::for_jobs(CONCURRENCY);
        let started = Instant::now();
        let batch = run_queries_managed(&hail, &tb.spec, &queries, true, &manager, &infra)
            .expect("managed batch");
        let secs = started.elapsed().as_secs_f64();
        let jobs_per_sec = queries.len() as f64 / secs;
        best = best.max(jobs_per_sec);
        table.row(format!("sample {sample} jobs/sec"), None, jobs_per_sec);
        assert!(
            batch.summary.logical_blocks > 0,
            "batch must actually read blocks"
        );
    }
    summary.metric("jobs_per_sec_c4", best);

    let bench9_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_9.json");
    match std::fs::read_to_string(bench9_path)
        .ok()
        .as_deref()
        .and_then(baseline_jobs_per_sec)
    {
        Some(baseline) => {
            let ratio = best / baseline;
            summary.metric("baseline_jobs_per_sec_c4", baseline);
            summary.metric("throughput_ratio_vs_bench9", ratio);
            table.note(format!(
                "{best:.2} jobs/sec vs {baseline:.2} baseline ({ratio:.3}×, floor {FLOOR}×)"
            ));
            assert!(
                ratio >= FLOOR,
                "ranked-lock migration regressed managed throughput: \
                 {best:.2} jobs/sec vs {baseline:.2} baseline ({ratio:.3}× < {FLOOR}×)"
            );
        }
        None => {
            // No baseline on disk (fresh checkout without bench
            // artifacts): record the measurement, skip the guard.
            table.note("BENCH_9.json baseline not found; guard skipped");
        }
    }
    table.print();

    summary.report(table);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_10.json");
    summary.write_to(out).expect("write BENCH_10.json");
    eprintln!("wrote {out}");
}
