//! Fig. 4(b): upload time for Synthetic (19 INT attributes) while
//! varying the number of created indexes.
//!
//! Paper shape: binary PAX shrinks the integer-heavy data so much that
//! HAIL beats Hadoop by ≈1.6× even while creating three indexes;
//! Hadoop++ is 5.2×/8.2× slower than HAIL.

use hail_bench::{
    paper, setup_hadoop, setup_hail, setup_hpp, syn_testbed, ExperimentScale, Report,
};
use hail_sim::HardwareProfile;

fn main() {
    let scale = ExperimentScale::upload(10, 8000)
        .with_blocks_per_node(hail_bench::setup::SYN_BLOCKS_PER_NODE);
    let tb = syn_testbed(scale, HardwareProfile::physical());
    let mut report = Report::new(
        "Fig. 4(b)",
        "Upload time, Synthetic, 10-node physical cluster",
        "simulated s",
    );

    let hadoop = setup_hadoop(&tb).expect("hadoop upload");
    report.row("Hadoop", Some(paper::fig4b::HADOOP), hadoop.upload_seconds);

    for n in 0..=3usize {
        let cols: Vec<usize> = (0..n).collect();
        let hail = setup_hail(&tb, &cols).expect("hail upload");
        report.row(
            format!("HAIL {n} idx"),
            Some(paper::fig4b::HAIL[n]),
            hail.upload_seconds,
        );
    }

    for (n, key) in [(0usize, None), (1, Some(0usize))] {
        let (hpp, _) = setup_hpp(&tb, key).expect("hadoop++ upload");
        report.row(
            format!("Hadoop++ {n} idx"),
            Some(paper::fig4b::HADOOP_PP[n]),
            hpp.upload_seconds,
        );
    }

    report.note(format!(
        "materialized {} nodes x {} rows, scale factor {:.0}x",
        scale.nodes, scale.rows_per_node, tb.spec.scale.0
    ));

    let h = report.rows[0].measured;
    let hail3 = report.rows[4].measured;
    let hpp0 = report.rows[5].measured;
    assert!(
        hail3 < h,
        "HAIL with 3 indexes must beat Hadoop on integer data: {hail3:.0} vs {h:.0}"
    );
    assert!(
        h / hail3 > 1.2,
        "binary shrink should give a clear win: {:.2}x",
        h / hail3
    );
    assert!(hpp0 > 2.0 * hail3, "Hadoop++ much slower: {hpp0:.0}");
    report.print();
}
