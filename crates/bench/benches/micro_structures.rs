//! Criterion micro-benchmarks over the core data structures: PAX block
//! encode/parse/reconstruct, in-memory block sorting (the upload-time
//! CPU work the paper hides behind I/O), and clustered-index build +
//! lookup.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hail_index::{ClusteredIndex, IndexedBlock, KeyBounds, SortOrder};
use hail_pax::{blocks_from_text, sort_block, PaxBlock};
use hail_types::{DataType, Field, Schema, StorageConfig, Value};
use std::hint::black_box;

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("ip", DataType::VarChar),
        Field::new("visitDate", DataType::Date),
        Field::new("revenue", DataType::Float),
        Field::new("duration", DataType::Int),
    ])
    .unwrap()
}

fn sample_text(rows: usize) -> String {
    (0..rows)
        .map(|i| {
            format!(
                "10.{}.{}.{}|19{:02}-01-01|{}.25|{}\n",
                i % 200,
                (i * 7) % 250,
                (i * 13) % 250,
                70 + i % 30,
                i % 500,
                i % 10_000
            )
        })
        .collect()
}

fn sample_block(rows: usize) -> PaxBlock {
    blocks_from_text(
        &sample_text(rows),
        &schema(),
        &StorageConfig::test_scale(1 << 30),
    )
    .unwrap()
    .pop()
    .unwrap()
}

fn bench_pax(c: &mut Criterion) {
    let text = sample_text(4096);
    let s = schema();
    let cfg = StorageConfig::test_scale(1 << 30);
    c.bench_function("pax/build_4k_rows", |b| {
        b.iter(|| blocks_from_text(black_box(&text), &s, &cfg).unwrap())
    });

    let block = sample_block(4096);
    c.bench_function("pax/parse_header", |b| {
        b.iter(|| PaxBlock::parse(black_box(block.bytes().clone())).unwrap())
    });
    c.bench_function("pax/reconstruct_row", |b| {
        b.iter(|| block.reconstruct(black_box(2048), &[0, 2]).unwrap())
    });
    c.bench_function("pax/decode_column", |b| {
        b.iter(|| block.decode_column(black_box(3)).unwrap())
    });
}

fn bench_sort(c: &mut Criterion) {
    let block = sample_block(4096);
    c.bench_function("sort/sort_block_4k_rows", |b| {
        b.iter(|| sort_block(black_box(&block), 1).unwrap())
    });
    c.bench_function("sort/indexed_block_build", |b| {
        b.iter_batched(
            || block.clone(),
            |blk| IndexedBlock::build(&blk, SortOrder::Clustered { column: 1 }).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_index(c: &mut Criterion) {
    let keys: Vec<Value> = (0..1_000_000).map(Value::Int).collect();
    c.bench_function("index/build_1M_keys", |b| {
        b.iter(|| ClusteredIndex::build(0, DataType::Int, 1024, black_box(&keys)).unwrap())
    });
    let idx = ClusteredIndex::build(0, DataType::Int, 1024, &keys).unwrap();
    let bounds = KeyBounds::between(Value::Int(250_000), Value::Int(250_900));
    c.bench_function("index/range_lookup", |b| {
        b.iter(|| idx.lookup(black_box(&bounds)))
    });
    let bytes = idx.to_bytes();
    c.bench_function("index/deserialize", |b| {
        b.iter(|| ClusteredIndex::from_bytes(black_box(&bytes)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_pax, bench_sort, bench_index
}
criterion_main!(benches);
