//! Job-level split overlap: whole-job wall clock at job parallelism
//! 1/2/4 through the work-stealing `JobPool`, on top of intra-split
//! parallelism 1 and 2.
//!
//! The overlap changes **real** wall clock only: for every setting the
//! output rows, their order, and every simulated-clock report figure
//! are asserted identical to the strictly sequential run. Two tables:
//!
//! 1. *Scan job* — a full-scan-heavy query over per-block splits, the
//!    many-small-splits regime where split-level overlap matters most
//!    (each split is one block; intra-split parallelism has nothing to
//!    fan out, so only the job level can overlap reads).
//! 2. *Bob queries* — the paper's index-served `HailSplitting`
//!    workload (few multi-block splits), where the shared budget must
//!    arbitrate between split-level and block-level fan-out.

use hail_bench::{run_query_overlapped, setup_hail, uv_testbed, ExperimentScale, Report};
use hail_core::HailQuery;
use hail_sim::HardwareProfile;
use hail_workloads::bob_queries;
use std::time::Instant;

const JOB_PARALLELISMS: [usize; 3] = [1, 2, 4];
const SAMPLES: usize = 5;

fn main() {
    let scale = ExperimentScale::query(4, 120_000)
        .with_blocks_per_node(16)
        .with_partition_size(64);
    let tb = uv_testbed(scale, HardwareProfile::physical());
    let hail = setup_hail(&tb, &[2, 0, 3]).expect("hail setup"); // visitDate, sourceIP, adRevenue

    // ── 1. Scan job: per-block splits, overlap across the job ───────
    let scan_query =
        HailQuery::parse("@7 = 'searchword0'", "{@1, @7}", &tb.schema).expect("scan query");
    let mut scan = Report::new(
        "job-overlap/scan-job",
        "Whole-job measured reader wall clock, per-block full-scan splits",
        "measured ms (min of 5)",
    );
    let mut baseline: Option<(Vec<String>, f64)> = None;
    let mut wall_by_parallelism = Vec::new();
    for job_p in JOB_PARALLELISMS {
        let mut best_ms = f64::INFINITY;
        let mut last = None;
        for _ in 0..SAMPLES {
            let started = Instant::now();
            let run = run_query_overlapped(&hail, &tb.spec, &scan_query, true, 1, job_p)
                .expect("scan job");
            best_ms = best_ms.min(started.elapsed().as_secs_f64() * 1e3);
            last = Some(run);
        }
        let run = last.unwrap();
        let rows: Vec<String> = run.output.iter().map(|r| r.to_string()).collect();
        match &baseline {
            None => baseline = Some((rows, run.report.end_to_end_seconds)),
            Some((b_rows, b_e2e)) => {
                assert_eq!(b_rows, &rows, "job={job_p} changed rows or order");
                assert_eq!(
                    *b_e2e, run.report.end_to_end_seconds,
                    "job={job_p} changed the simulated schedule"
                );
            }
        }
        wall_by_parallelism.push(best_ms);
        scan.row(format!("job={job_p}"), None, best_ms);
    }
    scan.note(format!(
        "whole-job wall clock 1→4 job workers: {:.2}×",
        wall_by_parallelism[0] / wall_by_parallelism[2]
    ));
    scan.note(format!(
        "machine cores: {} (speedup bounded by min(cores, workers, splits))",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    scan.note("rows and simulated reports identical at every setting");
    scan.print();

    // ── 2. Bob queries: HailSplitting splits through the shared pool ─
    // Whole-run elapsed wall clock (NOT `reader_wall_seconds`, which
    // sums per-task walls and by construction cannot show overlap
    // gains — overlap shrinks the elapsed time, never the sum).
    let mut jobs = Report::new(
        "job-overlap/bob-jobs",
        "Whole-job elapsed wall clock, Bob queries × job parallelism (split parallelism 2)",
        "measured ms (min of 5)",
    );
    for spec in bob_queries() {
        let q = spec.to_query(&tb.schema).expect(spec.id);
        let mut per_query: Option<(Vec<String>, f64)> = None;
        for job_p in JOB_PARALLELISMS {
            let mut best_ms = f64::INFINITY;
            let mut last = None;
            for _ in 0..SAMPLES {
                let started = Instant::now();
                let run = run_query_overlapped(&hail, &tb.spec, &q, true, 2, job_p).expect(spec.id);
                best_ms = best_ms.min(started.elapsed().as_secs_f64() * 1e3);
                last = Some(run);
            }
            let run = last.unwrap();
            let rows: Vec<String> = run.output.iter().map(|r| r.to_string()).collect();
            match &per_query {
                None => per_query = Some((rows, run.report.end_to_end_seconds)),
                Some((b_rows, b_e2e)) => {
                    assert_eq!(b_rows, &rows, "{}: rows diverged", spec.id);
                    assert_eq!(
                        *b_e2e, run.report.end_to_end_seconds,
                        "{}: simulated end-to-end diverged",
                        spec.id
                    );
                }
            }
            jobs.row(format!("{} job={job_p}", spec.id), None, best_ms);
        }
    }
    jobs.note("outputs and simulated reports identical at every job parallelism");
    jobs.print();
}
