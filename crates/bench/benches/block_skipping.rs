//! Block skipping via persisted zone-map + Bloom synopses: needle-in-
//! the-haystack queries planned with synopsis pruning on vs off.
//!
//! Three tables, plus a `BENCH_6.json` summary at the repo root:
//!
//! 1. *Planning evaluations* — cost-model candidate evaluations per
//!    job. A needle whose value exists nowhere must show **at least 5×
//!    fewer** evaluations with synopses on (the pruned side enumerates
//!    no candidates at all).
//! 2. *Blocks touched* — access paths actually executed vs blocks
//!    skipped outright.
//! 3. *Wall clocks* — the needle job under split parallelism 1/4 and
//!    job overlap 1/4 (synopses on, the default).
//!
//! Correctness gates, asserted on every comparison: the output rows
//! are bit-for-bit identical with synopses on and off (for needles and
//! for a selective haystack query that pruning must *not* touch), and
//! the adaptive planner state — the selectivity feedback each run
//! leaves behind — is identical too.

use hail_bench::{
    run_query_at, run_query_overlapped, setup_hail_with_config, uv_testbed, BenchSummary,
    ExperimentScale, Report, SystemSetup,
};
use hail_core::HailQuery;
use hail_exec::{HailInputFormat, PlanCache, PlannerConfig, SelectivityFeedback};
use hail_index::ReplicaIndexConfig;
use hail_mr::{run_map_job, JobRun, MapJob};
use hail_sim::{ClusterSpec, HardwareProfile};
use hail_workloads::{bob_queries, canonical};
use std::sync::Arc;
use std::time::Instant;

const SAMPLES: usize = 3;

/// One job under an explicit pruning mode, through a private plan
/// cache + feedback store so the two modes never share state.
struct ModeRun {
    run: JobRun,
    cost_evaluations: u64,
    feedback: Arc<SelectivityFeedback>,
}

fn run_mode(
    setup: &SystemSetup,
    spec: &ClusterSpec,
    query: &HailQuery,
    synopsis_pruning: bool,
) -> ModeRun {
    let cache = Arc::new(PlanCache::default());
    let feedback = Arc::new(SelectivityFeedback::default());
    let mut format =
        HailInputFormat::new(setup.dataset.clone(), query.clone()).with_planner(PlannerConfig {
            plan_cache: Some(Arc::clone(&cache)),
            feedback: Some(Arc::clone(&feedback)),
            synopsis_pruning,
            ..Default::default()
        });
    format.map_slots = spec.profile.map_slots;
    let job = MapJob::collecting("block-skipping", setup.dataset.blocks.clone(), &format);
    let run = run_map_job(&setup.cluster, spec, &job).expect("needle job");
    ModeRun {
        run,
        cost_evaluations: cache.stats().cost_evaluations,
        feedback,
    }
}

/// Runs one query with pruning on and off, asserts identical output
/// and identical adaptive state, and returns (on, off).
fn compare_modes(
    setup: &SystemSetup,
    spec: &ClusterSpec,
    label: &str,
    query: &HailQuery,
    feedback_key: (usize, bool),
) -> (ModeRun, ModeRun) {
    let on = run_mode(setup, spec, query, true);
    let off = run_mode(setup, spec, query, false);
    assert_eq!(
        canonical(&on.run.output),
        canonical(&off.run.output),
        "{label}: pruning changed the result"
    );
    let (column, eq) = feedback_key;
    assert_eq!(
        on.feedback.observed(column, eq),
        off.feedback.observed(column, eq),
        "{label}: pruning changed the adaptive state"
    );
    assert_eq!(off.run.report.blocks_pruned(), 0);
    (on, off)
}

/// Min-of-N elapsed wall clock for a closure, in milliseconds.
fn best_ms(mut f: impl FnMut() -> JobRun) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let started = Instant::now();
        let _ = f();
        best = best.min(started.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let scale = ExperimentScale::query(4, 6000)
        .with_blocks_per_node(24)
        .with_partition_size(16);
    let tb = uv_testbed(scale, HardwareProfile::physical());
    // Clustered indexes on visitDate/sourceIP/adRevenue (the Bob filter
    // columns), with zone-map + Bloom synopses on all three.
    let config = ReplicaIndexConfig::first_indexed(3, &[2, 0, 3])
        .with_synopses(0)
        .with_synopses(2)
        .with_synopses(3);
    let hail = setup_hail_with_config(&tb, &config).expect("hail setup");
    let blocks_total = hail.dataset.blocks.len() as f64;

    // Octets never exceed 255, so this IP exists nowhere — yet it sorts
    // inside every block's sourceIP min/max, so only the Bloom filter
    // can prove it absent.
    let bloom_needle =
        HailQuery::parse("@1 = '172.101.11.460'", "{@1, @4}", &tb.schema).expect("bloom needle");
    // A date range wholly above the generated domain: zone maps prune.
    let zone_needle =
        HailQuery::parse("@3 between(2050-01-01, 2051-01-01)", "{@1, @4}", &tb.schema)
            .expect("zone needle");

    let mut summary = BenchSummary::new("BENCH_6");
    let mut planning = Report::new(
        "block-skipping/planning",
        "Cost-model candidate evaluations per needle job, synopses on vs off",
        "evaluations",
    );
    let mut touched = Report::new(
        "block-skipping/blocks-touched",
        "Access paths executed vs blocks skipped per needle job",
        "blocks",
    );

    for (label, key, query) in [
        ("bloom-needle", (0usize, true), &bloom_needle),
        ("zone-needle", (2usize, false), &zone_needle),
    ] {
        let (on, off) = compare_modes(&hail, &tb.spec, label, query, key);
        assert!(
            on.run.output.is_empty(),
            "{label}: the needle exists nowhere"
        );
        let ratio = off.cost_evaluations as f64 / on.cost_evaluations.max(1) as f64;
        assert!(
            ratio >= 5.0,
            "{label}: expected ≥5× fewer planning evaluations, got {ratio:.1}× \
             ({} full vs {} pruned)",
            off.cost_evaluations,
            on.cost_evaluations
        );
        // Every block is either skipped or actually read (Bloom false
        // positives land in the second bucket — correctness never
        // depends on the filter).
        let pruned = on.run.report.blocks_pruned();
        assert_eq!(
            pruned + on.run.report.path_counts().total(),
            hail.dataset.blocks.len() as u64,
            "{label}: skipped + read covers every block"
        );
        assert!(
            pruned as f64 >= 0.9 * blocks_total,
            "{label}: only {pruned} of {blocks_total} blocks skipped"
        );
        assert!(on.run.report.synopsis_bytes_read() > 0);

        planning.row(format!("{label} full"), None, off.cost_evaluations as f64);
        planning.row(format!("{label} pruned"), None, on.cost_evaluations as f64);
        touched.row(
            format!("{label} full"),
            None,
            off.run.report.path_counts().total() as f64,
        );
        touched.row(
            format!("{label} pruned"),
            None,
            on.run.report.path_counts().total() as f64,
        );
        touched.row(
            format!("{label} skipped"),
            None,
            on.run.report.blocks_pruned() as f64,
        );

        let short = label.split('-').next().unwrap();
        summary.metric(
            format!("planning_evals_full_{short}"),
            off.cost_evaluations as f64,
        );
        summary.metric(
            format!("planning_evals_pruned_{short}"),
            on.cost_evaluations as f64,
        );
        summary.metric(format!("planning_eval_ratio_{short}"), ratio);
        summary.metric(
            format!("blocks_touched_pruned_{short}"),
            on.run.report.path_counts().total() as f64,
        );
        summary.metric(
            format!("blocks_pruned_{short}"),
            on.run.report.blocks_pruned() as f64,
        );
        summary.metric(
            format!("synopsis_bytes_read_{short}"),
            on.run.report.synopsis_bytes_read() as f64,
        );
        summary.metric(
            format!("end_to_end_full_{short}"),
            off.run.report.end_to_end_seconds,
        );
        summary.metric(
            format!("end_to_end_pruned_{short}"),
            on.run.report.end_to_end_seconds,
        );
    }
    summary.metric("blocks_total", blocks_total);
    planning.note("ratio gate: pruned side must evaluate ≥5× fewer candidates");
    planning.note("outputs and adaptive planner state identical on vs off");
    planning.print();
    touched.print();

    // A selective haystack query (rows DO exist): pruning must stay
    // conservative — identical non-empty output, identical feedback.
    let haystack = bob_queries()[0].to_query(&tb.schema).expect("bob q1");
    let (on, off) = compare_modes(&hail, &tb.spec, "haystack", &haystack, (2, false));
    assert!(!on.run.output.is_empty(), "the haystack query matches rows");
    summary.metric("haystack_rows", on.run.output.len() as f64);
    summary.metric(
        "haystack_blocks_pruned",
        on.run.report.blocks_pruned() as f64,
    );
    summary.metric("haystack_evals_full", off.cost_evaluations as f64);

    // Wall clocks under the default format (synopses on): the needle
    // job at split parallelism 1 vs 4, and with job overlap 1 vs 4.
    let mut walls = Report::new(
        "block-skipping/wall-clock",
        "Needle-job elapsed wall clock under executor parallelism",
        format!("measured ms (min of {SAMPLES})"),
    );
    let split_1 = best_ms(|| run_query_at(&hail, &tb.spec, &bloom_needle, true, 1).expect("p1"));
    let split_4 = best_ms(|| run_query_at(&hail, &tb.spec, &bloom_needle, true, 4).expect("p4"));
    let job_1 =
        best_ms(|| run_query_overlapped(&hail, &tb.spec, &bloom_needle, true, 2, 1).expect("j1"));
    let job_4 =
        best_ms(|| run_query_overlapped(&hail, &tb.spec, &bloom_needle, true, 2, 4).expect("j4"));
    walls.row("split=1", None, split_1);
    walls.row("split=4", None, split_4);
    walls.row("job=1 (split=2)", None, job_1);
    walls.row("job=4 (split=2)", None, job_4);
    walls.note("pruned jobs read no blocks, so parallelism has little left to overlap");
    walls.print();
    summary.metric("wall_ms_split_1", split_1);
    summary.metric("wall_ms_split_4", split_4);
    summary.metric("wall_ms_job_1", job_1);
    summary.metric("wall_ms_job_4", job_4);

    summary.report(planning);
    summary.report(touched);
    summary.report(walls);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_6.json");
    summary.write_to(path).expect("write BENCH_6.json");
    println!("wrote {path}");
}
