//! Adaptive re-indexing end to end: a repeated ~5%-selective query on
//! an unindexed column is driven through [`run_adaptive_workload`]
//! until the advisor rebuilds the missing clustered index, then the
//! workload keeps running against the new design.
//!
//! Headline metrics — jobs until the FullScan→index flip, per-job wall
//! clock (simulated and measured) before vs after the flip, and the
//! cost-model evaluations the warm plan cache saved across the run —
//! are written to `BENCH_8.json` via [`BenchSummary`] for the driver
//! to grep.

use hail_bench::{
    run_adaptive_workload, setup_hail, uv_testbed, BenchSummary, ExperimentScale, Report,
    SharedJobInfra,
};
use hail_core::HailQuery;
use hail_exec::{ReindexAdvisor, ReindexPolicy, SelectivityFeedback};
use hail_mr::JobManager;
use hail_sim::HardwareProfile;
use hail_types::AccessPathKind;

/// Total jobs driven through the loop (round size 1: one advisory
/// round per job, so the flip lands after `hysteresis_rounds` jobs).
const JOBS: usize = 12;

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn main() {
    let scale = ExperimentScale::query(4, 30_000)
        .with_blocks_per_node(8)
        .with_partition_size(64);
    let tb = uv_testbed(scale, HardwareProfile::physical());
    // visitDate and sourceIP indexed at upload; duration (@9) is not.
    let mut hail = setup_hail(&tb, &[2, 0]).expect("hail setup");

    // ~5% selective range on the unindexed duration column.
    let query = HailQuery::parse("@9 <= 500", "{@1, @9}", &tb.schema).expect("query");
    let queries: Vec<HailQuery> = (0..JOBS).map(|_| query.clone()).collect();

    let manager = JobManager::new(2);
    let infra = SharedJobInfra::for_jobs(2);
    let advisor = ReindexAdvisor::new(ReindexPolicy {
        enabled: true, // the bench measures the loop even under the disable leg
        ..ReindexPolicy::default()
    });
    let feedback = SelectivityFeedback::default();
    let run = run_adaptive_workload(
        &mut hail, &tb.spec, &queries, true, &manager, &infra, &advisor, &feedback, 1,
    )
    .expect("adaptive workload");

    assert_eq!(run.events.len(), 1, "exactly one rebuild fires");
    let event = &run.events[0];
    let flip = event.after_job;

    // Every job returns the same rows — the rewrite moved data (the
    // new clustered replica emits them in sorted order), never changed
    // it, so the canonicalized sets match across the flip.
    let rows_of = |job: &hail_mr::JobRun| {
        let mut rows: Vec<String> = job.output.iter().map(|r| r.to_string()).collect();
        rows.sort();
        rows
    };
    let first = rows_of(&run.runs[0]);
    for (i, job) in run.runs.iter().enumerate() {
        assert_eq!(
            first,
            rows_of(job),
            "job {i}: rows diverged across the flip"
        );
    }

    // Per-job costs on each side of the flip.
    let sim_s = |r: &hail_mr::JobRun| r.report.end_to_end_seconds;
    let wall_ms = |r: &hail_mr::JobRun| r.report.reader_wall_seconds() * 1e3;
    let pre: Vec<&hail_mr::JobRun> = run.runs[..flip].iter().collect();
    let post: Vec<&hail_mr::JobRun> = run.runs[flip..].iter().collect();
    let pre_sim = mean(&pre.iter().map(|r| sim_s(r)).collect::<Vec<_>>());
    let post_sim = mean(&post.iter().map(|r| sim_s(r)).collect::<Vec<_>>());
    let pre_wall = mean(&pre.iter().map(|r| wall_ms(r)).collect::<Vec<_>>());
    let post_wall = mean(&post.iter().map(|r| wall_ms(r)).collect::<Vec<_>>());
    assert!(
        post_sim < pre_sim,
        "the index must make the simulated job cheaper: {post_sim} vs {pre_sim}"
    );
    let last_counts = run.runs.last().unwrap().report.path_counts();
    assert!(
        last_counts.get(AccessPathKind::ClusteredIndexScan) > 0
            && last_counts.get(AccessPathKind::FullScan) == 0,
        "post-flip jobs plan onto the new index"
    );

    // Cost-model evaluations the warm cache saved across the run: each
    // hit served one block plan without pricing; a miss pays
    // (evaluations / misses) on average.
    let stats = infra.plan_cache.stats();
    let per_miss = if stats.misses > 0 {
        stats.cost_evaluations as f64 / stats.misses as f64
    } else {
        0.0
    };
    let evals_saved = stats.hits as f64 * per_miss;

    let mut table = Report::new(
        "adaptive-reindex",
        format!("{JOBS} identical ~5%-selective jobs, advisor round per job"),
        "simulated s / measured ms",
    );
    table.row("jobs until flip", None, flip as f64);
    table.row("sim end-to-end s (pre-flip mean)", None, pre_sim);
    table.row("sim end-to-end s (post-flip mean)", None, post_sim);
    table.row("reader wall ms (pre-flip mean)", None, pre_wall);
    table.row("reader wall ms (post-flip mean)", None, post_wall);
    table.note(format!(
        "rebuild: {} on column {} — {} replicas rewritten, {} blocks skipped",
        event.outcome.action.kind,
        event.outcome.action.column + 1,
        event.outcome.replicas_rewritten,
        event.outcome.blocks_skipped
    ));
    table.note(format!(
        "plan cache: {} hits, {} misses, {} candidates priced (~{evals_saved:.0} evaluations saved)",
        stats.hits, stats.misses, stats.cost_evaluations
    ));
    table.print();

    let mut summary = BenchSummary::new("BENCH_8");
    summary.metric("jobs_until_flip", flip as f64);
    summary.metric(
        "replicas_rewritten",
        event.outcome.replicas_rewritten as f64,
    );
    summary.metric("sim_end_to_end_s_pre_flip", pre_sim);
    summary.metric("sim_end_to_end_s_post_flip", post_sim);
    summary.metric("sim_speedup_from_flip", pre_sim / post_sim);
    summary.metric("reader_wall_ms_pre_flip", pre_wall);
    summary.metric("reader_wall_ms_post_flip", post_wall);
    summary.metric("cost_model_evaluations_saved", evals_saved);
    summary.report(table);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_8.json");
    summary.write_to(out).expect("write BENCH_8.json");
    eprintln!("wrote {out}");
}
