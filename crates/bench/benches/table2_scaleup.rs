//! Table 2: cluster scale-up — upload times for UserVisits (a) and
//! Synthetic (b) across node types, plus the System Speedup
//! (Hadoop ÷ HAIL).
//!
//! Paper shape: better CPUs help HAIL (parsing/sorting) but barely help
//! I/O-bound Hadoop, so the System Speedup improves monotonically from
//! m1.large to cc1.4xlarge to the physical cluster: 0.54 → 0.87 on
//! UserVisits, 1.15 → 1.58 on Synthetic.

use hail_bench::{
    paper, setup_hadoop, setup_hail, syn_testbed, uv_testbed, ExperimentScale, Report,
};
use hail_sim::HardwareProfile;

fn profiles() -> Vec<HardwareProfile> {
    vec![
        HardwareProfile::ec2_large(),
        HardwareProfile::ec2_xlarge(),
        HardwareProfile::ec2_cc1_4xlarge(),
        HardwareProfile::physical(),
    ]
}

fn main() {
    let mut uv = Report::new("Table 2(a)", "Scale-up upload, UserVisits", "simulated s");
    let mut syn = Report::new("Table 2(b)", "Scale-up upload, Synthetic", "simulated s");
    let mut speedups = Report::new(
        "Table 2 speedup",
        "System Speedup (Hadoop / HAIL-3idx)",
        "x",
    );

    let mut uv_speedups = Vec::new();
    let mut syn_speedups = Vec::new();
    for (i, profile) in profiles().into_iter().enumerate() {
        let name = profile.name.clone();

        let tb = uv_testbed(ExperimentScale::upload(10, 4000), profile.clone());
        let hadoop = setup_hadoop(&tb).expect("hadoop uv");
        let hail = setup_hail(&tb, &[2, 0, 3]).expect("hail uv");
        uv.row(
            format!("{name} Hadoop"),
            Some(paper::table2::UV_HADOOP[i]),
            hadoop.upload_seconds,
        );
        uv.row(
            format!("{name} HAIL"),
            Some(paper::table2::UV_HAIL[i]),
            hail.upload_seconds,
        );
        let uv_speedup = hadoop.upload_seconds / hail.upload_seconds;
        uv_speedups.push(uv_speedup);
        speedups.row(
            format!("{name} UserVisits"),
            Some(paper::table2::UV_HADOOP[i] / paper::table2::UV_HAIL[i]),
            uv_speedup,
        );

        let tb = syn_testbed(
            ExperimentScale::upload(10, 5000)
                .with_blocks_per_node(hail_bench::setup::SYN_BLOCKS_PER_NODE),
            profile,
        );
        let hadoop = setup_hadoop(&tb).expect("hadoop syn");
        let hail = setup_hail(&tb, &[0, 1, 2]).expect("hail syn");
        syn.row(
            format!("{name} Hadoop"),
            Some(paper::table2::SYN_HADOOP[i]),
            hadoop.upload_seconds,
        );
        syn.row(
            format!("{name} HAIL"),
            Some(paper::table2::SYN_HAIL[i]),
            hail.upload_seconds,
        );
        let syn_speedup = hadoop.upload_seconds / hail.upload_seconds;
        syn_speedups.push(syn_speedup);
        speedups.row(
            format!("{name} Synthetic"),
            Some(paper::table2::SYN_HADOOP[i] / paper::table2::SYN_HAIL[i]),
            syn_speedup,
        );
    }

    // Shape: the speedup must improve when scaling up CPU power
    // (m1.large → cc1.4xlarge) on both datasets.
    assert!(
        uv_speedups[2] > uv_speedups[0],
        "UV speedup should improve with better CPUs: {uv_speedups:?}"
    );
    assert!(
        syn_speedups[2] > syn_speedups[0],
        "Syn speedup should improve with better CPUs: {syn_speedups:?}"
    );
    // Synthetic favours HAIL more than UserVisits everywhere (binary
    // shrink), as in the paper.
    for (u, s) in uv_speedups.iter().zip(&syn_speedups) {
        assert!(
            s > u,
            "Synthetic speedup {s:.2} should exceed UserVisits {u:.2}"
        );
    }

    uv.print();
    syn.print();
    speedups.print();
}
