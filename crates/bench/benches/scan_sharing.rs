//! Cooperative scan sharing: physical vs logical block reads for a
//! queue of overlapping Bob-query jobs at concurrency 1/2/4.
//!
//! Each of the five Bob queries is queued four times *adjacently*, so
//! at concurrency 4 the in-flight window is usually four jobs of the
//! same shape scanning the same blocks — the registry's serving-layer
//! case (think a dashboard fanning out the same query). Concurrency
//! may only change wall clock and the sharing counters: per-job rows
//! are asserted identical at every setting and against a
//! registry-less (`HAIL_DISABLE_SCAN_SHARING=1`-shaped) pool.
//!
//! Headline metrics — jobs/sec, physical blocks read (logical − pruned
//! − shared), and the physical-read reduction at concurrency 4 versus
//! sharing disabled (asserted ≥ 1.5×) — are written to `BENCH_9.json`
//! via [`BenchSummary`] for the driver to grep.

use hail_bench::{
    run_queries_managed, setup_hail, uv_testbed, BenchSummary, ExperimentScale, ManagedBatch,
    Report, SharedJobInfra,
};
use hail_core::HailQuery;
use hail_exec::SelectivityFeedback;
use hail_exec::{env_job_parallelism, ExecutorConfig, JobPool, JobPoolConfig, PlanCache};
use hail_mr::JobManager;
use hail_sim::HardwareProfile;
use hail_workloads::bob_queries;
use std::sync::Arc;
use std::time::Instant;

const CONCURRENCIES: [usize; 3] = [1, 2, 4];
/// Queue depth: each Bob query queued this many times, adjacently.
const REPEATS: usize = 4;

/// The `HAIL_DISABLE_SCAN_SHARING=1` pool shape: same sizing as
/// `shared_job_pool`, no registry attached.
fn infra_without_sharing(max_jobs: usize) -> SharedJobInfra {
    let executor = ExecutorConfig::default();
    let job_workers = env_job_parallelism().max(1);
    SharedJobInfra {
        plan_cache: Arc::new(PlanCache::default()),
        feedback: Some(Arc::new(SelectivityFeedback::default())),
        pool: Arc::new(JobPool::new(JobPoolConfig {
            workers: job_workers * max_jobs,
            budget: job_workers.max(executor.parallelism.max(1)) * max_jobs,
            per_node_slots: executor.per_node_slots,
        })),
    }
}

fn physical_blocks(batch: &ManagedBatch) -> u64 {
    batch.summary.logical_blocks - batch.summary.blocks_pruned - batch.summary.blocks_read_shared
}

fn outputs(batch: &ManagedBatch) -> Vec<Vec<String>> {
    batch
        .runs
        .iter()
        .map(|r| r.output.iter().map(|row| row.to_string()).collect())
        .collect()
}

fn main() {
    let scale = ExperimentScale::query(4, 40_000)
        .with_blocks_per_node(16)
        .with_partition_size(64);
    let tb = uv_testbed(scale, HardwareProfile::physical());
    let hail = setup_hail(&tb, &[2, 0, 3]).expect("hail setup"); // visitDate, sourceIP, adRevenue

    // Grouped, not cycled: [q0 ×4, q1 ×4, ...].
    let queries: Vec<HailQuery> = bob_queries()
        .iter()
        .flat_map(|spec| {
            let q = spec.to_query(&tb.schema).expect(spec.id);
            std::iter::repeat_n(q, REPEATS)
        })
        .collect();

    let mut table = Report::new(
        "scan-sharing/throughput",
        format!(
            "{} queued Bob jobs, each query ×{REPEATS} adjacent",
            queries.len()
        ),
        "jobs/sec + physical vs logical block reads",
    );
    let mut summary = BenchSummary::new("BENCH_9");
    let mut baseline: Option<Vec<Vec<String>>> = None;
    let mut physical_c4 = 0u64;

    for conc in CONCURRENCIES {
        let manager = JobManager::new(conc);
        let infra = SharedJobInfra::for_jobs(conc);
        let started = Instant::now();
        let batch = run_queries_managed(&hail, &tb.spec, &queries, true, &manager, &infra)
            .expect("managed batch");
        let secs = started.elapsed().as_secs_f64();

        // Sharing may only change counters — never rows.
        let rows = outputs(&batch);
        match &baseline {
            None => baseline = Some(rows),
            Some(expected) => assert_eq!(
                expected, &rows,
                "concurrency {conc} changed some job's rows or order"
            ),
        }

        let physical = physical_blocks(&batch);
        if conc == 4 {
            physical_c4 = physical;
        }
        let jobs_per_sec = queries.len() as f64 / secs;
        table.row(format!("concurrency={conc} jobs/sec"), None, jobs_per_sec);
        table.row(
            format!("concurrency={conc} physical blocks read"),
            None,
            physical as f64,
        );
        table.row(
            format!("concurrency={conc} blocks read shared"),
            None,
            batch.summary.blocks_read_shared as f64,
        );
        summary.metric(format!("jobs_per_sec_c{conc}"), jobs_per_sec);
        summary.metric(format!("physical_blocks_c{conc}"), physical as f64);
        summary.metric(
            format!("blocks_read_shared_c{conc}"),
            batch.summary.blocks_read_shared as f64,
        );
        if conc == 1 {
            assert_eq!(
                batch.summary.blocks_read_shared, 0,
                "one in-flight job never attaches"
            );
        }
        summary.metric(
            format!("logical_blocks_c{conc}"),
            batch.summary.logical_blocks as f64,
        );
    }

    // The registry-less pool at concurrency 4: the disable-knob
    // degradation, and the denominator of the headline reduction.
    let disabled = infra_without_sharing(4);
    let batch = run_queries_managed(
        &hail,
        &tb.spec,
        &queries,
        true,
        &JobManager::new(4),
        &disabled,
    )
    .expect("disabled batch");
    assert_eq!(
        batch.summary.blocks_read_shared, 0,
        "no registry, no sharing"
    );
    assert_eq!(
        baseline.as_ref().unwrap(),
        &outputs(&batch),
        "disabling sharing changed some job's rows or order"
    );
    let physical_disabled = physical_blocks(&batch);
    let reduction = physical_disabled as f64 / physical_c4 as f64;
    assert!(
        reduction >= 1.5,
        "scan sharing must cut physical block reads ≥1.5× at concurrency 4: \
         {physical_disabled} without vs {physical_c4} with ({reduction:.2}×)"
    );

    table.row(
        "concurrency=4 physical blocks, sharing off".to_string(),
        None,
        physical_disabled as f64,
    );
    summary.metric("physical_blocks_c4_disabled", physical_disabled as f64);
    summary.metric("physical_read_reduction_c4", reduction);
    table.note(format!(
        "physical reads at concurrency 4: {reduction:.2}× fewer with sharing on"
    ));
    table.note("per-job rows and order identical at every concurrency, sharing on or off");
    table.print();

    summary.report(table);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_9.json");
    summary.write_to(out).expect("write BENCH_9.json");
    eprintln!("wrote {out}");
}
