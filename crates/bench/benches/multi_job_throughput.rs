//! Multi-job serving throughput: a queue of Bob-query jobs pushed
//! through the `JobManager` at concurrency 1/2/4 over one shared
//! plan cache and cluster-wide job pool.
//!
//! Concurrency changes **real** wall clock and measured queue waits
//! only: for every setting each job's output rows and order are
//! asserted identical to the concurrency-1 run. Headline metrics —
//! jobs/sec plus p50/p95 queue wait per concurrency — are written to
//! `BENCH_7.json` via [`BenchSummary`] for the driver to grep.

use hail_bench::{
    run_queries_managed, setup_hail, uv_testbed, BenchSummary, ExperimentScale, Report,
    SharedJobInfra,
};
use hail_core::HailQuery;
use hail_mr::JobManager;
use hail_sim::HardwareProfile;
use hail_workloads::bob_queries;
use std::time::Instant;

const CONCURRENCIES: [usize; 3] = [1, 2, 4];
const SAMPLES: usize = 5;
/// Queue depth: each Bob query queued this many times.
const REPEATS: usize = 4;

fn main() {
    let scale = ExperimentScale::query(4, 60_000)
        .with_blocks_per_node(16)
        .with_partition_size(64);
    let tb = uv_testbed(scale, HardwareProfile::physical());
    let hail = setup_hail(&tb, &[2, 0, 3]).expect("hail setup"); // visitDate, sourceIP, adRevenue

    let queries: Vec<HailQuery> = bob_queries()
        .iter()
        .cycle()
        .take(bob_queries().len() * REPEATS)
        .map(|spec| spec.to_query(&tb.schema).expect(spec.id))
        .collect();

    let mut table = Report::new(
        "multi-job/throughput",
        format!("{} queued Bob jobs through the JobManager", queries.len()),
        "jobs/sec (best of 5) + queue-wait ms (last sample)",
    );
    let mut summary = BenchSummary::new("BENCH_7");
    let mut baseline: Option<Vec<Vec<String>>> = None;
    let mut throughput = Vec::new();

    for conc in CONCURRENCIES {
        let manager = JobManager::new(conc);
        let mut best_secs = f64::INFINITY;
        let mut last = None;
        for _ in 0..SAMPLES {
            // Fresh shared infra per sample: cache warm-up happens
            // inside the measured batch at every concurrency alike.
            let infra = SharedJobInfra::for_jobs(conc);
            let started = Instant::now();
            let batch = run_queries_managed(&hail, &tb.spec, &queries, true, &manager, &infra)
                .expect("managed batch");
            best_secs = best_secs.min(started.elapsed().as_secs_f64());
            last = Some(batch);
        }
        let batch = last.unwrap();

        // Concurrency may only change wall clock, never results.
        let outputs: Vec<Vec<String>> = batch
            .runs
            .iter()
            .map(|r| r.output.iter().map(|row| row.to_string()).collect())
            .collect();
        match &baseline {
            None => baseline = Some(outputs),
            Some(expected) => assert_eq!(
                expected, &outputs,
                "concurrency {conc} changed some job's rows or order"
            ),
        }

        let jobs_per_sec = queries.len() as f64 / best_secs;
        let p50 = batch.summary.queue_wait_p50_seconds * 1e3;
        let p95 = batch.summary.queue_wait_p95_seconds * 1e3;
        throughput.push(jobs_per_sec);
        table.row(format!("concurrency={conc} jobs/sec"), None, jobs_per_sec);
        table.row(format!("concurrency={conc} queue-wait p50 ms"), None, p50);
        table.row(format!("concurrency={conc} queue-wait p95 ms"), None, p95);
        summary.metric(format!("jobs_per_sec_c{conc}"), jobs_per_sec);
        summary.metric(format!("queue_wait_p50_ms_c{conc}"), p50);
        summary.metric(format!("queue_wait_p95_ms_c{conc}"), p95);
    }

    summary.metric("throughput_speedup_1_to_4", throughput[2] / throughput[0]);
    table.note(format!(
        "jobs/sec 1→4 concurrent jobs: {:.2}×",
        throughput[2] / throughput[0]
    ));
    table.note(format!(
        "machine cores: {} (speedup bounded by min(cores, jobs))",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    table.note("per-job rows and order identical at every concurrency");
    table.print();

    summary.report(table);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_7.json");
    summary.write_to(out).expect("write BENCH_7.json");
    eprintln!("wrote {out}");
}
