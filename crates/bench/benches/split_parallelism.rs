//! Split-level executor parallelism: per-split wall clock at 1/2/4/8
//! workers on multi-block splits, plus the Bob query jobs end to end.
//!
//! The executor changes **real** wall clock only: for every
//! parallelism the emitted records and the simulated-clock reports are
//! asserted identical to the serial run. Two tables:
//!
//! 1. *Per-split fan-out* — one multi-block split (all of the
//!    dataset's blocks) read through `read_split_with` at each
//!    parallelism, on a scan-heavy query where each block read does
//!    real decode work. This is where wall clock improves
//!    monotonically from 1 to 4 workers (8 plateaus at the machine's
//!    core count and the per-node slot structure).
//! 2. *Bob queries end to end* — the paper's index-served workload at
//!    each parallelism. HAIL's per-block index reads are microseconds,
//!    so fan-out overhead roughly breaks even; the table documents
//!    that the executor never costs correctness and what it does to
//!    wall clock when there is little work to overlap.

use hail_bench::{
    json_mode, run_query_at, setup_hail, uv_testbed, BenchSummary, ExperimentScale, Report,
};
use hail_core::HailQuery;
use hail_exec::HailInputFormat;
use hail_mr::{InputFormat, InputSplit, SplitContext};
use hail_sim::HardwareProfile;
use hail_workloads::bob_queries;
use std::time::Instant;

const PARALLELISMS: [usize; 4] = [1, 2, 4, 8];
const SAMPLES: usize = 5;

fn main() {
    let scale = ExperimentScale::query(4, 120_000)
        .with_blocks_per_node(16)
        .with_partition_size(64);
    let tb = uv_testbed(scale, HardwareProfile::physical());
    let hail = setup_hail(&tb, &[2, 0, 3]).expect("hail setup"); // visitDate, sourceIP, adRevenue

    // ── 1. Per-split fan-out on a scan-heavy query ──────────────────
    // Equality on searchWord (@7, unindexed): every block is a full
    // scan, so a multi-block split carries real per-block decode work.
    let scan_query =
        HailQuery::parse("@7 = 'searchword0'", "{@1, @7}", &tb.schema).expect("scan query");
    let format = HailInputFormat::new(hail.dataset.clone(), scan_query);
    let split = InputSplit::new(hail.dataset.blocks.clone(), hail.cluster.live_nodes());

    let mut per_split = Report::new(
        "split-parallelism/per-split",
        format!(
            "One {}-block full-scan split via read_split_with",
            split.blocks.len()
        ),
        "measured ms (min of 5)",
    );
    let mut baseline_records: Option<Vec<String>> = None;
    let mut wall_by_parallelism = Vec::new();
    for parallelism in PARALLELISMS {
        let ctx = SplitContext::on(0).with_parallelism(parallelism);
        let mut best_ms = f64::INFINITY;
        let mut rows: Vec<String> = Vec::new();
        for _ in 0..SAMPLES {
            rows.clear();
            let started = Instant::now();
            format
                .read_split_with(&hail.cluster, &split, &ctx, &mut |rec| {
                    rows.push(rec.row.to_string())
                })
                .expect("split read");
            best_ms = best_ms.min(started.elapsed().as_secs_f64() * 1e3);
        }
        match &baseline_records {
            None => baseline_records = Some(rows),
            Some(b) => assert_eq!(b, &rows, "p={parallelism} changed records or their order"),
        }
        wall_by_parallelism.push(best_ms);
        per_split.row(format!("p={parallelism}"), None, best_ms);
    }
    let speedup_4 = wall_by_parallelism[0] / wall_by_parallelism[2];
    per_split.note(format!(
        "wall clock 1→4 workers: {:.2}× ({}monotone 1→2→4)",
        speedup_4,
        if wall_by_parallelism[0] >= wall_by_parallelism[1]
            && wall_by_parallelism[1] >= wall_by_parallelism[2]
        {
            ""
        } else {
            "NOT "
        }
    ));
    per_split.note(format!(
        "machine cores: {} (speedup is bounded by min(cores, workers, blocks))",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    per_split.note("records and their order identical at every parallelism");

    // ── 2. Bob queries end to end ───────────────────────────────────
    let mut jobs = Report::new(
        "split-parallelism/bob-jobs",
        "Measured record-reader wall clock, Bob queries × executor parallelism",
        "measured ms",
    );
    for spec in bob_queries() {
        let q = spec.to_query(&tb.schema).expect(spec.id);
        let mut baseline: Option<(Vec<String>, f64, f64)> = None;
        for parallelism in PARALLELISMS {
            let run = run_query_at(&hail, &tb.spec, &q, true, parallelism).expect(spec.id);
            let reader_ms = run.report.reader_wall_seconds() * 1e3;
            let rows: Vec<String> = run.output.iter().map(|r| r.to_string()).collect();
            match &baseline {
                None => {
                    baseline = Some((
                        rows,
                        run.report.end_to_end_seconds,
                        run.report.total_reader_seconds(),
                    ));
                }
                Some((b_rows, b_e2e, b_work)) => {
                    assert_eq!(b_rows, &rows, "{}: rows diverged", spec.id);
                    assert_eq!(
                        *b_e2e, run.report.end_to_end_seconds,
                        "{}: simulated end-to-end diverged",
                        spec.id
                    );
                    assert_eq!(
                        *b_work,
                        run.report.total_reader_seconds(),
                        "{}: simulated reader work diverged",
                        spec.id
                    );
                }
            }
            jobs.row(format!("{} p={parallelism}", spec.id), None, reader_ms);
        }
    }
    jobs.note("outputs and simulated reports identical at every parallelism");

    // `--json` bundles both tables plus the headline speedups into one
    // machine-readable BenchSummary document; plain runs print the
    // aligned tables as before.
    let mut summary = BenchSummary::new("split_parallelism");
    for (i, p) in PARALLELISMS.iter().enumerate() {
        summary.metric(format!("per_split_wall_ms_p{p}"), wall_by_parallelism[i]);
    }
    summary.metric("per_split_speedup_1_to_4", speedup_4);
    summary.report(per_split.clone());
    summary.report(jobs.clone());
    if json_mode() {
        println!("{}", summary.to_json());
    } else {
        per_split.print();
        jobs.print();
    }
}
