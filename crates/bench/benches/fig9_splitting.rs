//! Fig. 9: the impact of the HailSplitting policy — (a) Bob queries,
//! (b) Synthetic queries, (c) total workload runtimes.
//!
//! Identical setups to Fig. 6/7 but with HailSplitting **enabled** for
//! HAIL: splits cover many blocks per index-holding datanode, shrinking
//! 3,200 map tasks to ≈20 and eliminating the scheduling overhead that
//! dominated Fig. 6(c)/7(c).
//!
//! Paper shape: HAIL ends up up to 68× faster than Hadoop on Bob's
//! queries (26× on Synthetic); whole workloads run 39×/36× (Bob) and
//! 9×/8× (Synthetic) faster than Hadoop/Hadoop++.

use hail_bench::{
    paper, run_query, setup_hadoop, setup_hail, setup_hpp, syn_testbed, uv_testbed,
    ExperimentScale, Report,
};
use hail_sim::HardwareProfile;
use hail_workloads::{bob_queries, synthetic_queries};

fn main() {
    // --- Bob / UserVisits ---
    let tb = uv_testbed(
        ExperimentScale::query(10, 20_000),
        HardwareProfile::physical(),
    );
    let hadoop = setup_hadoop(&tb).expect("hadoop");
    let (hpp, _) = setup_hpp(&tb, Some(0)).expect("hadoop++");
    let hail = setup_hail(&tb, &[2, 0, 3]).expect("hail");

    let mut fig9a = Report::new(
        "Fig. 9(a)",
        "End-to-end runtime, Bob queries, HailSplitting on",
        "simulated s",
    );
    let mut totals = [0.0f64; 3]; // Hadoop, H++, HAIL
    let mut max_speedup: f64 = 0.0;
    for (qi, spec) in bob_queries().iter().enumerate() {
        let q = spec.to_query(&tb.schema).expect(spec.id);
        let rh = run_query(&hadoop, &tb.spec, &q, false).expect(spec.id);
        let rp = run_query(&hpp, &tb.spec, &q, false).expect(spec.id);
        let ra = run_query(&hail, &tb.spec, &q, true).expect(spec.id);
        assert_eq!(rh.output.len(), ra.output.len(), "{} diverges", spec.id);

        fig9a.row(
            format!("{} Hadoop", spec.id),
            Some(paper::fig6a::HADOOP[qi]),
            rh.report.end_to_end_seconds,
        );
        fig9a.row(
            format!("{} Hadoop++", spec.id),
            Some(paper::fig6a::HADOOP_PP[qi]),
            rp.report.end_to_end_seconds,
        );
        fig9a.row(
            format!("{} HAIL+split ({} tasks)", spec.id, ra.report.task_count()),
            Some(paper::fig9::BOB_HAIL[qi]),
            ra.report.end_to_end_seconds,
        );
        totals[0] += rh.report.end_to_end_seconds;
        totals[1] += rp.report.end_to_end_seconds;
        totals[2] += ra.report.end_to_end_seconds;
        max_speedup = max_speedup.max(rh.report.end_to_end_seconds / ra.report.end_to_end_seconds);
        assert!(
            ra.report.task_count() * 4 < rh.report.task_count(),
            "{}: HailSplitting must collapse the task count",
            spec.id
        );
    }
    fig9a.note(format!(
        "max end-to-end speedup vs Hadoop: {max_speedup:.0}x (paper: up to 68x)"
    ));
    assert!(
        max_speedup > 8.0,
        "HailSplitting should give an order-of-magnitude win, got {max_speedup:.1}x"
    );
    fig9a.print();

    // --- Synthetic ---
    let tbs = syn_testbed(
        ExperimentScale::query(10, 15_000)
            .with_blocks_per_node(hail_bench::setup::SYN_BLOCKS_PER_NODE),
        HardwareProfile::physical(),
    );
    let hadoop_s = setup_hadoop(&tbs).expect("hadoop syn");
    let (hpp_s, _) = setup_hpp(&tbs, Some(0)).expect("hadoop++ syn");
    let hail_s = setup_hail(&tbs, &[0, 1, 2]).expect("hail syn");

    let mut fig9b = Report::new(
        "Fig. 9(b)",
        "End-to-end runtime, Synthetic queries, HailSplitting on",
        "simulated s",
    );
    let mut totals_syn = [0.0f64; 3];
    for (qi, spec) in synthetic_queries().iter().enumerate() {
        let q = spec.to_query(&tbs.schema).expect(spec.id);
        let rh = run_query(&hadoop_s, &tbs.spec, &q, false).expect(spec.id);
        let rp = run_query(&hpp_s, &tbs.spec, &q, false).expect(spec.id);
        let ra = run_query(&hail_s, &tbs.spec, &q, true).expect(spec.id);

        fig9b.row(
            format!("{} Hadoop", spec.id),
            Some(paper::fig7a::HADOOP[qi]),
            rh.report.end_to_end_seconds,
        );
        fig9b.row(
            format!("{} Hadoop++", spec.id),
            Some(paper::fig7a::HADOOP_PP[qi]),
            rp.report.end_to_end_seconds,
        );
        fig9b.row(
            format!("{} HAIL+split", spec.id),
            Some(paper::fig9::SYN_HAIL[qi]),
            ra.report.end_to_end_seconds,
        );
        totals_syn[0] += rh.report.end_to_end_seconds;
        totals_syn[1] += rp.report.end_to_end_seconds;
        totals_syn[2] += ra.report.end_to_end_seconds;
        assert!(ra.report.end_to_end_seconds < rh.report.end_to_end_seconds);
    }
    fig9b.print();

    // --- Totals (Fig. 9(c)) ---
    let mut fig9c = Report::new("Fig. 9(c)", "Total workload runtime", "simulated s");
    for (i, sys) in ["Hadoop", "Hadoop++", "HAIL"].iter().enumerate() {
        fig9c.row(
            format!("Bob workload {sys}"),
            Some(paper::fig9::BOB_TOTALS[i]),
            totals[i],
        );
    }
    for (i, sys) in ["Hadoop", "Hadoop++", "HAIL"].iter().enumerate() {
        fig9c.row(
            format!("Synthetic workload {sys}"),
            Some(paper::fig9::SYN_TOTALS[i]),
            totals_syn[i],
        );
    }
    let bob_factor = totals[0] / totals[2];
    let syn_factor = totals_syn[0] / totals_syn[2];
    fig9c.note(format!(
        "Bob workload speedup vs Hadoop: {bob_factor:.0}x (paper: 39x); Synthetic: {syn_factor:.0}x (paper: 9x)"
    ));
    assert!(
        bob_factor > 5.0,
        "Bob workload speedup too small: {bob_factor:.1}"
    );
    assert!(
        syn_factor > 2.0,
        "Synthetic workload speedup too small: {syn_factor:.1}"
    );
    fig9c.print();
}
