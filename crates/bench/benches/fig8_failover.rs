//! Fig. 8: fault tolerance — kill a node after 50 % of work progress
//! (expiry interval 30 s) and measure the slowdown
//! `(T_f − T_b) / T_b × 100`.
//!
//! Systems: Hadoop; HAIL with three different indexes (a re-executed
//! task may lose its matching index replica and fall back to scanning);
//! HAIL-1Idx with the *same* index on all three replicas (re-executions
//! keep index scans).
//!
//! Paper shape: Hadoop 10.3 %, HAIL 10.5 %, HAIL-1Idx 5.5 % — HAIL
//! preserves Hadoop's failover behaviour, and the 1-index variant
//! degrades less.

use hail_bench::{
    paper, run_query_with_failure, setup_hadoop, setup_hail, setup_hail_with_config, uv_testbed,
    ExperimentScale, Report,
};
use hail_index::ReplicaIndexConfig;
use hail_mr::FailureScenario;
use hail_sim::HardwareProfile;
use hail_workloads::bob_queries;

fn main() {
    let scale = ExperimentScale::query(10, 20_000);
    let tb = uv_testbed(scale, HardwareProfile::physical());
    let q1 = bob_queries()[0].to_query(&tb.schema).unwrap();
    let scenario = FailureScenario::at_half(3);

    let mut report = Report::new(
        "Fig. 8",
        "Failover slowdown, Bob-Q1, node killed at 50%",
        "%",
    );
    let mut runtimes = Report::new(
        "Fig. 8 runtimes",
        "Job runtime without failure",
        "simulated s",
    );

    // Hadoop.
    let mut hadoop = setup_hadoop(&tb).expect("hadoop setup");
    let rh = run_query_with_failure(&mut hadoop, &tb.spec, &q1, false, scenario).expect("hadoop");
    report.row(
        "Hadoop",
        Some(paper::fig8::HADOOP_SLOWDOWN),
        rh.slowdown_percent(),
    );
    runtimes.row(
        "Hadoop",
        Some(paper::fig8::HADOOP_RUNTIME),
        rh.baseline.end_to_end_seconds,
    );

    // HAIL with three different indexes.
    let mut hail = setup_hail(&tb, &[2, 0, 3]).expect("hail setup");
    let ra = run_query_with_failure(&mut hail, &tb.spec, &q1, false, scenario).expect("hail");
    report.row(
        "HAIL",
        Some(paper::fig8::HAIL_SLOWDOWN),
        ra.slowdown_percent(),
    );
    runtimes.row(
        "HAIL",
        Some(paper::fig8::HAIL_RUNTIME),
        ra.baseline.end_to_end_seconds,
    );

    // HAIL-1Idx: visitDate index on every replica.
    let config = ReplicaIndexConfig::uniform(3, 2);
    let mut hail1 = setup_hail_with_config(&tb, &config).expect("hail-1idx setup");
    let r1 = run_query_with_failure(&mut hail1, &tb.spec, &q1, false, scenario).expect("hail1");
    report.row(
        "HAIL-1Idx",
        Some(paper::fig8::HAIL_1IDX_SLOWDOWN),
        r1.slowdown_percent(),
    );
    runtimes.row("HAIL-1Idx", None, r1.baseline.end_to_end_seconds);

    // Shape assertions.
    assert!(rh.slowdown_percent() > 0.0, "Hadoop must slow down");
    assert!(ra.slowdown_percent() > 0.0, "HAIL must slow down");
    assert!(
        r1.slowdown_percent() <= ra.slowdown_percent() + 0.5,
        "HAIL-1Idx ({:.1}%) should not degrade more than HAIL ({:.1}%)",
        r1.slowdown_percent(),
        ra.slowdown_percent()
    );
    // Fallbacks happened only where the matching index died.
    let hail_fallbacks = ra
        .with_failure
        .tasks
        .iter()
        .filter(|t| t.rerun && t.stats.fell_back_to_scan)
        .count();
    let hail1_fallbacks = r1
        .with_failure
        .tasks
        .iter()
        .filter(|t| t.rerun && t.stats.fell_back_to_scan)
        .count();
    assert_eq!(
        hail1_fallbacks, 0,
        "HAIL-1Idx re-runs keep their index scans"
    );
    report.note(format!(
        "HAIL reruns falling back to scan: {hail_fallbacks}; HAIL-1Idx: {hail1_fallbacks}"
    ));
    report.note(format!(
        "reruns: Hadoop {}, HAIL {}, HAIL-1Idx {}",
        rh.rerun_count, ra.rerun_count, r1.rerun_count
    ));
    report.print();
    runtimes.print();
}
