//! Ablation (§3.1): the naive two-pass upload the paper's first
//! prototype used — store text like HDFS, then re-read and re-write
//! every replica to index it — vs the streaming HAIL pipeline.
//!
//! Paper anecdote: for a 100 GB input the naive approach pays 600 GB of
//! extra cluster I/O; "this lead to very long upload times".

use hail_bench::{uv_testbed, ExperimentScale, Report};
use hail_core::{upload_hail, upload_hail_naive, upload_seconds};
use hail_dfs::DfsCluster;
use hail_index::ReplicaIndexConfig;
use hail_sim::HardwareProfile;

fn main() {
    let scale = ExperimentScale::upload(10, 5000);
    let tb = uv_testbed(scale, HardwareProfile::physical());
    let config = ReplicaIndexConfig::first_indexed(3, &[2, 0, 3]);

    let mut streaming = DfsCluster::new(tb.scale.nodes, tb.storage.clone());
    upload_hail(&mut streaming, &tb.schema, "uv", &tb.texts, &config).expect("streaming upload");
    let t_stream = upload_seconds(&streaming, &tb.spec);
    let io_stream: u64 = streaming
        .upload_ledgers()
        .iter()
        .map(|l| l.disk_read + l.disk_write)
        .sum();

    let mut naive = DfsCluster::new(tb.scale.nodes, tb.storage.clone());
    upload_hail_naive(&mut naive, &tb.schema, "uv", &tb.texts, &config).expect("naive upload");
    let t_naive = upload_seconds(&naive, &tb.spec);
    let io_naive: u64 = naive
        .upload_ledgers()
        .iter()
        .map(|l| l.disk_read + l.disk_write)
        .sum();

    let mut report = Report::new(
        "Ablation: naive two-pass upload",
        "Streaming HAIL pipeline vs store-then-convert",
        "simulated s",
    );
    report.row("HAIL streaming", None, t_stream);
    report.row("HAIL naive two-pass", None, t_naive);

    let input_bytes: u64 = tb.texts.iter().map(|(_, t)| t.len() as u64).sum();
    let extra_io = io_naive.saturating_sub(io_stream);
    report.note(format!(
        "extra cluster disk I/O: {:.1}x the input size (paper: 6x for replication 3 — one extra read + one extra write per replica)",
        extra_io as f64 / input_bytes as f64
    ));
    report.note(format!(
        "slowdown of the naive pipeline: {:.2}x",
        t_naive / t_stream
    ));

    assert!(t_naive > 1.5 * t_stream, "naive must be much slower");
    assert!(
        extra_io as f64 > 3.0 * input_bytes as f64,
        "naive pays several times the input in extra I/O"
    );
    report.print();
}
