//! The `Synthetic` dataset (§6.2): 19 integer attributes, 13 GB per
//! node, "similar to scientific datasets" (e.g. SDSS).
//!
//! The first attribute is uniform over [0, 1000): the Syn-Q1 family
//! (`@1 ≤ 99`) selects 10 %, Syn-Q2 (`@1 ≤ 9`) selects 1 % — Table 1's
//! selectivities. The other 18 attributes are 6-digit integers, which
//! makes the text row ≈130 bytes but the binary row 76 bytes: the
//! binary shrink behind HAIL's 1.6× upload win on this dataset.

use hail_types::{DataType, DatanodeId, Field, Schema};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt::Write as _;

/// Number of attributes.
pub const ATTRIBUTES: usize = 19;

/// The Synthetic schema: `a1 … a19`, all INT.
pub fn schema() -> Schema {
    Schema::new(
        (1..=ATTRIBUTES)
            .map(|i| Field::new(format!("a{i}"), DataType::Int))
            .collect(),
    )
    .unwrap()
}

/// Deterministic Synthetic generator.
#[derive(Debug, Clone)]
pub struct SyntheticGenerator {
    pub seed: u64,
}

impl Default for SyntheticGenerator {
    fn default() -> Self {
        SyntheticGenerator { seed: 0x51D5_51D5 }
    }
}

impl SyntheticGenerator {
    /// Generates one node's text portion with `rows` records.
    pub fn node_text(&self, node: DatanodeId, rows: usize) -> String {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (node as u64).wrapping_mul(0xA5A5));
        let mut out = String::with_capacity(rows * 132);
        for _ in 0..rows {
            // @1 drives selectivity; the rest are 6-digit payload.
            let _ = write!(out, "{}", rng.random_range(0..1000u32));
            for _ in 1..ATTRIBUTES {
                let _ = write!(out, "|{}", rng.random_range(100_000..1_000_000u32));
            }
            out.push('\n');
        }
        out
    }

    /// Generates all nodes' portions.
    pub fn generate(&self, nodes: usize, rows_per_node: usize) -> Vec<(DatanodeId, String)> {
        (0..nodes)
            .map(|n| (n, self.node_text(n, rows_per_node)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hail_types::parse_line_strict;

    #[test]
    fn rows_parse() {
        let g = SyntheticGenerator::default();
        let text = g.node_text(0, 100);
        let s = schema();
        for line in text.lines() {
            let row = parse_line_strict(line, &s, '|').unwrap();
            assert_eq!(row.len(), ATTRIBUTES);
        }
    }

    #[test]
    fn selectivities_match_table1() {
        let g = SyntheticGenerator::default();
        let text = g.node_text(0, 20_000);
        let s = schema();
        let mut q1 = 0;
        let mut q2 = 0;
        for line in text.lines() {
            let row = parse_line_strict(line, &s, '|').unwrap();
            let v = row.get(0).unwrap().as_i32().unwrap();
            if v <= 99 {
                q1 += 1;
            }
            if v <= 9 {
                q2 += 1;
            }
        }
        let s1 = q1 as f64 / 20_000.0;
        let s2 = q2 as f64 / 20_000.0;
        assert!((0.085..0.115).contains(&s1), "Syn-Q1 sel {s1} ≈ 0.10");
        assert!((0.006..0.015).contains(&s2), "Syn-Q2 sel {s2} ≈ 0.01");
    }

    #[test]
    fn binary_shrink_ratio() {
        // Binary (19 × 4 B) over text (~130 B) should be ≈0.55–0.65 — the
        // property driving Fig. 4(b).
        let g = SyntheticGenerator::default();
        let text = g.node_text(0, 2000);
        let text_bytes = text.len();
        let binary_bytes = 2000 * ATTRIBUTES * 4;
        let ratio = binary_bytes as f64 / text_bytes as f64;
        assert!(
            (0.5..0.68).contains(&ratio),
            "binary/text ratio {ratio:.2} out of range"
        );
    }

    #[test]
    fn deterministic() {
        let g = SyntheticGenerator::default();
        assert_eq!(g.node_text(2, 64), g.node_text(2, 64));
    }
}
