//! The `UserVisits` dataset of the Pavlo et al. benchmark (\[27\]), §6.2.
//!
//! Nine attributes; the paper generates 20 GB per node. Value
//! distributions are tuned so the paper's query selectivities hold:
//!
//! - `visitDate` uniform over ≈32 years starting 1970 → Bob-Q1's
//!   one-year range selects ≈3.1 × 10⁻².
//! - `adRevenue` uniform over [0, 485.3) → Bob-Q4's [1, 10] selects
//!   ≈1.9 × 10⁻² and Bob-Q5's [1, 100] ≈2.04 × 10⁻¹.
//! - The magic `sourceIP` 172.101.11.46 of Bob-Q2/Q3 is *planted* a
//!   fixed number of times per node (the paper-scale selectivities,
//!   3.2 × 10⁻⁸ and 6 × 10⁻⁹, correspond to a few dozen rows out of
//!   1.5 billion — unreachable by distribution at laptop scale).

use hail_types::{DataType, DatanodeId, Field, Schema};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt::Write as _;

/// The sourceIP Bob's Q2/Q3 search for.
pub const MAGIC_IP: &str = "172.101.11.46";
/// The visitDate Bob's Q3 additionally filters on.
pub const MAGIC_DATE: &str = "1992-12-22";

/// Days covered by `visitDate` (≈32.3 years ⇒ Q1 selectivity 366 days /
/// 11,806 ≈ 3.1 × 10⁻²).
const DATE_RANGE_DAYS: i32 = 11_806;
/// `adRevenue` upper bound (Q4: 9/485.3 ≈ 1.9 %, Q5: 99/485.3 ≈ 20.4 %).
const REVENUE_RANGE: f64 = 485.3;

/// The UserVisits schema. Attribute positions (1-based) match the
/// paper's annotations: @1 sourceIP, @3 visitDate, @4 adRevenue,
/// @8 searchWord, @9 duration.
pub fn schema() -> Schema {
    Schema::new(vec![
        Field::new("sourceIP", DataType::VarChar),
        Field::new("destURL", DataType::VarChar),
        Field::new("visitDate", DataType::Date),
        Field::new("adRevenue", DataType::Float),
        Field::new("userAgent", DataType::VarChar),
        Field::new("countryCode", DataType::VarChar),
        Field::new("languageCode", DataType::VarChar),
        Field::new("searchWord", DataType::VarChar),
        Field::new("duration", DataType::Int),
    ])
    .unwrap()
}

/// Deterministic UserVisits generator.
#[derive(Debug, Clone)]
pub struct UserVisitsGenerator {
    pub seed: u64,
    /// Rows carrying [`MAGIC_IP`] planted per node (every fifth of them
    /// also carries [`MAGIC_DATE`], keeping Q3 ⊂ Q2 with the paper's
    /// ≈5× selectivity gap).
    pub magic_rows_per_node: usize,
}

impl Default for UserVisitsGenerator {
    fn default() -> Self {
        UserVisitsGenerator {
            seed: 0x5EED_CAFE,
            magic_rows_per_node: 5,
        }
    }
}

const AGENTS: [&str; 6] = [
    "Mozilla/5.0 (X11; Linux x86_64) Gecko/2010",
    "Mozilla/4.0 (compatible; MSIE 7.0)",
    "Opera/9.80 (Windows NT 6.1)",
    "Safari/533.16 (Macintosh; Intel)",
    "Lynx/2.8.8dev.3 libwww-FM/2.14",
    "Wget/1.12 (linux-gnu)",
];
const COUNTRIES: [&str; 8] = ["USA", "DEU", "FRA", "BRA", "IND", "CHN", "JPN", "GBR"];
const LANGS: [&str; 8] = [
    "en-US", "de-DE", "fr-FR", "pt-BR", "hi-IN", "zh-CN", "ja-JP", "en-GB",
];
const WORDS: [&str; 12] = [
    "elephant",
    "index",
    "aggressive",
    "hadoop",
    "weblog",
    "analytics",
    "replica",
    "cluster",
    "yellow",
    "fast",
    "sort",
    "scan",
];

impl UserVisitsGenerator {
    /// Generates one node's text portion with `rows` records.
    pub fn node_text(&self, node: DatanodeId, rows: usize) -> String {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (node as u64).wrapping_mul(0x9E37));
        // Spread planted rows evenly through the node's portion.
        let plant_every = if self.magic_rows_per_node > 0 {
            (rows / self.magic_rows_per_node.max(1)).max(1)
        } else {
            usize::MAX
        };
        let mut planted = 0usize;
        let mut out = String::with_capacity(rows * 150);
        for i in 0..rows {
            let plant = self.magic_rows_per_node > 0
                && i % plant_every == plant_every / 2
                && planted < self.magic_rows_per_node;
            let source_ip = if plant {
                planted += 1;
                MAGIC_IP.to_string()
            } else {
                format!(
                    "{}.{}.{}.{}",
                    rng.random_range(1..224u16),
                    rng.random_range(0..256u16),
                    rng.random_range(0..256u16),
                    rng.random_range(0..256u16)
                )
            };
            // Every fifth planted row carries the magic date (Q3 ⊂ Q2).
            let date = if plant && planted % 5 == 1 {
                MAGIC_DATE.to_string()
            } else {
                let days = rng.random_range(0..DATE_RANGE_DAYS);
                hail_types::Value::Date(days).to_string()
            };
            let revenue = rng.random_range(0.0..REVENUE_RANGE);
            let _ = writeln!(
                out,
                "{source_ip}|http://example.com/{}/page{}.html|{date}|{revenue:.2}|{}|{}|{}|{}|{}",
                WORDS[rng.random_range(0..WORDS.len())],
                rng.random_range(0..100_000u32),
                AGENTS[rng.random_range(0..AGENTS.len())],
                COUNTRIES[rng.random_range(0..COUNTRIES.len())],
                LANGS[rng.random_range(0..LANGS.len())],
                WORDS[rng.random_range(0..WORDS.len())],
                rng.random_range(1..10_000u32),
            );
        }
        out
    }

    /// Generates all nodes' portions.
    pub fn generate(&self, nodes: usize, rows_per_node: usize) -> Vec<(DatanodeId, String)> {
        (0..nodes)
            .map(|n| (n, self.node_text(n, rows_per_node)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hail_types::{parse_line_strict, value::parse_date};

    #[test]
    fn rows_parse_against_schema() {
        let g = UserVisitsGenerator::default();
        let text = g.node_text(0, 200);
        let s = schema();
        for line in text.lines() {
            parse_line_strict(line, &s, '|').expect(line);
        }
        assert_eq!(text.lines().count(), 200);
    }

    #[test]
    fn deterministic() {
        let g = UserVisitsGenerator::default();
        assert_eq!(g.node_text(3, 50), g.node_text(3, 50));
        assert_ne!(g.node_text(3, 50), g.node_text(4, 50));
    }

    #[test]
    fn q1_selectivity_close_to_paper() {
        let g = UserVisitsGenerator {
            magic_rows_per_node: 0,
            ..Default::default()
        };
        let text = g.node_text(0, 20_000);
        let s = schema();
        let lo = parse_date("1999-01-01").unwrap();
        let hi = parse_date("2000-01-01").unwrap();
        let hits = text
            .lines()
            .filter(|l| {
                let row = parse_line_strict(l, &s, '|').unwrap();
                let d = row.get(2).unwrap().as_i32().unwrap();
                (lo..=hi).contains(&d)
            })
            .count();
        let sel = hits as f64 / 20_000.0;
        assert!(
            (0.02..0.045).contains(&sel),
            "Q1 selectivity {sel} should be ≈3.1e-2"
        );
    }

    #[test]
    fn q4_q5_selectivities() {
        let g = UserVisitsGenerator::default();
        let text = g.node_text(1, 20_000);
        let s = schema();
        let mut q4 = 0;
        let mut q5 = 0;
        for l in text.lines() {
            let row = parse_line_strict(l, &s, '|').unwrap();
            let r = row.get(3).unwrap().as_f64().unwrap();
            if (1.0..=10.0).contains(&r) {
                q4 += 1;
            }
            if (1.0..=100.0).contains(&r) {
                q5 += 1;
            }
        }
        let s4 = q4 as f64 / 20_000.0;
        let s5 = q5 as f64 / 20_000.0;
        assert!((0.012..0.027).contains(&s4), "Q4 sel {s4} ≈ 1.7e-2");
        assert!((0.17..0.24).contains(&s5), "Q5 sel {s5} ≈ 2.04e-1");
    }

    #[test]
    fn magic_rows_planted() {
        let g = UserVisitsGenerator::default();
        let text = g.node_text(0, 5000);
        let q2 = text.lines().filter(|l| l.starts_with(MAGIC_IP)).count();
        assert_eq!(q2, 5);
        let q3 = text
            .lines()
            .filter(|l| l.starts_with(MAGIC_IP) && l.contains(MAGIC_DATE))
            .count();
        assert_eq!(q3, 1, "one in five planted rows carries the magic date");
    }
}
