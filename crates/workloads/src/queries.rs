//! The paper's query workloads (§6.2): Bob-Q1…Q5 over UserVisits and
//! Syn-Q1a…Q2c over Synthetic (Table 1), plus a text-level oracle
//! evaluator used to validate every execution path.

use crate::{synthetic, uservisits};
use hail_core::HailQuery;
use hail_types::{parse_line, ParsedRecord, Result, Row, Schema};

/// One benchmark query: id, annotation strings, and the selectivity the
/// paper reports for it.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    pub id: &'static str,
    pub filter: String,
    pub projection: String,
    pub paper_selectivity: f64,
}

impl QuerySpec {
    /// Compiles the spec into a typed [`HailQuery`].
    pub fn to_query(&self, schema: &Schema) -> Result<HailQuery> {
        HailQuery::parse(&self.filter, &self.projection, schema)
    }
}

/// Bob's five UserVisits queries (§6.2).
pub fn bob_queries() -> Vec<QuerySpec> {
    vec![
        QuerySpec {
            id: "Bob-Q1",
            filter: "@3 between(1999-01-01, 2000-01-01)".into(),
            projection: "{@1}".into(),
            paper_selectivity: 3.1e-2,
        },
        QuerySpec {
            id: "Bob-Q2",
            filter: format!("@1 = '{}'", uservisits::MAGIC_IP),
            projection: "{@8, @9, @4}".into(),
            paper_selectivity: 3.2e-8,
        },
        QuerySpec {
            id: "Bob-Q3",
            filter: format!(
                "@1 = '{}' and @3 = {}",
                uservisits::MAGIC_IP,
                uservisits::MAGIC_DATE
            ),
            projection: "{@8, @9, @4}".into(),
            paper_selectivity: 6.0e-9,
        },
        QuerySpec {
            id: "Bob-Q4",
            filter: "@4 >= 1 and @4 <= 10".into(),
            projection: "{@8, @9, @4}".into(),
            paper_selectivity: 1.7e-2,
        },
        QuerySpec {
            id: "Bob-Q5",
            filter: "@4 >= 1 and @4 <= 100".into(),
            projection: "{@8, @9, @4}".into(),
            paper_selectivity: 2.04e-1,
        },
    ]
}

/// The Synthetic queries of Table 1: selectivity 0.10 (Q1) / 0.01 (Q2) ×
/// projectivity 19 (a) / 9 (b) / 1 (c) attributes; all filter on @1.
pub fn synthetic_queries() -> Vec<QuerySpec> {
    let proj_a = String::new(); // all 19 attributes
    let proj_b = format!(
        "{{{}}}",
        (1..=9)
            .map(|i| format!("@{i}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let proj_c = "{@1}".to_string();
    vec![
        QuerySpec {
            id: "Syn-Q1a",
            filter: "@1 <= 99".into(),
            projection: proj_a.clone(),
            paper_selectivity: 0.10,
        },
        QuerySpec {
            id: "Syn-Q1b",
            filter: "@1 <= 99".into(),
            projection: proj_b.clone(),
            paper_selectivity: 0.10,
        },
        QuerySpec {
            id: "Syn-Q1c",
            filter: "@1 <= 99".into(),
            projection: proj_c.clone(),
            paper_selectivity: 0.10,
        },
        QuerySpec {
            id: "Syn-Q2a",
            filter: "@1 <= 9".into(),
            projection: proj_a,
            paper_selectivity: 0.01,
        },
        QuerySpec {
            id: "Syn-Q2b",
            filter: "@1 <= 9".into(),
            projection: proj_b,
            paper_selectivity: 0.01,
        },
        QuerySpec {
            id: "Syn-Q2c",
            filter: "@1 <= 9".into(),
            projection: proj_c,
            paper_selectivity: 0.01,
        },
    ]
}

/// The schema each workload's queries run against.
pub fn bob_schema() -> Schema {
    uservisits::schema()
}

/// See [`synthetic::schema`].
pub fn synthetic_schema() -> Schema {
    synthetic::schema()
}

/// Reference evaluator: runs a query directly over the original text,
/// bypassing every storage and execution layer. Integration tests
/// compare all system outputs against this.
pub fn oracle_eval(texts: &[(usize, String)], schema: &Schema, query: &HailQuery) -> Vec<Row> {
    let projection = query.projected_columns(schema);
    let mut out = Vec::new();
    for (_, text) in texts {
        for line in text.lines() {
            if let ParsedRecord::Good(row) = parse_line(line, schema, '|') {
                if query.matches(&row) {
                    out.push(row.project(&projection));
                }
            }
        }
    }
    out
}

/// Sorted string forms of rows — order-insensitive result comparison.
pub fn canonical(rows: &[Row]) -> Vec<String> {
    let mut v: Vec<String> = rows.iter().map(Row::to_string).collect();
    v.sort();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uservisits::UserVisitsGenerator;

    #[test]
    fn all_specs_compile() {
        let bs = bob_schema();
        for q in bob_queries() {
            q.to_query(&bs).expect(q.id);
        }
        let ss = synthetic_schema();
        for q in synthetic_queries() {
            q.to_query(&ss).expect(q.id);
        }
    }

    #[test]
    fn projectivity_matches_table1() {
        let ss = synthetic_schema();
        let qs = synthetic_queries();
        let widths: Vec<usize> = qs
            .iter()
            .map(|q| q.to_query(&ss).unwrap().projected_columns(&ss).len())
            .collect();
        assert_eq!(widths, vec![19, 9, 1, 19, 9, 1]);
    }

    #[test]
    fn oracle_finds_planted_rows() {
        let g = UserVisitsGenerator::default();
        let texts = g.generate(2, 1000);
        let s = bob_schema();
        let q2 = bob_queries()[1].to_query(&s).unwrap();
        let hits = oracle_eval(&texts, &s, &q2);
        assert_eq!(hits.len(), 10, "5 planted rows per node × 2 nodes");
        let q3 = bob_queries()[2].to_query(&s).unwrap();
        let q3_hits = oracle_eval(&texts, &s, &q3);
        assert_eq!(q3_hits.len(), 2);
    }

    #[test]
    fn canonical_is_order_insensitive() {
        use hail_types::Value;
        let a = vec![Row::new(vec![Value::Int(2)]), Row::new(vec![Value::Int(1)])];
        let b = vec![Row::new(vec![Value::Int(1)]), Row::new(vec![Value::Int(2)])];
        assert_eq!(canonical(&a), canonical(&b));
    }
}
