//! # hail-workloads
//!
//! The paper's datasets and query workloads:
//!
//! - [`uservisits`] — the Pavlo-benchmark UserVisits table with value
//!   distributions realizing Bob-Q1…Q5's selectivities
//! - [`synthetic`] — 19 integer attributes (Table 1's Syn-Q1/Q2 grid)
//! - [`queries`] — the eleven benchmark queries + an oracle evaluator
//! - [`badness`] — bad-record injection

#![forbid(unsafe_code)]

pub mod badness;
pub mod queries;
pub mod synthetic;
pub mod uservisits;

pub use queries::{
    bob_queries, bob_schema, canonical, oracle_eval, synthetic_queries, synthetic_schema, QuerySpec,
};
pub use synthetic::SyntheticGenerator;
pub use uservisits::UserVisitsGenerator;
