//! Bad-record injection: corrupting a fraction of an upload's lines to
//! exercise HAIL's bad-record path end to end (§3.1, §4.3).

use hail_types::{parse_line, ParsedRecord, Schema};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// How a line gets mangled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mangle {
    /// Drop everything after the second delimiter (field-count mismatch).
    Truncate,
    /// Replace a field with non-numeric garbage (type mismatch).
    Garbage,
    /// Append extra fields.
    ExtraFields,
}

/// Replaces roughly `fraction` of the lines in `text` with mangled
/// versions that are *guaranteed* not to parse against `schema` (some
/// manglings — e.g. garbage in a VARCHAR field — would still be valid;
/// those fall back to truncation). Deterministic under `seed`. Returns
/// the new text and the number of bad lines produced.
pub fn inject_bad_records(
    text: &str,
    schema: &Schema,
    fraction: f64,
    seed: u64,
) -> (String, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::with_capacity(text.len());
    let mut mangled = 0usize;
    for line in text.lines() {
        if rng.random_range(0.0..1.0) < fraction {
            let kind = match rng.random_range(0..3u8) {
                0 => Mangle::Truncate,
                1 => Mangle::Garbage,
                _ => Mangle::ExtraFields,
            };
            let mut bad = mangle(line, kind);
            if matches!(parse_line(&bad, schema, '|'), ParsedRecord::Good(_)) {
                // This mangling happened to stay valid; force a
                // field-count mismatch instead.
                bad = line.split('|').next().unwrap_or("x").to_string();
            }
            debug_assert!(matches!(
                parse_line(&bad, schema, '|'),
                ParsedRecord::Bad { .. }
            ));
            out.push_str(&bad);
            mangled += 1;
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    (out, mangled)
}

/// Applies one mangling to a line.
pub fn mangle(line: &str, kind: Mangle) -> String {
    match kind {
        Mangle::Truncate => {
            let mut parts = line.splitn(3, '|');
            let a = parts.next().unwrap_or("");
            match parts.next() {
                Some(b) => format!("{a}|{b}"),
                None => a.to_string(),
            }
        }
        Mangle::Garbage => {
            let mut fields: Vec<&str> = line.split('|').collect();
            if !fields.is_empty() {
                let mid = fields.len() / 2;
                fields[mid] = "###GARBAGE###";
            }
            fields.join("|")
        }
        Mangle::ExtraFields => format!("{line}|unexpected|trailing"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hail_types::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
            Field::new("c", DataType::Int),
        ])
        .unwrap()
    }

    #[test]
    fn mangles_break_parsing() {
        let line = "1|2|3";
        for kind in [Mangle::Truncate, Mangle::Garbage, Mangle::ExtraFields] {
            let bad = mangle(line, kind);
            assert!(
                matches!(parse_line(&bad, &schema(), '|'), ParsedRecord::Bad { .. }),
                "{kind:?} should break {bad:?}"
            );
        }
    }

    #[test]
    fn injection_fraction_respected() {
        let text: String = (0..1000).map(|i| format!("{i}|{i}|{i}\n")).collect();
        let (out, n) = inject_bad_records(&text, &schema(), 0.1, 7);
        assert_eq!(out.lines().count(), 1000);
        assert!((60..160).contains(&n), "~10% of 1000, got {n}");
        let bad = out
            .lines()
            .filter(|l| matches!(parse_line(l, &schema(), '|'), ParsedRecord::Bad { .. }))
            .count();
        assert_eq!(bad, n);
    }

    #[test]
    fn zero_fraction_is_identity() {
        let text = "1|2|3\n4|5|6\n";
        let (out, n) = inject_bad_records(text, &schema(), 0.0, 1);
        assert_eq!(out, text);
        assert_eq!(n, 0);
    }

    #[test]
    fn deterministic() {
        let text: String = (0..100).map(|i| format!("{i}|{i}|{i}\n")).collect();
        assert_eq!(
            inject_bad_records(&text, &schema(), 0.2, 42),
            inject_bad_records(&text, &schema(), 0.2, 42)
        );
    }
}
