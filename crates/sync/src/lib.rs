//! Rank-checked lock wrappers enforcing the HAIL lock hierarchy.
//!
//! Every lock in the engine is an [`OrderedMutex`] / [`OrderedRwLock`]
//! carrying a [`LockRank`] — the one enum encoding the full documented
//! hierarchy (see ARCHITECTURE.md, "Concurrency invariants &
//! enforcement"; the `hail-lint` `doc-sync` rule keeps the two in
//! lockstep). A thread may only acquire a lock whose rank is *strictly
//! below* every rank it already holds, which makes lock-order
//! deadlocks impossible by construction: any cycle would need at least
//! one edge going up the order.
//!
//! In debug builds (unless `HAIL_LOCK_ORDER_CHECK=0`), a thread-local
//! stack of held ranks verifies this on every acquisition and panics
//! naming **both** locks on an out-of-order or same-rank re-entrant
//! acquisition. In release builds the checking code is compiled out
//! entirely (`cfg(debug_assertions)`) and the wrappers are
//! zero-overhead newtypes over `std::sync` — BENCH_10.json pins that.
//!
//! Poison policy: [`OrderedMutex::acquire`] and the `OrderedRwLock`
//! accessors recover from poisoning via
//! `unwrap_or_else(PoisonError::into_inner)`. Every guarded region in
//! the engine leaves its structure consistent before any call that can
//! panic (writes are complete assignments, not staged mutations), so a
//! panicked worker must not cascade into wedging the shared
//! `PlanCache`, the `JobManager` result slots, or a scan-share waiter.
//! Code that needs "the producer died" signalling handles it
//! explicitly (RAII cleanup guards), not via poisoning.

use std::fmt;
use std::sync::{
    Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// The global lock hierarchy, highest rank first. A thread holding a
/// lock may only acquire locks of *strictly lower* rank.
///
/// The variant order here is the canonical rank table; ARCHITECTURE.md
/// embeds the same table between `lock-rank-table` markers and the
/// `doc-sync` lint fails if the two drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum LockRank {
    /// `JobManager` per-job result slots (crates/mr/src/manager.rs).
    ManagerSlot = 9,
    /// `JobPool` work-stealing deques and per-split result slots
    /// (crates/exec/src/executor.rs).
    PoolDeque = 8,
    /// `NodeGate` per-datanode in-flight counts (crates/exec/src/executor.rs).
    NodeGate = 7,
    /// `ReindexAdvisor` trigger state — held across `SelectivityFeedback`
    /// reads (crates/exec/src/adapt.rs).
    AdvisorState = 6,
    /// `PlanCache` fingerprinted plan entries (crates/exec/src/cache.rs).
    PlanCache = 5,
    /// `SelectivityFeedback` per-class observations (crates/exec/src/cache.rs).
    Feedback = 4,
    /// Per-job map-side scratch accumulators (crates/mr/src/shuffle.rs).
    MapScratch = 3,
    /// `InFlightBlocks` interest counts and `InterestGuard` remainders
    /// (crates/mr/src/inflight.rs).
    InterestCounts = 2,
    /// `InFlightBlocks` drain-observer list — held while observers run,
    /// which may acquire the share registry (crates/mr/src/inflight.rs).
    ObserverList = 1,
    /// `ScanShareRegistry` entry map and attached-tracker list — a leaf;
    /// nothing may be acquired under it (crates/exec/src/sharing.rs).
    ShareRegistry = 0,
}

impl LockRank {
    /// All ranks, highest first — the same order as the declaration and
    /// the ARCHITECTURE.md table.
    pub const ALL: [LockRank; 10] = [
        LockRank::ManagerSlot,
        LockRank::PoolDeque,
        LockRank::NodeGate,
        LockRank::AdvisorState,
        LockRank::PlanCache,
        LockRank::Feedback,
        LockRank::MapScratch,
        LockRank::InterestCounts,
        LockRank::ObserverList,
        LockRank::ShareRegistry,
    ];
}

impl fmt::Display for LockRank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(debug_assertions)]
mod check {
    use super::LockRank;
    use std::cell::RefCell;
    use std::sync::OnceLock;

    thread_local! {
        /// Ranks (with lock names) this thread currently holds, in
        /// acquisition order. Acquisition order is strictly descending
        /// rank, so the last entry is always the minimum.
        static HELD: RefCell<Vec<(LockRank, &'static str)>> = const { RefCell::new(Vec::new()) };
    }

    fn enabled() -> bool {
        static ENABLED: OnceLock<bool> = OnceLock::new();
        *ENABLED.get_or_init(hail_core::knobs::lock_order_check)
    }

    /// Records an acquisition, panicking (naming both locks) if `rank`
    /// is not strictly below everything already held.
    pub(super) fn on_acquire(rank: LockRank, name: &'static str) {
        if !enabled() {
            return;
        }
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&(held_rank, held_name)) = held.last() {
                assert!(
                    rank < held_rank,
                    "lock hierarchy violation: acquiring `{name}` ({rank:?}, rank {}) \
                     while holding `{held_name}` ({held_rank:?}, rank {}); \
                     acquisitions must strictly descend the LockRank order \
                     (see ARCHITECTURE.md, Concurrency invariants & enforcement)",
                    rank as u8,
                    held_rank as u8,
                );
            }
            held.push((rank, name));
        });
    }

    /// Records a release. Guards can drop in any order, so remove the
    /// matching entry wherever it sits (ranks are unique in the stack:
    /// same-rank re-acquisition panics in `on_acquire`).
    pub(super) fn on_release(rank: LockRank) {
        if !enabled() {
            return;
        }
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&(r, _)| r == rank) {
                held.remove(pos);
            }
        });
    }
}

#[cfg(debug_assertions)]
fn on_acquire(rank: LockRank, name: &'static str) {
    check::on_acquire(rank, name);
}
#[cfg(not(debug_assertions))]
#[inline(always)]
fn on_acquire(_rank: LockRank, _name: &'static str) {}

#[cfg(debug_assertions)]
fn on_release(rank: LockRank) {
    check::on_release(rank);
}
#[cfg(not(debug_assertions))]
#[inline(always)]
fn on_release(_rank: LockRank) {}

/// Pops the rank entry when a guard drops (or is consumed by a condvar
/// wait, which immediately re-arms a new one).
struct Release(LockRank);
impl Drop for Release {
    fn drop(&mut self) {
        on_release(self.0);
    }
}

/// A [`LockRank`]-carrying `std::sync::Mutex`. Acquire with
/// [`acquire`](OrderedMutex::acquire) — there is deliberately no
/// `lock()` returning a `Result`; poisoning is always recovered.
pub struct OrderedMutex<T: ?Sized> {
    rank: LockRank,
    name: &'static str,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Wraps `value` in a mutex at `rank`. `name` appears in
    /// hierarchy-violation panics and `Debug` output.
    pub const fn new(rank: LockRank, name: &'static str, value: T) -> Self {
        Self {
            rank,
            name,
            inner: Mutex::new(value),
        }
    }

    /// Consumes the mutex, recovering the value even if poisoned.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> OrderedMutex<T> {
    /// Locks, checking the rank order in debug builds and recovering
    /// from poisoning. Panics (naming both locks) on a hierarchy
    /// violation.
    pub fn acquire(&self) -> OrderedMutexGuard<'_, T> {
        on_acquire(self.rank, self.name);
        let release = Release(self.rank);
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        OrderedMutexGuard {
            guard: Some(guard),
            _release: release,
        }
    }

    /// Mutable access without locking (requires `&mut self`, so no
    /// rank bookkeeping applies). Recovers from poisoning.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedMutex")
            .field("rank", &self.rank)
            .field("name", &self.name)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Guard for an [`OrderedMutex`]. The inner guard lives in an `Option`
/// only so [`OrderedCondvar::wait`] can hand it to the OS condvar
/// and re-wrap it; it is `Some` at every other moment.
pub struct OrderedMutexGuard<'a, T: ?Sized> {
    guard: Option<MutexGuard<'a, T>>,
    _release: Release,
}

impl<T: ?Sized> std::ops::Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard
            .as_ref()
            .expect("guard present outside condvar wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard
            .as_mut()
            .expect("guard present outside condvar wait")
    }
}

/// A condvar paired with [`OrderedMutex`]-guarded state. While a
/// thread waits, its rank entry stays on the held stack: a blocked
/// waiter still logically holds its place in the hierarchy, and the
/// re-acquisition on wakeup happens at the same stack position.
pub struct OrderedCondvar {
    inner: Condvar,
}

impl OrderedCondvar {
    pub const fn new() -> Self {
        Self {
            inner: Condvar::new(),
        }
    }

    /// Atomically releases the guard and waits for a notification,
    /// recovering from poisoning on wakeup. The rank bookkeeping is
    /// untouched — the same `Release` is carried across the wait.
    pub fn wait<'a, T>(&self, mut guard: OrderedMutexGuard<'a, T>) -> OrderedMutexGuard<'a, T> {
        let inner = guard
            .guard
            .take()
            .expect("guard present outside condvar wait");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(inner);
        guard
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }
}

impl Default for OrderedCondvar {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for OrderedCondvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedCondvar").finish_non_exhaustive()
    }
}

/// A [`LockRank`]-carrying `std::sync::RwLock`. Readers and writers
/// follow the same rank rule: a read lock still excludes writers, so
/// it participates in deadlock cycles exactly like a mutex.
pub struct OrderedRwLock<T: ?Sized> {
    rank: LockRank,
    name: &'static str,
    inner: RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    /// Wraps `value` in an rwlock at `rank`.
    pub const fn new(rank: LockRank, name: &'static str, value: T) -> Self {
        Self {
            rank,
            name,
            inner: RwLock::new(value),
        }
    }

    /// Consumes the lock, recovering the value even if poisoned.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> OrderedRwLock<T> {
    /// Shared lock, rank-checked, poison-recovering.
    pub fn read(&self) -> OrderedReadGuard<'_, T> {
        on_acquire(self.rank, self.name);
        let release = Release(self.rank);
        let guard = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        OrderedReadGuard {
            guard,
            _release: release,
        }
    }

    /// Exclusive lock, rank-checked, poison-recovering.
    pub fn write(&self) -> OrderedWriteGuard<'_, T> {
        on_acquire(self.rank, self.name);
        let release = Release(self.rank);
        let guard = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        OrderedWriteGuard {
            guard,
            _release: release,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for OrderedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedRwLock")
            .field("rank", &self.rank)
            .field("name", &self.name)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Shared guard for an [`OrderedRwLock`].
pub struct OrderedReadGuard<'a, T: ?Sized> {
    guard: RwLockReadGuard<'a, T>,
    _release: Release,
}

impl<T: ?Sized> std::ops::Deref for OrderedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

/// Exclusive guard for an [`OrderedRwLock`].
pub struct OrderedWriteGuard<'a, T: ?Sized> {
    guard: RwLockWriteGuard<'a, T>,
    _release: Release,
}

impl<T: ?Sized> std::ops::Deref for OrderedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for OrderedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_order_matches_discriminants() {
        // ALL is highest-first and the discriminants strictly descend.
        for pair in LockRank::ALL.windows(2) {
            assert!(
                pair[0] > pair[1],
                "{:?} must rank above {:?}",
                pair[0],
                pair[1]
            );
        }
        assert_eq!(LockRank::ALL.len(), 10);
        assert_eq!(LockRank::ShareRegistry as u8, 0);
        assert_eq!(LockRank::ManagerSlot as u8, 9);
    }

    #[test]
    fn descending_acquisition_is_allowed() {
        let slot = OrderedMutex::new(LockRank::ManagerSlot, "slot", 1u32);
        let gate = OrderedMutex::new(LockRank::NodeGate, "gate", 2u32);
        let reg = OrderedMutex::new(LockRank::ShareRegistry, "registry", 3u32);
        let a = slot.acquire();
        let b = gate.acquire();
        let c = reg.acquire();
        assert_eq!(*a + *b + *c, 6);
        drop((a, b, c));
        // Dropping restores a clean stack: re-acquiring top rank works.
        let _again = slot.acquire();
    }

    #[test]
    fn release_order_need_not_mirror_acquisition() {
        let cache = OrderedRwLock::new(LockRank::PlanCache, "plan-cache", ());
        let feedback = OrderedRwLock::new(LockRank::Feedback, "feedback", ());
        let a = cache.read();
        let b = feedback.read();
        drop(a); // release the *higher* rank first
        drop(b);
        let _w = cache.write();
    }

    #[test]
    fn poisoned_lock_is_recovered_not_propagated() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::Arc;
        let m = Arc::new(OrderedMutex::new(LockRank::PlanCache, "poisoned", 7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _ = catch_unwind(AssertUnwindSafe(|| {
                let _g = m2.acquire();
                panic!("worker dies holding the lock");
            }));
        })
        .join();
        // acquire() must hand the value back, not propagate the poison.
        assert_eq!(*m.acquire(), 7);
        let mut owned = Arc::try_unwrap(m).expect("sole owner");
        assert_eq!(*owned.get_mut(), 7);
        assert_eq!(owned.into_inner(), 7);
    }

    #[test]
    fn condvar_wait_keeps_rank_and_recovers() {
        use std::sync::Arc;
        let state = Arc::new(OrderedMutex::new(LockRank::NodeGate, "gate-state", false));
        let cv = Arc::new(OrderedCondvar::new());
        let (s2, c2) = (Arc::clone(&state), Arc::clone(&cv));
        let waiter = std::thread::spawn(move || {
            let mut g = s2.acquire();
            while !*g {
                g = c2.wait(g);
            }
            // Still holding NodeGate after the wait: a lower-rank
            // acquisition must be legal, a higher-rank one would panic.
            let leaf = OrderedMutex::new(LockRank::ShareRegistry, "leaf", ());
            let _l = leaf.acquire();
            *g
        });
        {
            let mut g = state.acquire();
            *g = true;
        }
        cv.notify_all();
        assert!(waiter.join().unwrap());
    }

    // The inversion-injection test: checking only exists in debug
    // builds, and respects the HAIL_LOCK_ORDER_CHECK=0 opt-out, so it
    // runs in a fresh thread (thread-local stack) and only when the
    // checker is active.
    #[cfg(debug_assertions)]
    #[test]
    fn inversion_panics_naming_both_locks() {
        if !hail_core::knobs::lock_order_check() {
            return; // explicitly silenced for this run
        }
        let err = std::thread::spawn(|| {
            let cache = OrderedRwLock::new(LockRank::PlanCache, "plan-cache", ());
            let gate = OrderedMutex::new(LockRank::NodeGate, "node-gate", ());
            let _held = cache.read();
            let _bad = gate.acquire(); // NodeGate after PlanCache: inverted
        })
        .join()
        .expect_err("inverted acquisition must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload is a string");
        assert!(
            msg.contains("node-gate"),
            "panic must name the acquired lock: {msg}"
        );
        assert!(
            msg.contains("plan-cache"),
            "panic must name the held lock: {msg}"
        );
        assert!(
            msg.contains("hierarchy"),
            "panic must say what went wrong: {msg}"
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    fn same_rank_reentry_panics() {
        if !hail_core::knobs::lock_order_check() {
            return;
        }
        let err = std::thread::spawn(|| {
            let a = OrderedMutex::new(LockRank::Feedback, "feedback-a", ());
            let b = OrderedMutex::new(LockRank::Feedback, "feedback-b", ());
            let _held = a.acquire();
            let _bad = b.acquire(); // same rank while held: forbidden
        })
        .join()
        .expect_err("same-rank acquisition must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload is a string");
        assert!(
            msg.contains("feedback-a") && msg.contains("feedback-b"),
            "{msg}"
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    fn panic_unwinding_releases_held_ranks() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        if !hail_core::knobs::lock_order_check() {
            return;
        }
        let cache = OrderedRwLock::new(LockRank::PlanCache, "plan-cache", ());
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _g = cache.write();
            panic!("die holding plan-cache");
        }));
        // The unwound guard must have popped its rank: acquiring a
        // higher rank on this thread is legal again.
        let slot = OrderedMutex::new(LockRank::ManagerSlot, "slot", ());
        let _s = slot.acquire();
    }
}
