//! Bitmap index for low-cardinality domains — one of the paper's
//! explicit extension directions (§3.5: "an interesting direction for
//! future work would be to extend HAIL to support additional indexes …
//! including bitmap indexes for low cardinality domains").
//!
//! One bitmap per distinct value, bits addressed by rowid in the
//! (unsorted or sorted) block. Because a bitmap index needs no
//! particular sort order, it can complement the clustered index on a
//! replica: the clustered index serves its own column, bitmaps serve
//! low-cardinality secondary columns (e.g. `countryCode`,
//! `languageCode`) at a few bits per row.

use hail_types::bytes_util::{put_str, put_u32, ByteReader};
use hail_types::{HailError, Result, Value};
use std::collections::BTreeMap;

/// Maximum number of distinct values a column may have before bitmap
/// indexing it stops making sense (the encoded size approaches one word
/// per row-value pair).
pub const DEFAULT_CARDINALITY_LIMIT: usize = 64;

/// A bitmap index over one column of one block.
#[derive(Debug, Clone, PartialEq)]
pub struct BitmapIndex {
    column: usize,
    row_count: usize,
    /// Distinct value (as its display string) → bitmap; BTreeMap keeps
    /// serialization deterministic.
    bitmaps: BTreeMap<String, Vec<u64>>,
}

fn words_for(rows: usize) -> usize {
    rows.div_ceil(64)
}

impl BitmapIndex {
    /// Builds the index from a column's values; refuses columns whose
    /// cardinality exceeds `cardinality_limit`.
    pub fn build(column: usize, values: &[Value], cardinality_limit: usize) -> Result<BitmapIndex> {
        let mut bitmaps: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        let words = words_for(values.len());
        for (row, v) in values.iter().enumerate() {
            let key = v.to_string();
            if !bitmaps.contains_key(&key) && bitmaps.len() >= cardinality_limit {
                return Err(HailError::Schema(format!(
                    "column @{} exceeds bitmap cardinality limit {cardinality_limit}",
                    column + 1
                )));
            }
            let bm = bitmaps.entry(key).or_insert_with(|| vec![0u64; words]);
            bm[row / 64] |= 1 << (row % 64);
        }
        Ok(BitmapIndex {
            column,
            row_count: values.len(),
            bitmaps,
        })
    }

    /// Like [`BitmapIndex::build`], but a column exceeding the
    /// cardinality limit yields `None` instead of an error — the upload
    /// pipeline's fallback when a configured column turns out not to be
    /// low-cardinality after all.
    pub fn build_if_low_cardinality(
        column: usize,
        values: &[Value],
        cardinality_limit: usize,
    ) -> Option<BitmapIndex> {
        // Cardinality overflow is build()'s only failure mode.
        Self::build(column, values, cardinality_limit).ok()
    }

    /// The indexed 0-based column.
    pub fn column(&self) -> usize {
        self.column
    }

    /// Number of distinct values.
    pub fn cardinality(&self) -> usize {
        self.bitmaps.len()
    }

    /// Number of indexed rows.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Rowids whose value equals `v` (ascending).
    pub fn rows_equal(&self, v: &Value) -> Vec<usize> {
        match self.bitmaps.get(&v.to_string()) {
            None => Vec::new(),
            Some(bm) => bits_set(bm, self.row_count),
        }
    }

    /// Rowids whose value is any of `values` (bitmap OR, ascending).
    pub fn rows_in(&self, values: &[Value]) -> Vec<usize> {
        let words = words_for(self.row_count);
        let mut acc = vec![0u64; words];
        for v in values {
            if let Some(bm) = self.bitmaps.get(&v.to_string()) {
                for (a, b) in acc.iter_mut().zip(bm) {
                    *a |= b;
                }
            }
        }
        bits_set(&acc, self.row_count)
    }

    /// Rowids matching `a` AND (in another bitmap index over the same
    /// block) `b` — the classic bitmap-intersection query.
    pub fn rows_and(&self, a: &Value, other: &BitmapIndex, b: &Value) -> Result<Vec<usize>> {
        if self.row_count != other.row_count {
            return Err(HailError::Internal(
                "bitmap indexes cover different blocks".into(),
            ));
        }
        let empty = vec![0u64; words_for(self.row_count)];
        let bm_a = self.bitmaps.get(&a.to_string()).unwrap_or(&empty);
        let bm_b = other.bitmaps.get(&b.to_string()).unwrap_or(&empty);
        let acc: Vec<u64> = bm_a.iter().zip(bm_b).map(|(x, y)| x & y).collect();
        Ok(bits_set(&acc, self.row_count))
    }

    /// Serialized size in bytes.
    pub fn byte_len(&self) -> usize {
        self.to_bytes().len()
    }

    /// Serializes the index.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u32(&mut buf, self.column as u32);
        put_u32(&mut buf, self.row_count as u32);
        put_u32(&mut buf, self.bitmaps.len() as u32);
        for (key, bm) in &self.bitmaps {
            put_str(&mut buf, key).expect("bitmap key too long");
            for w in bm {
                buf.extend_from_slice(&w.to_le_bytes());
            }
        }
        buf
    }

    /// Parses a serialized bitmap index.
    pub fn from_bytes(bytes: &[u8]) -> Result<BitmapIndex> {
        let mut r = ByteReader::new(bytes);
        let column = r.u32()? as usize;
        let row_count = r.u32()? as usize;
        let n = r.u32()? as usize;
        let words = words_for(row_count);
        let mut bitmaps = BTreeMap::new();
        for _ in 0..n {
            let key = r.str()?;
            let mut bm = Vec::with_capacity(words);
            for _ in 0..words {
                bm.push(r.u64()?);
            }
            bitmaps.insert(key, bm);
        }
        Ok(BitmapIndex {
            column,
            row_count,
            bitmaps,
        })
    }
}

fn bits_set(bm: &[u64], row_count: usize) -> Vec<usize> {
    let mut out = Vec::new();
    for (wi, &w) in bm.iter().enumerate() {
        let mut bits = w;
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            let row = wi * 64 + b;
            if row < row_count {
                out.push(row);
            }
            bits &= bits - 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn country_col(n: usize) -> Vec<Value> {
        const C: [&str; 4] = ["USA", "DEU", "FRA", "BRA"];
        (0..n).map(|i| Value::Str(C[i % 4].into())).collect()
    }

    #[test]
    fn equality_lookup() {
        let idx = BitmapIndex::build(5, &country_col(10), 64).unwrap();
        assert_eq!(idx.cardinality(), 4);
        assert_eq!(idx.rows_equal(&Value::Str("USA".into())), vec![0, 4, 8]);
        assert_eq!(idx.rows_equal(&Value::Str("BRA".into())), vec![3, 7]);
        assert!(idx.rows_equal(&Value::Str("JPN".into())).is_empty());
    }

    #[test]
    fn in_list_is_union() {
        let idx = BitmapIndex::build(5, &country_col(8), 64).unwrap();
        let rows = idx.rows_in(&[Value::Str("USA".into()), Value::Str("DEU".into())]);
        assert_eq!(rows, vec![0, 1, 4, 5]);
    }

    #[test]
    fn and_is_intersection() {
        // Column A: country repeats every 4; column B: parity.
        let a = BitmapIndex::build(0, &country_col(12), 64).unwrap();
        let parity: Vec<Value> = (0..12).map(|i| Value::Int(i % 2)).collect();
        let b = BitmapIndex::build(1, &parity, 64).unwrap();
        // USA rows: 0,4,8 — all even → intersect with parity 0 keeps all.
        let rows = a
            .rows_and(&Value::Str("USA".into()), &b, &Value::Int(0))
            .unwrap();
        assert_eq!(rows, vec![0, 4, 8]);
        let none = a
            .rows_and(&Value::Str("USA".into()), &b, &Value::Int(1))
            .unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn cardinality_limit_enforced() {
        let values: Vec<Value> = (0..100).map(Value::Int).collect();
        assert!(BitmapIndex::build(0, &values, 64).is_err());
        assert!(BitmapIndex::build(0, &values, 128).is_ok());
    }

    #[test]
    fn serialization_round_trip() {
        let idx = BitmapIndex::build(6, &country_col(100), 64).unwrap();
        let back = BitmapIndex::from_bytes(&idx.to_bytes()).unwrap();
        assert_eq!(back, idx);
        assert_eq!(idx.byte_len(), idx.to_bytes().len());
    }

    #[test]
    fn compact_for_low_cardinality() {
        // 10,000 rows, 4 distinct values: ~4 bitmaps of 10k bits ≈ 5 KB —
        // far below one rowid per row (40 KB).
        let idx = BitmapIndex::build(0, &country_col(10_000), 64).unwrap();
        assert!(idx.byte_len() < 6 * 1024, "{} bytes", idx.byte_len());
    }

    #[test]
    fn row_boundaries_at_word_edges() {
        // Rows 63, 64, 127, 128 exercise word boundaries.
        let values: Vec<Value> = (0..130)
            .map(|i| Value::Int((i == 63 || i == 64 || i == 127 || i == 128) as i32))
            .collect();
        let idx = BitmapIndex::build(0, &values, 4).unwrap();
        assert_eq!(idx.rows_equal(&Value::Int(1)), vec![63, 64, 127, 128]);
    }

    #[test]
    fn mismatched_blocks_rejected() {
        let a = BitmapIndex::build(0, &country_col(8), 64).unwrap();
        let b = BitmapIndex::build(1, &country_col(9), 64).unwrap();
        assert!(a
            .rows_and(&Value::Str("USA".into()), &b, &Value::Str("USA".into()))
            .is_err());
    }
}
