//! Index metadata: what each replica carries with its block and what the
//! namenode keeps in `Dir_rep` (§3.3).

use crate::sort::SortOrder;
use hail_types::bytes_util::{put_u32, ByteReader};
use hail_types::{BlockId, DatanodeId, HailError, Result};
use std::fmt;

/// The kind of index a replica carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// No index: plain (possibly still PAX) data.
    None,
    /// HAIL sparse clustered index over sorted data.
    Clustered,
    /// Hadoop++-style trojan index (per logical block, dense directory).
    Trojan,
    /// Unclustered rowid index (ablation only).
    Unclustered,
    /// Sidecar bitmap index over a low-cardinality column (§3.5).
    Bitmap { column: usize },
    /// Sidecar inverted list over the block's bad-record section (§3.5).
    InvertedList,
    /// Sidecar zone-map synopsis (min/max) over a column, for block
    /// skipping.
    ZoneMap { column: usize },
    /// Sidecar Bloom-filter synopsis over a column, for equality-
    /// predicate block skipping.
    Bloom { column: usize },
}

impl IndexKind {
    fn tag(self) -> u8 {
        match self {
            IndexKind::None => 0,
            IndexKind::Clustered => 1,
            IndexKind::Trojan => 2,
            IndexKind::Unclustered => 3,
            IndexKind::Bitmap { .. } => 4,
            IndexKind::InvertedList => 5,
            IndexKind::ZoneMap { .. } => 6,
            IndexKind::Bloom { .. } => 7,
        }
    }

    /// Reconstructs a kind from its tag; `column` feeds the kinds that
    /// carry one ([`IndexKind::Bitmap`], [`IndexKind::ZoneMap`],
    /// [`IndexKind::Bloom`]).
    fn from_tag(t: u8, column: usize) -> Result<Self> {
        Ok(match t {
            0 => IndexKind::None,
            1 => IndexKind::Clustered,
            2 => IndexKind::Trojan,
            3 => IndexKind::Unclustered,
            4 => IndexKind::Bitmap { column },
            5 => IndexKind::InvertedList,
            6 => IndexKind::ZoneMap { column },
            7 => IndexKind::Bloom { column },
            other => return Err(HailError::Corrupt(format!("unknown index kind {other}"))),
        })
    }

    /// True for the sidecar extension kinds that ride along with a
    /// replica's primary (clustered/trojan) index.
    pub fn is_sidecar(self) -> bool {
        matches!(
            self,
            IndexKind::Bitmap { .. }
                | IndexKind::InvertedList
                | IndexKind::ZoneMap { .. }
                | IndexKind::Bloom { .. }
        )
    }
}

impl fmt::Display for IndexKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexKind::None => f.write_str("none"),
            IndexKind::Clustered => f.write_str("clustered"),
            IndexKind::Trojan => f.write_str("trojan"),
            IndexKind::Unclustered => f.write_str("unclustered"),
            IndexKind::Bitmap { column } => write!(f, "bitmap(@{})", column + 1),
            IndexKind::InvertedList => f.write_str("inverted-list"),
            IndexKind::ZoneMap { column } => write!(f, "zone-map(@{})", column + 1),
            IndexKind::Bloom { column } => write!(f, "bloom(@{})", column + 1),
        }
    }
}

/// One sidecar extension index stored with a replica, next to the PAX
/// data and the primary index: what it is, where it starts in the
/// replica's file, and how many bytes it occupies. Mirrored into the
/// namenode's `Dir_rep` so the planner can price a sidecar read without
/// touching the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SidecarMetadata {
    /// [`IndexKind::Bitmap`] or [`IndexKind::InvertedList`].
    pub kind: IndexKind,
    /// Serialized sidecar size in bytes.
    pub sidecar_bytes: usize,
    /// Byte offset of the sidecar within the replica's file.
    pub sidecar_offset: usize,
}

/// Fixed size of one serialized [`SidecarMetadata`] descriptor.
pub const SIDECAR_META_LEN: usize = 16;

impl SidecarMetadata {
    /// Fixed-size binary encoding (16 bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(SIDECAR_META_LEN);
        buf.push(self.kind.tag());
        buf.extend_from_slice(&[0u8; 3]); // padding
        let column = match self.kind {
            IndexKind::Bitmap { column }
            | IndexKind::ZoneMap { column }
            | IndexKind::Bloom { column } => column,
            _ => 0,
        };
        put_u32(&mut buf, column as u32);
        put_u32(&mut buf, self.sidecar_bytes as u32);
        put_u32(&mut buf, self.sidecar_offset as u32);
        buf
    }

    /// Parses the 16-byte encoding, rejecting tags that do not name a
    /// sidecar kind.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let tag = r.u8()?;
        r.u8()?;
        r.u8()?;
        r.u8()?;
        let column = r.u32()? as usize;
        let kind = IndexKind::from_tag(tag, column)?;
        if !kind.is_sidecar() {
            return Err(HailError::Corrupt(format!(
                "index kind `{kind}` is not a sidecar extension index"
            )));
        }
        let sidecar_bytes = r.u32()? as usize;
        let sidecar_offset = r.u32()? as usize;
        Ok(SidecarMetadata {
            kind,
            sidecar_bytes,
            sidecar_offset,
        })
    }
}

/// Per-replica index description: stored inside the HAIL block (the
/// *Index Metadata* of Fig. 1) and mirrored in the namenode's `Dir_rep`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexMetadata {
    /// What kind of index the replica carries.
    pub kind: IndexKind,
    /// 0-based key column, when indexed.
    pub key_column: Option<usize>,
    /// Serialized index size in bytes (0 when unindexed).
    pub index_bytes: usize,
    /// Byte offset of the index region within the replica's file.
    pub index_offset: usize,
    /// Sidecar extension indexes (bitmaps, inverted list) stored with
    /// this replica, in file order.
    pub sidecars: Vec<SidecarMetadata>,
}

impl IndexMetadata {
    /// Metadata for an unindexed replica.
    pub fn none() -> Self {
        IndexMetadata {
            kind: IndexKind::None,
            key_column: None,
            index_bytes: 0,
            index_offset: 0,
            sidecars: Vec::new(),
        }
    }

    /// The sidecar bitmap over `column`, if this replica stores one.
    pub fn bitmap_on(&self, column: usize) -> Option<&SidecarMetadata> {
        self.sidecars
            .iter()
            .find(|s| s.kind == IndexKind::Bitmap { column })
    }

    /// The sidecar inverted list over bad records, if stored.
    pub fn inverted_list(&self) -> Option<&SidecarMetadata> {
        self.sidecars
            .iter()
            .find(|s| s.kind == IndexKind::InvertedList)
    }

    /// The sidecar zone map over `column`, if this replica stores one.
    pub fn zone_map_on(&self, column: usize) -> Option<&SidecarMetadata> {
        self.sidecars
            .iter()
            .find(|s| s.kind == IndexKind::ZoneMap { column })
    }

    /// The sidecar Bloom filter over `column`, if this replica stores
    /// one.
    pub fn bloom_on(&self, column: usize) -> Option<&SidecarMetadata> {
        self.sidecars
            .iter()
            .find(|s| s.kind == IndexKind::Bloom { column })
    }

    /// Total bytes of all sidecar extension indexes on this replica.
    pub fn sidecar_bytes_total(&self) -> usize {
        self.sidecars.iter().map(|s| s.sidecar_bytes).sum()
    }

    /// The sort order this metadata implies.
    pub fn sort_order(&self) -> SortOrder {
        match (self.kind, self.key_column) {
            (IndexKind::Clustered, Some(c)) => SortOrder::Clustered { column: c },
            _ => SortOrder::Unsorted,
        }
    }

    /// True if this replica can serve an index scan on `column`.
    pub fn serves_column(&self, column: usize) -> bool {
        self.kind != IndexKind::None && self.key_column == Some(column)
    }

    /// Binary encoding embedded in block trailers: a fixed 16-byte
    /// header (primary index), then a u32 sidecar count followed by one
    /// fixed-size [`SidecarMetadata`] descriptor per sidecar.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(20 + self.sidecars.len() * SIDECAR_META_LEN);
        buf.push(self.kind.tag());
        buf.push(self.key_column.is_some() as u8);
        buf.extend_from_slice(&[0u8; 2]); // padding
        put_u32(&mut buf, self.key_column.unwrap_or(0) as u32);
        put_u32(&mut buf, self.index_bytes as u32);
        put_u32(&mut buf, self.index_offset as u32);
        put_u32(&mut buf, self.sidecars.len() as u32);
        for s in &self.sidecars {
            buf.extend_from_slice(&s.to_bytes());
        }
        buf
    }

    /// Parses the encoding produced by [`IndexMetadata::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let tag = r.u8()?;
        let has_col = r.u8()? != 0;
        r.u8()?;
        r.u8()?;
        let col = r.u32()? as usize;
        let kind = IndexKind::from_tag(tag, col)?;
        // Sidecar kinds live in the sidecar directory, never in the
        // primary header — mirroring SidecarMetadata's reverse check.
        if kind.is_sidecar() {
            return Err(HailError::Corrupt(format!(
                "sidecar kind `{kind}` in primary index header"
            )));
        }
        let index_bytes = r.u32()? as usize;
        let index_offset = r.u32()? as usize;
        let n_sidecars = r.u32()? as usize;
        let mut sidecars = Vec::with_capacity(n_sidecars.min(64));
        for _ in 0..n_sidecars {
            let chunk = r.bytes(SIDECAR_META_LEN)?;
            sidecars.push(SidecarMetadata::from_bytes(chunk)?);
        }
        Ok(IndexMetadata {
            kind,
            key_column: has_col.then_some(col),
            index_bytes,
            index_offset,
            sidecars,
        })
    }
}

/// What the namenode stores per `(blockID, datanode)` in `Dir_rep`:
/// "detailed information about the types of available indexes for a
/// replica, i.e. indexing key, index type, size, start offsets, and so
/// on" (§3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HailBlockReplicaInfo {
    pub block: BlockId,
    pub datanode: DatanodeId,
    pub index: IndexMetadata,
    /// Physical size of this replica's data file — replicas of the same
    /// logical block differ in size once indexes are embedded.
    pub replica_bytes: usize,
}

impl HailBlockReplicaInfo {
    pub fn new(
        block: BlockId,
        datanode: DatanodeId,
        index: IndexMetadata,
        replica_bytes: usize,
    ) -> Self {
        HailBlockReplicaInfo {
            block,
            datanode,
            index,
            replica_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_round_trip() {
        let m = IndexMetadata {
            kind: IndexKind::Clustered,
            key_column: Some(3),
            index_bytes: 2048,
            index_offset: 123_456,
            sidecars: Vec::new(),
        };
        let bytes = m.to_bytes();
        assert_eq!(bytes.len(), 20);
        assert_eq!(IndexMetadata::from_bytes(&bytes).unwrap(), m);
    }

    #[test]
    fn sidecar_metadata_round_trip() {
        let m = IndexMetadata {
            kind: IndexKind::Clustered,
            key_column: Some(1),
            index_bytes: 512,
            index_offset: 9000,
            sidecars: vec![
                SidecarMetadata {
                    kind: IndexKind::Bitmap { column: 5 },
                    sidecar_bytes: 321,
                    sidecar_offset: 9512,
                },
                SidecarMetadata {
                    kind: IndexKind::InvertedList,
                    sidecar_bytes: 77,
                    sidecar_offset: 9833,
                },
            ],
        };
        let bytes = m.to_bytes();
        assert_eq!(bytes.len(), 20 + 2 * SIDECAR_META_LEN);
        let back = IndexMetadata::from_bytes(&bytes).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.bitmap_on(5).unwrap().sidecar_bytes, 321);
        assert!(back.bitmap_on(4).is_none());
        assert_eq!(back.inverted_list().unwrap().sidecar_offset, 9833);
        assert_eq!(back.sidecar_bytes_total(), 321 + 77);
    }

    #[test]
    fn corrupt_sidecar_tag_rejected() {
        let good = SidecarMetadata {
            kind: IndexKind::Bitmap { column: 2 },
            sidecar_bytes: 10,
            sidecar_offset: 100,
        };
        // Unknown tag.
        let mut bytes = good.to_bytes();
        bytes[0] = 200;
        assert!(SidecarMetadata::from_bytes(&bytes).is_err());
        // A valid *primary* kind tag is still corrupt as a sidecar.
        let mut bytes = good.to_bytes();
        bytes[0] = IndexKind::Clustered.tag();
        let err = SidecarMetadata::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("not a sidecar"), "{err}");
        // And a corrupt descriptor inside a full metadata record fails
        // the whole parse.
        let m = IndexMetadata {
            sidecars: vec![good],
            ..IndexMetadata::none()
        };
        let mut bytes = m.to_bytes();
        bytes[20] = 200; // first sidecar descriptor's tag byte
        assert!(IndexMetadata::from_bytes(&bytes).is_err());
    }

    #[test]
    fn sidecar_kinds_display_and_classify() {
        assert_eq!(IndexKind::Bitmap { column: 0 }.to_string(), "bitmap(@1)");
        assert_eq!(IndexKind::InvertedList.to_string(), "inverted-list");
        assert_eq!(IndexKind::ZoneMap { column: 1 }.to_string(), "zone-map(@2)");
        assert_eq!(IndexKind::Bloom { column: 2 }.to_string(), "bloom(@3)");
        assert!(IndexKind::Bitmap { column: 3 }.is_sidecar());
        assert!(IndexKind::InvertedList.is_sidecar());
        assert!(IndexKind::ZoneMap { column: 0 }.is_sidecar());
        assert!(IndexKind::Bloom { column: 0 }.is_sidecar());
        assert!(!IndexKind::Clustered.is_sidecar());
        assert!(!IndexKind::None.is_sidecar());
    }

    #[test]
    fn synopsis_sidecar_metadata_round_trip() {
        let m = IndexMetadata {
            kind: IndexKind::Clustered,
            key_column: Some(0),
            index_bytes: 256,
            index_offset: 4000,
            sidecars: vec![
                SidecarMetadata {
                    kind: IndexKind::ZoneMap { column: 2 },
                    sidecar_bytes: 40,
                    sidecar_offset: 4256,
                },
                SidecarMetadata {
                    kind: IndexKind::Bloom { column: 2 },
                    sidecar_bytes: 130,
                    sidecar_offset: 4296,
                },
            ],
        };
        let back = IndexMetadata::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.zone_map_on(2).unwrap().sidecar_bytes, 40);
        assert!(back.zone_map_on(1).is_none());
        assert_eq!(back.bloom_on(2).unwrap().sidecar_offset, 4296);
        assert!(back.bloom_on(0).is_none());
        assert_eq!(back.sidecar_bytes_total(), 170);
    }

    #[test]
    fn none_round_trip() {
        let m = IndexMetadata::none();
        assert_eq!(IndexMetadata::from_bytes(&m.to_bytes()).unwrap(), m);
        assert_eq!(m.sort_order(), SortOrder::Unsorted);
        assert!(!m.serves_column(0));
    }

    #[test]
    fn serves_column() {
        let m = IndexMetadata {
            kind: IndexKind::Clustered,
            key_column: Some(2),
            index_bytes: 10,
            index_offset: 0,
            sidecars: Vec::new(),
        };
        assert!(m.serves_column(2));
        assert!(!m.serves_column(1));
        assert_eq!(m.sort_order(), SortOrder::Clustered { column: 2 });
    }

    #[test]
    fn bad_kind_tag_rejected() {
        let mut bytes = IndexMetadata::none().to_bytes();
        bytes[0] = 9;
        assert!(IndexMetadata::from_bytes(&bytes).is_err());
    }

    #[test]
    fn sidecar_tag_in_primary_header_rejected() {
        // A flipped primary kind tag naming a sidecar kind is corruption,
        // exactly as an unknown tag is.
        for tag in [4u8, 5, 6, 7] {
            let mut bytes = IndexMetadata::none().to_bytes();
            bytes[0] = tag;
            let err = IndexMetadata::from_bytes(&bytes).unwrap_err();
            assert!(err.to_string().contains("primary index header"), "{err}");
        }
    }
}
