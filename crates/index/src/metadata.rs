//! Index metadata: what each replica carries with its block and what the
//! namenode keeps in `Dir_rep` (§3.3).

use crate::sort::SortOrder;
use hail_types::bytes_util::{put_u32, ByteReader};
use hail_types::{BlockId, DatanodeId, HailError, Result};
use std::fmt;

/// The kind of index a replica carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// No index: plain (possibly still PAX) data.
    None,
    /// HAIL sparse clustered index over sorted data.
    Clustered,
    /// Hadoop++-style trojan index (per logical block, dense directory).
    Trojan,
    /// Unclustered rowid index (ablation only).
    Unclustered,
}

impl IndexKind {
    fn tag(self) -> u8 {
        match self {
            IndexKind::None => 0,
            IndexKind::Clustered => 1,
            IndexKind::Trojan => 2,
            IndexKind::Unclustered => 3,
        }
    }

    fn from_tag(t: u8) -> Result<Self> {
        Ok(match t {
            0 => IndexKind::None,
            1 => IndexKind::Clustered,
            2 => IndexKind::Trojan,
            3 => IndexKind::Unclustered,
            other => return Err(HailError::Corrupt(format!("unknown index kind {other}"))),
        })
    }
}

impl fmt::Display for IndexKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IndexKind::None => "none",
            IndexKind::Clustered => "clustered",
            IndexKind::Trojan => "trojan",
            IndexKind::Unclustered => "unclustered",
        };
        f.write_str(s)
    }
}

/// Per-replica index description: stored inside the HAIL block (the
/// *Index Metadata* of Fig. 1) and mirrored in the namenode's `Dir_rep`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexMetadata {
    /// What kind of index the replica carries.
    pub kind: IndexKind,
    /// 0-based key column, when indexed.
    pub key_column: Option<usize>,
    /// Serialized index size in bytes (0 when unindexed).
    pub index_bytes: usize,
    /// Byte offset of the index region within the replica's file.
    pub index_offset: usize,
}

impl IndexMetadata {
    /// Metadata for an unindexed replica.
    pub fn none() -> Self {
        IndexMetadata {
            kind: IndexKind::None,
            key_column: None,
            index_bytes: 0,
            index_offset: 0,
        }
    }

    /// The sort order this metadata implies.
    pub fn sort_order(&self) -> SortOrder {
        match (self.kind, self.key_column) {
            (IndexKind::Clustered, Some(c)) => SortOrder::Clustered { column: c },
            _ => SortOrder::Unsorted,
        }
    }

    /// True if this replica can serve an index scan on `column`.
    pub fn serves_column(&self, column: usize) -> bool {
        self.kind != IndexKind::None && self.key_column == Some(column)
    }

    /// Fixed-size binary encoding (16 bytes) embedded in block trailers.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16);
        buf.push(self.kind.tag());
        buf.push(self.key_column.is_some() as u8);
        buf.extend_from_slice(&[0u8; 2]); // padding
        put_u32(&mut buf, self.key_column.unwrap_or(0) as u32);
        put_u32(&mut buf, self.index_bytes as u32);
        put_u32(&mut buf, self.index_offset as u32);
        buf
    }

    /// Parses the 16-byte encoding.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let kind = IndexKind::from_tag(r.u8()?)?;
        let has_col = r.u8()? != 0;
        r.u8()?;
        r.u8()?;
        let col = r.u32()? as usize;
        let index_bytes = r.u32()? as usize;
        let index_offset = r.u32()? as usize;
        Ok(IndexMetadata {
            kind,
            key_column: has_col.then_some(col),
            index_bytes,
            index_offset,
        })
    }
}

/// What the namenode stores per `(blockID, datanode)` in `Dir_rep`:
/// "detailed information about the types of available indexes for a
/// replica, i.e. indexing key, index type, size, start offsets, and so
/// on" (§3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HailBlockReplicaInfo {
    pub block: BlockId,
    pub datanode: DatanodeId,
    pub index: IndexMetadata,
    /// Physical size of this replica's data file — replicas of the same
    /// logical block differ in size once indexes are embedded.
    pub replica_bytes: usize,
}

impl HailBlockReplicaInfo {
    pub fn new(
        block: BlockId,
        datanode: DatanodeId,
        index: IndexMetadata,
        replica_bytes: usize,
    ) -> Self {
        HailBlockReplicaInfo {
            block,
            datanode,
            index,
            replica_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_round_trip() {
        let m = IndexMetadata {
            kind: IndexKind::Clustered,
            key_column: Some(3),
            index_bytes: 2048,
            index_offset: 123_456,
        };
        let bytes = m.to_bytes();
        assert_eq!(bytes.len(), 16);
        assert_eq!(IndexMetadata::from_bytes(&bytes).unwrap(), m);
    }

    #[test]
    fn none_round_trip() {
        let m = IndexMetadata::none();
        assert_eq!(IndexMetadata::from_bytes(&m.to_bytes()).unwrap(), m);
        assert_eq!(m.sort_order(), SortOrder::Unsorted);
        assert!(!m.serves_column(0));
    }

    #[test]
    fn serves_column() {
        let m = IndexMetadata {
            kind: IndexKind::Clustered,
            key_column: Some(2),
            index_bytes: 10,
            index_offset: 0,
        };
        assert!(m.serves_column(2));
        assert!(!m.serves_column(1));
        assert_eq!(m.sort_order(), SortOrder::Clustered { column: 2 });
    }

    #[test]
    fn bad_kind_tag_rejected() {
        let mut bytes = IndexMetadata::none().to_bytes();
        bytes[0] = 9;
        assert!(IndexMetadata::from_bytes(&bytes).is_err());
    }
}
