//! # hail-index
//!
//! Indexing structures for HAIL block replicas:
//!
//! - [`clustered`] — the paper's sparse clustered index (Fig. 2)
//! - [`sort`] — per-replica sort orders and the upload index configuration
//! - [`indexed`] — the HAIL block container (PAX data + index + metadata)
//! - [`metadata`] — index metadata and the namenode's per-replica info
//! - [`trojan`] — the Hadoop++ trojan-index baseline
//! - [`unclustered`] — dense unclustered index (ablation only)
//! - [`selection`] — which attribute to index on which replica (§3.4)
//! - [`bitmap`], [`inverted`] — the paper's §3.5 extension indexes:
//!   bitmaps for low-cardinality domains, inverted lists for bad records

#![forbid(unsafe_code)]

pub mod bitmap;
pub mod clustered;
pub mod indexed;
pub mod inverted;
pub mod metadata;
pub mod selection;
pub mod sort;
pub mod synopsis;
pub mod trojan;
pub mod unclustered;

pub use bitmap::{BitmapIndex, DEFAULT_CARDINALITY_LIMIT};
pub use clustered::{ClusteredIndex, KeyBounds};
pub use indexed::{IndexedBlock, TRAILER_LEN, TRAILER_MAGIC};
pub use inverted::{tokenize, InvertedList};
pub use metadata::{
    HailBlockReplicaInfo, IndexKind, IndexMetadata, SidecarMetadata, SIDECAR_META_LEN,
};
pub use selection::{select_for_workload, select_manual, WorkloadFilter};
pub use sort::{ReplicaIndexConfig, SidecarSpec, SortOrder};
pub use synopsis::{BloomSynopsis, ZoneMapSynopsis};
pub use trojan::{TrojanIndex, TROJAN_GRANULARITY};
pub use unclustered::UnclusteredIndex;
