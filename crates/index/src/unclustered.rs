//! Unclustered index — built only for the §3.5 ablation.
//!
//! The paper rejects unclustered indexes for HAIL: they are dense by
//! definition (one entry **per row**), cost 10–20 % extra space
//! (footnote 4), and for non-selective queries their random row accesses
//! lose badly against a clustered scan. This module exists so the
//! ablation bench can measure exactly that trade-off.

use crate::clustered::KeyBounds;
use hail_types::{DataType, HailError, Result, Value};

/// A dense unclustered index: all `(key, rowid)` pairs sorted by key,
/// over a block that stays in upload order.
#[derive(Debug, Clone, PartialEq)]
pub struct UnclusteredIndex {
    key_column: usize,
    key_type: DataType,
    /// Sorted by key; rowid points into the *unsorted* block.
    entries: Vec<(Value, u32)>,
}

impl UnclusteredIndex {
    /// Builds the index from an (unsorted) key column.
    pub fn build(key_column: usize, key_type: DataType, keys: &[Value]) -> Result<Self> {
        if keys.len() > u32::MAX as usize {
            return Err(HailError::Schema("block too large for u32 rowids".into()));
        }
        let mut entries: Vec<(Value, u32)> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), i as u32))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        Ok(UnclusteredIndex {
            key_column,
            key_type,
            entries,
        })
    }

    pub fn key_column(&self) -> usize {
        self.key_column
    }

    pub fn key_type(&self) -> DataType {
        self.key_type
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Rowids (in the unsorted block) of all rows whose key satisfies the
    /// bounds. These accesses are *random I/O* — the cost the paper's
    /// design avoids.
    pub fn lookup_rowids(&self, bounds: &KeyBounds) -> Vec<usize> {
        // Binary search the lower edge, then scan while within bounds.
        let start = match &bounds.lo {
            std::ops::Bound::Unbounded => 0,
            std::ops::Bound::Included(lo) => self.entries.partition_point(|(k, _)| k < lo),
            std::ops::Bound::Excluded(lo) => self.entries.partition_point(|(k, _)| k <= lo),
        };
        self.entries[start..]
            .iter()
            .take_while(|(k, _)| match &bounds.hi {
                std::ops::Bound::Unbounded => true,
                std::ops::Bound::Included(hi) => k <= hi,
                std::ops::Bound::Excluded(hi) => k < hi,
            })
            .map(|(_, r)| *r as usize)
            .collect()
    }

    /// Dense index size: one key + 4-byte rowid per row. The ablation
    /// bench compares this against the sparse clustered index.
    pub fn byte_len(&self) -> usize {
        let key_bytes: usize = self.entries.iter().map(|(k, _)| k.encoded_len()).sum();
        key_bytes + self.entries.len() * 4
    }

    /// Number of distinct disk "seeks" a retrieval of the given rowids
    /// costs, merging adjacent rowids into one sequential run. Already
    /// sorted input (the common case: bitmap results are ascending) is
    /// counted in place without copying.
    pub fn seek_count(rowids: &[usize]) -> usize {
        if rowids.is_empty() {
            return 0;
        }
        if rowids.windows(2).all(|w| w[0] <= w[1]) {
            return 1 + rowids.windows(2).filter(|w| w[1] != w[0] + 1).count();
        }
        let mut sorted = rowids.to_vec();
        sorted.sort_unstable();
        Self::seek_count(&sorted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustered::ClusteredIndex;

    #[test]
    fn lookup_finds_all_matches() {
        let keys: Vec<Value> = [5, 1, 3, 5, 2, 5].iter().map(|&v| Value::Int(v)).collect();
        let idx = UnclusteredIndex::build(0, DataType::Int, &keys).unwrap();
        let mut hits = idx.lookup_rowids(&KeyBounds::point(Value::Int(5)));
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 3, 5]);
        assert!(idx
            .lookup_rowids(&KeyBounds::point(Value::Int(9)))
            .is_empty());
    }

    #[test]
    fn range_lookup() {
        let keys: Vec<Value> = (0..20).rev().map(Value::Int).collect();
        let idx = UnclusteredIndex::build(0, DataType::Int, &keys).unwrap();
        let hits = idx.lookup_rowids(&KeyBounds::between(Value::Int(3), Value::Int(6)));
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn dense_and_larger_than_clustered() {
        let keys: Vec<Value> = (0..10_000).map(Value::Int).collect();
        let unclustered = UnclusteredIndex::build(0, DataType::Int, &keys).unwrap();
        let clustered = ClusteredIndex::build(0, DataType::Int, 1024, &keys).unwrap();
        assert!(unclustered.byte_len() > 100 * clustered.byte_len());
    }

    #[test]
    fn seek_count_merges_runs() {
        assert_eq!(UnclusteredIndex::seek_count(&[]), 0);
        assert_eq!(UnclusteredIndex::seek_count(&[5]), 1);
        assert_eq!(UnclusteredIndex::seek_count(&[1, 2, 3]), 1);
        assert_eq!(UnclusteredIndex::seek_count(&[1, 3, 4, 9]), 3);
        assert_eq!(UnclusteredIndex::seek_count(&[9, 1, 2]), 2);
    }
}
