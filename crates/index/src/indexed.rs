//! The HAIL block container: PAX data + embedded index + index metadata.
//!
//! This is the physical file each datanode flushes for one replica
//! (Fig. 1's *HAIL Block*): the (sorted) PAX block, followed by the
//! serialized clustered index, followed by the §3.5 sidecar extension
//! indexes (bitmaps over low-cardinality columns, an inverted list over
//! the bad-record section), followed by a trailer holding the index
//! metadata — sidecar directory included — and layout offsets.
//!
//! ```text
//! ┌──────────────────────────────┐
//! │ PAX block (sorted or not)    │
//! ├──────────────────────────────┤
//! │ index bytes (may be empty)   │
//! ├──────────────────────────────┤
//! │ sidecar region (may be empty)│
//! │   bitmap(s) · zone map(s)    │
//! │   bloom(s) · inverted list   │
//! ├──────────────────────────────┤
//! │ IndexMetadata (variable:     │
//! │   primary + sidecar dir)     │
//! │ pax_len · index_len          │
//! │ sidecar_len · meta_len (u32) │
//! │ trailer magic u32            │
//! └──────────────────────────────┘
//! ```

use crate::bitmap::{BitmapIndex, DEFAULT_CARDINALITY_LIMIT};
use crate::clustered::ClusteredIndex;
use crate::inverted::InvertedList;
use crate::metadata::{IndexKind, IndexMetadata, SidecarMetadata};
use crate::sort::{SidecarSpec, SortOrder};
use crate::synopsis::{BloomSynopsis, ZoneMapSynopsis};
use bytes::Bytes;
use hail_pax::{sort_block, PaxBlock};
use hail_types::{HailError, Result};

/// Trailer magic ("LIAH").
pub const TRAILER_MAGIC: u32 = 0x4841_494C;
/// Fixed-size footer closing every block: four section lengths + magic.
pub const TRAILER_LEN: usize = 5 * 4;

/// A replica's physical content, parsed: the PAX data plus its optional
/// clustered index. Sidecar extension indexes stay serialized in
/// `bytes` and decode lazily via [`IndexedBlock::bitmap`] /
/// [`IndexedBlock::inverted_list`].
#[derive(Debug, Clone)]
pub struct IndexedBlock {
    pax: PaxBlock,
    index: Option<ClusteredIndex>,
    meta: IndexMetadata,
    bytes: Bytes,
}

impl IndexedBlock {
    /// Builds a replica's content from an *unsorted* PAX block and the
    /// replica's sort order: sorts (if requested), builds the clustered
    /// index over the sorted key column, and serializes the container.
    ///
    /// This is exactly the per-datanode work of upload step 7.
    pub fn build(block: &PaxBlock, order: SortOrder) -> Result<IndexedBlock> {
        Self::build_with(block, order, &SidecarSpec::default())
    }

    /// Like [`IndexedBlock::build`], but additionally builds the §3.5
    /// sidecar extension indexes the spec asks for. Bitmap columns whose
    /// cardinality exceeds [`DEFAULT_CARDINALITY_LIMIT`] are skipped
    /// (the replica simply stores no bitmap for them) rather than
    /// failing the upload.
    pub fn build_with(
        block: &PaxBlock,
        order: SortOrder,
        spec: &SidecarSpec,
    ) -> Result<IndexedBlock> {
        let (pax, index) = match order {
            SortOrder::Unsorted => (block.clone(), None),
            SortOrder::Clustered { column } => {
                let (sorted, _perm) = sort_block(block, column)?;
                let col = sorted.decode_column(column)?;
                let keys: Vec<_> = (0..col.len()).map(|i| col.value(i)).collect();
                let key_type = sorted.schema().field(column)?.data_type;
                let index =
                    ClusteredIndex::build(column, key_type, sorted.partition_size(), &keys)?;
                (sorted, Some(index))
            }
        };
        // Sidecars index rowids of the *stored* (possibly sorted) block.
        let mut bitmaps: Vec<BitmapIndex> = Vec::new();
        for &column in &spec.bitmap_columns {
            // A hand-built spec may repeat a column; one sidecar is
            // enough.
            if bitmaps.iter().any(|b| b.column() == column) {
                continue;
            }
            let col = pax.decode_column(column)?;
            let values: Vec<_> = (0..col.len()).map(|i| col.value(i)).collect();
            if let Some(bm) =
                BitmapIndex::build_if_low_cardinality(column, &values, DEFAULT_CARDINALITY_LIMIT)
            {
                bitmaps.push(bm);
            }
        }
        // Zone maps and Bloom filters summarize the same stored rowids;
        // both persist the bad-record count so the prune pass can back
        // off on any block that would still emit bad records.
        let bad_records = pax.bad_records()?.len();
        let mut zone_maps: Vec<ZoneMapSynopsis> = Vec::new();
        for &column in &spec.zone_map_columns {
            if zone_maps.iter().any(|z| z.column() == column) {
                continue;
            }
            let col = pax.decode_column(column)?;
            let values: Vec<_> = (0..col.len()).map(|i| col.value(i)).collect();
            zone_maps.push(ZoneMapSynopsis::build(column, &values, bad_records));
        }
        let mut blooms: Vec<BloomSynopsis> = Vec::new();
        for &column in &spec.bloom_columns {
            if blooms.iter().any(|b| b.column() == column) {
                continue;
            }
            let col = pax.decode_column(column)?;
            let values: Vec<_> = (0..col.len()).map(|i| col.value(i)).collect();
            blooms.push(BloomSynopsis::build(column, &values, bad_records));
        }
        let inverted = if spec.inverted_list {
            Some(InvertedList::build(&pax.bad_records()?))
        } else {
            None
        };
        Self::assemble_with(pax, index, bitmaps, zone_maps, blooms, inverted)
    }

    /// Serializes a (pax, index) pair into the container format.
    pub fn assemble(pax: PaxBlock, index: Option<ClusteredIndex>) -> Result<IndexedBlock> {
        Self::assemble_with(pax, index, Vec::new(), Vec::new(), Vec::new(), None)
    }

    /// Serializes PAX data, an optional clustered index, and the built
    /// sidecar extension indexes into the container format.
    pub fn assemble_with(
        pax: PaxBlock,
        index: Option<ClusteredIndex>,
        bitmaps: Vec<BitmapIndex>,
        zone_maps: Vec<ZoneMapSynopsis>,
        blooms: Vec<BloomSynopsis>,
        inverted: Option<InvertedList>,
    ) -> Result<IndexedBlock> {
        let index_bytes = index
            .as_ref()
            .map(ClusteredIndex::to_bytes)
            .unwrap_or_default();

        // Sidecar region: bitmaps in configuration order, then the
        // inverted list; offsets are absolute within the replica file.
        let mut sidecar_region = Vec::new();
        let mut sidecars = Vec::new();
        let sidecar_base = pax.byte_len() + index_bytes.len();
        for bm in &bitmaps {
            let encoded = bm.to_bytes();
            sidecars.push(SidecarMetadata {
                kind: IndexKind::Bitmap {
                    column: bm.column(),
                },
                sidecar_bytes: encoded.len(),
                sidecar_offset: sidecar_base + sidecar_region.len(),
            });
            sidecar_region.extend_from_slice(&encoded);
        }
        for z in &zone_maps {
            let encoded = z.to_bytes();
            sidecars.push(SidecarMetadata {
                kind: IndexKind::ZoneMap { column: z.column() },
                sidecar_bytes: encoded.len(),
                sidecar_offset: sidecar_base + sidecar_region.len(),
            });
            sidecar_region.extend_from_slice(&encoded);
        }
        for b in &blooms {
            let encoded = b.to_bytes();
            sidecars.push(SidecarMetadata {
                kind: IndexKind::Bloom { column: b.column() },
                sidecar_bytes: encoded.len(),
                sidecar_offset: sidecar_base + sidecar_region.len(),
            });
            sidecar_region.extend_from_slice(&encoded);
        }
        if let Some(list) = &inverted {
            let encoded = list.to_bytes();
            sidecars.push(SidecarMetadata {
                kind: IndexKind::InvertedList,
                sidecar_bytes: encoded.len(),
                sidecar_offset: sidecar_base + sidecar_region.len(),
            });
            sidecar_region.extend_from_slice(&encoded);
        }

        let meta = match &index {
            Some(idx) => IndexMetadata {
                kind: IndexKind::Clustered,
                key_column: Some(idx.key_column()),
                index_bytes: index_bytes.len(),
                index_offset: pax.byte_len(),
                sidecars,
            },
            None => IndexMetadata {
                sidecars,
                ..IndexMetadata::none()
            },
        };
        let meta_bytes = meta.to_bytes();
        let mut buf = Vec::with_capacity(
            pax.byte_len()
                + index_bytes.len()
                + sidecar_region.len()
                + meta_bytes.len()
                + TRAILER_LEN,
        );
        buf.extend_from_slice(pax.bytes());
        buf.extend_from_slice(&index_bytes);
        buf.extend_from_slice(&sidecar_region);
        buf.extend_from_slice(&meta_bytes);
        buf.extend_from_slice(&(pax.byte_len() as u32).to_le_bytes());
        buf.extend_from_slice(&(index_bytes.len() as u32).to_le_bytes());
        buf.extend_from_slice(&(sidecar_region.len() as u32).to_le_bytes());
        buf.extend_from_slice(&(meta_bytes.len() as u32).to_le_bytes());
        buf.extend_from_slice(&TRAILER_MAGIC.to_le_bytes());
        Ok(IndexedBlock {
            pax,
            index,
            meta,
            bytes: Bytes::from(buf),
        })
    }

    /// Parses a serialized HAIL block.
    pub fn parse(bytes: Bytes) -> Result<IndexedBlock> {
        if bytes.len() < TRAILER_LEN {
            return Err(HailError::Corrupt(format!(
                "block of {} bytes is smaller than the trailer",
                bytes.len()
            )));
        }
        let t = bytes.len() - TRAILER_LEN;
        let word =
            |i: usize| u32::from_le_bytes(bytes[t + 4 * i..t + 4 * i + 4].try_into().unwrap());
        let pax_len = word(0) as usize;
        let index_len = word(1) as usize;
        let sidecar_len = word(2) as usize;
        let meta_len = word(3) as usize;
        let magic = word(4);
        if magic != TRAILER_MAGIC {
            return Err(HailError::Corrupt(format!(
                "bad trailer magic {magic:#010x}"
            )));
        }
        if pax_len + index_len + sidecar_len + meta_len + TRAILER_LEN != bytes.len() {
            return Err(HailError::Corrupt(format!(
                "trailer lengths ({pax_len} + {index_len} + {sidecar_len} + {meta_len}) \
                 inconsistent with block of {} bytes",
                bytes.len()
            )));
        }
        let meta_start = pax_len + index_len + sidecar_len;
        let meta = IndexMetadata::from_bytes(&bytes[meta_start..meta_start + meta_len])?;
        let pax = PaxBlock::parse(bytes.slice(0..pax_len))?;
        let index = if meta.kind == IndexKind::Clustered && index_len > 0 {
            Some(ClusteredIndex::from_bytes(
                &bytes[pax_len..pax_len + index_len],
            )?)
        } else {
            None
        };

        // Validate the sidecar directory against the region; the
        // sidecar *contents* decode lazily on access, so scans that
        // never touch a sidecar never pay to decode it.
        for s in &meta.sidecars {
            let start = s.sidecar_offset;
            let end = start.saturating_add(s.sidecar_bytes);
            if start < pax_len + index_len || end > meta_start {
                return Err(HailError::Corrupt(format!(
                    "sidecar `{}` at {start}..{end} outside sidecar region {}..{meta_start}",
                    s.kind,
                    pax_len + index_len,
                )));
            }
        }
        Ok(IndexedBlock {
            pax,
            index,
            meta,
            bytes,
        })
    }

    /// The PAX data of this replica.
    pub fn pax(&self) -> &PaxBlock {
        &self.pax
    }

    /// The clustered index, if the replica has one.
    pub fn index(&self) -> Option<&ClusteredIndex> {
        self.index.as_ref()
    }

    /// The raw bytes of one sidecar (directory offsets were validated
    /// at parse time).
    fn sidecar_raw(&self, s: &SidecarMetadata) -> &[u8] {
        &self.bytes[s.sidecar_offset..s.sidecar_offset + s.sidecar_bytes]
    }

    /// The sidecar bitmap over `column` together with its directory
    /// entry (stored size and offset), if this replica stores one — one
    /// directory lookup. Decoding happens on access so non-sidecar
    /// scans never pay for it; errors only on a corrupt stored sidecar.
    pub fn bitmap_sidecar(&self, column: usize) -> Result<Option<(SidecarMetadata, BitmapIndex)>> {
        self.meta
            .bitmap_on(column)
            .map(|s| Ok((*s, BitmapIndex::from_bytes(self.sidecar_raw(s))?)))
            .transpose()
    }

    /// Decodes the sidecar bitmap over `column`, if this replica stores
    /// one (see [`IndexedBlock::bitmap_sidecar`]).
    pub fn bitmap(&self, column: usize) -> Result<Option<BitmapIndex>> {
        Ok(self.bitmap_sidecar(column)?.map(|(_, b)| b))
    }

    /// The sidecar inverted list over bad records together with its
    /// directory entry, if stored (lazily, like
    /// [`IndexedBlock::bitmap_sidecar`]).
    pub fn inverted_list_sidecar(&self) -> Result<Option<(SidecarMetadata, InvertedList)>> {
        self.meta
            .inverted_list()
            .map(|s| Ok((*s, InvertedList::from_bytes(self.sidecar_raw(s))?)))
            .transpose()
    }

    /// Decodes the sidecar inverted list over bad records, if stored.
    pub fn inverted_list(&self) -> Result<Option<InvertedList>> {
        Ok(self.inverted_list_sidecar()?.map(|(_, l)| l))
    }

    /// The sidecar zone map over `column` together with its directory
    /// entry, if stored (lazily, like [`IndexedBlock::bitmap_sidecar`]).
    pub fn zone_map_sidecar(
        &self,
        column: usize,
    ) -> Result<Option<(SidecarMetadata, ZoneMapSynopsis)>> {
        self.meta
            .zone_map_on(column)
            .map(|s| Ok((*s, ZoneMapSynopsis::from_bytes(self.sidecar_raw(s))?)))
            .transpose()
    }

    /// Decodes the sidecar zone map over `column`, if stored.
    pub fn zone_map(&self, column: usize) -> Result<Option<ZoneMapSynopsis>> {
        Ok(self.zone_map_sidecar(column)?.map(|(_, z)| z))
    }

    /// The sidecar Bloom filter over `column` together with its
    /// directory entry, if stored (lazily, like
    /// [`IndexedBlock::bitmap_sidecar`]).
    pub fn bloom_sidecar(&self, column: usize) -> Result<Option<(SidecarMetadata, BloomSynopsis)>> {
        self.meta
            .bloom_on(column)
            .map(|s| Ok((*s, BloomSynopsis::from_bytes(self.sidecar_raw(s))?)))
            .transpose()
    }

    /// Decodes the sidecar Bloom filter over `column`, if stored.
    pub fn bloom(&self, column: usize) -> Result<Option<BloomSynopsis>> {
        Ok(self.bloom_sidecar(column)?.map(|(_, b)| b))
    }

    /// The replica's index metadata.
    pub fn metadata(&self) -> &IndexMetadata {
        &self.meta
    }

    /// The full serialized file content.
    pub fn bytes(&self) -> &Bytes {
        &self.bytes
    }

    /// Physical file size in bytes.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// The sort order of this replica.
    pub fn sort_order(&self) -> SortOrder {
        self.meta.sort_order()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hail_pax::blocks_from_text;
    use hail_types::{DataType, Field, Schema, StorageConfig, Value};

    fn pax_block() -> PaxBlock {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::VarChar),
        ])
        .unwrap();
        let text = "5|five\n3|three\n9|nine\n1|one\n7|seven\n";
        blocks_from_text(text, &schema, &StorageConfig::test_scale(1 << 20))
            .unwrap()
            .pop()
            .unwrap()
    }

    #[test]
    fn unsorted_replica_round_trip() {
        let b = IndexedBlock::build(&pax_block(), SortOrder::Unsorted).unwrap();
        assert!(b.index().is_none());
        assert_eq!(b.metadata().kind, IndexKind::None);
        let parsed = IndexedBlock::parse(b.bytes().clone()).unwrap();
        assert_eq!(parsed.pax().row_count(), 5);
        // Upload order preserved.
        assert_eq!(parsed.pax().value(0, 0).unwrap(), Value::Int(5));
    }

    #[test]
    fn clustered_replica_sorts_and_indexes() {
        let b = IndexedBlock::build(&pax_block(), SortOrder::Clustered { column: 0 }).unwrap();
        let idx = b.index().expect("index");
        assert_eq!(idx.key_column(), 0);
        assert_eq!(idx.row_count(), 5);
        assert_eq!(b.metadata().kind, IndexKind::Clustered);
        assert_eq!(b.metadata().key_column, Some(0));
        assert_eq!(b.pax().value(0, 0).unwrap(), Value::Int(1));
        assert_eq!(b.pax().value(1, 0).unwrap(), Value::Str("one".into()));
        assert_eq!(b.pax().value(0, 4).unwrap(), Value::Int(9));
    }

    #[test]
    fn parse_round_trip_with_index() {
        let b = IndexedBlock::build(&pax_block(), SortOrder::Clustered { column: 0 }).unwrap();
        let parsed = IndexedBlock::parse(b.bytes().clone()).unwrap();
        assert_eq!(parsed.index().unwrap(), b.index().unwrap());
        assert_eq!(parsed.metadata(), b.metadata());
        assert_eq!(parsed.sort_order(), SortOrder::Clustered { column: 0 });
    }

    #[test]
    fn sidecars_round_trip_with_clustered_index() {
        let spec = SidecarSpec {
            bitmap_columns: vec![0],
            inverted_list: true,
            ..SidecarSpec::default()
        };
        let b = IndexedBlock::build_with(&pax_block(), SortOrder::Clustered { column: 0 }, &spec)
            .unwrap();
        assert!(
            b.index().is_some(),
            "sidecars coexist with the primary index"
        );
        let bm = b.bitmap(0).unwrap().expect("bitmap sidecar");
        assert_eq!(bm.row_count(), 5);
        assert!(b.inverted_list().unwrap().is_some());
        assert_eq!(b.metadata().sidecars.len(), 2);
        assert!(b.metadata().bitmap_on(0).is_some());
        assert!(b.metadata().inverted_list().is_some());

        let parsed = IndexedBlock::parse(b.bytes().clone()).unwrap();
        assert_eq!(parsed.bitmap(0).unwrap().unwrap(), bm);
        assert_eq!(parsed.inverted_list().unwrap(), b.inverted_list().unwrap());
        assert_eq!(parsed.metadata(), b.metadata());
        // The sidecar lookup answers the same rows as a scan of the
        // sorted column.
        assert_eq!(
            parsed
                .bitmap(0)
                .unwrap()
                .unwrap()
                .rows_equal(&Value::Int(7)),
            [3]
        );
    }

    #[test]
    fn duplicate_bitmap_columns_store_one_sidecar() {
        let spec = SidecarSpec {
            bitmap_columns: vec![0, 0, 0],
            ..SidecarSpec::default()
        };
        let b = IndexedBlock::build_with(&pax_block(), SortOrder::Unsorted, &spec).unwrap();
        assert_eq!(b.metadata().sidecars.len(), 1);
        assert!(b.bitmap(0).unwrap().is_some());
    }

    #[test]
    fn high_cardinality_bitmap_column_is_skipped() {
        // Column 1 (varchar names) is unique per row; with a limit of 64
        // and only 5 rows it fits, so craft a wide block instead.
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::VarChar),
        ])
        .unwrap();
        let text: String = (0..200).map(|i| format!("{i}|name{i}\n")).collect();
        let block = blocks_from_text(&text, &schema, &StorageConfig::test_scale(1 << 20))
            .unwrap()
            .pop()
            .unwrap();
        let spec = SidecarSpec {
            bitmap_columns: vec![0, 1],
            ..SidecarSpec::default()
        };
        // Both columns exceed the limit: the build succeeds with no
        // bitmaps instead of erroring the upload.
        let b = IndexedBlock::build_with(&block, SortOrder::Unsorted, &spec).unwrap();
        assert!(b.bitmap(0).unwrap().is_none());
        assert!(b.bitmap(1).unwrap().is_none());
        assert!(b.metadata().sidecars.is_empty());
    }

    #[test]
    fn synopsis_sidecars_round_trip() {
        use crate::clustered::KeyBounds;
        let spec = SidecarSpec {
            zone_map_columns: vec![0],
            bloom_columns: vec![0, 1],
            ..SidecarSpec::default()
        };
        let b = IndexedBlock::build_with(&pax_block(), SortOrder::Clustered { column: 0 }, &spec)
            .unwrap();
        assert_eq!(b.metadata().sidecars.len(), 3);

        let parsed = IndexedBlock::parse(b.bytes().clone()).unwrap();
        let zm = parsed.zone_map(0).unwrap().expect("zone map");
        // Keys are 1,3,5,7,9 — the zone map sees the sorted block.
        assert_eq!(zm.bounds(), Some((&Value::Int(1), &Value::Int(9))));
        assert_eq!(zm.row_count(), 5);
        assert_eq!(zm.bad_records(), 0);
        assert!(!zm.overlaps(&KeyBounds::at_least(Value::Int(10))));
        assert!(zm.overlaps(&KeyBounds::point(Value::Int(5))));
        assert!(parsed.zone_map(1).unwrap().is_none());

        let bl = parsed.bloom(1).unwrap().expect("bloom");
        assert!(bl.might_contain(&Value::Str("seven".into())));
        assert!(parsed.bloom(0).unwrap().is_some());
        assert_eq!(parsed.metadata(), b.metadata());
        assert_eq!(
            b.metadata().sidecar_bytes_total(),
            b.metadata().sidecars.iter().map(|s| s.sidecar_bytes).sum()
        );
    }

    #[test]
    fn replicas_differ_physically() {
        let pax = pax_block();
        let r0 = IndexedBlock::build(&pax, SortOrder::Clustered { column: 0 }).unwrap();
        let r1 = IndexedBlock::build(&pax, SortOrder::Clustered { column: 1 }).unwrap();
        let r2 = IndexedBlock::build(&pax, SortOrder::Unsorted).unwrap();
        assert_ne!(r0.bytes(), r1.bytes());
        assert_ne!(r0.bytes(), r2.bytes());
        // ...but all recover the same logical rows (failover property).
        let mut rows0: Vec<String> = (0..5)
            .map(|r| r0.pax().reconstruct_full(r).unwrap().to_string())
            .collect();
        let mut rows1: Vec<String> = (0..5)
            .map(|r| r1.pax().reconstruct_full(r).unwrap().to_string())
            .collect();
        rows0.sort();
        rows1.sort();
        assert_eq!(rows0, rows1);
    }

    #[test]
    fn parse_rejects_corrupt_trailer() {
        let b = IndexedBlock::build(&pax_block(), SortOrder::Unsorted).unwrap();
        let mut raw = b.bytes().to_vec();
        let n = raw.len();
        raw[n - 1] ^= 0xFF; // clobber magic
        assert!(IndexedBlock::parse(Bytes::from(raw)).is_err());
    }

    #[test]
    fn parse_rejects_corrupt_sidecar_directory() {
        let spec = SidecarSpec {
            bitmap_columns: vec![0],
            ..SidecarSpec::default()
        };
        let b = IndexedBlock::build_with(&pax_block(), SortOrder::Unsorted, &spec).unwrap();
        let meta_len = b.metadata().to_bytes().len();
        let mut raw = b.bytes().to_vec();
        // The sidecar descriptor's kind tag sits 20 bytes into the
        // metadata record, which precedes the fixed footer.
        let tag_pos = raw.len() - TRAILER_LEN - meta_len + 20;
        raw[tag_pos] = 200;
        assert!(IndexedBlock::parse(Bytes::from(raw)).is_err());
    }

    #[test]
    fn parse_rejects_truncation() {
        let b = IndexedBlock::build(&pax_block(), SortOrder::Clustered { column: 0 }).unwrap();
        let raw = b.bytes().to_vec();
        assert!(IndexedBlock::parse(Bytes::from(raw[..10].to_vec())).is_err());
    }
}
