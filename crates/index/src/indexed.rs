//! The HAIL block container: PAX data + embedded index + index metadata.
//!
//! This is the physical file each datanode flushes for one replica
//! (Fig. 1's *HAIL Block*): the (sorted) PAX block, followed by the
//! serialized clustered index, followed by a fixed-size trailer holding
//! the index metadata and layout offsets.
//!
//! ```text
//! ┌──────────────────────────────┐
//! │ PAX block (sorted or not)    │
//! ├──────────────────────────────┤
//! │ index bytes (may be empty)   │
//! ├──────────────────────────────┤
//! │ IndexMetadata (16 B)         │
//! │ pax_len u32 · index_len u32  │
//! │ trailer magic u32            │
//! └──────────────────────────────┘
//! ```

use crate::clustered::ClusteredIndex;
use crate::metadata::{IndexKind, IndexMetadata};
use crate::sort::SortOrder;
use bytes::Bytes;
use hail_pax::{sort_block, PaxBlock};
use hail_types::{HailError, Result};

/// Trailer magic ("LIAH").
pub const TRAILER_MAGIC: u32 = 0x4841_494C;
/// Fixed trailer size: 16-byte metadata + two u32 lengths + magic.
pub const TRAILER_LEN: usize = 16 + 4 + 4 + 4;

/// A replica's physical content, parsed: the PAX data plus its optional
/// clustered index.
#[derive(Debug, Clone)]
pub struct IndexedBlock {
    pax: PaxBlock,
    index: Option<ClusteredIndex>,
    meta: IndexMetadata,
    bytes: Bytes,
}

impl IndexedBlock {
    /// Builds a replica's content from an *unsorted* PAX block and the
    /// replica's sort order: sorts (if requested), builds the clustered
    /// index over the sorted key column, and serializes the container.
    ///
    /// This is exactly the per-datanode work of upload step 7.
    pub fn build(block: &PaxBlock, order: SortOrder) -> Result<IndexedBlock> {
        match order {
            SortOrder::Unsorted => Self::assemble(block.clone(), None),
            SortOrder::Clustered { column } => {
                let (sorted, _perm) = sort_block(block, column)?;
                let col = sorted.decode_column(column)?;
                let keys: Vec<_> = (0..col.len()).map(|i| col.value(i)).collect();
                let key_type = sorted.schema().field(column)?.data_type;
                let index =
                    ClusteredIndex::build(column, key_type, sorted.partition_size(), &keys)?;
                Self::assemble(sorted, Some(index))
            }
        }
    }

    /// Serializes a (pax, index) pair into the container format.
    pub fn assemble(pax: PaxBlock, index: Option<ClusteredIndex>) -> Result<IndexedBlock> {
        let index_bytes = index
            .as_ref()
            .map(ClusteredIndex::to_bytes)
            .unwrap_or_default();
        let meta = match &index {
            Some(idx) => IndexMetadata {
                kind: IndexKind::Clustered,
                key_column: Some(idx.key_column()),
                index_bytes: index_bytes.len(),
                index_offset: pax.byte_len(),
            },
            None => IndexMetadata::none(),
        };
        let mut buf = Vec::with_capacity(pax.byte_len() + index_bytes.len() + TRAILER_LEN);
        buf.extend_from_slice(pax.bytes());
        buf.extend_from_slice(&index_bytes);
        buf.extend_from_slice(&meta.to_bytes());
        buf.extend_from_slice(&(pax.byte_len() as u32).to_le_bytes());
        buf.extend_from_slice(&(index_bytes.len() as u32).to_le_bytes());
        buf.extend_from_slice(&TRAILER_MAGIC.to_le_bytes());
        Ok(IndexedBlock {
            pax,
            index,
            meta,
            bytes: Bytes::from(buf),
        })
    }

    /// Parses a serialized HAIL block.
    pub fn parse(bytes: Bytes) -> Result<IndexedBlock> {
        if bytes.len() < TRAILER_LEN {
            return Err(HailError::Corrupt(format!(
                "block of {} bytes is smaller than the trailer",
                bytes.len()
            )));
        }
        let t = bytes.len() - TRAILER_LEN;
        let meta = IndexMetadata::from_bytes(&bytes[t..t + 16])?;
        let pax_len = u32::from_le_bytes(bytes[t + 16..t + 20].try_into().unwrap()) as usize;
        let index_len = u32::from_le_bytes(bytes[t + 20..t + 24].try_into().unwrap()) as usize;
        let magic = u32::from_le_bytes(bytes[t + 24..t + 28].try_into().unwrap());
        if magic != TRAILER_MAGIC {
            return Err(HailError::Corrupt(format!(
                "bad trailer magic {magic:#010x}"
            )));
        }
        if pax_len + index_len + TRAILER_LEN != bytes.len() {
            return Err(HailError::Corrupt(format!(
                "trailer lengths ({pax_len} + {index_len}) inconsistent with block of {} bytes",
                bytes.len()
            )));
        }
        let pax = PaxBlock::parse(bytes.slice(0..pax_len))?;
        let index = if meta.kind == IndexKind::Clustered && index_len > 0 {
            Some(ClusteredIndex::from_bytes(
                &bytes[pax_len..pax_len + index_len],
            )?)
        } else {
            None
        };
        Ok(IndexedBlock {
            pax,
            index,
            meta,
            bytes,
        })
    }

    /// The PAX data of this replica.
    pub fn pax(&self) -> &PaxBlock {
        &self.pax
    }

    /// The clustered index, if the replica has one.
    pub fn index(&self) -> Option<&ClusteredIndex> {
        self.index.as_ref()
    }

    /// The replica's index metadata.
    pub fn metadata(&self) -> &IndexMetadata {
        &self.meta
    }

    /// The full serialized file content.
    pub fn bytes(&self) -> &Bytes {
        &self.bytes
    }

    /// Physical file size in bytes.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// The sort order of this replica.
    pub fn sort_order(&self) -> SortOrder {
        self.meta.sort_order()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hail_pax::blocks_from_text;
    use hail_types::{DataType, Field, Schema, StorageConfig, Value};

    fn pax_block() -> PaxBlock {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::VarChar),
        ])
        .unwrap();
        let text = "5|five\n3|three\n9|nine\n1|one\n7|seven\n";
        blocks_from_text(text, &schema, &StorageConfig::test_scale(1 << 20))
            .unwrap()
            .pop()
            .unwrap()
    }

    #[test]
    fn unsorted_replica_round_trip() {
        let b = IndexedBlock::build(&pax_block(), SortOrder::Unsorted).unwrap();
        assert!(b.index().is_none());
        assert_eq!(b.metadata().kind, IndexKind::None);
        let parsed = IndexedBlock::parse(b.bytes().clone()).unwrap();
        assert_eq!(parsed.pax().row_count(), 5);
        // Upload order preserved.
        assert_eq!(parsed.pax().value(0, 0).unwrap(), Value::Int(5));
    }

    #[test]
    fn clustered_replica_sorts_and_indexes() {
        let b = IndexedBlock::build(&pax_block(), SortOrder::Clustered { column: 0 }).unwrap();
        let idx = b.index().expect("index");
        assert_eq!(idx.key_column(), 0);
        assert_eq!(idx.row_count(), 5);
        assert_eq!(b.metadata().kind, IndexKind::Clustered);
        assert_eq!(b.metadata().key_column, Some(0));
        assert_eq!(b.pax().value(0, 0).unwrap(), Value::Int(1));
        assert_eq!(b.pax().value(1, 0).unwrap(), Value::Str("one".into()));
        assert_eq!(b.pax().value(0, 4).unwrap(), Value::Int(9));
    }

    #[test]
    fn parse_round_trip_with_index() {
        let b = IndexedBlock::build(&pax_block(), SortOrder::Clustered { column: 0 }).unwrap();
        let parsed = IndexedBlock::parse(b.bytes().clone()).unwrap();
        assert_eq!(parsed.index().unwrap(), b.index().unwrap());
        assert_eq!(parsed.metadata(), b.metadata());
        assert_eq!(parsed.sort_order(), SortOrder::Clustered { column: 0 });
    }

    #[test]
    fn replicas_differ_physically() {
        let pax = pax_block();
        let r0 = IndexedBlock::build(&pax, SortOrder::Clustered { column: 0 }).unwrap();
        let r1 = IndexedBlock::build(&pax, SortOrder::Clustered { column: 1 }).unwrap();
        let r2 = IndexedBlock::build(&pax, SortOrder::Unsorted).unwrap();
        assert_ne!(r0.bytes(), r1.bytes());
        assert_ne!(r0.bytes(), r2.bytes());
        // ...but all recover the same logical rows (failover property).
        let mut rows0: Vec<String> = (0..5)
            .map(|r| r0.pax().reconstruct_full(r).unwrap().to_string())
            .collect();
        let mut rows1: Vec<String> = (0..5)
            .map(|r| r1.pax().reconstruct_full(r).unwrap().to_string())
            .collect();
        rows0.sort();
        rows1.sort();
        assert_eq!(rows0, rows1);
    }

    #[test]
    fn parse_rejects_corrupt_trailer() {
        let b = IndexedBlock::build(&pax_block(), SortOrder::Unsorted).unwrap();
        let mut raw = b.bytes().to_vec();
        let n = raw.len();
        raw[n - 1] ^= 0xFF; // clobber magic
        assert!(IndexedBlock::parse(Bytes::from(raw)).is_err());
    }

    #[test]
    fn parse_rejects_truncation() {
        let b = IndexedBlock::build(&pax_block(), SortOrder::Clustered { column: 0 }).unwrap();
        let raw = b.bytes().to_vec();
        assert!(IndexedBlock::parse(Bytes::from(raw[..10].to_vec())).is_err());
    }
}
