//! Sort orders: which attribute each replica is clustered on.

use hail_types::{Result, Schema};
use std::fmt;

/// The sort order of one block replica: the 0-based column it is sorted
/// and clustered on, or `None` for an unsorted (HDFS-equivalent) replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SortOrder {
    /// Replica keeps upload order (no index).
    Unsorted,
    /// Replica is sorted ascending on the given 0-based column.
    Clustered { column: usize },
}

impl SortOrder {
    /// The clustered column, if any.
    pub fn column(&self) -> Option<usize> {
        match self {
            SortOrder::Unsorted => None,
            SortOrder::Clustered { column } => Some(*column),
        }
    }

    /// Validates the sort order against a schema.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        if let SortOrder::Clustered { column } = self {
            schema.field(*column)?;
        }
        Ok(())
    }
}

impl fmt::Display for SortOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SortOrder::Unsorted => f.write_str("unsorted"),
            SortOrder::Clustered { column } => write!(f, "clustered(@{})", column + 1),
        }
    }
}

/// The per-replica index configuration for an upload: `orders[i]` is the
/// sort order of replica `i`. Its length must equal the replication
/// factor.
///
/// This is the paper's "configuration file" through which Bob (or a
/// physical-design algorithm, see [`crate::selection`]) tells HAIL which
/// clustered index to create on each replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaIndexConfig {
    orders: Vec<SortOrder>,
}

impl ReplicaIndexConfig {
    pub fn new(orders: Vec<SortOrder>) -> Self {
        ReplicaIndexConfig { orders }
    }

    /// All replicas unsorted (HAIL upload with zero indexes — still PAX,
    /// still binary, but no sorting).
    pub fn unindexed(replication: usize) -> Self {
        ReplicaIndexConfig {
            orders: vec![SortOrder::Unsorted; replication],
        }
    }

    /// Clusters the first `columns.len()` replicas on the given columns,
    /// remaining replicas unsorted. This mirrors the experiments that vary
    /// "number of created indexes" from 0 to the replication factor.
    pub fn first_indexed(replication: usize, columns: &[usize]) -> Self {
        let mut orders = Vec::with_capacity(replication);
        for i in 0..replication {
            orders.push(match columns.get(i) {
                Some(&c) => SortOrder::Clustered { column: c },
                None => SortOrder::Unsorted,
            });
        }
        ReplicaIndexConfig { orders }
    }

    /// The same clustered index on every replica (the paper's HAIL-1Idx
    /// failover variant).
    pub fn uniform(replication: usize, column: usize) -> Self {
        ReplicaIndexConfig {
            orders: vec![SortOrder::Clustered { column }; replication],
        }
    }

    pub fn orders(&self) -> &[SortOrder] {
        &self.orders
    }

    /// Replication factor implied by this configuration.
    pub fn replication(&self) -> usize {
        self.orders.len()
    }

    /// Number of replicas that carry a clustered index.
    pub fn index_count(&self) -> usize {
        self.orders
            .iter()
            .filter(|o| matches!(o, SortOrder::Clustered { .. }))
            .count()
    }

    /// Validates all orders against a schema.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        for o in &self.orders {
            o.validate(schema)?;
        }
        Ok(())
    }

    /// Replica indexes (positions in the chain) clustered on `column`.
    pub fn replicas_with_index(&self, column: usize) -> Vec<usize> {
        self.orders
            .iter()
            .enumerate()
            .filter_map(|(i, o)| (o.column() == Some(column)).then_some(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hail_types::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::VarChar),
        ])
        .unwrap()
    }

    #[test]
    fn unindexed_config() {
        let c = ReplicaIndexConfig::unindexed(3);
        assert_eq!(c.replication(), 3);
        assert_eq!(c.index_count(), 0);
        assert!(c.validate(&schema()).is_ok());
    }

    #[test]
    fn first_indexed_pads_with_unsorted() {
        let c = ReplicaIndexConfig::first_indexed(3, &[1]);
        assert_eq!(c.index_count(), 1);
        assert_eq!(c.orders()[0], SortOrder::Clustered { column: 1 });
        assert_eq!(c.orders()[1], SortOrder::Unsorted);
    }

    #[test]
    fn uniform_config() {
        let c = ReplicaIndexConfig::uniform(3, 0);
        assert_eq!(c.index_count(), 3);
        assert_eq!(c.replicas_with_index(0), vec![0, 1, 2]);
        assert_eq!(c.replicas_with_index(1), Vec::<usize>::new());
    }

    #[test]
    fn validate_rejects_bad_column() {
        let c = ReplicaIndexConfig::uniform(3, 7);
        assert!(c.validate(&schema()).is_err());
    }

    #[test]
    fn display() {
        assert_eq!(
            SortOrder::Clustered { column: 2 }.to_string(),
            "clustered(@3)"
        );
        assert_eq!(SortOrder::Unsorted.to_string(), "unsorted");
    }
}
