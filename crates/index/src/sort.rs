//! Sort orders: which attribute each replica is clustered on.

use hail_types::{Result, Schema};
use std::fmt;

/// The sort order of one block replica: the 0-based column it is sorted
/// and clustered on, or `None` for an unsorted (HDFS-equivalent) replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SortOrder {
    /// Replica keeps upload order (no index).
    Unsorted,
    /// Replica is sorted ascending on the given 0-based column.
    Clustered { column: usize },
}

impl SortOrder {
    /// The clustered column, if any.
    pub fn column(&self) -> Option<usize> {
        match self {
            SortOrder::Unsorted => None,
            SortOrder::Clustered { column } => Some(*column),
        }
    }

    /// Validates the sort order against a schema.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        if let SortOrder::Clustered { column } = self {
            schema.field(*column)?;
        }
        Ok(())
    }
}

impl fmt::Display for SortOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SortOrder::Unsorted => f.write_str("unsorted"),
            SortOrder::Clustered { column } => write!(f, "clustered(@{})", column + 1),
        }
    }
}

/// Which sidecar extension indexes (§3.5) one replica stores next to its
/// PAX data and primary index.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SidecarSpec {
    /// 0-based columns to build a bitmap sidecar over. Columns whose
    /// cardinality exceeds the limit at build time are silently skipped
    /// (the upload must not fail on a mis-guessed domain).
    pub bitmap_columns: Vec<usize>,
    /// Build an inverted list over the block's bad-record section.
    pub inverted_list: bool,
    /// 0-based columns to build a zone-map (min/max) synopsis over, for
    /// block skipping.
    pub zone_map_columns: Vec<usize>,
    /// 0-based columns to build a Bloom-filter synopsis over, for
    /// equality-predicate block skipping.
    pub bloom_columns: Vec<usize>,
}

impl SidecarSpec {
    /// True when no sidecar is requested.
    pub fn is_empty(&self) -> bool {
        self.bitmap_columns.is_empty()
            && !self.inverted_list
            && self.zone_map_columns.is_empty()
            && self.bloom_columns.is_empty()
    }
}

/// The per-replica index configuration for an upload: `orders[i]` is the
/// sort order of replica `i`, and `sidecars[i]` the sidecar extension
/// indexes replica `i` stores. Its length must equal the replication
/// factor.
///
/// This is the paper's "configuration file" through which Bob (or a
/// physical-design algorithm, see [`crate::selection`]) tells HAIL which
/// clustered index to create on each replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaIndexConfig {
    orders: Vec<SortOrder>,
    sidecars: Vec<SidecarSpec>,
}

impl ReplicaIndexConfig {
    pub fn new(orders: Vec<SortOrder>) -> Self {
        let sidecars = vec![SidecarSpec::default(); orders.len()];
        ReplicaIndexConfig { orders, sidecars }
    }

    /// All replicas unsorted (HAIL upload with zero indexes — still PAX,
    /// still binary, but no sorting).
    pub fn unindexed(replication: usize) -> Self {
        Self::new(vec![SortOrder::Unsorted; replication])
    }

    /// Clusters the first `columns.len()` replicas on the given columns,
    /// remaining replicas unsorted. This mirrors the experiments that vary
    /// "number of created indexes" from 0 to the replication factor.
    pub fn first_indexed(replication: usize, columns: &[usize]) -> Self {
        let mut orders = Vec::with_capacity(replication);
        for i in 0..replication {
            orders.push(match columns.get(i) {
                Some(&c) => SortOrder::Clustered { column: c },
                None => SortOrder::Unsorted,
            });
        }
        Self::new(orders)
    }

    /// The same clustered index on every replica (the paper's HAIL-1Idx
    /// failover variant).
    pub fn uniform(replication: usize, column: usize) -> Self {
        Self::new(vec![SortOrder::Clustered { column }; replication])
    }

    /// The sidecar spec at one chain position, with the single bounds
    /// check every `_on` builder routes through — a silently dropped
    /// sidecar would only surface much later as a mysteriously
    /// never-chosen access path.
    fn spec_mut(&mut self, replica: usize) -> &mut SidecarSpec {
        assert!(
            replica < self.sidecars.len(),
            "replica position {replica} out of range for replication {}",
            self.sidecars.len()
        );
        &mut self.sidecars[replica]
    }

    /// Stores a bitmap sidecar over `column` on *every* replica (bitmaps
    /// are sort-order independent, so any replica can serve them).
    pub fn with_bitmap(mut self, column: usize) -> Self {
        for spec in &mut self.sidecars {
            if !spec.bitmap_columns.contains(&column) {
                spec.bitmap_columns.push(column);
            }
        }
        self
    }

    /// Stores a bitmap sidecar over `column` on one replica chain
    /// position only.
    ///
    /// # Panics
    /// If `replica` is not a valid chain position.
    pub fn with_bitmap_on(mut self, replica: usize, column: usize) -> Self {
        let spec = self.spec_mut(replica);
        if !spec.bitmap_columns.contains(&column) {
            spec.bitmap_columns.push(column);
        }
        self
    }

    /// Stores a zone-map synopsis over `column` on *every* replica (like
    /// bitmaps, synopses are sort-order independent).
    pub fn with_zone_map(mut self, column: usize) -> Self {
        for spec in &mut self.sidecars {
            if !spec.zone_map_columns.contains(&column) {
                spec.zone_map_columns.push(column);
            }
        }
        self
    }

    /// Stores a zone-map synopsis over `column` on one replica chain
    /// position only.
    ///
    /// # Panics
    /// If `replica` is not a valid chain position.
    pub fn with_zone_map_on(mut self, replica: usize, column: usize) -> Self {
        let spec = self.spec_mut(replica);
        if !spec.zone_map_columns.contains(&column) {
            spec.zone_map_columns.push(column);
        }
        self
    }

    /// Stores a Bloom-filter synopsis over `column` on *every* replica.
    pub fn with_bloom(mut self, column: usize) -> Self {
        for spec in &mut self.sidecars {
            if !spec.bloom_columns.contains(&column) {
                spec.bloom_columns.push(column);
            }
        }
        self
    }

    /// Stores a Bloom-filter synopsis over `column` on one replica chain
    /// position only.
    ///
    /// # Panics
    /// If `replica` is not a valid chain position.
    pub fn with_bloom_on(mut self, replica: usize, column: usize) -> Self {
        let spec = self.spec_mut(replica);
        if !spec.bloom_columns.contains(&column) {
            spec.bloom_columns.push(column);
        }
        self
    }

    /// Stores both synopsis kinds (zone map + Bloom filter) over
    /// `column` on every replica — the usual block-skipping setup.
    pub fn with_synopses(self, column: usize) -> Self {
        self.with_zone_map(column).with_bloom(column)
    }

    /// Stores an inverted-list sidecar over bad records on every replica.
    pub fn with_inverted_list(mut self) -> Self {
        for spec in &mut self.sidecars {
            spec.inverted_list = true;
        }
        self
    }

    /// Stores an inverted-list sidecar on one replica chain position.
    ///
    /// # Panics
    /// If `replica` is not a valid chain position.
    pub fn with_inverted_list_on(mut self, replica: usize) -> Self {
        self.spec_mut(replica).inverted_list = true;
        self
    }

    pub fn orders(&self) -> &[SortOrder] {
        &self.orders
    }

    /// Sidecar specs per replica chain position (same length as
    /// [`ReplicaIndexConfig::orders`]).
    pub fn sidecars(&self) -> &[SidecarSpec] {
        &self.sidecars
    }

    /// The sidecar spec for one replica chain position.
    pub fn sidecar(&self, replica: usize) -> &SidecarSpec {
        &self.sidecars[replica]
    }

    /// Replication factor implied by this configuration.
    pub fn replication(&self) -> usize {
        self.orders.len()
    }

    /// Number of replicas that carry a clustered index.
    pub fn index_count(&self) -> usize {
        self.orders
            .iter()
            .filter(|o| matches!(o, SortOrder::Clustered { .. }))
            .count()
    }

    /// Validates all orders and sidecar columns against a schema.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        for o in &self.orders {
            o.validate(schema)?;
        }
        for spec in &self.sidecars {
            for &c in spec
                .bitmap_columns
                .iter()
                .chain(&spec.zone_map_columns)
                .chain(&spec.bloom_columns)
            {
                schema.field(c)?;
            }
        }
        Ok(())
    }

    /// Replica indexes (positions in the chain) clustered on `column`.
    pub fn replicas_with_index(&self, column: usize) -> Vec<usize> {
        self.orders
            .iter()
            .enumerate()
            .filter_map(|(i, o)| (o.column() == Some(column)).then_some(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hail_types::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::VarChar),
        ])
        .unwrap()
    }

    #[test]
    fn unindexed_config() {
        let c = ReplicaIndexConfig::unindexed(3);
        assert_eq!(c.replication(), 3);
        assert_eq!(c.index_count(), 0);
        assert!(c.validate(&schema()).is_ok());
    }

    #[test]
    fn first_indexed_pads_with_unsorted() {
        let c = ReplicaIndexConfig::first_indexed(3, &[1]);
        assert_eq!(c.index_count(), 1);
        assert_eq!(c.orders()[0], SortOrder::Clustered { column: 1 });
        assert_eq!(c.orders()[1], SortOrder::Unsorted);
    }

    #[test]
    fn uniform_config() {
        let c = ReplicaIndexConfig::uniform(3, 0);
        assert_eq!(c.index_count(), 3);
        assert_eq!(c.replicas_with_index(0), vec![0, 1, 2]);
        assert_eq!(c.replicas_with_index(1), Vec::<usize>::new());
    }

    #[test]
    fn validate_rejects_bad_column() {
        let c = ReplicaIndexConfig::uniform(3, 7);
        assert!(c.validate(&schema()).is_err());
    }

    #[test]
    fn sidecar_knobs() {
        let c = ReplicaIndexConfig::first_indexed(3, &[0])
            .with_bitmap(1)
            .with_inverted_list();
        assert!(c.sidecars().iter().all(|s| s.bitmap_columns == [1]));
        assert!(c.sidecars().iter().all(|s| s.inverted_list));
        assert!(c.validate(&schema()).is_ok());

        let c = ReplicaIndexConfig::unindexed(3)
            .with_bitmap_on(0, 1)
            .with_inverted_list_on(2);
        assert_eq!(c.sidecar(0).bitmap_columns, [1]);
        assert!(c.sidecar(1).is_empty());
        assert!(c.sidecar(2).inverted_list);
        assert!(c.sidecar(2).bitmap_columns.is_empty());

        // Duplicate with_bitmap calls don't duplicate the column.
        let c = ReplicaIndexConfig::unindexed(2)
            .with_bitmap(0)
            .with_bitmap(0);
        assert_eq!(c.sidecar(0).bitmap_columns, [0]);
    }

    #[test]
    fn sidecar_validate_rejects_bad_column() {
        let c = ReplicaIndexConfig::unindexed(3).with_bitmap(9);
        assert!(c.validate(&schema()).is_err());
        let c = ReplicaIndexConfig::unindexed(3).with_zone_map(9);
        assert!(c.validate(&schema()).is_err());
        let c = ReplicaIndexConfig::unindexed(3).with_bloom(9);
        assert!(c.validate(&schema()).is_err());
    }

    #[test]
    fn synopsis_knobs() {
        let c = ReplicaIndexConfig::first_indexed(3, &[0]).with_synopses(1);
        assert!(c.sidecars().iter().all(|s| s.zone_map_columns == [1]));
        assert!(c.sidecars().iter().all(|s| s.bloom_columns == [1]));
        assert!(c.validate(&schema()).is_ok());

        let c = ReplicaIndexConfig::unindexed(3)
            .with_zone_map_on(1, 0)
            .with_bloom_on(2, 1);
        assert!(c.sidecar(0).is_empty());
        assert_eq!(c.sidecar(1).zone_map_columns, [0]);
        assert!(c.sidecar(1).bloom_columns.is_empty());
        assert_eq!(c.sidecar(2).bloom_columns, [1]);

        // Duplicate calls don't duplicate the column.
        let c = ReplicaIndexConfig::unindexed(2)
            .with_zone_map(0)
            .with_zone_map(0)
            .with_bloom(1)
            .with_bloom(1);
        assert_eq!(c.sidecar(0).zone_map_columns, [0]);
        assert_eq!(c.sidecar(0).bloom_columns, [1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn with_zone_map_on_rejects_bad_position() {
        let _ = ReplicaIndexConfig::unindexed(3).with_zone_map_on(4, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn with_bitmap_on_rejects_bad_position() {
        let _ = ReplicaIndexConfig::unindexed(3).with_bitmap_on(3, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn with_inverted_list_on_rejects_bad_position() {
        let _ = ReplicaIndexConfig::unindexed(3).with_inverted_list_on(5);
    }

    #[test]
    fn display() {
        assert_eq!(
            SortOrder::Clustered { column: 2 }.to_string(),
            "clustered(@3)"
        );
        assert_eq!(SortOrder::Unsorted.to_string(), "unsorted");
    }
}
