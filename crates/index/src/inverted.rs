//! Inverted list over bad records — the paper's second extension
//! direction (§3.5: "… or inverted lists for untyped or bad records,
//! i.e. records not obeying a specific schema").
//!
//! Bad records have no schema, so positional indexes cannot serve them;
//! a token-level inverted list lets jobs search the bad-record section
//! (e.g. for an error signature) without scanning it.

use hail_types::bytes_util::{put_str, put_u32, ByteReader};
use hail_types::Result;
use std::collections::BTreeMap;

/// An inverted list: lower-cased token → ids of the bad records that
/// contain it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct InvertedList {
    postings: BTreeMap<String, Vec<u32>>,
    record_count: u32,
}

/// Splits a raw line into index tokens: maximal runs of alphanumerics,
/// lower-cased. Mirrors the usual full-text tokenizer shape without
/// stemming.
pub fn tokenize(line: &str) -> impl Iterator<Item = String> + '_ {
    line.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_lowercase)
}

impl InvertedList {
    /// Builds the list over a block's bad records.
    pub fn build(bad_records: &[String]) -> InvertedList {
        let mut postings: BTreeMap<String, Vec<u32>> = BTreeMap::new();
        for (id, line) in bad_records.iter().enumerate() {
            for token in tokenize(line) {
                let list = postings.entry(token).or_default();
                if list.last() != Some(&(id as u32)) {
                    list.push(id as u32);
                }
            }
        }
        InvertedList {
            postings,
            record_count: bad_records.len() as u32,
        }
    }

    /// Number of indexed bad records.
    pub fn record_count(&self) -> usize {
        self.record_count as usize
    }

    /// Number of distinct tokens.
    pub fn token_count(&self) -> usize {
        self.postings.len()
    }

    /// Record ids containing `token` (case-insensitive).
    pub fn search(&self, token: &str) -> &[u32] {
        self.postings
            .get(&token.to_lowercase())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Record ids containing *all* the tokens (posting-list
    /// intersection).
    ///
    /// An empty token slice is the empty conjunction, which is
    /// vacuously true: it matches **every** indexed bad record, the
    /// same records a token-free scan of the bad-record section would
    /// return.
    pub fn search_all(&self, tokens: &[&str]) -> Vec<u32> {
        let mut lists: Vec<&[u32]> = tokens.iter().map(|t| self.search(t)).collect();
        lists.sort_by_key(|l| l.len());
        let Some((first, rest)) = lists.split_first() else {
            return (0..self.record_count).collect();
        };
        first
            .iter()
            .copied()
            .filter(|id| rest.iter().all(|l| l.binary_search(id).is_ok()))
            .collect()
    }

    /// Serializes the list.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u32(&mut buf, self.record_count);
        put_u32(&mut buf, self.postings.len() as u32);
        for (token, ids) in &self.postings {
            put_str(&mut buf, token).expect("token too long");
            put_u32(&mut buf, ids.len() as u32);
            for id in ids {
                put_u32(&mut buf, *id);
            }
        }
        buf
    }

    /// Parses a serialized list.
    pub fn from_bytes(bytes: &[u8]) -> Result<InvertedList> {
        let mut r = ByteReader::new(bytes);
        let record_count = r.u32()?;
        let n = r.u32()? as usize;
        let mut postings = BTreeMap::new();
        for _ in 0..n {
            let token = r.str()?;
            let len = r.u32()? as usize;
            let mut ids = Vec::with_capacity(len);
            for _ in 0..len {
                ids.push(r.u32()?);
            }
            postings.insert(token, ids);
        }
        Ok(InvertedList {
            postings,
            record_count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InvertedList {
        InvertedList::build(&[
            "ERROR timeout connecting to 10.0.0.1".to_string(),
            "garbage ###GARBAGE### line".to_string(),
            "ERROR parse failure at column 7".to_string(),
            "truncated|row|without|enough".to_string(),
        ])
    }

    #[test]
    fn single_token_search() {
        let idx = sample();
        assert_eq!(idx.search("error"), &[0, 2]);
        assert_eq!(idx.search("ERROR"), &[0, 2], "case-insensitive");
        assert_eq!(idx.search("garbage"), &[1]);
        assert!(idx.search("absent").is_empty());
    }

    #[test]
    fn conjunctive_search() {
        let idx = sample();
        assert_eq!(idx.search_all(&["error", "timeout"]), vec![0]);
        assert_eq!(idx.search_all(&["error", "parse"]), vec![2]);
        assert!(idx.search_all(&["error", "garbage"]).is_empty());
    }

    #[test]
    fn empty_conjunction_matches_every_record() {
        // No tokens = no constraints: all four bad records qualify,
        // mirroring what a full scan of the bad-record section returns.
        let idx = sample();
        assert_eq!(idx.search_all(&[]), vec![0, 1, 2, 3]);
        // ...and an empty index still yields nothing.
        assert!(InvertedList::build(&[]).search_all(&[]).is_empty());
    }

    #[test]
    fn tokenizer_splits_on_non_alnum() {
        let tokens: Vec<String> = tokenize("a|b,c d###e10").collect();
        assert_eq!(tokens, vec!["a", "b", "c", "d", "e10"]);
    }

    #[test]
    fn duplicate_tokens_in_one_record_dedup() {
        let idx = InvertedList::build(&["err err err".to_string()]);
        assert_eq!(idx.search("err"), &[0]);
    }

    #[test]
    fn round_trip() {
        let idx = sample();
        let back = InvertedList::from_bytes(&idx.to_bytes()).unwrap();
        assert_eq!(back, idx);
        assert_eq!(back.record_count(), 4);
        assert!(back.token_count() > 8);
    }

    #[test]
    fn empty_list() {
        let idx = InvertedList::build(&[]);
        assert_eq!(idx.record_count(), 0);
        assert!(idx.search("x").is_empty());
        let back = InvertedList::from_bytes(&idx.to_bytes()).unwrap();
        assert_eq!(back, idx);
    }
}
