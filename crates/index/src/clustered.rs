//! The HAIL sparse clustered index (§3.5, Fig. 2).
//!
//! After a block is sorted on the key attribute, the index is a *single
//! large root directory*: one entry per partition of 1,024 values, holding
//! the first key of that partition. All leaves (the partitions of the
//! sorted data column) are contiguous on disk, so all but the first child
//! pointer are implicit — partition `p` starts at `p × partition_bytes`.
//!
//! A range query resolves the first and the last qualifying partition
//! entirely in main memory (steps 1 and 2 in Fig. 2), then reads only
//! those partitions and post-filters — never the full range.
//!
//! The structure resembles a CSB+-tree but is deliberately single-level:
//! for block sizes below ~5 GB a second level would cost an extra disk
//! seek and never pays off (§3.5 "Why not a multi-level tree?").

use hail_types::bytes_util::{put_str, put_u32, ByteReader};
use hail_types::{DataType, HailError, Result, Value};
use std::ops::Bound;

/// Bounds on the clustered key, as extracted from a query predicate.
///
/// `lo`/`hi` use [`std::ops::Bound`]; a full scan corresponds to
/// `(Unbounded, Unbounded)`.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyBounds {
    pub lo: Bound<Value>,
    pub hi: Bound<Value>,
}

impl KeyBounds {
    /// An exact-match bound (`key = v`).
    pub fn point(v: Value) -> Self {
        KeyBounds {
            lo: Bound::Included(v.clone()),
            hi: Bound::Included(v),
        }
    }

    /// An inclusive range bound (`lo ≤ key ≤ hi`), the paper's
    /// `between(x, y)`.
    pub fn between(lo: Value, hi: Value) -> Self {
        KeyBounds {
            lo: Bound::Included(lo),
            hi: Bound::Included(hi),
        }
    }

    /// `key ≥ v`.
    pub fn at_least(v: Value) -> Self {
        KeyBounds {
            lo: Bound::Included(v),
            hi: Bound::Unbounded,
        }
    }

    /// `key ≤ v`.
    pub fn at_most(v: Value) -> Self {
        KeyBounds {
            lo: Bound::Unbounded,
            hi: Bound::Included(v),
        }
    }

    /// Intersects two bounds: the tightest range satisfying both.
    pub fn intersect(&self, other: &KeyBounds) -> KeyBounds {
        fn tighter_lo(a: &Bound<Value>, b: &Bound<Value>) -> Bound<Value> {
            match (a, b) {
                (Bound::Unbounded, x) | (x, Bound::Unbounded) => x.clone(),
                (Bound::Included(x), Bound::Included(y)) => Bound::Included(x.max(y).clone()),
                (Bound::Excluded(x), Bound::Excluded(y)) => Bound::Excluded(x.max(y).clone()),
                (Bound::Included(i), Bound::Excluded(e))
                | (Bound::Excluded(e), Bound::Included(i)) => {
                    if e >= i {
                        Bound::Excluded(e.clone())
                    } else {
                        Bound::Included(i.clone())
                    }
                }
            }
        }
        fn tighter_hi(a: &Bound<Value>, b: &Bound<Value>) -> Bound<Value> {
            match (a, b) {
                (Bound::Unbounded, x) | (x, Bound::Unbounded) => x.clone(),
                (Bound::Included(x), Bound::Included(y)) => Bound::Included(x.min(y).clone()),
                (Bound::Excluded(x), Bound::Excluded(y)) => Bound::Excluded(x.min(y).clone()),
                (Bound::Included(i), Bound::Excluded(e))
                | (Bound::Excluded(e), Bound::Included(i)) => {
                    if e <= i {
                        Bound::Excluded(e.clone())
                    } else {
                        Bound::Included(i.clone())
                    }
                }
            }
        }
        KeyBounds {
            lo: tighter_lo(&self.lo, &other.lo),
            hi: tighter_hi(&self.hi, &other.hi),
        }
    }

    /// True if a key value satisfies the bounds.
    pub fn contains(&self, v: &Value) -> bool {
        let lo_ok = match &self.lo {
            Bound::Unbounded => true,
            Bound::Included(b) => v >= b,
            Bound::Excluded(b) => v > b,
        };
        let hi_ok = match &self.hi {
            Bound::Unbounded => true,
            Bound::Included(b) => v <= b,
            Bound::Excluded(b) => v < b,
        };
        lo_ok && hi_ok
    }
}

/// The sparse clustered index over one sorted block replica.
///
/// `keys[p]` is the first key value of partition `p`. With the paper's
/// parameters (64 MB block, 4-byte keys, 1,024-value partitions) the whole
/// structure is ≈2 KB — small enough that the record reader reads it
/// entirely into memory before a lookup.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteredIndex {
    /// 0-based column the data is sorted and clustered on.
    key_column: usize,
    key_type: DataType,
    /// Values per partition (1,024 in the paper).
    partition_size: usize,
    /// Total number of indexed rows.
    row_count: usize,
    /// First key of each partition, ascending.
    keys: Vec<Value>,
}

impl ClusteredIndex {
    /// Builds the index from a *sorted* key column.
    ///
    /// `sorted_keys` must be the block's key column after the sort step;
    /// this is checked in debug builds.
    pub fn build(
        key_column: usize,
        key_type: DataType,
        partition_size: usize,
        sorted_keys: &[Value],
    ) -> Result<Self> {
        if partition_size == 0 {
            return Err(HailError::Schema("partition size must be positive".into()));
        }
        debug_assert!(
            sorted_keys.windows(2).all(|w| w[0] <= w[1]),
            "clustered index requires sorted keys"
        );
        let keys = sorted_keys
            .iter()
            .step_by(partition_size)
            .cloned()
            .collect();
        Ok(ClusteredIndex {
            key_column,
            key_type,
            partition_size,
            row_count: sorted_keys.len(),
            keys,
        })
    }

    /// The 0-based key column.
    pub fn key_column(&self) -> usize {
        self.key_column
    }

    /// The key's data type.
    pub fn key_type(&self) -> DataType {
        self.key_type
    }

    /// Number of partitions (index entries).
    pub fn partition_count(&self) -> usize {
        self.keys.len()
    }

    /// Values per partition.
    pub fn partition_size(&self) -> usize {
        self.partition_size
    }

    /// Number of indexed rows.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Resolves the partitions that may contain keys within `bounds`,
    /// returning an inclusive partition range, or `None` when no
    /// partition can qualify. Pure main-memory binary search.
    pub fn lookup(&self, bounds: &KeyBounds) -> Option<(usize, usize)> {
        if self.keys.is_empty() {
            return None;
        }
        let n = self.keys.len();
        // First partition that may hold a qualifying key. Partition `p`
        // has no key ≥ lo exactly when the *next* partition's first key is
        // still below lo (duplicate first keys across partitions make the
        // naive "last partition starting ≤ lo" wrong).
        let first = match &bounds.lo {
            Bound::Unbounded => 0,
            Bound::Included(lo) => self.keys[1..].partition_point(|k| k < lo),
            Bound::Excluded(lo) => self.keys[1..].partition_point(|k| k <= lo),
        };
        // Last partition: the last one whose first key ≤ hi (inclusive) or
        // < hi (exclusive) — later partitions start beyond the bound.
        let last = match &bounds.hi {
            Bound::Unbounded => n - 1,
            Bound::Included(hi) => {
                let p = self.keys.partition_point(|k| k <= hi);
                if p == 0 {
                    return None; // even partition 0 starts beyond hi
                }
                p - 1
            }
            Bound::Excluded(hi) => {
                let p = self.keys.partition_point(|k| k < hi);
                if p == 0 {
                    return None;
                }
                p - 1
            }
        };
        (first <= last).then_some((first, last))
    }

    /// Inclusive row range covered by a partition range.
    pub fn partition_rows(&self, first: usize, last: usize) -> std::ops::Range<usize> {
        let start = first * self.partition_size;
        let end = ((last + 1) * self.partition_size).min(self.row_count);
        start..end
    }

    /// Serializes the index to its on-disk form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.push(self.key_type.tag());
        put_u32(&mut buf, self.key_column as u32);
        put_u32(&mut buf, self.partition_size as u32);
        put_u32(&mut buf, self.row_count as u32);
        put_u32(&mut buf, self.keys.len() as u32);
        for k in &self.keys {
            match k {
                Value::Int(v) | Value::Date(v) => buf.extend_from_slice(&v.to_le_bytes()),
                Value::Long(v) => buf.extend_from_slice(&v.to_le_bytes()),
                Value::Float(v) => buf.extend_from_slice(&v.to_bits().to_le_bytes()),
                Value::Str(s) => {
                    // Index keys come from parsed values, which never
                    // exceed u16::MAX bytes in practice; truncating an
                    // oversized sparse key is safe (it only loosens the
                    // partition bound) but should never happen.
                    put_str(&mut buf, s).expect("index key too long");
                }
            }
        }
        buf
    }

    /// Parses an index serialized by [`ClusteredIndex::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let key_type = DataType::from_tag(r.u8()?)?;
        let key_column = r.u32()? as usize;
        let partition_size = r.u32()? as usize;
        if partition_size == 0 {
            return Err(HailError::Corrupt("zero partition size in index".into()));
        }
        let row_count = r.u32()? as usize;
        let n_keys = r.u32()? as usize;
        if n_keys != row_count.div_ceil(partition_size) {
            return Err(HailError::Corrupt(format!(
                "index key count {n_keys} inconsistent with {row_count} rows / {partition_size}"
            )));
        }
        let mut keys = Vec::with_capacity(n_keys);
        for _ in 0..n_keys {
            keys.push(match key_type {
                DataType::Int => Value::Int(r.i32()?),
                DataType::Date => Value::Date(r.i32()?),
                DataType::Long => Value::Long(r.i64()?),
                DataType::Float => Value::Float(r.f64()?),
                DataType::VarChar => Value::Str(r.str()?),
            });
        }
        Ok(ClusteredIndex {
            key_column,
            key_type,
            partition_size,
            row_count,
            keys,
        })
    }

    /// Serialized size in bytes — the "index read" cost of a lookup.
    pub fn byte_len(&self) -> usize {
        self.to_bytes().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_over(values: &[i32], partition_size: usize) -> ClusteredIndex {
        let keys: Vec<Value> = values.iter().map(|&v| Value::Int(v)).collect();
        ClusteredIndex::build(0, DataType::Int, partition_size, &keys).unwrap()
    }

    #[test]
    fn figure2_example() {
        // Recreate Fig. 2: partitions of 1024 with first keys
        // 42, 1077, 3033, 7080, 9073.
        let firsts = [42, 1077, 3033, 7080, 9073];
        let mut values = Vec::new();
        for (p, &f) in firsts.iter().enumerate() {
            let next = firsts.get(p + 1).copied().unwrap_or(f + 2000);
            for i in 0..1024 {
                // Spread values between this first key and the next.
                values.push(f + ((next - f - 1) as i64 * i as i64 / 1024) as i32);
            }
        }
        let idx = index_over(&values, 1024);
        assert_eq!(idx.partition_count(), 5);
        // Query 1248 < @0 < 2496 (Fig. 2): must touch partitions 1..=1
        // ... first key 1077 ≤ 1248 so partition 1 is the start; 2496 <
        // 3033 so partition 1 is also the end.
        let bounds = KeyBounds {
            lo: Bound::Excluded(Value::Int(1248)),
            hi: Bound::Excluded(Value::Int(2496)),
        };
        assert_eq!(idx.lookup(&bounds), Some((1, 1)));
    }

    #[test]
    fn point_lookup() {
        let values: Vec<i32> = (0..100).map(|i| i * 2).collect(); // 0,2,..198
        let idx = index_over(&values, 10);
        assert_eq!(idx.partition_count(), 10);
        // Key 42 lives in partition 2 (values 40..58).
        assert_eq!(idx.lookup(&KeyBounds::point(Value::Int(42))), Some((2, 2)));
        // Key below all data → partition 0 still must be checked (first
        // key is 0 ≤ -5 is false → p==0 → None).
        assert_eq!(idx.lookup(&KeyBounds::point(Value::Int(-5))), None);
        // Key above all data → last partition checked.
        assert_eq!(idx.lookup(&KeyBounds::point(Value::Int(500))), Some((9, 9)));
    }

    #[test]
    fn range_lookup_spans_partitions() {
        let values: Vec<i32> = (0..100).collect();
        let idx = index_over(&values, 10);
        let b = KeyBounds::between(Value::Int(15), Value::Int(34));
        assert_eq!(idx.lookup(&b), Some((1, 3)));
        assert_eq!(idx.partition_rows(1, 3), 10..40);
    }

    #[test]
    fn unbounded_lookups() {
        let values: Vec<i32> = (0..25).collect();
        let idx = index_over(&values, 10);
        assert_eq!(idx.partition_count(), 3);
        assert_eq!(
            idx.lookup(&KeyBounds::at_least(Value::Int(12))),
            Some((1, 2))
        );
        assert_eq!(idx.lookup(&KeyBounds::at_most(Value::Int(5))), Some((0, 0)));
        let full = KeyBounds {
            lo: Bound::Unbounded,
            hi: Bound::Unbounded,
        };
        assert_eq!(idx.lookup(&full), Some((0, 2)));
        // Last partial partition rows.
        assert_eq!(idx.partition_rows(2, 2), 20..25);
    }

    #[test]
    fn empty_index() {
        let idx = index_over(&[], 10);
        assert_eq!(idx.partition_count(), 0);
        assert_eq!(idx.lookup(&KeyBounds::point(Value::Int(1))), None);
    }

    #[test]
    fn duplicates_across_partition_boundary() {
        // 25 copies of the same key with partition size 10: all three
        // partitions may contain it.
        let values = vec![7i32; 25];
        let idx = index_over(&values, 10);
        assert_eq!(
            idx.lookup(&KeyBounds::point(Value::Int(7))),
            Some((0, 2)),
            "all partitions share first key 7"
        );
    }

    #[test]
    fn serialization_round_trip_int() {
        let values: Vec<i32> = (0..100).map(|i| i * 3).collect();
        let idx = index_over(&values, 16);
        let bytes = idx.to_bytes();
        let back = ClusteredIndex::from_bytes(&bytes).unwrap();
        assert_eq!(back, idx);
        assert_eq!(idx.byte_len(), bytes.len());
    }

    #[test]
    fn serialization_round_trip_varchar() {
        let keys: Vec<Value> = ["alpha", "beta", "gamma", "zeta"]
            .iter()
            .map(|s| Value::Str(s.to_string()))
            .collect();
        let idx = ClusteredIndex::build(2, DataType::VarChar, 2, &keys).unwrap();
        let back = ClusteredIndex::from_bytes(&idx.to_bytes()).unwrap();
        assert_eq!(back, idx);
        assert_eq!(
            back.lookup(&KeyBounds::point(Value::Str("beta".into()))),
            Some((0, 0))
        );
    }

    #[test]
    fn from_bytes_rejects_inconsistent_counts() {
        let values: Vec<i32> = (0..30).collect();
        let idx = index_over(&values, 10);
        let mut bytes = idx.to_bytes();
        // Corrupt the row count field (offset 1+4+4 = 9).
        bytes[9] ^= 0xFF;
        assert!(ClusteredIndex::from_bytes(&bytes).is_err());
    }

    #[test]
    fn index_is_small() {
        // 1M rows, 4-byte keys, 1024-partition → ~1000 entries ≈ 4 KB +
        // header: the paper's "typically a few KB".
        let values: Vec<i32> = (0..1_000_000).collect();
        let idx = index_over(&values, 1024);
        assert!(
            idx.byte_len() < 8 * 1024,
            "index is {} bytes",
            idx.byte_len()
        );
    }

    #[test]
    fn bounds_contains() {
        let b = KeyBounds::between(Value::Int(1), Value::Int(10));
        assert!(b.contains(&Value::Int(1)));
        assert!(b.contains(&Value::Int(10)));
        assert!(!b.contains(&Value::Int(0)));
        assert!(!b.contains(&Value::Int(11)));
        let e = KeyBounds {
            lo: Bound::Excluded(Value::Int(1)),
            hi: Bound::Excluded(Value::Int(10)),
        };
        assert!(!e.contains(&Value::Int(1)));
        assert!(e.contains(&Value::Int(2)));
        assert!(!e.contains(&Value::Int(10)));
    }
}
