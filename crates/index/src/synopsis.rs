//! Per-block, per-column synopses for block skipping: **zone maps**
//! (min/max) and **Bloom filters**.
//!
//! These are the third persisted sidecar kind (after bitmaps and
//! inverted lists): tiny summaries built once at upload and consulted
//! by the execution layer *before* candidate enumeration, so a block
//! that provably contains no match is never priced and never read —
//! the "decouple the skip decision from the read path" idea from
//! provenance-based data skipping, grafted onto HAIL's per-replica
//! sidecar machinery.
//!
//! Pruning is strictly conservative. Both synopses persist the block's
//! bad-record count alongside the summarized rows: every access path
//! emits bad records unconditionally, so a block with *any* bad
//! records can never be skipped — its synopsis says so and the prune
//! pass backs off. Likewise a missing or unparsable synopsis means "no
//! prune", never "no match".

use crate::clustered::KeyBounds;
use hail_types::bytes_util::{put_f64, put_i32, put_i64, put_str, put_u32, ByteReader};
use hail_types::{HailError, Result, Value};
use std::ops::Bound;

/// Bloom hash count: a fixed `k` keeps the encoding self-describing
/// without tuning knobs; 7 hashes suit ~10 bits/row (false-positive
/// rate under 1%).
const BLOOM_HASHES: u32 = 7;

/// Target Bloom density in bits per summarized row.
const BLOOM_BITS_PER_ROW: usize = 10;

/// Floor on the Bloom bit-array size, so tiny blocks still get a
/// filter with a meaningful false-positive rate.
const BLOOM_MIN_BITS: usize = 64;

/// Serializes one [`Value`] with a leading type tag, the synopsis
/// codec's only polymorphic field.
fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(x) => {
            buf.push(0);
            put_i32(buf, *x);
        }
        Value::Long(x) => {
            buf.push(1);
            put_i64(buf, *x);
        }
        Value::Float(x) => {
            buf.push(2);
            put_f64(buf, *x);
        }
        Value::Date(x) => {
            buf.push(3);
            put_i32(buf, *x);
        }
        Value::Str(s) => {
            buf.push(4);
            put_str(buf, s).expect("synopsis string value too long");
        }
    }
}

/// Parses one tagged [`Value`] written by [`put_value`].
fn read_value(r: &mut ByteReader<'_>) -> Result<Value> {
    match r.u8()? {
        0 => Ok(Value::Int(r.i32()?)),
        1 => Ok(Value::Long(r.i64()?)),
        2 => Ok(Value::Float(r.f64()?)),
        3 => Ok(Value::Date(r.i32()?)),
        4 => Ok(Value::Str(r.str()?)),
        t => Err(HailError::Corrupt(format!("bad synopsis value tag {t}"))),
    }
}

/// A zone map over one column of one block: the column's min and max,
/// plus the row and bad-record counts the prune pass needs to skip
/// soundly.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneMapSynopsis {
    column: usize,
    /// `None` iff the block has zero (parsed) rows.
    bounds: Option<(Value, Value)>,
    row_count: usize,
    /// Bad records in the block. Access paths emit bad records
    /// unconditionally, so a nonzero count forbids pruning.
    bad_records: usize,
}

impl ZoneMapSynopsis {
    /// Builds the zone map from a column's (parsed) values.
    pub fn build(column: usize, values: &[Value], bad_records: usize) -> ZoneMapSynopsis {
        let bounds = match (values.iter().min(), values.iter().max()) {
            (Some(lo), Some(hi)) => Some((lo.clone(), hi.clone())),
            _ => None,
        };
        ZoneMapSynopsis {
            column,
            bounds,
            row_count: values.len(),
            bad_records,
        }
    }

    /// The summarized 0-based column.
    pub fn column(&self) -> usize {
        self.column
    }

    /// Number of summarized rows.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Bad records in the summarized block.
    pub fn bad_records(&self) -> usize {
        self.bad_records
    }

    /// The column's `(min, max)`, or `None` for an empty block.
    pub fn bounds(&self) -> Option<(&Value, &Value)> {
        self.bounds.as_ref().map(|(lo, hi)| (lo, hi))
    }

    /// Whether any summarized value *may* satisfy `bounds` — `false`
    /// means the block provably contains no matching row (on this
    /// column). An empty block overlaps nothing.
    pub fn overlaps(&self, bounds: &KeyBounds) -> bool {
        let Some((min, max)) = &self.bounds else {
            return false;
        };
        let above_lo = match &bounds.lo {
            Bound::Unbounded => true,
            Bound::Included(l) => l <= max,
            Bound::Excluded(l) => l < max,
        };
        let below_hi = match &bounds.hi {
            Bound::Unbounded => true,
            Bound::Included(h) => h >= min,
            Bound::Excluded(h) => h > min,
        };
        above_lo && below_hi
    }

    /// Serialized size in bytes.
    pub fn byte_len(&self) -> usize {
        self.to_bytes().len()
    }

    /// Serializes the zone map.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u32(&mut buf, self.column as u32);
        put_u32(&mut buf, self.row_count as u32);
        put_u32(&mut buf, self.bad_records as u32);
        match &self.bounds {
            None => buf.push(0),
            Some((lo, hi)) => {
                buf.push(1);
                put_value(&mut buf, lo);
                put_value(&mut buf, hi);
            }
        }
        buf
    }

    /// Parses a serialized zone map.
    pub fn from_bytes(bytes: &[u8]) -> Result<ZoneMapSynopsis> {
        let mut r = ByteReader::new(bytes);
        let column = r.u32()? as usize;
        let row_count = r.u32()? as usize;
        let bad_records = r.u32()? as usize;
        let bounds = match r.u8()? {
            0 => None,
            1 => {
                let lo = read_value(&mut r)?;
                let hi = read_value(&mut r)?;
                Some((lo, hi))
            }
            t => {
                return Err(HailError::Corrupt(format!(
                    "bad zone-map bounds marker {t}"
                )))
            }
        };
        Ok(ZoneMapSynopsis {
            column,
            bounds,
            row_count,
            bad_records,
        })
    }
}

/// FNV-1a over `bytes` — the same deterministic, dependency-free hash
/// the plan cache uses for fingerprints.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A Bloom filter over one column of one block, for equality and token
/// predicates. Values are hashed by their display string (the same
/// string-keyed determinism the bitmap index relies on), with double
/// hashing `g_i = h1 + i·h2` deriving `BLOOM_HASHES` probes from two
/// base hashes.
#[derive(Debug, Clone, PartialEq)]
pub struct BloomSynopsis {
    column: usize,
    bits: Vec<u64>,
    row_count: usize,
    /// Bad records in the block; nonzero forbids pruning.
    bad_records: usize,
}

impl BloomSynopsis {
    /// Builds the filter from a column's (parsed) values, sized at
    /// ~`BLOOM_BITS_PER_ROW` bits per row.
    pub fn build(column: usize, values: &[Value], bad_records: usize) -> BloomSynopsis {
        let bits = (values.len() * BLOOM_BITS_PER_ROW).max(BLOOM_MIN_BITS);
        let words = bits.div_ceil(64);
        let mut filter = BloomSynopsis {
            column,
            bits: vec![0u64; words],
            row_count: values.len(),
            bad_records,
        };
        for v in values {
            filter.insert(v);
        }
        filter
    }

    fn probes(&self, v: &Value) -> impl Iterator<Item = usize> + '_ {
        let bytes = v.to_string().into_bytes();
        let h1 = fnv1a(&bytes);
        // A second independent base hash: re-fold the first through
        // FNV-1a and force it odd so every probe stride visits all
        // word offsets.
        let h2 = fnv1a(&h1.to_le_bytes()) | 1;
        let m = (self.bits.len() * 64) as u64;
        (0..BLOOM_HASHES as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % m) as usize)
    }

    fn insert(&mut self, v: &Value) {
        let positions: Vec<usize> = self.probes(v).collect();
        for bit in positions {
            self.bits[bit / 64] |= 1 << (bit % 64);
        }
    }

    /// The summarized 0-based column.
    pub fn column(&self) -> usize {
        self.column
    }

    /// Number of summarized rows.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Bad records in the summarized block.
    pub fn bad_records(&self) -> usize {
        self.bad_records
    }

    /// Whether `v` *may* be in the summarized column — `false` means it
    /// is provably absent. An empty block contains nothing.
    pub fn might_contain(&self, v: &Value) -> bool {
        if self.row_count == 0 {
            return false;
        }
        self.probes(v)
            .all(|bit| self.bits[bit / 64] & (1 << (bit % 64)) != 0)
    }

    /// Serialized size in bytes.
    pub fn byte_len(&self) -> usize {
        self.to_bytes().len()
    }

    /// Serializes the filter.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u32(&mut buf, self.column as u32);
        put_u32(&mut buf, self.row_count as u32);
        put_u32(&mut buf, self.bad_records as u32);
        put_u32(&mut buf, self.bits.len() as u32);
        for w in &self.bits {
            buf.extend_from_slice(&w.to_le_bytes());
        }
        buf
    }

    /// Parses a serialized Bloom filter.
    pub fn from_bytes(bytes: &[u8]) -> Result<BloomSynopsis> {
        let mut r = ByteReader::new(bytes);
        let column = r.u32()? as usize;
        let row_count = r.u32()? as usize;
        let bad_records = r.u32()? as usize;
        let words = r.u32()? as usize;
        let mut bits = Vec::with_capacity(words);
        for _ in 0..words {
            bits.push(r.u64()?);
        }
        if bits.is_empty() {
            return Err(HailError::Corrupt("empty Bloom bit array".into()));
        }
        Ok(BloomSynopsis {
            column,
            bits,
            row_count,
            bad_records,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(xs: &[i32]) -> Vec<Value> {
        xs.iter().map(|&x| Value::Int(x)).collect()
    }

    #[test]
    fn zone_map_bounds_and_counts() {
        let z = ZoneMapSynopsis::build(2, &ints(&[5, -3, 9, 0]), 1);
        assert_eq!(z.column(), 2);
        assert_eq!(z.row_count(), 4);
        assert_eq!(z.bad_records(), 1);
        assert_eq!(z.bounds(), Some((&Value::Int(-3), &Value::Int(9))));
    }

    #[test]
    fn zone_map_overlap_logic() {
        let z = ZoneMapSynopsis::build(0, &ints(&[10, 20, 30]), 0);
        // Disjoint below and above.
        assert!(!z.overlaps(&KeyBounds::at_most(Value::Int(9))));
        assert!(!z.overlaps(&KeyBounds::at_least(Value::Int(31))));
        // Touching endpoints overlap (Included).
        assert!(z.overlaps(&KeyBounds::at_most(Value::Int(10))));
        assert!(z.overlaps(&KeyBounds::at_least(Value::Int(30))));
        // Excluded endpoints at the boundary do not.
        assert!(!z.overlaps(&KeyBounds {
            lo: Bound::Unbounded,
            hi: Bound::Excluded(Value::Int(10)),
        }));
        assert!(!z.overlaps(&KeyBounds {
            lo: Bound::Excluded(Value::Int(30)),
            hi: Bound::Unbounded,
        }));
        // Interior ranges and points.
        assert!(z.overlaps(&KeyBounds::between(Value::Int(15), Value::Int(25))));
        assert!(z.overlaps(&KeyBounds::point(Value::Int(20))));
        // Note: a point *between* stored values still overlaps — zone
        // maps only prove disjointness, the Bloom filter handles gaps.
        assert!(z.overlaps(&KeyBounds::point(Value::Int(15))));
        // Unbounded never prunes.
        assert!(z.overlaps(&KeyBounds {
            lo: Bound::Unbounded,
            hi: Bound::Unbounded,
        }));
    }

    #[test]
    fn empty_zone_map_overlaps_nothing() {
        let z = ZoneMapSynopsis::build(0, &[], 0);
        assert_eq!(z.bounds(), None);
        assert!(!z.overlaps(&KeyBounds::point(Value::Int(0))));
        assert!(!z.overlaps(&KeyBounds {
            lo: Bound::Unbounded,
            hi: Bound::Unbounded,
        }));
    }

    #[test]
    fn zone_map_round_trip_all_value_types() {
        for values in [
            ints(&[3, 1, 4]),
            vec![Value::Long(-7), Value::Long(1 << 40)],
            vec![Value::Float(0.5), Value::Float(-2.25)],
            vec![Value::Date(100), Value::Date(200)],
            vec![Value::Str("beta".into()), Value::Str("alpha".into())],
            vec![],
        ] {
            let z = ZoneMapSynopsis::build(1, &values, 2);
            let back = ZoneMapSynopsis::from_bytes(&z.to_bytes()).unwrap();
            assert_eq!(back, z);
            assert_eq!(z.byte_len(), z.to_bytes().len());
        }
    }

    #[test]
    fn zone_map_rejects_corrupt_bytes() {
        let z = ZoneMapSynopsis::build(0, &ints(&[1, 2]), 0);
        let mut raw = z.to_bytes();
        raw[12] = 9; // bounds marker
        assert!(ZoneMapSynopsis::from_bytes(&raw).is_err());
        let mut raw2 = z.to_bytes();
        raw2[13] = 250; // value type tag
        assert!(ZoneMapSynopsis::from_bytes(&raw2).is_err());
        assert!(ZoneMapSynopsis::from_bytes(&[1, 2, 3]).is_err());
    }

    #[test]
    fn bloom_no_false_negatives() {
        let values: Vec<Value> = (0..500).map(|i| Value::Int(i * 3)).collect();
        let b = BloomSynopsis::build(0, &values, 0);
        for v in &values {
            assert!(b.might_contain(v), "false negative for {v:?}");
        }
    }

    #[test]
    fn bloom_rejects_most_absent_values() {
        let values: Vec<Value> = (0..1000).map(Value::Int).collect();
        let b = BloomSynopsis::build(0, &values, 0);
        let false_positives = (1000..3000)
            .filter(|&i| b.might_contain(&Value::Int(i)))
            .count();
        // ~10 bits/row, k=7 → expected rate well under 1%.
        assert!(false_positives < 60, "{false_positives} false positives");
    }

    #[test]
    fn bloom_empty_block_contains_nothing() {
        let b = BloomSynopsis::build(0, &[], 0);
        assert!(!b.might_contain(&Value::Int(0)));
        assert_eq!(b.row_count(), 0);
    }

    #[test]
    fn bloom_round_trip() {
        let values: Vec<Value> = (0..100).map(|i| Value::Str(format!("w{i}"))).collect();
        let b = BloomSynopsis::build(3, &values, 5);
        let back = BloomSynopsis::from_bytes(&b.to_bytes()).unwrap();
        assert_eq!(back, b);
        assert_eq!(back.column(), 3);
        assert_eq!(back.bad_records(), 5);
        assert_eq!(b.byte_len(), b.to_bytes().len());
    }

    #[test]
    fn bloom_rejects_corrupt_bytes() {
        assert!(BloomSynopsis::from_bytes(&[0, 1]).is_err());
        // A zero-word bit array is structurally impossible.
        let mut raw = Vec::new();
        put_u32(&mut raw, 0);
        put_u32(&mut raw, 0);
        put_u32(&mut raw, 0);
        put_u32(&mut raw, 0);
        assert!(BloomSynopsis::from_bytes(&raw).is_err());
    }

    #[test]
    fn bloom_is_compact() {
        let values: Vec<Value> = (0..10_000).map(Value::Int).collect();
        let b = BloomSynopsis::build(0, &values, 0);
        // ~10 bits/row → ~12.5 KB plus header.
        assert!(b.byte_len() < 14 * 1024, "{} bytes", b.byte_len());
    }
}
