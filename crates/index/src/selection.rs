//! Index selection: which attribute to cluster each replica on (§3.4).
//!
//! Bob's web log has few attributes, so he "simply creates indexes on all
//! of them". When a dataset has more attributes than replicas the choice
//! matters; the paper defers a full per-replica physical-design algorithm
//! to future work but sketches the requirements. We provide:
//!
//! - [`select_manual`] — Bob's configuration-file path;
//! - [`select_for_workload`] — a greedy advisor that ranks attributes by
//!   the aggregate selectivity-weighted frequency with which a workload
//!   filters on them, and assigns the top-k to the k replicas. This is
//!   the natural first instantiation of the paper's "extend Trojan
//!   Layouts \[21\] to compute clustered indexes per replica".

use crate::sort::{ReplicaIndexConfig, SortOrder};
use hail_types::{Result, Schema};

/// One workload entry for the advisor: a query filters on `column` with
/// the given estimated `selectivity` (fraction of rows qualifying) and
/// occurs with relative `frequency`.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadFilter {
    pub column: usize,
    pub selectivity: f64,
    pub frequency: f64,
}

impl WorkloadFilter {
    pub fn new(column: usize, selectivity: f64, frequency: f64) -> Self {
        WorkloadFilter {
            column,
            selectivity,
            frequency,
        }
    }

    /// Benefit of having a clustered index on this filter's column: an
    /// index scan reads ≈`selectivity` of the block instead of all of it,
    /// so the saved fraction — weighted by how often the query runs — is
    /// `frequency × (1 − selectivity)`.
    fn benefit(&self) -> f64 {
        self.frequency * (1.0 - self.selectivity.clamp(0.0, 1.0))
    }
}

/// Manual selection: cluster replica `i` on `columns[i]`; extra replicas
/// stay unsorted, extra columns are ignored.
pub fn select_manual(
    schema: &Schema,
    replication: usize,
    columns: &[usize],
) -> Result<ReplicaIndexConfig> {
    let config = ReplicaIndexConfig::first_indexed(replication, columns);
    config.validate(schema)?;
    Ok(config)
}

/// Greedy workload-driven selection: rank columns by total benefit and
/// assign the best `replication` distinct columns to the replicas.
///
/// If fewer distinct filtered columns exist than replicas, the remaining
/// replicas duplicate the top column (an extra copy of the most useful
/// index also helps failover, cf. HAIL-1Idx in §6.4.3).
pub fn select_for_workload(
    schema: &Schema,
    replication: usize,
    workload: &[WorkloadFilter],
) -> Result<ReplicaIndexConfig> {
    let mut benefit = vec![0.0f64; schema.len()];
    for f in workload {
        schema.field(f.column)?;
        benefit[f.column] += f.benefit();
    }
    let mut ranked: Vec<usize> = (0..schema.len()).filter(|&c| benefit[c] > 0.0).collect();
    ranked.sort_by(|&a, &b| {
        benefit[b]
            .partial_cmp(&benefit[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    if ranked.is_empty() {
        return Ok(ReplicaIndexConfig::unindexed(replication));
    }
    let mut orders = Vec::with_capacity(replication);
    for i in 0..replication {
        let column = *ranked.get(i).unwrap_or(&ranked[0]);
        orders.push(SortOrder::Clustered { column });
    }
    Ok(ReplicaIndexConfig::new(orders))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hail_types::{DataType, Field};

    fn schema(n: usize) -> Schema {
        Schema::new(
            (0..n)
                .map(|i| Field::new(format!("a{i}"), DataType::Int))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn manual_selection() {
        let c = select_manual(&schema(5), 3, &[2, 0, 4]).unwrap();
        assert_eq!(c.orders()[0], SortOrder::Clustered { column: 2 });
        assert_eq!(c.orders()[2], SortOrder::Clustered { column: 4 });
        assert!(select_manual(&schema(2), 3, &[7]).is_err());
    }

    #[test]
    fn workload_ranks_by_benefit() {
        // Column 1: frequent + selective → best. Column 3: frequent but
        // unselective → less benefit. Column 0: rare.
        let w = vec![
            WorkloadFilter::new(1, 0.001, 10.0),
            WorkloadFilter::new(3, 0.5, 10.0),
            WorkloadFilter::new(0, 0.001, 1.0),
        ];
        let c = select_for_workload(&schema(5), 3, &w).unwrap();
        assert_eq!(c.orders()[0], SortOrder::Clustered { column: 1 });
        assert_eq!(c.orders()[1], SortOrder::Clustered { column: 3 });
        assert_eq!(c.orders()[2], SortOrder::Clustered { column: 0 });
    }

    #[test]
    fn workload_duplicates_top_when_short() {
        let w = vec![WorkloadFilter::new(2, 0.01, 1.0)];
        let c = select_for_workload(&schema(5), 3, &w).unwrap();
        assert_eq!(c.index_count(), 3);
        assert!(c.orders().iter().all(|o| o.column() == Some(2)));
    }

    #[test]
    fn empty_workload_gives_unindexed() {
        let c = select_for_workload(&schema(3), 3, &[]).unwrap();
        assert_eq!(c.index_count(), 0);
    }

    #[test]
    fn repeated_filters_accumulate() {
        // Two medium queries on column 0 beat one on column 1.
        let w = vec![
            WorkloadFilter::new(0, 0.1, 1.0),
            WorkloadFilter::new(0, 0.1, 1.0),
            WorkloadFilter::new(1, 0.1, 1.5),
        ];
        let c = select_for_workload(&schema(3), 1, &w).unwrap();
        assert_eq!(c.orders()[0], SortOrder::Clustered { column: 0 });
    }

    #[test]
    fn invalid_column_errors() {
        let w = vec![WorkloadFilter::new(9, 0.1, 1.0)];
        assert!(select_for_workload(&schema(3), 3, &w).is_err());
    }
}
