//! The Hadoop++ trojan index baseline (§5, \[12\]).
//!
//! Hadoop++ creates one clustered *trojan index* per **logical** block —
//! identical on every replica — and pays for it dearly: after the normal
//! upload, two additional MapReduce jobs re-read the whole dataset,
//! convert it to binary, co-partition, sort and write it back with an
//! index header per block.
//!
//! Structurally the trojan index differs from HAIL's in two ways the
//! paper measures:
//!
//! 1. **Dense directory.** The trojan index stores an entry every
//!    [`TROJAN_GRANULARITY`] values instead of every 1,024, which makes
//!    it two orders of magnitude larger (304 KB vs 2 KB in §6.4.2) —
//!    slower to read before a lookup.
//! 2. **Header reads at split time.** Hadoop++ stores the index in a
//!    block *header* that the JobClient must fetch for every block while
//!    computing splits, delaying job start (§6.4.1: "HAIL does not have
//!    to read any block header to compute input splits while Hadoop++
//!    does").

use crate::clustered::KeyBounds;
use hail_types::bytes_util::{put_str, put_u32, ByteReader};
use hail_types::{DataType, HailError, Result, Value};

/// Values per trojan-index entry. Chosen so that the trojan index over a
/// paper-scale block (≈670 K values) is ≈150× larger than HAIL's sparse
/// index, matching the measured 304 KB vs 2 KB ratio.
pub const TROJAN_GRANULARITY: usize = 8;

/// A per-logical-block trojan index: a dense sorted directory over the
/// key attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct TrojanIndex {
    key_column: usize,
    key_type: DataType,
    granularity: usize,
    row_count: usize,
    /// First key of every `granularity`-sized run.
    keys: Vec<Value>,
}

impl TrojanIndex {
    /// Builds the index from the block's *sorted* key column.
    pub fn build(key_column: usize, key_type: DataType, sorted_keys: &[Value]) -> Result<Self> {
        Self::with_granularity(key_column, key_type, sorted_keys, TROJAN_GRANULARITY)
    }

    /// Builder with explicit granularity (used by ablation benches).
    pub fn with_granularity(
        key_column: usize,
        key_type: DataType,
        sorted_keys: &[Value],
        granularity: usize,
    ) -> Result<Self> {
        if granularity == 0 {
            return Err(HailError::Schema("granularity must be positive".into()));
        }
        debug_assert!(sorted_keys.windows(2).all(|w| w[0] <= w[1]));
        Ok(TrojanIndex {
            key_column,
            key_type,
            granularity,
            row_count: sorted_keys.len(),
            keys: sorted_keys.iter().step_by(granularity).cloned().collect(),
        })
    }

    pub fn key_column(&self) -> usize {
        self.key_column
    }

    pub fn granularity(&self) -> usize {
        self.granularity
    }

    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Resolves the inclusive *row* range that may contain qualifying
    /// keys, or `None`.
    pub fn lookup_rows(&self, bounds: &KeyBounds) -> Option<std::ops::Range<usize>> {
        if self.keys.is_empty() {
            return None;
        }
        let first_run = match &bounds.lo {
            std::ops::Bound::Unbounded => 0,
            std::ops::Bound::Included(lo) => self.keys[1..].partition_point(|k| k < lo),
            std::ops::Bound::Excluded(lo) => self.keys[1..].partition_point(|k| k <= lo),
        };
        let last_run = match &bounds.hi {
            std::ops::Bound::Unbounded => self.keys.len() - 1,
            std::ops::Bound::Included(hi) => {
                let p = self.keys.partition_point(|k| k <= hi);
                if p == 0 {
                    return None;
                }
                p - 1
            }
            std::ops::Bound::Excluded(hi) => {
                let p = self.keys.partition_point(|k| k < hi);
                if p == 0 {
                    return None;
                }
                p - 1
            }
        };
        if first_run > last_run {
            return None;
        }
        let start = first_run * self.granularity;
        let end = ((last_run + 1) * self.granularity).min(self.row_count);
        Some(start..end)
    }

    /// Serialized (header) size in bytes. The JobClient reads this much
    /// per block while computing splits.
    pub fn byte_len(&self) -> usize {
        self.to_bytes().len()
    }

    /// Serializes the index header.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.push(self.key_type.tag());
        put_u32(&mut buf, self.key_column as u32);
        put_u32(&mut buf, self.granularity as u32);
        put_u32(&mut buf, self.row_count as u32);
        put_u32(&mut buf, self.keys.len() as u32);
        for k in &self.keys {
            match k {
                Value::Int(v) | Value::Date(v) => buf.extend_from_slice(&v.to_le_bytes()),
                Value::Long(v) => buf.extend_from_slice(&v.to_le_bytes()),
                Value::Float(v) => buf.extend_from_slice(&v.to_bits().to_le_bytes()),
                Value::Str(s) => put_str(&mut buf, s).expect("index key too long"),
            }
        }
        buf
    }

    /// Parses a serialized header.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let key_type = DataType::from_tag(r.u8()?)?;
        let key_column = r.u32()? as usize;
        let granularity = r.u32()? as usize;
        if granularity == 0 {
            return Err(HailError::Corrupt("zero granularity".into()));
        }
        let row_count = r.u32()? as usize;
        let n = r.u32()? as usize;
        if n != row_count.div_ceil(granularity) {
            return Err(HailError::Corrupt(
                "trojan key count inconsistent with row count".into(),
            ));
        }
        let mut keys = Vec::with_capacity(n);
        for _ in 0..n {
            keys.push(match key_type {
                DataType::Int => Value::Int(r.i32()?),
                DataType::Date => Value::Date(r.i32()?),
                DataType::Long => Value::Long(r.i64()?),
                DataType::Float => Value::Float(r.f64()?),
                DataType::VarChar => Value::Str(r.str()?),
            });
        }
        Ok(TrojanIndex {
            key_column,
            key_type,
            granularity,
            row_count,
            keys,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustered::ClusteredIndex;

    fn keys(n: usize) -> Vec<Value> {
        (0..n as i32).map(Value::Int).collect()
    }

    #[test]
    fn lookup_narrows_to_runs() {
        let idx = TrojanIndex::with_granularity(0, DataType::Int, &keys(100), 8).unwrap();
        let r = idx.lookup_rows(&KeyBounds::point(Value::Int(42))).unwrap();
        assert!(r.contains(&42));
        assert!(r.len() <= 8);
        assert!(idx.lookup_rows(&KeyBounds::point(Value::Int(-1))).is_none());
    }

    #[test]
    fn denser_than_hail_index() {
        let ks = keys(100_000);
        let trojan = TrojanIndex::build(0, DataType::Int, &ks).unwrap();
        let hail = ClusteredIndex::build(0, DataType::Int, 1024, &ks).unwrap();
        let ratio = trojan.byte_len() as f64 / hail.byte_len() as f64;
        assert!(
            ratio > 50.0,
            "trojan/hail index size ratio {ratio:.0} should be large"
        );
    }

    #[test]
    fn serialization_round_trip() {
        let idx = TrojanIndex::build(2, DataType::Int, &keys(1000)).unwrap();
        let back = TrojanIndex::from_bytes(&idx.to_bytes()).unwrap();
        assert_eq!(back, idx);
    }

    #[test]
    fn range_lookup() {
        let idx = TrojanIndex::with_granularity(0, DataType::Int, &keys(64), 8).unwrap();
        let r = idx
            .lookup_rows(&KeyBounds::between(Value::Int(10), Value::Int(20)))
            .unwrap();
        assert!(r.start <= 10 && r.end > 20);
        assert!(r.len() <= 24, "range should span at most 3 runs");
    }

    #[test]
    fn empty_index_lookup() {
        let idx = TrojanIndex::build(0, DataType::Int, &[]).unwrap();
        assert!(idx.lookup_rows(&KeyBounds::point(Value::Int(0))).is_none());
    }
}
