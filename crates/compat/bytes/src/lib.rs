//! A minimal, API-compatible stand-in for the subset of the `bytes`
//! crate this workspace uses: [`Bytes`], a cheaply cloneable and
//! sliceable contiguous byte buffer.
//!
//! The build environment has no access to a crate registry, so the
//! workspace vendors this local implementation instead. Clones and
//! slices share one reference-counted allocation, which is the property
//! the DFS layer relies on (replica readers hold views of stored blocks
//! without copying).

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Creates a buffer from a static slice (copied; the real `bytes`
    /// crate borrows, but the workspace only uses this in tests).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A view of the bytes as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.start + self.len]
    }

    /// Returns a slice of self for the provided range, sharing the
    /// underlying allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(begin <= end, "slice range reversed: {begin} > {end}");
        assert!(
            end <= self.len,
            "slice end {end} beyond length {}",
            self.len
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            len: end - begin,
        }
    }

    /// Copies the bytes into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_slice() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..], &[1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let ss = s.slice(1..);
        assert_eq!(ss.to_vec(), vec![3, 4]);
        assert_eq!(b.slice(..), b);
    }

    #[test]
    fn clones_share_storage() {
        let b = Bytes::from(vec![9u8; 1024]);
        let c = b.clone();
        assert_eq!(b, c);
        assert!(Arc::ptr_eq(&b.data, &c.data));
    }

    #[test]
    #[should_panic(expected = "beyond length")]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from(vec![0u8; 4]);
        let _ = b.slice(0..5);
    }
}
