//! A minimal, deterministic stand-in for the subset of the `rand` crate
//! this workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`]
//! and [`RngExt::random_range`] over integer and float ranges.
//!
//! The build environment has no crate registry access, so the workspace
//! vendors this local implementation. The generator is xoshiro256++
//! seeded through SplitMix64 — high-quality enough for synthetic data
//! generation, and fully deterministic across platforms, which the
//! workload generators require for reproducible experiments.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Types that can be sampled uniformly from a half-open `Range`.
///
/// Implemented for the integer widths and `f64`; this is the only range
/// shape the workspace samples from.
pub trait SampleRange: Sized {
    /// Samples uniformly from `range` using `rng`.
    fn sample(range: Range<Self>, rng: &mut dyn RngCore) -> Self;
}

/// The raw generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait RngExt: RngCore {
    /// Samples uniformly from a half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T: SampleRange>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(range, self)
    }

    /// A uniform boolean with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(0.0..1.0, self) < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanding it with
    /// SplitMix64 as the reference `rand` implementation does.
    fn seed_from_u64(seed: u64) -> Self;
}

macro_rules! impl_int_sample {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(range: Range<Self>, rng: &mut dyn RngCore) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Multiply-shift rejection-free mapping; the span never
                // approaches 2^64 in this workspace, so modulo bias is
                // below 2^-32 and irrelevant for data generation.
                let r = (rng.next_u64() as u128 * span) >> 64;
                (range.start as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_int_sample!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for f64 {
    fn sample(range: Range<Self>, rng: &mut dyn RngCore) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 seed expansion.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000u32),
                b.random_range(0..1_000_000u32)
            );
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: usize = (0..100)
            .filter(|_| {
                StdRng::seed_from_u64(42).random_range(0..u32::MAX) == c.random_range(0..u32::MAX)
            })
            .count();
        assert!(same < 5);
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(10..20i32);
            assert!((10..20).contains(&v));
            let f = rng.random_range(0.0..485.3);
            assert!((0.0..485.3).contains(&f));
            let u = rng.random_range(0..3u8);
            assert!(u < 3);
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.random_range(0..10usize)] += 1;
        }
        for &b in &buckets {
            assert!((9_000..11_000).contains(&b), "bucket {b} far from uniform");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(5..5i32);
    }
}
