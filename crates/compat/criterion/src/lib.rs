//! A minimal, API-compatible stand-in for the subset of `criterion` the
//! workspace's micro-benchmarks use: [`Criterion::bench_function`],
//! [`Bencher::iter`], [`Bencher::iter_batched`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! The build environment has no crate registry access, so the workspace
//! vendors this local harness. It measures wall-clock medians over a
//! configurable number of samples — adequate for relative comparisons,
//! with none of criterion's statistical machinery.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Batch sizing hint for [`Bencher::iter_batched`]; accepted for API
/// compatibility, the harness always runs one setup per sample.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Runs one benchmark's timing loops.
pub struct Bencher {
    samples: usize,
    /// Collected per-iteration times, seconds.
    times: Vec<f64>,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.times.push(start.elapsed().as_secs_f64());
            drop(out);
        }
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.times.push(start.elapsed().as_secs_f64());
            drop(out);
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stand-in has no fixed
    /// measurement window.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; the stand-in does no warm-up.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs `f`'s timing loop and prints a one-line summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            times: Vec::with_capacity(self.sample_size),
        };
        f(&mut b);
        let mut times = b.times;
        if times.is_empty() {
            println!("{name:<40} (no samples)");
            return self;
        }
        times.sort_by(f64::total_cmp);
        let median = times[times.len() / 2];
        let min = times[0];
        let max = times[times.len() - 1];
        println!(
            "{name:<40} median {:>12} (min {}, max {}, n={})",
            format_time(median),
            format_time(min),
            format_time(max),
            times.len()
        );
        self
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a benchmark group, mirroring criterion's macro shapes.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default().sample_size(5);
        let mut runs = 0usize;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 5);
    }

    #[test]
    fn iter_batched_setups_fresh_inputs() {
        let mut c = Criterion::default().sample_size(3);
        let mut seen = Vec::new();
        c.bench_function("batched", |b| {
            let mut n = 0;
            b.iter_batched(
                || {
                    n += 1;
                    n
                },
                |input| seen.push(input),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(seen, vec![1, 2, 3]);
    }

    #[test]
    fn time_formatting() {
        assert!(format_time(2.5).ends_with(" s"));
        assert!(format_time(0.002).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(5e-9).ends_with(" ns"));
    }
}
