//! The JobTracker: locality-aware wave scheduling of map tasks over a
//! pool of per-node map slots, with Hadoop's per-task scheduling
//! overhead.
//!
//! The overhead model is the crux of §6.4/§6.5: every map task pays
//! several seconds of scheduling/startup cost regardless of how little
//! it reads, so a job with 3,200 one-block tasks is dominated by the
//! framework even when each record reader finishes in milliseconds.
//! `HailSplitting` attacks exactly this term by collapsing the task
//! count.

use crate::driver::ChunkedDrive;
use crate::inflight::InterestGuard;
use crate::input_format::{InputFormat, InputSplit, SplitContext, SplitPlan, SplitTask};
use crate::job::{JobReport, MapRecord, TaskReport};
use hail_dfs::DfsCluster;
use hail_sim::{ClusterSpec, HardwareProfile, SlotPool};
use hail_types::{BlockId, DatanodeId, HailError, Result, Row};

/// A map-only job: the input format yields records; `map` turns each
/// record into zero or more output rows (the paper's annotated map
/// functions mostly just emit what the reader hands them).
///
/// Jobs are `Send + Sync` ([`InputFormat`] is a `Send + Sync` trait and
/// the map function carries the same bounds), so the
/// [`crate::manager::JobManager`] can run several of them concurrently
/// on scoped threads. The map function is still invoked from exactly
/// one thread at a time — the accounting phase runs strictly in split
/// order — so the bounds buy shareability, not reentrancy.
pub struct MapJob<'a> {
    pub name: String,
    pub input: Vec<BlockId>,
    pub format: &'a dyn InputFormat,
    /// Worker parallelism granted to each split read for fanning out
    /// its independent block reads (driven through
    /// [`SplitContext::parallelism`] into the execution layer's
    /// executor). `None` — the default — lets the format's own
    /// executor configuration decide (which honors the
    /// `HAIL_PARALLELISM` environment override). Never changes results
    /// or simulated times, only real wall clock.
    pub parallelism: Option<usize>,
    /// Job-level overlap: how many whole splits the execution phase may
    /// read concurrently through [`InputFormat::read_split_batch`].
    /// `None` — the default — lets the format's own policy decide
    /// (which for the planner-backed formats honors the
    /// `HAIL_JOB_PARALLELISM` environment override); `Some(1)` forces
    /// strictly sequential split reads. Like intra-split parallelism,
    /// this never changes results or simulated times, only real wall
    /// clock.
    pub job_parallelism: Option<usize>,
    #[allow(clippy::type_complexity)]
    pub map: Box<dyn Fn(&MapRecord, &mut Vec<Row>) + Send + Sync + 'a>,
}

impl<'a> MapJob<'a> {
    /// A job whose map function simply emits every (good) record the
    /// reader produces — the common case once HAIL has filtered and
    /// projected inside the record reader.
    pub fn collecting(
        name: impl Into<String>,
        input: Vec<BlockId>,
        format: &'a dyn InputFormat,
    ) -> Self {
        MapJob {
            name: name.into(),
            input,
            format,
            parallelism: None,
            job_parallelism: None,
            map: Box::new(|rec, out| {
                if !rec.bad {
                    out.push(rec.row.clone());
                }
            }),
        }
    }

    /// Builder-style intra-split read parallelism override.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = Some(parallelism.max(1));
        self
    }

    /// Builder-style job-level (split overlap) parallelism override.
    pub fn with_job_parallelism(mut self, parallelism: usize) -> Self {
        self.job_parallelism = Some(parallelism.max(1));
        self
    }

    /// The [`SplitContext`] this job's tasks read under on `node`.
    pub(crate) fn split_context(&self, node: DatanodeId) -> SplitContext {
        SplitContext {
            task_node: node,
            parallelism: self.parallelism,
        }
    }
}

/// Result of running a job: the collected map output plus the full
/// simulated-time report.
#[derive(Debug)]
pub struct JobRun {
    pub output: Vec<Row>,
    pub report: JobReport,
}

/// Per-node slot pools for the live nodes of a cluster.
#[derive(Clone)]
pub(crate) struct NodeSlots {
    pools: Vec<SlotPool>,
    live: Vec<bool>,
}

impl NodeSlots {
    pub(crate) fn new(cluster: &DfsCluster, slots_per_node: usize) -> Self {
        let live: Vec<bool> = (0..cluster.node_count())
            .map(|n| cluster.datanode(n).map(|d| d.is_alive()).unwrap_or(false))
            .collect();
        NodeSlots {
            pools: (0..cluster.node_count())
                .map(|_| SlotPool::new(slots_per_node))
                .collect(),
            live,
        }
    }

    /// Earliest-free time of a node's slots.
    fn node_free_at(&self, node: DatanodeId) -> f64 {
        let pool = &self.pools[node];
        pool.earliest_slot()
            .map(|s| pool.free_at(s))
            .unwrap_or(f64::INFINITY)
    }

    /// Picks the node to run a task preferring `locations` — Hadoop's
    /// data-locality rule. Ties break toward the *earliest* location in
    /// the split's list: input formats order locations by preference
    /// (HAIL puts the matching-index replica first, §4.3).
    ///
    /// Strict-locality variant of [`NodeSlots::choose_node_delayed`]
    /// (infinite delay window).
    pub(crate) fn choose_node(&self, locations: &[DatanodeId]) -> Option<DatanodeId> {
        self.choose_node_delayed(locations, f64::INFINITY)
    }

    /// Delay scheduling (\[34\]): pick the best preferred node unless the
    /// cluster has a slot freeing more than `delay_s` earlier — then
    /// trade locality for immediacy, as the Delay Scheduler does once a
    /// task has waited out its window.
    pub(crate) fn choose_node_delayed(
        &self,
        locations: &[DatanodeId],
        delay_s: f64,
    ) -> Option<DatanodeId> {
        let first_strict_min = |candidates: &mut dyn Iterator<Item = DatanodeId>| {
            let mut best: Option<(DatanodeId, f64)> = None;
            for n in candidates {
                let free = self.node_free_at(n);
                if best.is_none_or(|(_, bf)| free < bf) {
                    best = Some((n, free));
                }
            }
            best.map(|(n, _)| n)
        };
        let preferred = first_strict_min(
            &mut locations
                .iter()
                .copied()
                .filter(|&n| self.live.get(n).copied().unwrap_or(false)),
        );
        let anywhere = first_strict_min(&mut (0..self.pools.len()).filter(|&n| self.live[n]));
        match (preferred, anywhere) {
            (Some(p), Some(a)) => {
                if self.node_free_at(p) - self.node_free_at(a) > delay_s {
                    Some(a) // waited out the delay window: go non-local
                } else {
                    Some(p)
                }
            }
            (Some(p), None) => Some(p),
            // No live preferred node: schedule anywhere (remote read).
            (None, a) => a,
        }
    }

    /// Assigns a task of `duration` to `node`, returning (start, end).
    pub(crate) fn assign(
        &mut self,
        node: DatanodeId,
        duration: f64,
        not_before: f64,
    ) -> (f64, f64) {
        let pool = &mut self.pools[node];
        let slot = pool.earliest_slot().expect("node has no slots");
        pool.assign(slot, duration, not_before)
    }

    /// Marks a node dead from `at` onward: all its slots become
    /// unavailable.
    pub(crate) fn kill_node(&mut self, node: DatanodeId) {
        self.live[node] = false;
        let pool = &mut self.pools[node];
        for s in 0..pool.len() {
            pool.kill(s);
        }
    }

    /// Latest end time across all live slots.
    pub(crate) fn makespan(&self) -> f64 {
        self.pools
            .iter()
            .zip(&self.live)
            .map(|(p, &alive)| {
                if alive {
                    p.makespan()
                } else {
                    // A dead pool's slots are pinned at infinity by
                    // `kill`; map it to 0.0 so the fold ignores it —
                    // its tasks were re-scheduled elsewhere, and the
                    // makespan must stay finite.
                    0.0
                }
            })
            .fold(0.0, f64::max)
    }

    pub(crate) fn live_slot_count(&self) -> usize {
        self.pools
            .iter()
            .zip(&self.live)
            .filter(|(_, &alive)| alive)
            .map(|(p, _)| p.len())
            .sum()
    }
}

/// The logical block the assignment phase's fallback heuristic prices:
/// the paper's 64 MB HDFS block.
const FALLBACK_LOGICAL_BLOCK_BYTES: f64 = 64.0 * 1024.0 * 1024.0;

/// The assignment phase's duration estimate for one split when the
/// format offers none ([`InputFormat::estimate_split`] returned
/// `None`): a sequential scan of one logical 64 MB block per split
/// block. Uniform per block, so relative slot-occupancy ordering — the
/// only thing node choice consumes — matches any uniform actual
/// durations exactly.
pub(crate) fn fallback_split_estimate(hw: &HardwareProfile, split: &InputSplit) -> f64 {
    split.blocks.len().max(1) as f64 * (FALLBACK_LOGICAL_BLOCK_BYTES / (hw.disk_read_mb_s * 1e6))
}

/// Phase 1 of [`run_map_job`]: choose a node for **every** split up
/// front, before any read happens, so the execution phase can overlap
/// whole splits freely.
///
/// Runs the exact delay-scheduling [`NodeSlots`] logic the engine has
/// always used, but prices slot occupancy with *planner estimates*
/// ([`InputFormat::estimate_split`], falling back to a uniform
/// block-count heuristic) instead of actual read results — the
/// decoupling that makes split-level overlap possible. The planning
/// pools here are throwaway: the final simulated schedule is replayed
/// in phase 3 from actual per-split durations on these pre-chosen
/// nodes, so simulated time never observes either the estimates or any
/// real execution parallelism.
pub(crate) fn assign_split_nodes(
    cluster: &DfsCluster,
    spec: &ClusterSpec,
    format: &dyn InputFormat,
    splits: &[InputSplit],
) -> Result<Vec<DatanodeId>> {
    let hw = &spec.profile;
    let mut planning = NodeSlots::new(cluster, hw.map_slots);
    let mut nodes = Vec::with_capacity(splits.len());
    // One batch estimate for the whole job when the format offers it
    // (the planner-backed formats derive the query's filter shape once
    // there instead of once per split); a missing or wrong-length
    // answer degrades to per-split estimates.
    let batch_est = format
        .estimate_splits(cluster, splits)
        .filter(|ests| ests.len() == splits.len());
    for (i, split) in splits.iter().enumerate() {
        let node = planning
            .choose_node_delayed(&split.locations, spec.locality_delay_s)
            .ok_or_else(|| HailError::Job("no live nodes to schedule on".into()))?;
        let est = batch_est
            .as_ref()
            .map(|ests| ests[i])
            .or_else(|| format.estimate_split(cluster, split))
            .unwrap_or_else(|| fallback_split_estimate(hw, split))
            .max(0.0);
        planning.assign(node, hw.task_overhead_s + est, 0.0);
        nodes.push(node);
    }
    Ok(nodes)
}

/// The shared accounting step for one completed split read: apply the
/// job's map function to the buffered records (appending to `output`),
/// price the task from its **actual** statistics, occupy a simulated
/// slot on the pre-chosen node, and build the [`TaskReport`]. Used by
/// the normal execution phase and the failover rerun replay, so the
/// two cannot silently diverge.
#[allow(clippy::too_many_arguments)]
pub(crate) fn account_split_read(
    job: &MapJob<'_>,
    spec: &ClusterSpec,
    slots: &mut NodeSlots,
    split: usize,
    node: DatanodeId,
    not_before: f64,
    rerun: bool,
    read: crate::input_format::SplitRead,
    output: &mut Vec<Row>,
    scratch: &mut Vec<Row>,
) -> TaskReport {
    let hw = &spec.profile;
    for rec in &read.records {
        scratch.clear();
        (job.map)(rec, scratch);
        output.append(scratch);
    }
    let reader_seconds = read.stats.reader_seconds(hw, spec.scale);
    let duration = hw.task_overhead_s + reader_seconds;
    let (start, end) = slots.assign(node, duration, not_before);
    TaskReport {
        split,
        node,
        start,
        end,
        reader_seconds,
        reader_wall_seconds: read.reader_wall_seconds,
        rerun,
        stats: read.stats,
    }
}

/// Runs a map-only job to completion without failures.
///
/// Functional semantics and simulated time come from the same run: every
/// split is actually read (real bytes, real filtering) while the slot
/// pools account for waves and scheduling overhead. Since the job-level
/// overlap change this happens in three phases:
///
/// 1. **Assignment** (`assign_split_nodes`): nodes are chosen for all
///    splits up front from planner *estimates*, decoupling scheduling
///    from reading.
/// 2. **Execution** ([`InputFormat::read_split_batch`]): whole splits
///    fan out across the format's job-level worker pool (bounded by
///    [`MapJob::job_parallelism`] / `HAIL_JOB_PARALLELISM`), each read
///    still fanning its blocks across intra-split workers.
/// 3. **Accounting**: strictly in split order on this thread — map
///    application, `TaskReport`s, and the simulated `NodeSlots`
///    schedule priced from the *actual* read statistics.
///
/// Every output row, `TaskReport`/`JobReport` field (except the
/// measured `reader_wall_seconds`), and any adaptive planner state is
/// bit-for-bit identical at every job/split parallelism; job
/// parallelism 1 reads the splits strictly sequentially on this thread.
pub fn run_map_job(cluster: &DfsCluster, spec: &ClusterSpec, job: &MapJob<'_>) -> Result<JobRun> {
    run_map_job_with_interest(cluster, spec, job, None)
}

/// [`run_map_job`] with a manager-registered in-flight interest guard:
/// the drive loop releases each chunk's block interest as it completes,
/// so the cross-job scan-share eviction tracks the job's progress. The
/// run itself is unchanged — interest never touches output, reports, or
/// adaptive state.
pub fn run_map_job_with_interest(
    cluster: &DfsCluster,
    spec: &ClusterSpec,
    job: &MapJob<'_>,
    interest: Option<&InterestGuard>,
) -> Result<JobRun> {
    let plan = job.format.splits(cluster, &job.input)?;
    run_map_job_with_plan(cluster, spec, job, &plan, interest)
}

/// [`run_map_job`] against an already-derived split plan — the seam the
/// failover path uses to run the baseline pass on the plan it
/// snapshotted, instead of deriving `splits()` a second time. The plan
/// must come from [`InputFormat::splits`] on the same cluster state;
/// nothing else about the run changes.
pub(crate) fn run_map_job_with_plan(
    cluster: &DfsCluster,
    spec: &ClusterSpec,
    job: &MapJob<'_>,
    plan: &SplitPlan,
    interest: Option<&InterestGuard>,
) -> Result<JobRun> {
    let hw = &spec.profile;
    if plan.splits.is_empty() && !job.input.is_empty() {
        return Err(HailError::Job("input has blocks but no splits".into()));
    }
    let split_phase_seconds = plan.client_cost.serial_seconds(hw, spec.scale);

    // Phase 1: assignment.
    let nodes = assign_split_nodes(cluster, spec, job.format, &plan.splits)?;

    // Phases 2+3 run through the shared chunked drive loop
    // ([`ChunkedDrive`]): execution (the format's job-level pool
    // overlaps each chunk's reads), then the deterministic merge +
    // simulated accounting in split order. Chunking bounds peak memory
    // — a chunk's buffered records are mapped into `output` and dropped
    // before the next chunk reads — without touching determinism: the
    // boundaries are parallelism-independent, and within a chunk
    // results arrive in split order.
    let batch: Vec<SplitTask<'_>> = plan
        .splits
        .iter()
        .zip(&nodes)
        .map(|(split, &node)| SplitTask {
            split,
            ctx: job.split_context(node),
        })
        .collect();
    let mut slots = NodeSlots::new(cluster, hw.map_slots);
    let mut output = Vec::new();
    let mut tasks = Vec::with_capacity(plan.splits.len());
    let mut scratch = Vec::new();
    ChunkedDrive::for_job(cluster, job)
        .with_interest(interest)
        .run(&batch, |i, read| {
            tasks.push(account_split_read(
                job,
                spec,
                &mut slots,
                i,
                nodes[i],
                0.0,
                false,
                read,
                &mut output,
                &mut scratch,
            ));
        })?;

    let makespan = slots.makespan();
    let report = JobReport {
        job_name: job.name.clone(),
        startup_seconds: hw.job_startup_s,
        split_phase_seconds,
        split_count: plan.splits.len(),
        total_slots: slots.live_slot_count(),
        tasks,
        end_to_end_seconds: hw.job_startup_s + split_phase_seconds + makespan,
        queue_wait_seconds: 0.0,
    };
    Ok(JobRun { output, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input_format::{InputSplit, SplitPlan};
    use crate::job::TaskStats;
    use hail_sim::HardwareProfile;
    use hail_types::{StorageConfig, Value};

    /// A toy input format: one split per block, each emitting one record,
    /// charging a fixed disk read.
    struct ToyFormat {
        bytes_per_block: u64,
    }

    impl InputFormat for ToyFormat {
        fn splits(&self, cluster: &DfsCluster, input: &[BlockId]) -> Result<SplitPlan> {
            let live = cluster.live_nodes();
            Ok(SplitPlan {
                splits: input
                    .iter()
                    .map(|&b| InputSplit::for_block(b, vec![live[b as usize % live.len()]]))
                    .collect(),
                client_cost: Default::default(),
            })
        }

        fn read_split(
            &self,
            _cluster: &DfsCluster,
            split: &InputSplit,
            _task_node: DatanodeId,
            emit: &mut dyn FnMut(MapRecord),
        ) -> Result<TaskStats> {
            emit(MapRecord::good(Row::new(vec![Value::Long(
                split.blocks[0] as i64,
            )])));
            let mut stats = TaskStats {
                records: 1,
                ..Default::default()
            };
            stats.ledger.disk_read = self.bytes_per_block;
            Ok(stats)
        }

        fn name(&self) -> &str {
            "toy"
        }
    }

    fn spec(nodes: usize) -> ClusterSpec {
        ClusterSpec::new(nodes, HardwareProfile::physical())
    }

    #[test]
    fn collects_output_and_schedules_waves() {
        let cluster = DfsCluster::new(2, StorageConfig::default());
        let fmt = ToyFormat {
            bytes_per_block: 95_000_000, // 1 s of disk read
        };
        // 8 blocks, 2 nodes × 2 slots = 4 parallel → 2 waves.
        let job = MapJob::collecting("test", (0..8).collect(), &fmt);
        let run = run_map_job(&cluster, &spec(2), &job).unwrap();
        assert_eq!(run.output.len(), 8);
        assert_eq!(run.report.task_count(), 8);
        let hw = HardwareProfile::physical();
        let per_task = hw.task_overhead_s + 1.0;
        let expected = hw.job_startup_s + 2.0 * per_task;
        assert!(
            (run.report.end_to_end_seconds - expected).abs() < 1e-6,
            "got {}, expected {expected}",
            run.report.end_to_end_seconds
        );
    }

    #[test]
    fn overhead_dominates_short_tasks() {
        let cluster = DfsCluster::new(2, StorageConfig::default());
        let fmt = ToyFormat {
            bytes_per_block: 1000, // ~10 µs of reading
        };
        let job = MapJob::collecting("short", (0..40).collect(), &fmt);
        let run = run_map_job(&cluster, &spec(2), &job).unwrap();
        let r = &run.report;
        // The paper's observation: T_ideal ≪ T_end-to-end for short tasks.
        assert!(r.ideal_seconds() < 0.01);
        assert!(r.overhead_seconds() > 0.9 * r.end_to_end_seconds);
    }

    #[test]
    fn locality_preferred() {
        let cluster = DfsCluster::new(4, StorageConfig::default());
        let fmt = ToyFormat {
            bytes_per_block: 1_000_000,
        };
        let job = MapJob::collecting("local", (0..4).collect(), &fmt);
        let run = run_map_job(&cluster, &spec(4), &job).unwrap();
        for t in &run.report.tasks {
            // ToyFormat puts block b on node b%4; locality should honor it.
            assert_eq!(t.node, t.split % 4);
        }
    }

    #[test]
    fn delay_scheduling_trades_locality_for_makespan() {
        // Every block prefers node 0 — a pathological hot spot.
        struct HotSpot;
        impl InputFormat for HotSpot {
            fn splits(&self, _c: &DfsCluster, input: &[BlockId]) -> Result<SplitPlan> {
                Ok(SplitPlan {
                    splits: input
                        .iter()
                        .map(|&b| InputSplit::for_block(b, vec![0]))
                        .collect(),
                    client_cost: Default::default(),
                })
            }
            fn read_split(
                &self,
                _c: &DfsCluster,
                split: &InputSplit,
                _n: DatanodeId,
                emit: &mut dyn FnMut(MapRecord),
            ) -> Result<TaskStats> {
                emit(MapRecord::good(Row::new(vec![Value::Long(
                    split.blocks[0] as i64,
                )])));
                let mut stats = TaskStats {
                    records: 1,
                    ..Default::default()
                };
                stats.ledger.disk_read = 95_000_000; // 1 s
                Ok(stats)
            }
            fn name(&self) -> &str {
                "hotspot"
            }
        }

        let cluster = DfsCluster::new(4, StorageConfig::default());
        let job = MapJob::collecting("hot", (0..16).collect(), &HotSpot);

        // Strict locality: all 16 tasks queue on node 0's two slots.
        let strict = run_map_job(&cluster, &spec(4), &job).unwrap();
        assert!(strict.report.tasks.iter().all(|t| t.node == 0));

        // Delay 0 (pure earliest-slot): tasks spread across the cluster
        // and the makespan shrinks ~4x.
        let eager_spec = spec(4).with_locality_delay(0.0);
        let eager = run_map_job(&cluster, &eager_spec, &job).unwrap();
        let spread: std::collections::BTreeSet<_> =
            eager.report.tasks.iter().map(|t| t.node).collect();
        assert!(spread.len() >= 3, "tasks should spread: {spread:?}");
        assert!(
            eager.report.end_to_end_seconds * 2.0 < strict.report.end_to_end_seconds,
            "eager {:.1}s vs strict {:.1}s",
            eager.report.end_to_end_seconds,
            strict.report.end_to_end_seconds
        );

        // A finite but generous window behaves like strict here (the
        // imbalance never exceeds the window early on, and later tasks
        // have earned their wait).
        let windowed_spec = spec(4).with_locality_delay(3.0);
        let windowed = run_map_job(&cluster, &windowed_spec, &job).unwrap();
        assert!(
            windowed.report.end_to_end_seconds <= strict.report.end_to_end_seconds,
            "a delay window never hurts the makespan"
        );
    }

    /// Pins the documented `NodeSlots::makespan` behavior after a node
    /// death: the dead node's pool (whose slots `kill` pins at
    /// infinity) is mapped to 0.0 and ignored — the makespan is the
    /// finite maximum over the *live* pools only.
    #[test]
    fn makespan_ignores_dead_pools_and_stays_finite() {
        let cluster = DfsCluster::new(3, StorageConfig::default());
        let mut slots = NodeSlots::new(&cluster, 2);
        slots.assign(0, 10.0, 0.0);
        slots.assign(1, 4.0, 0.0);
        slots.assign(2, 7.0, 0.0);
        assert_eq!(slots.makespan(), 10.0);

        // Killing the busiest node removes its contribution entirely —
        // not infinity (its killed slots), not its old 10.0.
        slots.kill_node(0);
        assert!(slots.makespan().is_finite());
        assert_eq!(slots.makespan(), 7.0);
        assert_eq!(slots.live_slot_count(), 4);

        // Killing every node leaves an empty (zero) makespan.
        slots.kill_node(1);
        slots.kill_node(2);
        assert_eq!(slots.makespan(), 0.0);
    }

    #[test]
    fn empty_input_is_fine() {
        let cluster = DfsCluster::new(2, StorageConfig::default());
        let fmt = ToyFormat { bytes_per_block: 1 };
        let job = MapJob::collecting("empty", vec![], &fmt);
        let run = run_map_job(&cluster, &spec(2), &job).unwrap();
        assert!(run.output.is_empty());
        assert_eq!(run.report.task_count(), 0);
    }

    #[test]
    fn map_function_filters() {
        let cluster = DfsCluster::new(2, StorageConfig::default());
        let fmt = ToyFormat { bytes_per_block: 1 };
        let job = MapJob {
            name: "filter".into(),
            input: (0..10).collect(),
            format: &fmt,
            parallelism: None,
            job_parallelism: None,
            map: Box::new(|rec, out| {
                if let Some(Value::Long(v)) = rec.row.get(0) {
                    if v % 2 == 0 {
                        out.push(rec.row.clone());
                    }
                }
            }),
        };
        let run = run_map_job(&cluster, &spec(2), &job).unwrap();
        assert_eq!(run.output.len(), 5);
    }
}
