//! Shuffle + reduce: grouping map output by key and applying a reduce
//! function.
//!
//! The paper's benchmark jobs are map-only, but real MapReduce programs
//! (and two of our examples) aggregate. This module provides a
//! deterministic shuffle (BTreeMap grouping) with cost accounting for
//! the network transfer and merge-sort the shuffle performs.

use crate::job::MapRecord;
use crate::scheduler::{run_map_job, JobRun, MapJob};
use hail_dfs::DfsCluster;
use hail_sim::{ClusterSpec, CostLedger};
use hail_types::{BlockId, Result, Row, Value};
use std::collections::BTreeMap;

/// A map-reduce job: `map` emits `(key, value-row)` pairs, `reduce`
/// folds each key's rows into output rows.
pub struct MapReduceJob<'a> {
    pub name: String,
    pub input: Vec<BlockId>,
    pub format: &'a dyn crate::input_format::InputFormat,
    #[allow(clippy::type_complexity)]
    pub map: Box<dyn Fn(&MapRecord, &mut Vec<(Value, Row)>) + Send + Sync + 'a>,
    #[allow(clippy::type_complexity)]
    pub reduce: Box<dyn Fn(&Value, &[Row], &mut Vec<Row>) + Send + Sync + 'a>,
    /// Number of reduce tasks (≥1).
    pub reducers: usize,
    /// Intra-split read parallelism for the map phase (see
    /// [`MapJob::parallelism`]); `None` defers to the input format.
    pub parallelism: Option<usize>,
    /// Job-level split overlap for the map phase (see
    /// [`MapJob::job_parallelism`]); `None` defers to the input format.
    pub job_parallelism: Option<usize>,
}

/// Result of a map-reduce job: reduced output plus the map-phase report
/// and the shuffle/reduce simulated seconds.
#[derive(Debug)]
pub struct MapReduceRun {
    pub output: Vec<Row>,
    pub map_run: JobRun,
    pub shuffle_seconds: f64,
    pub reduce_seconds: f64,
    pub end_to_end_seconds: f64,
}

/// Runs a map-reduce job: map phase via the scheduler, then a
/// deterministic grouped reduce with costed shuffle.
pub fn run_map_reduce_job(
    cluster: &DfsCluster,
    spec: &ClusterSpec,
    job: &MapReduceJob<'_>,
) -> Result<MapReduceRun> {
    // Map phase: collect (key, row) pairs from the user's map function.
    // The capture is a mutex (not a RefCell) purely to satisfy MapJob's
    // Send + Sync map bound; the scheduler still invokes the map
    // function from one thread in split order, so there is never
    // contention. Rank MapScratch: acquired with no engine lock held
    // (the drive loop runs map functions outside every lock).
    let pairs_cell = hail_sync::OrderedMutex::new(
        hail_sync::LockRank::MapScratch,
        "map-reduce-scratch",
        Vec::<(Value, Row)>::new(),
    );
    let map_run = {
        let map_job = MapJob {
            name: job.name.clone(),
            input: job.input.clone(),
            format: job.format,
            parallelism: job.parallelism,
            job_parallelism: job.job_parallelism,
            map: Box::new(|rec, _out| {
                let mut emitted = Vec::new();
                (job.map)(rec, &mut emitted);
                pairs_cell.acquire().append(&mut emitted);
            }),
        };
        run_map_job(cluster, spec, &map_job)?
    };
    let mut pairs = pairs_cell.into_inner();
    {
        // Shuffle: group by key. Cost: map output crosses the network
        // once and is merge-sorted.
        let hw = &spec.profile;
        let shuffle_bytes: u64 = pairs
            .iter()
            .map(|(k, r)| (k.encoded_len() + r.encoded_len()) as u64)
            .sum();
        let mut shuffle_ledger = CostLedger::new();
        shuffle_ledger.net_sent = shuffle_bytes;
        shuffle_ledger.sort_cpu = shuffle_bytes;
        let shuffle_seconds = shuffle_ledger.pipelined_seconds(hw, spec.scale);

        let mut groups: BTreeMap<Value, Vec<Row>> = BTreeMap::new();
        for (k, row) in pairs.drain(..) {
            groups.entry(k).or_default().push(row);
        }

        // Reduce: partitions of the key space run in parallel across
        // `reducers` tasks; each key is processed once.
        let reducers = job.reducers.max(1);
        let mut output = Vec::new();
        let mut reduce_ledger = CostLedger::new();
        for (key, rows) in &groups {
            reduce_ledger.scan_cpu += rows.iter().map(|r| r.encoded_len() as u64).sum::<u64>();
            (job.reduce)(key, rows, &mut output);
        }
        let reduce_seconds =
            reduce_ledger.pipelined_seconds(hw, spec.scale) / reducers as f64 + hw.task_overhead_s;

        let end_to_end_seconds =
            map_run.report.end_to_end_seconds + shuffle_seconds + reduce_seconds;
        Ok(MapReduceRun {
            output,
            map_run,
            shuffle_seconds,
            reduce_seconds,
            end_to_end_seconds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input_format::{InputFormat, InputSplit, SplitPlan};
    use crate::job::TaskStats;
    use hail_sim::HardwareProfile;
    use hail_types::{DatanodeId, StorageConfig};

    /// Emits `block_id % 3` as a one-column row per block.
    struct ModFormat;

    impl InputFormat for ModFormat {
        fn splits(&self, _cluster: &DfsCluster, input: &[BlockId]) -> Result<SplitPlan> {
            Ok(SplitPlan {
                splits: input
                    .iter()
                    .map(|&b| InputSplit::for_block(b, vec![0]))
                    .collect(),
                client_cost: Default::default(),
            })
        }

        fn read_split(
            &self,
            _cluster: &DfsCluster,
            split: &InputSplit,
            _task_node: DatanodeId,
            emit: &mut dyn FnMut(MapRecord),
        ) -> Result<TaskStats> {
            emit(MapRecord::good(Row::new(vec![Value::Long(
                (split.blocks[0] % 3) as i64,
            )])));
            Ok(TaskStats {
                records: 1,
                ..Default::default()
            })
        }

        fn name(&self) -> &str {
            "mod"
        }
    }

    #[test]
    fn group_count() {
        let cluster = DfsCluster::new(2, StorageConfig::default());
        let spec = ClusterSpec::new(2, HardwareProfile::physical());
        let job = MapReduceJob {
            name: "count".into(),
            input: (0..9).collect(),
            format: &ModFormat,
            map: Box::new(|rec, out| {
                out.push((rec.row.get(0).unwrap().clone(), rec.row.clone()));
            }),
            reduce: Box::new(|key, rows, out| {
                out.push(Row::new(vec![key.clone(), Value::Long(rows.len() as i64)]));
            }),
            reducers: 1,
            parallelism: None,
            job_parallelism: None,
        };
        let run = run_map_reduce_job(&cluster, &spec, &job).unwrap();
        // Keys 0,1,2 each appear 3 times.
        assert_eq!(run.output.len(), 3);
        for row in &run.output {
            assert_eq!(row.get(1).unwrap(), &Value::Long(3));
        }
        // Keys arrive in deterministic (sorted) order.
        assert_eq!(run.output[0].get(0).unwrap(), &Value::Long(0));
        assert!(run.end_to_end_seconds > run.map_run.report.end_to_end_seconds);
    }

    #[test]
    fn more_reducers_cut_reduce_time() {
        let cluster = DfsCluster::new(2, StorageConfig::default());
        let spec = ClusterSpec::new(2, HardwareProfile::physical());
        let mk = |reducers| MapReduceJob {
            name: "r".into(),
            input: (0..30).collect(),
            format: &ModFormat,
            map: Box::new(|rec: &MapRecord, out: &mut Vec<(Value, Row)>| {
                out.push((rec.row.get(0).unwrap().clone(), rec.row.clone()));
            }),
            reduce: Box::new(|_k: &Value, _rows: &[Row], _out: &mut Vec<Row>| {}),
            reducers,
            parallelism: None,
            job_parallelism: None,
        };
        let one = run_map_reduce_job(&cluster, &spec, &mk(1)).unwrap();
        let four = run_map_reduce_job(&cluster, &spec, &mk(4)).unwrap();
        assert!(four.reduce_seconds <= one.reduce_seconds);
    }
}
